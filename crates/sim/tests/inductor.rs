//! Integration tests for the inductor element across all analyses.

use maopt_sim::analysis::ac::AcAnalysis;
use maopt_sim::analysis::dc::DcAnalysis;
use maopt_sim::analysis::tran::TranAnalysis;
use maopt_sim::{Circuit, Waveform};

#[test]
fn dc_inductor_is_a_short() {
    // V — R — L — ground: the inductor drops no DC voltage and its branch
    // current equals V/R.
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.vsource("V1", a, Circuit::GROUND, 5.0);
    ckt.resistor("R1", a, b, 1e3);
    let l1 = ckt.inductor("L1", b, Circuit::GROUND, 1e-3);
    let op = DcAnalysis::new().run(&ckt).unwrap();
    assert!(op.voltage(b).abs() < 1e-6, "v(b) = {}", op.voltage(b));
    let il = op.branch_current(l1).unwrap();
    assert!((il - 5e-3).abs() < 1e-8, "i(L) = {il}");
}

#[test]
fn ac_rl_highpass_corner() {
    // Series L from source, shunt R: |H| = R/(R + jωL); corner at R/(2πL).
    let r = 1e3;
    let l = 1e-3;
    let f_c = r / (2.0 * std::f64::consts::PI * l);
    let mut ckt = Circuit::new();
    let vin = ckt.node("vin");
    let out = ckt.node("out");
    ckt.vsource_ac("V1", vin, Circuit::GROUND, 0.0, 1.0);
    ckt.inductor("L1", vin, out, l);
    ckt.resistor("R1", out, Circuit::GROUND, r);
    let op = DcAnalysis::new().run(&ckt).unwrap();
    let ac = AcAnalysis::new(vec![f_c / 100.0, f_c, f_c * 100.0])
        .run(&ckt, &op)
        .unwrap();
    // Low frequency: inductor ~ short → |H| ≈ 1.
    assert!((ac.voltage(0, out).abs() - 1.0).abs() < 1e-3);
    // Corner: |H| = 1/√2, phase −45°.
    assert!((ac.voltage(1, out).abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3);
    assert!((ac.voltage(1, out).arg_deg() + 45.0).abs() < 0.5);
    // High frequency: rolls off.
    assert!(ac.voltage(2, out).abs() < 0.02);
}

#[test]
fn ac_series_rlc_resonance() {
    // Series RLC driven by a voltage source; voltage over R peaks at
    // f0 = 1/(2π√(LC)) where the L and C reactances cancel.
    let (r, l, c): (f64, f64, f64) = (10.0, 1e-6, 1e-9);
    let f0 = 1.0 / (2.0 * std::f64::consts::PI * (l * c).sqrt());
    let mut ckt = Circuit::new();
    let vin = ckt.node("vin");
    let mid = ckt.node("mid");
    let out = ckt.node("out");
    ckt.vsource_ac("V1", vin, Circuit::GROUND, 0.0, 1.0);
    ckt.inductor("L1", vin, mid, l);
    ckt.capacitor("C1", mid, out, c);
    ckt.resistor("R1", out, Circuit::GROUND, r);
    let op = DcAnalysis::new().run(&ckt).unwrap();
    let freqs = vec![f0 / 3.0, f0, f0 * 3.0];
    let ac = AcAnalysis::new(freqs).run(&ckt, &op).unwrap();
    let at_res = ac.voltage(1, out).abs();
    assert!((at_res - 1.0).abs() < 1e-3, "at resonance |H| = {at_res}");
    assert!(ac.voltage(0, out).abs() < 0.5);
    assert!(ac.voltage(2, out).abs() < 0.5);
}

#[test]
fn tran_rl_current_rise() {
    // Series R-L step: i(t) = (V/R)(1 − e^{−tR/L}).
    let (r, l, v) = (1e3, 1e-3, 2.0);
    let tau = l / r;
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    let v1 = ckt.vsource("V1", a, Circuit::GROUND, 0.0);
    ckt.set_waveform(
        v1,
        Waveform::pulse(0.0, v, 0.0, 1e-12, 1e-12, 1.0, f64::INFINITY),
    );
    ckt.resistor("R1", a, b, r);
    ckt.inductor("L1", b, Circuit::GROUND, l);
    let res = TranAnalysis::new(5.0 * tau, tau / 200.0).run(&ckt).unwrap();
    // Probe the resistor voltage (v_a − v_b) as a proxy for the current.
    for &tp in &[0.5 * tau, tau, 3.0 * tau] {
        let va = res.voltage_at_time(tp, a);
        let vb = res.voltage_at_time(tp, b);
        let i = (va - vb) / r;
        let expected = v / r * (1.0 - (-tp / tau).exp());
        assert!(
            (i - expected).abs() < 2e-2 * v / r,
            "i({tp}) = {i}, expected {expected}"
        );
    }
}

#[test]
fn tran_lc_oscillation_frequency() {
    // A charged capacitor flywheeling into an inductor oscillates at f0.
    // Start via a step source through a small resistor, then watch the tank.
    let (l, c): (f64, f64) = (1e-6, 1e-9);
    let f0 = 1.0 / (2.0 * std::f64::consts::PI * (l * c).sqrt());
    let mut ckt = Circuit::new();
    let drv = ckt.node("drv");
    let tank = ckt.node("tank");
    let v1 = ckt.vsource("V1", drv, Circuit::GROUND, 0.0);
    // Kick the tank with a short pulse, then leave it (source back to 0,
    // decoupled through a large resistor so ringing persists).
    ckt.set_waveform(
        v1,
        Waveform::pulse(0.0, 1.0, 0.0, 1e-9, 1e-9, 2e-7, f64::INFINITY),
    );
    ckt.resistor("R1", drv, tank, 100e3);
    ckt.inductor("L1", tank, Circuit::GROUND, l);
    ckt.capacitor("C1", tank, Circuit::GROUND, c);
    let t_stop = 5.0 / f0;
    let res = TranAnalysis::new(t_stop, 1.0 / (f0 * 400.0))
        .run(&ckt)
        .unwrap();
    // Count zero crossings of the tank voltage in the free-ringing region.
    let v = res.voltage(tank);
    let t = res.times();
    let mut crossings = Vec::new();
    for k in 1..v.len() {
        if t[k] > 3e-7 && v[k - 1].signum() != v[k].signum() && v[k - 1] != 0.0 {
            crossings.push(t[k]);
        }
    }
    assert!(
        crossings.len() >= 4,
        "tank should ring: {} crossings",
        crossings.len()
    );
    // Average half-period → frequency.
    let spans: Vec<f64> = crossings.windows(2).map(|w| w[1] - w[0]).collect();
    let half_period = spans.iter().sum::<f64>() / spans.len() as f64;
    let f_meas = 1.0 / (2.0 * half_period);
    let rel = (f_meas - f0).abs() / f0;
    assert!(
        rel < 0.05,
        "f = {f_meas:.3e} vs f0 = {f0:.3e} (rel {rel:.3})"
    );
}

#[test]
fn validation_rejects_nonpositive_inductance() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    ckt.inductor("L1", a, Circuit::GROUND, -1e-3);
    assert!(ckt.validate().is_err());
}
