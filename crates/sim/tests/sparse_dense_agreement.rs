//! Property-based agreement tests between the sparse (symbolic-reuse) and
//! dense (partial-pivoting) solver backends.
//!
//! The sparse path must be a pure performance optimization: same
//! solutions to tight tolerance, the *same* Newton iteration counts
//! (the trajectories may differ in last-bit rounding, but convergence
//! behaviour must match), and identical error surfacing on singular
//! systems.

use maopt_sim::analysis::ac::AcAnalysis;
use maopt_sim::analysis::dc::DcAnalysis;
use maopt_sim::analysis::noise::NoiseAnalysis;
use maopt_sim::analysis::tran::TranAnalysis;
use maopt_sim::{nmos_180nm, pmos_180nm, Circuit, MosInstance, SolverKind};
use proptest::prelude::*;

fn dc(kind: SolverKind) -> DcAnalysis {
    let mut a = DcAnalysis::new();
    a.solver = kind;
    a
}

/// Max abs difference between two solution vectors.
fn max_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .fold(0.0_f64, |m, (x, y)| m.max((x - y).abs()))
}

/// A randomized common-source amplifier with resistive load, source
/// degeneration and a feedback resistor — nonlinear enough to need real
/// Newton iterations.
fn amplifier(rd: f64, rs: f64, rf: f64, w_um: f64, vg: f64) -> Circuit {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let g = ckt.node("g");
    let d = ckt.node("d");
    let s = ckt.node("s");
    ckt.vsource("VDD", vdd, Circuit::GROUND, 1.8);
    ckt.vsource("VG", g, Circuit::GROUND, vg);
    ckt.resistor("RD", vdd, d, rd);
    ckt.resistor("RS", s, Circuit::GROUND, rs);
    ckt.resistor("RF", d, g, rf);
    ckt.capacitor("CL", d, Circuit::GROUND, 1e-12);
    ckt.mosfet(
        "M1",
        d,
        g,
        s,
        Circuit::GROUND,
        MosInstance {
            model: nmos_180nm(),
            w: w_um * 1e-6,
            l: 0.5e-6,
            m: 1.0,
        },
    );
    ckt
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// DC: same solution (tight tolerance) and the same Newton iteration
    /// count on a nonlinear amplifier.
    #[test]
    fn dc_agrees_on_amplifier(
        rd in 1e3f64..50e3,
        rs in 100.0f64..5e3,
        rf in 10e3f64..1e6,
        w_um in 1.0f64..50.0,
        vg in 0.4f64..1.4,
    ) {
        let ckt = amplifier(rd, rs, rf, w_um, vg);
        let sp = dc(SolverKind::Sparse).run(&ckt).unwrap();
        let de = dc(SolverKind::Dense).run(&ckt).unwrap();
        prop_assert!(
            max_diff(sp.unknowns(), de.unknowns()) < 1e-9,
            "solutions diverge: {:?}",
            max_diff(sp.unknowns(), de.unknowns())
        );
        prop_assert_eq!(sp.newton_iterations(), de.newton_iterations());
    }

    /// DC: linear networks agree essentially to machine precision.
    #[test]
    fn dc_agrees_on_linear_ladder(
        r1 in 1.0f64..1e5,
        r2 in 1.0f64..1e5,
        r3 in 1.0f64..1e5,
        v in -5.0f64..5.0,
    ) {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let c = ckt.node("c");
        ckt.vsource("V1", a, Circuit::GROUND, v);
        ckt.resistor("R1", a, b, r1);
        ckt.resistor("R2", b, c, r2);
        ckt.resistor("R3", c, Circuit::GROUND, r3);
        let sp = dc(SolverKind::Sparse).run(&ckt).unwrap();
        let de = dc(SolverKind::Dense).run(&ckt).unwrap();
        prop_assert!(max_diff(sp.unknowns(), de.unknowns()) < 1e-10 * (1.0 + v.abs()));
        prop_assert_eq!(sp.newton_iterations(), de.newton_iterations());
    }

    /// AC: both backends produce the same transfer function.
    #[test]
    fn ac_agrees_on_inverter(
        wn in 1.0f64..20.0,
        wp in 2.0f64..40.0,
        fmul in 0.0f64..6.0,
    ) {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("VDD", vdd, Circuit::GROUND, 1.8);
        ckt.vsource_ac("VIN", inp, Circuit::GROUND, 0.9, 1.0);
        ckt.capacitor("CL", out, Circuit::GROUND, 10e-15);
        ckt.mosfet("MP", out, inp, vdd, vdd,
            MosInstance { model: pmos_180nm(), w: wp * 1e-6, l: 0.18e-6, m: 1.0 });
        ckt.mosfet("MN", out, inp, Circuit::GROUND, Circuit::GROUND,
            MosInstance { model: nmos_180nm(), w: wn * 1e-6, l: 0.18e-6, m: 1.0 });
        let freq = 10f64.powf(fmul + 3.0);
        let op = dc(SolverKind::Sparse).run(&ckt).unwrap();
        let sp = AcAnalysis::new(vec![freq]).with_solver(SolverKind::Sparse)
            .run(&ckt, &op).unwrap();
        let de = AcAnalysis::new(vec![freq]).with_solver(SolverKind::Dense)
            .run(&ckt, &op).unwrap();
        let (vs, vd) = (sp.voltage(0, out), de.voltage(0, out));
        prop_assert!((vs - vd).abs() < 1e-9 * (1.0 + vd.abs()),
            "AC gain diverges: {vs:?} vs {vd:?}");
    }

    /// Noise: identical spectra from both backends.
    #[test]
    fn noise_agrees_on_rc(r in 100.0f64..1e5, c_pf in 0.1f64..100.0) {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.resistor("R1", a, Circuit::GROUND, r);
        ckt.capacitor("C1", a, Circuit::GROUND, c_pf * 1e-12);
        let op = dc(SolverKind::Sparse).run(&ckt).unwrap();
        let sp = NoiseAnalysis::log(10.0, 1e8, 5).with_solver(SolverKind::Sparse)
            .run(&ckt, &op, a).unwrap();
        let de = NoiseAnalysis::log(10.0, 1e8, 5).with_solver(SolverKind::Dense)
            .run(&ckt, &op, a).unwrap();
        for (s, d) in sp.psd().iter().zip(de.psd()) {
            prop_assert!((s - d).abs() <= 1e-9 * d.abs().max(1e-30));
        }
    }

    /// Transient: the full waveform agrees point-for-point (same accepted
    /// timesteps, near-identical voltages).
    #[test]
    fn tran_agrees_on_rc(r_k in 0.5f64..10.0, c_nf in 0.1f64..5.0) {
        let r = r_k * 1e3;
        let c = c_nf * 1e-9;
        let tau = r * c;
        let mut ckt = Circuit::new();
        let vin = ckt.node("vin");
        let out = ckt.node("out");
        ckt.vsource("V1", vin, Circuit::GROUND, 1.0);
        ckt.resistor("R1", vin, out, r);
        ckt.capacitor("C1", out, Circuit::GROUND, c);
        let sp = TranAnalysis::new(2.0 * tau, tau / 50.0)
            .with_solver(SolverKind::Sparse).run(&ckt).unwrap();
        let de = TranAnalysis::new(2.0 * tau, tau / 50.0)
            .with_solver(SolverKind::Dense).run(&ckt).unwrap();
        prop_assert_eq!(sp.times(), de.times(), "accepted steps must match");
        let (vs, vd) = (sp.voltage(out), de.voltage(out));
        for (s, d) in vs.iter().zip(&vd) {
            prop_assert!((s - d).abs() < 1e-9);
        }
    }
}

/// A floating node (no DC path anywhere) is singular for both backends,
/// and both report it through the same error variant.
#[test]
fn singular_circuit_fails_identically() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.vsource("V1", a, Circuit::GROUND, 1.0);
    ckt.resistor("R1", a, Circuit::GROUND, 1e3);
    // `b` is only touched by a capacitor pair: no DC path to anywhere.
    ckt.capacitor("C1", b, a, 1e-12);
    ckt.capacitor("C2", b, Circuit::GROUND, 1e-12);
    let no_gmin = |kind| {
        let mut an = dc(kind);
        // gmin normally rescues floating nodes; disable it to hit the
        // singular path.
        an.final_gmin = 0.0;
        an.run(&ckt)
    };
    let sp = no_gmin(SolverKind::Sparse);
    let de = no_gmin(SolverKind::Dense);
    match (&sp, &de) {
        (Ok(s), Ok(d)) => {
            // gmin stepping may still save it; then both must agree.
            assert!(max_diff(s.unknowns(), d.unknowns()) < 1e-9);
        }
        (Err(es), Err(ed)) => {
            assert_eq!(
                std::mem::discriminant(es),
                std::mem::discriminant(ed),
                "error kinds differ: {es:?} vs {ed:?}"
            );
        }
        _ => panic!("backends disagree on solvability: {sp:?} vs {de:?}"),
    }
}

/// Two voltage sources forcing the same node to different values make the
/// system unsolvable; both backends must fail, with the same error kind.
#[test]
fn vsource_loop_fails_identically() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    ckt.vsource("V1", a, Circuit::GROUND, 1.0);
    ckt.vsource("V2", a, Circuit::GROUND, 2.0);
    ckt.resistor("R1", a, Circuit::GROUND, 1e3);
    let sp = dc(SolverKind::Sparse).run(&ckt);
    let de = dc(SolverKind::Dense).run(&ckt);
    assert!(
        sp.is_err(),
        "conflicting sources must not converge (sparse)"
    );
    assert!(de.is_err(), "conflicting sources must not converge (dense)");
    assert_eq!(
        std::mem::discriminant(&sp.unwrap_err()),
        std::mem::discriminant(&de.unwrap_err())
    );
}
