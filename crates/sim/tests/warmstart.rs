//! Warm-started DC solves must be *transparent*: same converged solution
//! (to solver tolerance), same error surface, and an exact cold path when
//! warm-starting is off — for any seed, including hostile ones.

use std::sync::Arc;

use maopt_exec::{set_ambient_metrics, MetricSnapshot, MetricsRegistry};
use maopt_sim::analysis::dc::DcAnalysis;
use maopt_sim::{nmos_180nm, pmos_180nm, Circuit, MosInstance, SimError, WarmstartKind};
use proptest::prelude::*;

fn mi(model: &maopt_sim::MosModel, w_um: f64, l_um: f64) -> MosInstance {
    MosInstance {
        model: model.clone(),
        w: w_um * 1e-6,
        l: l_um * 1e-6,
        m: 1.0,
    }
}

/// A five-transistor OTA plus bias chain — nonlinear enough that the cold
/// path exercises the continuation ladder, smooth enough that nearby
/// sizings have nearby operating points.
fn five_t_ota(w1: f64, w2: f64, wt: f64) -> Circuit {
    let nmos = nmos_180nm();
    let pmos = pmos_180nm();
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let inp = ckt.node("inp");
    let inn = ckt.node("inn");
    let tail = ckt.node("tail");
    let d1 = ckt.node("d1");
    let out = ckt.node("out");
    let bias = ckt.node("bias");
    let gnd = Circuit::GROUND;
    ckt.vsource("VDD", vdd, gnd, 1.8);
    ckt.vsource("VINP", inp, gnd, 0.9);
    ckt.vsource("VINN", inn, gnd, 0.9);
    ckt.isource("IB", vdd, bias, 10e-6);
    ckt.mosfet("MB", bias, bias, gnd, gnd, mi(&nmos, 2.0, 1.0));
    ckt.mosfet("MT", tail, bias, gnd, gnd, mi(&nmos, wt, 1.0));
    ckt.mosfet("M1", d1, inp, tail, gnd, mi(&nmos, w1, 0.5));
    ckt.mosfet("M2", out, inn, tail, gnd, mi(&nmos, w1, 0.5));
    ckt.mosfet("M3", d1, d1, vdd, vdd, mi(&pmos, w2, 0.5));
    ckt.mosfet("M4", out, d1, vdd, vdd, mi(&pmos, w2, 0.5));
    ckt
}

fn warm() -> DcAnalysis {
    DcAnalysis {
        warmstart: WarmstartKind::On,
        ..DcAnalysis::new()
    }
}

fn cold() -> DcAnalysis {
    DcAnalysis {
        warmstart: WarmstartKind::Off,
        ..DcAnalysis::new()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A warm start from a *nearby* design's operating point converges to
    /// the same solution as the cold ladder, to solver tolerance.
    #[test]
    fn warm_and_cold_converge_to_the_same_op(
        w1 in 4.0f64..80.0,
        w2 in 4.0f64..80.0,
        wt in 4.0f64..40.0,
        dw in -0.25f64..0.25,
    ) {
        let ckt = five_t_ota(w1, w2, wt);
        let reference = five_t_ota(w1 * (1.0 + dw), w2 * (1.0 - 0.5 * dw), wt);
        let seed = cold().run(&reference).unwrap().unknowns().to_vec();

        let plain = cold().run(&ckt).unwrap();
        let warm_op = warm().run_seeded(&ckt, None, Some(&seed)).unwrap();
        for (a, b) in warm_op.unknowns().iter().zip(plain.unknowns()) {
            prop_assert!(
                (a - b).abs() < 1e-9 * (1.0 + b.abs()),
                "warm {a} vs cold {b}"
            );
        }
    }

    /// `WarmstartKind::Off` ignores the seed entirely: the solve is
    /// bitwise identical to the unseeded cold path, iteration count
    /// included.
    #[test]
    fn off_restores_the_cold_path_exactly(
        w1 in 4.0f64..80.0,
        w2 in 4.0f64..80.0,
        wt in 4.0f64..40.0,
    ) {
        let ckt = five_t_ota(w1, w2, wt);
        let seed = cold().run(&five_t_ota(w1 * 1.1, w2, wt)).unwrap().unknowns().to_vec();
        let plain = cold().run(&ckt).unwrap();
        let seeded = cold().run_seeded(&ckt, None, Some(&seed)).unwrap();
        prop_assert_eq!(plain.unknowns(), seeded.unknowns());
        prop_assert_eq!(plain.newton_iterations(), seeded.newton_iterations());
    }

    /// A deliberately hostile seed (rail-to-rail garbage) never changes
    /// the answer: the fallback reruns the ladder from the flat-band guess
    /// and lands on the cold solution.
    #[test]
    fn hostile_seed_is_rescued_by_the_cold_ladder(
        w1 in 4.0f64..80.0,
        w2 in 4.0f64..80.0,
        wt in 4.0f64..40.0,
        mag in 20.0f64..200.0,
    ) {
        let ckt = five_t_ota(w1, w2, wt);
        let plain = cold().run(&ckt).unwrap();
        let hostile: Vec<f64> = (0..plain.unknowns().len())
            .map(|i| if i % 2 == 0 { mag } else { -mag })
            .collect();
        let rescued = warm().run_seeded(&ckt, None, Some(&hostile)).unwrap();
        for (a, b) in rescued.unknowns().iter().zip(plain.unknowns()) {
            prop_assert!(
                (a - b).abs() < 1e-9 * (1.0 + b.abs()),
                "rescued {a} vs cold {b}"
            );
        }
        // The rescue bills the wasted warm attempt: at least as many
        // iterations as the plain cold solve.
        prop_assert!(rescued.newton_iterations() >= plain.newton_iterations());
    }
}

#[test]
fn wrong_length_seed_runs_cold_not_bad_request() {
    let ckt = five_t_ota(20.0, 20.0, 10.0);
    let plain = cold().run(&ckt).unwrap();
    let short = vec![0.5; 3];
    let op = warm().run_seeded(&ckt, None, Some(&short)).unwrap();
    assert_eq!(plain.unknowns(), op.unknowns());
}

#[test]
fn seeded_and_cold_fail_with_identical_error_variants() {
    // An iteration budget of 1 defeats every continuation stage on this
    // nonlinear circuit, whatever the starting point.
    let ckt = five_t_ota(20.0, 20.0, 10.0);
    let strangled_cold = DcAnalysis {
        max_iter: 1,
        ..cold()
    };
    let strangled_warm = DcAnalysis {
        max_iter: 1,
        ..warm()
    };
    let hostile = vec![40.0; cold().run(&ckt).unwrap().unknowns().len()];
    let a = strangled_cold.run(&ckt).unwrap_err();
    let b = strangled_warm
        .run_seeded(&ckt, None, Some(&hostile))
        .unwrap_err();
    match (&a, &b) {
        (
            SimError::NoConvergence { analysis: aa, .. },
            SimError::NoConvergence { analysis: ab, .. },
        ) => assert_eq!(aa, ab),
        other => panic!("expected matching NoConvergence variants, got {other:?}"),
    }
}

#[test]
fn warmstart_outcomes_land_in_the_ambient_metrics() {
    let reg = Arc::new(MetricsRegistry::new());
    let _guard = set_ambient_metrics(Some(Arc::clone(&reg)));

    let ckt = five_t_ota(20.0, 20.0, 10.0);
    let seed = cold().run(&ckt).unwrap().unknowns().to_vec();
    // Hit: seeded with its own converged OP.
    warm().run_seeded(&ckt, None, Some(&seed)).unwrap();
    // Cold: no seed provided.
    warm().run_seeded(&ckt, None, None).unwrap();
    // Fallback: hostile seed.
    let hostile = vec![50.0; seed.len()];
    warm().run_seeded(&ckt, None, Some(&hostile)).unwrap();

    let snap = reg.snapshot();
    let counter = |name: &str| -> u64 {
        snap.iter()
            .find_map(|m| match m {
                MetricSnapshot::Counter { name: n, value } if n == name => Some(*value),
                _ => None,
            })
            .unwrap_or_else(|| panic!("counter {name} missing"))
    };
    assert_eq!(counter("sim.warmstart.hit"), 1);
    assert_eq!(counter("sim.warmstart.cold"), 1);
    assert_eq!(counter("sim.warmstart.fallback"), 1);
    let hist = snap
        .iter()
        .find_map(|m| match m {
            MetricSnapshot::Histogram(h) if h.name == "sim.newton_iters" => Some(h),
            _ => None,
        })
        .expect("newton_iters histogram missing");
    assert_eq!(hist.count, 4, "one observation per solve, setup included");
    assert!(hist.mean() >= 1.0);
}
