//! Property-based tests of circuit-level physical invariants.

use maopt_sim::analysis::ac::AcAnalysis;
use maopt_sim::analysis::dc::DcAnalysis;
use maopt_sim::{nmos_180nm, pmos_180nm, Circuit, MosInstance, Waveform};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Voltage dividers obey the analytic ratio for any positive resistors.
    #[test]
    fn divider_ratio(r1 in 1.0f64..1e6, r2 in 1.0f64..1e6, v in -10.0f64..10.0) {
        let mut ckt = Circuit::new();
        let vin = ckt.node("vin");
        let out = ckt.node("out");
        ckt.vsource("V1", vin, Circuit::GROUND, v);
        ckt.resistor("R1", vin, out, r1);
        ckt.resistor("R2", out, Circuit::GROUND, r2);
        let op = DcAnalysis::new().run(&ckt).unwrap();
        let expected = v * r2 / (r1 + r2);
        prop_assert!((op.voltage(out) - expected).abs() < 1e-6 * (1.0 + expected.abs()));
    }

    /// KCL at the solution: the source current equals the load current for
    /// a single-loop circuit.
    #[test]
    fn source_current_matches_ohms_law(r in 1.0f64..1e6, v in 0.1f64..10.0) {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let vs = ckt.vsource("V1", a, Circuit::GROUND, v);
        ckt.resistor("R1", a, Circuit::GROUND, r);
        let op = DcAnalysis::new().run(&ckt).unwrap();
        let i = op.branch_current(vs).unwrap();
        prop_assert!((i + v / r).abs() < 1e-9 * (1.0 + (v / r).abs()));
    }

    /// MOSFET drain current is monotone in gate drive (fixed everything
    /// else) across the whole model, including the subthreshold blend.
    #[test]
    fn mosfet_current_monotone_in_vgs(
        vg1 in 0.0f64..1.8,
        vg2 in 0.0f64..1.8,
        vd in 0.05f64..1.8,
        w_um in 1.0f64..100.0,
        l_um in 0.18f64..2.0,
    ) {
        let nmos = nmos_180nm();
        let (lo, hi) = (vg1.min(vg2), vg1.max(vg2));
        let i_lo = nmos.eval(vd, lo, 0.0, 0.0, w_um * 1e-6, l_um * 1e-6, 1.0).id;
        let i_hi = nmos.eval(vd, hi, 0.0, 0.0, w_um * 1e-6, l_um * 1e-6, 1.0).id;
        prop_assert!(i_hi >= i_lo - 1e-15, "Id must grow with Vgs: {i_lo} vs {i_hi}");
    }

    /// The CMOS inverter transfer curve is monotone non-increasing for any
    /// device sizing.
    #[test]
    fn inverter_vtc_monotone(wn in 0.5f64..20.0, wp in 0.5f64..40.0) {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("VDD", vdd, Circuit::GROUND, 1.8);
        let vin = ckt.vsource("VIN", inp, Circuit::GROUND, 0.0);
        ckt.mosfet("MP", out, inp, vdd, vdd,
            MosInstance { model: pmos_180nm(), w: wp * 1e-6, l: 0.18e-6, m: 1.0 });
        ckt.mosfet("MN", out, inp, Circuit::GROUND, Circuit::GROUND,
            MosInstance { model: nmos_180nm(), w: wn * 1e-6, l: 0.18e-6, m: 1.0 });
        let values: Vec<f64> = (0..=9).map(|i| i as f64 * 0.2).collect();
        let ops = maopt_sim::analysis::dc::dc_sweep(&mut ckt, vin, &values).unwrap();
        let vouts: Vec<f64> = ops.iter().map(|op| op.voltage(out)).collect();
        for w in vouts.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-5, "VTC must fall: {vouts:?}");
        }
    }

    /// RC low-pass magnitude response is 1/√(1+(f/f₀)²) at every frequency.
    #[test]
    fn rc_lowpass_magnitude(
        r in 10.0f64..1e5,
        c in 1e-12f64..1e-6,
        fmul in 0.01f64..100.0,
    ) {
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * r * c);
        let f = f0 * fmul;
        let mut ckt = Circuit::new();
        let vin = ckt.node("vin");
        let out = ckt.node("out");
        ckt.vsource_ac("V1", vin, Circuit::GROUND, 0.0, 1.0);
        ckt.resistor("R1", vin, out, r);
        ckt.capacitor("C1", out, Circuit::GROUND, c);
        let op = DcAnalysis::new().run(&ckt).unwrap();
        let ac = AcAnalysis::new(vec![f]).run(&ckt, &op).unwrap();
        let mag = ac.voltage(0, out).abs();
        let expected = 1.0 / (1.0 + fmul * fmul).sqrt();
        prop_assert!((mag - expected).abs() < 1e-6, "at {fmul}·f0: {mag} vs {expected}");
    }

    /// Waveform values always lie within the [min, max] of their
    /// breakpoints (PULSE and PWL are interpolating).
    #[test]
    fn waveform_bounded(
        v1 in -5.0f64..5.0,
        v2 in -5.0f64..5.0,
        t in 0.0f64..10.0,
    ) {
        let lo = v1.min(v2);
        let hi = v1.max(v2);
        let pulse = Waveform::pulse(v1, v2, 1.0, 0.5, 0.5, 2.0, 6.0);
        let val = pulse.value(t);
        prop_assert!((lo - 1e-12..=hi + 1e-12).contains(&val));
        let pwl = Waveform::pwl(vec![(0.0, v1), (5.0, v2)]);
        let val = pwl.value(t);
        prop_assert!((lo - 1e-12..=hi + 1e-12).contains(&val));
    }
}
