//! A SPICE-flavoured netlist parser.
//!
//! Supports the element cards used by this simulator so circuits can be
//! loaded from text instead of built programmatically:
//!
//! ```text
//! * comment lines start with '*'
//! VDD vdd 0 1.8
//! VIN in  0 0.9 AC 1
//! R1  vdd out 10k
//! C1  out 0   500f
//! L1  out tap 1u
//! M1  out in 0 0 NMOS W=20u L=0.5u M=2
//! IB  vdd bias 10u
//! E1  x 0 a b 2.0      * VCVS
//! G1  x 0 a b 1m       * VCCS
//! ```
//!
//! * Node `0` is ground; all other names are created on first use.
//! * Values accept SPICE suffixes: `f p n u m k meg g t` (case-insensitive).
//! * MOSFETs take the built-in `NMOS`/`PMOS` 180 nm model cards with
//!   `W=`, `L=` and optional `M=` geometry.
//! * `V`/`I` sources accept an optional trailing `AC <mag>` and
//!   `PULSE(v1 v2 td tr tf pw per)` or `PWL(t1 v1 t2 v2 …)` waveforms.
//!
//! This is deliberately a subset of SPICE: no subcircuits, no `.model`
//! cards, no control statements. Unknown cards produce a
//! [`SimError::BadNetlist`] with the offending line number.

use crate::circuit::Circuit;
use crate::mosfet::{nmos_180nm, pmos_180nm};
use crate::waveform::Waveform;
use crate::{MosInstance, SimError};

/// Parses a SPICE-flavoured netlist into a [`Circuit`].
///
/// # Errors
///
/// Returns [`SimError::BadNetlist`] with a line-numbered message for any
/// malformed card.
///
/// # Example
///
/// ```
/// use maopt_sim::{parse_netlist, analysis::dc::DcAnalysis};
///
/// # fn main() -> Result<(), maopt_sim::SimError> {
/// let ckt = parse_netlist(
///     "* divider
///      V1 in 0 10
///      R1 in out 1k
///      R2 out 0 3k",
/// )?;
/// let op = DcAnalysis::new().run(&ckt)?;
/// let out = ckt.find_node("out").expect("node exists");
/// assert!((op.voltage(out) - 7.5).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn parse_netlist(text: &str) -> Result<Circuit, SimError> {
    let mut ckt = Circuit::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        parse_card(&mut ckt, line, lineno + 1)?;
    }
    Ok(ckt)
}

fn strip_comment(line: &str) -> &str {
    let t = line.trim_start();
    if t.starts_with('*') {
        return "";
    }
    match line.find(';') {
        Some(k) => &line[..k],
        None => line,
    }
}

fn bad(lineno: usize, msg: impl std::fmt::Display) -> SimError {
    SimError::BadNetlist {
        reason: format!("line {lineno}: {msg}"),
    }
}

/// Parses a SPICE value with magnitude suffix (`10k`, `0.5u`, `2meg`, …).
pub fn parse_value(token: &str) -> Option<f64> {
    let t = token.trim().to_ascii_lowercase();
    // Longest suffixes first.
    const SUFFIXES: [(&str, f64); 9] = [
        ("meg", 1e6),
        ("f", 1e-15),
        ("p", 1e-12),
        ("n", 1e-9),
        ("u", 1e-6),
        ("m", 1e-3),
        ("k", 1e3),
        ("g", 1e9),
        ("t", 1e12),
    ];
    for (suf, mult) in SUFFIXES {
        if let Some(stem) = t.strip_suffix(suf) {
            if let Ok(v) = stem.parse::<f64>() {
                return Some(v * mult);
            }
        }
    }
    t.parse::<f64>().ok()
}

/// Splits `W=20u` style assignments.
fn parse_assign(token: &str) -> Option<(String, f64)> {
    let (k, v) = token.split_once('=')?;
    Some((k.trim().to_ascii_uppercase(), parse_value(v)?))
}

/// Parses a trailing source specification: optional `AC <mag>` and one
/// optional `PULSE(...)` / `PWL(...)` group. Returns `(ac_mag, waveform)`.
fn parse_source_tail(
    tokens: &[String],
    lineno: usize,
) -> Result<(f64, Option<Waveform>), SimError> {
    let mut ac = 0.0;
    let mut wf = None;
    let mut i = 0;
    while i < tokens.len() {
        let t = tokens[i].to_ascii_uppercase();
        if t == "AC" {
            let mag = tokens
                .get(i + 1)
                .and_then(|v| parse_value(v))
                .ok_or_else(|| bad(lineno, "AC needs a magnitude"))?;
            ac = mag;
            i += 2;
        } else if let Some(args) = t.strip_prefix("PULSE(") {
            let inner = args
                .strip_suffix(')')
                .ok_or_else(|| bad(lineno, "unclosed PULSE("))?;
            let vals: Vec<f64> = inner
                .split_whitespace()
                .map(|v| parse_value(v).ok_or_else(|| bad(lineno, format!("bad PULSE value {v}"))))
                .collect::<Result<_, _>>()?;
            if vals.len() != 7 {
                return Err(bad(lineno, "PULSE needs 7 values (v1 v2 td tr tf pw per)"));
            }
            wf = Some(Waveform::pulse(
                vals[0],
                vals[1],
                vals[2],
                vals[3],
                vals[4],
                vals[5],
                if vals[6] > 0.0 {
                    vals[6]
                } else {
                    f64::INFINITY
                },
            ));
            i += 1;
        } else if let Some(args) = t.strip_prefix("PWL(") {
            let inner = args
                .strip_suffix(')')
                .ok_or_else(|| bad(lineno, "unclosed PWL("))?;
            let vals: Vec<f64> = inner
                .split_whitespace()
                .map(|v| parse_value(v).ok_or_else(|| bad(lineno, format!("bad PWL value {v}"))))
                .collect::<Result<_, _>>()?;
            if vals.is_empty() || !vals.len().is_multiple_of(2) {
                return Err(bad(lineno, "PWL needs an even, non-zero number of values"));
            }
            let points: Vec<(f64, f64)> = vals.chunks(2).map(|c| (c[0], c[1])).collect();
            wf = Some(Waveform::pwl(points));
            i += 1;
        } else {
            return Err(bad(lineno, format!("unexpected token '{}'", tokens[i])));
        }
    }
    Ok((ac, wf))
}

/// Re-joins parenthesised groups so `PULSE(0 1 0 1n 1n 5u 10u)` survives
/// whitespace tokenization as a single token.
fn tokenize(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for ch in line.chars() {
        match ch {
            '(' => {
                depth += 1;
                cur.push(ch);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                cur.push(ch);
            }
            c if c.is_whitespace() && depth == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_card(ckt: &mut Circuit, line: &str, lineno: usize) -> Result<(), SimError> {
    let tokens = tokenize(line);
    if tokens.is_empty() {
        return Ok(());
    }
    let name = tokens[0].clone();
    let kind = name
        .chars()
        .next()
        .expect("non-empty token")
        .to_ascii_uppercase();
    let args = &tokens[1..];

    let need = |n: usize| -> Result<(), SimError> {
        if args.len() < n {
            Err(bad(lineno, format!("{name}: expected at least {n} fields")))
        } else {
            Ok(())
        }
    };
    macro_rules! node {
        ($k:expr) => {
            ckt.node(&args[$k])
        };
    }
    macro_rules! value {
        ($k:expr) => {
            parse_value(&args[$k])
                .ok_or_else(|| bad(lineno, format!("bad value '{}'", args[$k])))?
        };
    }

    match kind {
        'R' => {
            need(3)?;
            let (a, b, v) = (node!(0), node!(1), value!(2));
            ckt.resistor(&name, a, b, v);
        }
        'C' => {
            need(3)?;
            let (a, b, v) = (node!(0), node!(1), value!(2));
            ckt.capacitor(&name, a, b, v);
        }
        'L' => {
            need(3)?;
            let (a, b, v) = (node!(0), node!(1), value!(2));
            ckt.inductor(&name, a, b, v);
        }
        'V' | 'I' => {
            need(3)?;
            let (p, n, dc) = (node!(0), node!(1), value!(2));
            let (ac, wf) = parse_source_tail(&args[3..], lineno)?;
            let id = if kind == 'V' {
                ckt.vsource_ac(&name, p, n, dc, ac)
            } else {
                ckt.isource_ac(&name, p, n, dc, ac)
            };
            if let Some(wf) = wf {
                ckt.set_waveform(id, wf);
            }
        }
        'M' => {
            need(5)?;
            let (d, g, s, b) = (node!(0), node!(1), node!(2), node!(3));
            let model = match args[4].to_ascii_uppercase().as_str() {
                "NMOS" => nmos_180nm(),
                "PMOS" => pmos_180nm(),
                other => return Err(bad(lineno, format!("unknown model '{other}'"))),
            };
            let mut w = None;
            let mut l = None;
            let mut m = 1.0;
            for t in &args[5..] {
                match parse_assign(t) {
                    Some((k, v)) if k == "W" => w = Some(v),
                    Some((k, v)) if k == "L" => l = Some(v),
                    Some((k, v)) if k == "M" => m = v,
                    _ => return Err(bad(lineno, format!("bad MOS parameter '{t}'"))),
                }
            }
            let w = w.ok_or_else(|| bad(lineno, "MOSFET needs W="))?;
            let l = l.ok_or_else(|| bad(lineno, "MOSFET needs L="))?;
            ckt.mosfet(&name, d, g, s, b, MosInstance { model, w, l, m });
        }
        'E' => {
            need(5)?;
            let (p, n, cp, cn, gain) = (node!(0), node!(1), node!(2), node!(3), value!(4));
            ckt.vcvs(&name, p, n, cp, cn, gain);
        }
        'G' => {
            need(5)?;
            let (p, n, cp, cn, gm) = (node!(0), node!(1), node!(2), node!(3), value!(4));
            ckt.vccs(&name, p, n, cp, cn, gm);
        }
        '.' => {
            // Control cards are not supported; .end is tolerated.
            if !name.eq_ignore_ascii_case(".end") {
                return Err(bad(lineno, format!("unsupported control card '{name}'")));
            }
        }
        other => return Err(bad(lineno, format!("unknown element type '{other}'"))),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::dc::DcAnalysis;
    use crate::Element;

    #[test]
    fn value_suffixes() {
        assert_eq!(parse_value("10k"), Some(10e3));
        assert_eq!(parse_value("2meg"), Some(2e6));
        assert_eq!(parse_value("500f"), Some(500e-15));
        assert_eq!(parse_value("0.5u"), Some(0.5e-6));
        assert_eq!(parse_value("1.8"), Some(1.8));
        let v = parse_value("3n").expect("3n parses");
        assert!((v - 3e-9).abs() < 1e-18, "3n → {v}");
        assert_eq!(parse_value("1G"), Some(1e9));
        assert_eq!(parse_value("x"), None);
        assert_eq!(parse_value("10kk"), None);
    }

    #[test]
    fn divider_parses_and_solves() {
        let ckt = parse_netlist(
            "* a divider
             V1 in 0 10
             R1 in out 1k
             R2 out 0 3k",
        )
        .unwrap();
        assert_eq!(ckt.elements().len(), 3);
        let op = DcAnalysis::new().run(&ckt).unwrap();
        assert!((op.voltage(ckt.find_node("out").unwrap()) - 7.5).abs() < 1e-6);
    }

    #[test]
    fn mosfet_card_with_geometry() {
        let ckt = parse_netlist(
            "VDD vdd 0 1.8
             VG  g 0 0.9
             RD  vdd d 10k
             M1  d g 0 0 NMOS W=20u L=0.5u M=2",
        )
        .unwrap();
        match &ckt.elements()[3] {
            Element::Mosfet { inst, .. } => {
                assert!((inst.w - 20e-6).abs() < 1e-18);
                assert!((inst.l - 0.5e-6).abs() < 1e-18);
                assert_eq!(inst.m, 2.0);
            }
            other => panic!("expected mosfet, got {other:?}"),
        }
        assert!(DcAnalysis::new().run(&ckt).is_ok());
    }

    #[test]
    fn source_with_ac_and_pulse() {
        let ckt = parse_netlist("V1 a 0 0.9 AC 1 PULSE(0 1 0 1n 1n 5u 0)").unwrap();
        match &ckt.elements()[0] {
            Element::Vsource {
                dc,
                ac_mag,
                waveform,
                ..
            } => {
                assert_eq!(*dc, 0.9);
                assert_eq!(*ac_mag, 1.0);
                let wf = waveform.as_ref().expect("waveform parsed");
                assert_eq!(wf.value(2e-6), 1.0);
                assert_eq!(wf.value(1e-3), 0.0, "zero period means single pulse");
            }
            other => panic!("expected vsource, got {other:?}"),
        }
    }

    #[test]
    fn pwl_source() {
        let ckt = parse_netlist("I1 0 a 0 PWL(0 0 1u 2m)").unwrap();
        match &ckt.elements()[0] {
            Element::Isource { waveform, .. } => {
                let wf = waveform.as_ref().unwrap();
                assert!((wf.value(0.5e-6) - 1e-3).abs() < 1e-12);
            }
            other => panic!("expected isource, got {other:?}"),
        }
    }

    #[test]
    fn controlled_sources_and_inductor() {
        let ckt = parse_netlist(
            "V1 a 0 1
             L1 a b 1m
             E1 x 0 a b 2.0
             G1 y 0 a b 1m
             R1 x 0 1k
             R2 y 0 1k
             R3 b 0 1k",
        )
        .unwrap();
        assert_eq!(ckt.elements().len(), 7);
        assert!(DcAnalysis::new().run(&ckt).is_ok());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_netlist("R1 a 0 1k\nQ1 a b c").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = parse_netlist("R1 a 0").unwrap_err();
        assert!(err.to_string().contains("at least 3"), "{err}");
        let err = parse_netlist("M1 d g 0 0 NMOS W=1u").unwrap_err();
        assert!(err.to_string().contains("needs L="), "{err}");
        let err = parse_netlist("V1 a 0 1 AC").unwrap_err();
        assert!(err.to_string().contains("AC needs"), "{err}");
    }

    #[test]
    fn comments_and_end_are_tolerated() {
        let ckt = parse_netlist(
            "* title
             R1 a 0 1k ; trailing comment
             .end",
        )
        .unwrap();
        assert_eq!(ckt.elements().len(), 1);
        match &ckt.elements()[0] {
            Element::Resistor { ohms, .. } => assert_eq!(*ohms, 1e3),
            _ => unreachable!(),
        }
    }

    #[test]
    fn unknown_control_card_rejected() {
        assert!(parse_netlist(".tran 1n 1u").is_err());
    }
}
