//! Solver sub-phase tracing: `sim.assemble` / `sim.factor` / `sim.solve`
//! spans emitted into the ambient flight recorder.
//!
//! `maopt-exec` installs the active `TraceRecorder` in a thread-local
//! around each `Problem::evaluate` call (see `maopt_exec::trace::ambient`);
//! the analyses capture it once per run through [`Probe::current`] and
//! emit one span per Newton-iteration phase. With tracing off every probe
//! call is a branch on `None`, and tracing never feeds back into the
//! computation, so journal byte-identity is unaffected.

use std::sync::Arc;

use maopt_exec::metrics::MetricsRegistry;
use maopt_exec::trace::TraceRecorder;

/// Span name for system assembly (device eval + stamping).
pub(crate) const SPAN_ASSEMBLE: &str = "sim.assemble";
/// Span name for the LU factorization.
pub(crate) const SPAN_FACTOR: &str = "sim.factor";
/// Span name for the triangular solves.
pub(crate) const SPAN_SOLVE: &str = "sim.solve";

/// Handle to the ambient trace recorder and metrics registry; all
/// methods are no-ops when the respective sink is absent.
#[derive(Debug, Clone, Default)]
pub(crate) struct Probe {
    rec: Option<Arc<TraceRecorder>>,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl Probe {
    /// Captures the recorder and metrics registry of the evaluation
    /// currently running on this thread (if any).
    pub fn current() -> Probe {
        Probe {
            rec: maopt_exec::trace::ambient(),
            metrics: maopt_exec::metrics::ambient_metrics(),
        }
    }

    /// Timestamp for a span about to start (0 when disabled).
    pub fn start(&self) -> u64 {
        self.rec.as_ref().map_or(0, |r| r.now_ns())
    }

    /// Closes a span opened at `t0`.
    pub fn span(&self, name: &str, t0: u64) {
        if let Some(r) = &self.rec {
            let now = r.now_ns();
            r.span(name, t0, now.saturating_sub(t0), None);
        }
    }

    /// Bumps a named counter in the ambient metrics registry.
    pub fn inc(&self, name: &str) {
        if let Some(m) = &self.metrics {
            m.inc(name, 1);
        }
    }

    /// Records one observation into a named ambient histogram.
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(m) = &self.metrics {
            m.observe(name, value);
        }
    }
}
