use std::collections::HashMap;

use crate::mosfet::MosModel;
use crate::waveform::Waveform;
use crate::SimError;

/// A circuit node handle.
///
/// Nodes are created through [`Circuit::node`]; the ground node is the
/// constant [`Circuit::GROUND`]. A `Node` is only meaningful for the circuit
/// that created it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Node(pub(crate) usize);

impl Node {
    /// `true` for the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }

    /// Index of this node's voltage unknown in the MNA system, or `None`
    /// for ground.
    pub(crate) fn unknown(self) -> Option<usize> {
        self.0.checked_sub(1)
    }
}

/// Identifier of an element inside its [`Circuit`], returned by the builder
/// methods; used to retrieve branch currents and device operating points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ElementId(pub(crate) usize);

/// A sized MOSFET instance: model card plus geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct MosInstance {
    /// Model card (threshold, transconductance parameter, …).
    pub model: MosModel,
    /// Channel width in meters.
    pub w: f64,
    /// Channel length in meters.
    pub l: f64,
    /// Parallel multiplier (number of fingers/copies).
    pub m: f64,
}

/// One circuit element.
///
/// Terminal order follows SPICE conventions; all node fields are handles
/// from the owning [`Circuit`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Element {
    /// Linear resistor between `a` and `b`.
    Resistor {
        /// Instance name.
        name: String,
        /// First terminal.
        a: Node,
        /// Second terminal.
        b: Node,
        /// Resistance in ohms (must be positive).
        ohms: f64,
    },
    /// Linear capacitor between `a` and `b`.
    Capacitor {
        /// Instance name.
        name: String,
        /// First terminal.
        a: Node,
        /// Second terminal.
        b: Node,
        /// Capacitance in farads (must be positive).
        farads: f64,
    },
    /// Linear inductor between `a` and `b` (current is a branch unknown,
    /// flowing from `a` to `b`).
    Inductor {
        /// Instance name.
        name: String,
        /// First terminal.
        a: Node,
        /// Second terminal.
        b: Node,
        /// Inductance in henries (must be positive).
        henries: f64,
    },
    /// Independent voltage source from `p` (positive) to `n`.
    Vsource {
        /// Instance name.
        name: String,
        /// Positive terminal.
        p: Node,
        /// Negative terminal.
        n: Node,
        /// DC value in volts.
        dc: f64,
        /// AC magnitude for small-signal analysis (0 = quiet).
        ac_mag: f64,
        /// Optional transient waveform; DC value is used when absent.
        waveform: Option<Waveform>,
    },
    /// Independent current source pushing `dc` amps from `p` to `n`
    /// (through the source), i.e. extracting current from node `p`.
    Isource {
        /// Instance name.
        name: String,
        /// Terminal the current leaves from.
        p: Node,
        /// Terminal the current flows into.
        n: Node,
        /// DC value in amps.
        dc: f64,
        /// AC magnitude for small-signal analysis.
        ac_mag: f64,
        /// Optional transient waveform.
        waveform: Option<Waveform>,
    },
    /// Four-terminal MOSFET (drain, gate, source, bulk).
    Mosfet {
        /// Instance name.
        name: String,
        /// Drain terminal.
        d: Node,
        /// Gate terminal.
        g: Node,
        /// Source terminal.
        s: Node,
        /// Bulk terminal.
        b: Node,
        /// Sizing and model card.
        inst: MosInstance,
    },
    /// Voltage-controlled voltage source: `v(p,n) = gain · v(cp,cn)`.
    Vcvs {
        /// Instance name.
        name: String,
        /// Positive output terminal.
        p: Node,
        /// Negative output terminal.
        n: Node,
        /// Positive controlling terminal.
        cp: Node,
        /// Negative controlling terminal.
        cn: Node,
        /// Voltage gain.
        gain: f64,
    },
    /// Voltage-controlled current source: `i(p→n) = gm · v(cp,cn)`.
    Vccs {
        /// Instance name.
        name: String,
        /// Terminal the current leaves from.
        p: Node,
        /// Terminal the current flows into.
        n: Node,
        /// Positive controlling terminal.
        cp: Node,
        /// Negative controlling terminal.
        cn: Node,
        /// Transconductance in siemens.
        gm: f64,
    },
}

impl Element {
    /// Instance name of the element.
    pub fn name(&self) -> &str {
        match self {
            Element::Resistor { name, .. }
            | Element::Capacitor { name, .. }
            | Element::Inductor { name, .. }
            | Element::Vsource { name, .. }
            | Element::Isource { name, .. }
            | Element::Mosfet { name, .. }
            | Element::Vcvs { name, .. }
            | Element::Vccs { name, .. } => name,
        }
    }
}

/// A netlist under construction: nodes plus elements.
///
/// See the [crate-level example](crate) for typical usage. Build the
/// topology with the `resistor`/`capacitor`/`vsource`/`mosfet`/… methods,
/// then hand the circuit to an analysis in [`crate::analysis`].
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    name_to_node: HashMap<String, Node>,
    elements: Vec<Element>,
}

impl Circuit {
    /// The ground (reference) node, always present.
    pub const GROUND: Node = Node(0);

    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        let mut ckt = Circuit {
            node_names: Vec::new(),
            name_to_node: HashMap::new(),
            elements: Vec::new(),
        };
        ckt.node_names.push("0".to_string());
        ckt.name_to_node.insert("0".to_string(), Node(0));
        ckt
    }

    /// Returns the node with the given name, creating it if necessary.
    /// The name `"0"` refers to ground.
    pub fn node(&mut self, name: &str) -> Node {
        if let Some(&n) = self.name_to_node.get(name) {
            return n;
        }
        let n = Node(self.node_names.len());
        self.node_names.push(name.to_string());
        self.name_to_node.insert(name.to_string(), n);
        n
    }

    /// Looks up an existing node by name.
    pub fn find_node(&self, name: &str) -> Option<Node> {
        self.name_to_node.get(name).copied()
    }

    /// Name of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to this circuit.
    pub fn node_name(&self, node: Node) -> &str {
        &self.node_names[node.0]
    }

    /// Total node count, including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Structural fingerprint of the circuit: element kinds and node
    /// incidence only — no values, names, or geometry. Every design of one
    /// circuit family (same netlist, different component values) shares
    /// the key, which keys the per-topology sparse-solver cache in
    /// `crate::topology`. Compared exactly (no hashing collisions).
    pub(crate) fn structure_key(&self) -> Vec<u32> {
        let mut key = Vec::with_capacity(1 + self.elements.len() * 5);
        key.push(self.node_count() as u32);
        let mut push = |tag: u32, nodes: &[Node]| {
            key.push(tag);
            key.extend(nodes.iter().map(|n| n.0 as u32));
        };
        for e in &self.elements {
            match e {
                Element::Resistor { a, b, .. } => push(0, &[*a, *b]),
                Element::Capacitor { a, b, .. } => push(1, &[*a, *b]),
                Element::Inductor { a, b, .. } => push(2, &[*a, *b]),
                Element::Vsource { p, n, .. } => push(3, &[*p, *n]),
                Element::Isource { p, n, .. } => push(4, &[*p, *n]),
                Element::Mosfet { d, g, s, b, .. } => push(5, &[*d, *g, *s, *b]),
                Element::Vcvs { p, n, cp, cn, .. } => push(6, &[*p, *n, *cp, *cn]),
                Element::Vccs { p, n, cp, cn, .. } => push(7, &[*p, *n, *cp, *cn]),
            }
        }
        key
    }

    /// All nodes in creation order, starting with ground.
    pub fn nodes(&self) -> Vec<Node> {
        (0..self.node_names.len()).map(Node).collect()
    }

    /// Element ids paired with their elements, in insertion order.
    pub fn elements_with_ids(&self) -> impl Iterator<Item = (ElementId, &Element)> {
        self.elements
            .iter()
            .enumerate()
            .map(|(i, e)| (ElementId(i), e))
    }

    /// Mutable element access for in-crate transformations (Monte Carlo).
    pub(crate) fn elements_mut(&mut self) -> &mut [Element] {
        &mut self.elements
    }

    /// The elements in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Element lookup by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    pub fn element(&self, id: ElementId) -> &Element {
        &self.elements[id.0]
    }

    /// Finds an element id by instance name.
    pub fn find_element(&self, name: &str) -> Option<ElementId> {
        self.elements
            .iter()
            .position(|e| e.name() == name)
            .map(ElementId)
    }

    fn push(&mut self, e: Element) -> ElementId {
        self.elements.push(e);
        ElementId(self.elements.len() - 1)
    }

    /// Adds a resistor.
    pub fn resistor(&mut self, name: &str, a: Node, b: Node, ohms: f64) -> ElementId {
        self.push(Element::Resistor {
            name: name.into(),
            a,
            b,
            ohms,
        })
    }

    /// Adds a capacitor.
    pub fn capacitor(&mut self, name: &str, a: Node, b: Node, farads: f64) -> ElementId {
        self.push(Element::Capacitor {
            name: name.into(),
            a,
            b,
            farads,
        })
    }

    /// Adds an inductor.
    pub fn inductor(&mut self, name: &str, a: Node, b: Node, henries: f64) -> ElementId {
        self.push(Element::Inductor {
            name: name.into(),
            a,
            b,
            henries,
        })
    }

    /// Adds a DC voltage source.
    pub fn vsource(&mut self, name: &str, p: Node, n: Node, dc: f64) -> ElementId {
        self.push(Element::Vsource {
            name: name.into(),
            p,
            n,
            dc,
            ac_mag: 0.0,
            waveform: None,
        })
    }

    /// Adds a voltage source with both DC value and AC magnitude.
    pub fn vsource_ac(&mut self, name: &str, p: Node, n: Node, dc: f64, ac_mag: f64) -> ElementId {
        self.push(Element::Vsource {
            name: name.into(),
            p,
            n,
            dc,
            ac_mag,
            waveform: None,
        })
    }

    /// Adds a DC current source (`dc` amps flowing from `p` to `n` through
    /// the source).
    pub fn isource(&mut self, name: &str, p: Node, n: Node, dc: f64) -> ElementId {
        self.push(Element::Isource {
            name: name.into(),
            p,
            n,
            dc,
            ac_mag: 0.0,
            waveform: None,
        })
    }

    /// Adds a current source with both DC value and AC magnitude.
    pub fn isource_ac(&mut self, name: &str, p: Node, n: Node, dc: f64, ac_mag: f64) -> ElementId {
        self.push(Element::Isource {
            name: name.into(),
            p,
            n,
            dc,
            ac_mag,
            waveform: None,
        })
    }

    /// Adds a MOSFET (drain, gate, source, bulk order).
    pub fn mosfet(
        &mut self,
        name: &str,
        d: Node,
        g: Node,
        s: Node,
        b: Node,
        inst: MosInstance,
    ) -> ElementId {
        self.push(Element::Mosfet {
            name: name.into(),
            d,
            g,
            s,
            b,
            inst,
        })
    }

    /// Adds a voltage-controlled voltage source.
    pub fn vcvs(
        &mut self,
        name: &str,
        p: Node,
        n: Node,
        cp: Node,
        cn: Node,
        gain: f64,
    ) -> ElementId {
        self.push(Element::Vcvs {
            name: name.into(),
            p,
            n,
            cp,
            cn,
            gain,
        })
    }

    /// Adds a voltage-controlled current source.
    pub fn vccs(&mut self, name: &str, p: Node, n: Node, cp: Node, cn: Node, gm: f64) -> ElementId {
        self.push(Element::Vccs {
            name: name.into(),
            p,
            n,
            cp,
            cn,
            gm,
        })
    }

    /// Attaches a transient waveform to an independent source.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a voltage or current source.
    pub fn set_waveform(&mut self, id: ElementId, wf: Waveform) {
        match &mut self.elements[id.0] {
            Element::Vsource { waveform, .. } | Element::Isource { waveform, .. } => {
                *waveform = Some(wf);
            }
            other => panic!("set_waveform on non-source element {}", other.name()),
        }
    }

    /// Overrides the DC value of an independent source (useful for sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a voltage or current source.
    pub fn set_dc(&mut self, id: ElementId, value: f64) {
        match &mut self.elements[id.0] {
            Element::Vsource { dc, .. } | Element::Isource { dc, .. } => *dc = value,
            other => panic!("set_dc on non-source element {}", other.name()),
        }
    }

    /// Validates element values; analyses call this before running.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadNetlist`] for non-positive resistances,
    /// capacitances or device geometry, and for an element-free circuit.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.elements.is_empty() {
            return Err(SimError::BadNetlist {
                reason: "circuit has no elements".into(),
            });
        }
        for e in &self.elements {
            match e {
                Element::Resistor { name, ohms, .. } => {
                    if *ohms <= 0.0 || !ohms.is_finite() {
                        return Err(SimError::BadNetlist {
                            reason: format!("resistor {name} has non-positive value {ohms}"),
                        });
                    }
                }
                Element::Capacitor { name, farads, .. } => {
                    if *farads <= 0.0 || !farads.is_finite() {
                        return Err(SimError::BadNetlist {
                            reason: format!("capacitor {name} has non-positive value {farads}"),
                        });
                    }
                }
                Element::Inductor { name, henries, .. } => {
                    if *henries <= 0.0 || !henries.is_finite() {
                        return Err(SimError::BadNetlist {
                            reason: format!("inductor {name} has non-positive value {henries}"),
                        });
                    }
                }
                Element::Mosfet { name, inst, .. } => {
                    if ![inst.w, inst.l, inst.m]
                        .iter()
                        .all(|g| g.is_finite() && *g > 0.0)
                    {
                        return Err(SimError::BadNetlist {
                            reason: format!("mosfet {name} has non-positive geometry"),
                        });
                    }
                }
                Element::Vsource { name, dc, .. } | Element::Isource { name, dc, .. } => {
                    if !dc.is_finite() {
                        return Err(SimError::BadNetlist {
                            reason: format!("source {name} has non-finite value {dc}"),
                        });
                    }
                }
                Element::Vcvs { name, gain, .. } => {
                    if !gain.is_finite() {
                        return Err(SimError::BadNetlist {
                            reason: format!("vcvs {name} has non-finite gain"),
                        });
                    }
                }
                Element::Vccs { name, gm, .. } => {
                    if !gm.is_finite() {
                        return Err(SimError::BadNetlist {
                            reason: format!("vccs {name} has non-finite gm"),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mosfet::nmos_180nm;

    #[test]
    fn ground_is_predeclared() {
        let ckt = Circuit::new();
        assert_eq!(ckt.node_count(), 1);
        assert!(Circuit::GROUND.is_ground());
        assert_eq!(ckt.find_node("0"), Some(Circuit::GROUND));
    }

    #[test]
    fn node_reuse_by_name() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let a2 = ckt.node("a");
        assert_eq!(a, a2);
        assert_eq!(ckt.node_count(), 2);
        assert_eq!(ckt.node_name(a), "a");
    }

    #[test]
    fn element_lookup() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let id = ckt.resistor("R1", a, Circuit::GROUND, 100.0);
        assert_eq!(ckt.find_element("R1"), Some(id));
        assert_eq!(ckt.element(id).name(), "R1");
        assert_eq!(ckt.find_element("R2"), None);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.resistor("R1", a, Circuit::GROUND, -5.0);
        assert!(matches!(ckt.validate(), Err(SimError::BadNetlist { .. })));

        let mut ckt2 = Circuit::new();
        let b = ckt2.node("b");
        ckt2.capacitor("C1", b, Circuit::GROUND, 0.0);
        assert!(ckt2.validate().is_err());

        let mut ckt3 = Circuit::new();
        let d = ckt3.node("d");
        ckt3.mosfet(
            "M1",
            d,
            d,
            Circuit::GROUND,
            Circuit::GROUND,
            MosInstance {
                model: nmos_180nm(),
                w: -1e-6,
                l: 1e-6,
                m: 1.0,
            },
        );
        assert!(ckt3.validate().is_err());
    }

    #[test]
    fn empty_circuit_is_invalid() {
        assert!(Circuit::new().validate().is_err());
    }

    #[test]
    fn waveform_attaches_to_sources_only() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let v = ckt.vsource("V1", a, Circuit::GROUND, 1.0);
        ckt.set_waveform(v, Waveform::Dc(2.0));
        match ckt.element(v) {
            Element::Vsource { waveform, .. } => assert!(waveform.is_some()),
            _ => unreachable!(),
        }
    }

    #[test]
    #[should_panic(expected = "non-source")]
    fn waveform_on_resistor_panics() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let r = ckt.resistor("R1", a, Circuit::GROUND, 1.0);
        ckt.set_waveform(r, Waveform::Dc(2.0));
    }

    #[test]
    fn set_dc_updates_source() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let v = ckt.vsource("V1", a, Circuit::GROUND, 1.0);
        ckt.set_dc(v, 5.0);
        match ckt.element(v) {
            Element::Vsource { dc, .. } => assert_eq!(*dc, 5.0),
            _ => unreachable!(),
        }
    }
}
