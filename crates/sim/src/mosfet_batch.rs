//! Structure-of-arrays batched MOSFET evaluation.
//!
//! Every MA-Opt round evaluates the same handful of devices at thousands
//! of near-sampling candidate biases, and within one Newton solve the
//! same model card is evaluated once per device per iteration. Batching
//! restructures that loop:
//!
//! 1. **Per-card precompute.** [`MosModel::pre`] hoists the card-level
//!    constants (`√φ`, `n·vt`) out of the lane loop — one `sqrt` per
//!    batch instead of one per device.
//! 2. **SoA staging.** Terminal voltages and the per-device `beta`/`λ`
//!    are laid out in parallel arrays ([`MosBatch`]), so the lane loop
//!    reads contiguously and the branch-free arithmetic between the
//!    region branches auto-vectorizes.
//! 3. **Bitwise identity.** Each lane runs the *same* `eval_lane` kernel
//!    as the scalar [`MosModel::eval`], so batched operating points are
//!    bitwise-identical to scalar ones — the determinism contract of the
//!    run journals is untouched by which path produced an op.

use crate::mosfet::{eval_lane, MosModel, MosOp};

/// One device-evaluation request: circuit-frame terminal voltages plus
/// geometry. A batch is a `&[DesignPoint]` sharing one model card.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignPoint {
    /// Drain node voltage, volts.
    pub vd: f64,
    /// Gate node voltage, volts.
    pub vg: f64,
    /// Source node voltage, volts.
    pub vs: f64,
    /// Bulk node voltage, volts.
    pub vb: f64,
    /// Channel width, meters.
    pub w: f64,
    /// Channel length, meters.
    pub l: f64,
    /// Device multiplier.
    pub m: f64,
}

/// Reusable structure-of-arrays staging buffers for batched evaluation.
///
/// Create once, pass to [`MosModel::eval_batch_into`] repeatedly; the
/// buffers grow to the largest batch seen and are never reallocated
/// afterwards.
#[derive(Debug, Default, Clone)]
pub struct MosBatch {
    vd: Vec<f64>,
    vg: Vec<f64>,
    vs: Vec<f64>,
    vb: Vec<f64>,
    beta: Vec<f64>,
    lambda: Vec<f64>,
}

impl MosBatch {
    /// An empty workspace (buffers grow on first use).
    pub fn new() -> MosBatch {
        MosBatch::default()
    }

    /// Stages `points` into the parallel arrays, computing the
    /// per-device `beta`/`λ` in the same pass.
    fn load(&mut self, model: &MosModel, points: &[DesignPoint]) {
        self.vd.clear();
        self.vg.clear();
        self.vs.clear();
        self.vb.clear();
        self.beta.clear();
        self.lambda.clear();
        for p in points {
            self.vd.push(p.vd);
            self.vg.push(p.vg);
            self.vs.push(p.vs);
            self.vb.push(p.vb);
            self.beta.push(model.kp * (p.w / p.l) * p.m);
            self.lambda.push(model.lambda(p.l));
        }
    }
}

impl MosModel {
    /// Evaluates a batch of design points against this model card,
    /// appending one [`MosOp`] per point to `out` (in order).
    ///
    /// Results are bitwise-identical to calling [`MosModel::eval`] per
    /// point; `ws` provides reusable staging buffers so steady-state
    /// evaluation allocates nothing.
    pub fn eval_batch_into(&self, points: &[DesignPoint], ws: &mut MosBatch, out: &mut Vec<MosOp>) {
        let pre = self.pre();
        ws.load(self, points);
        out.reserve(points.len());
        for i in 0..points.len() {
            out.push(eval_lane(
                &pre,
                ws.beta[i],
                ws.lambda[i],
                ws.vd[i],
                ws.vg[i],
                ws.vs[i],
                ws.vb[i],
            ));
        }
    }

    /// Convenience wrapper over [`MosModel::eval_batch_into`] returning a
    /// fresh vector.
    pub fn eval_batch(&self, points: &[DesignPoint]) -> Vec<MosOp> {
        let mut ws = MosBatch::new();
        let mut out = Vec::with_capacity(points.len());
        self.eval_batch_into(points, &mut ws, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mosfet::{nmos_180nm, pmos_180nm};

    fn grid_points() -> Vec<DesignPoint> {
        let mut pts = Vec::new();
        for &vd in &[-0.2, 0.0, 0.05, 0.9, 1.8] {
            for &vg in &[0.0, 0.4, 0.8, 1.2, 1.8] {
                for &(vs, vb) in &[(0.0, 0.0), (0.3, 0.0), (0.0, -0.9)] {
                    pts.push(DesignPoint {
                        vd,
                        vg,
                        vs,
                        vb,
                        w: 10e-6,
                        l: 0.5e-6,
                        m: 2.0,
                    });
                }
            }
        }
        pts
    }

    #[test]
    fn batch_matches_scalar_bitwise() {
        for model in [nmos_180nm(), pmos_180nm()] {
            let pts = grid_points();
            let batched = model.eval_batch(&pts);
            assert_eq!(batched.len(), pts.len());
            for (p, op) in pts.iter().zip(&batched) {
                let scalar = model.eval(p.vd, p.vg, p.vs, p.vb, p.w, p.l, p.m);
                // PartialEq on MosOp compares every f64 field exactly.
                assert_eq!(*op, scalar, "batch/scalar mismatch at {p:?}");
            }
        }
    }

    #[test]
    fn eval_batch_into_appends_and_reuses_buffers() {
        let model = nmos_180nm();
        let pts = grid_points();
        let mut ws = MosBatch::new();
        let mut out = Vec::new();
        model.eval_batch_into(&pts[..3], &mut ws, &mut out);
        model.eval_batch_into(&pts[3..6], &mut ws, &mut out);
        assert_eq!(out.len(), 6);
        let all = model.eval_batch(&pts[..6]);
        assert_eq!(out, all);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let model = nmos_180nm();
        assert!(model.eval_batch(&[]).is_empty());
    }
}
