//! Measurement helpers: Bode quantities from AC sweeps and settling/step
//! metrics from transient waveforms.

use maopt_linalg::Complex;

/// Converts a magnitude to decibels (`20·log10`).
pub fn db20(x: f64) -> f64 {
    20.0 * x.log10()
}

/// A single-input/single-output transfer function sampled on a frequency
/// grid, with phase unwrapping — the raw material for gain/phase-margin
/// measurements.
///
/// # Example
///
/// ```
/// use maopt_sim::analysis::measure::Bode;
/// use maopt_linalg::Complex;
///
/// // Ideal single-pole response: H = 1 / (1 + j f/f_p), f_p = 1 kHz.
/// let freqs: Vec<f64> = (0..60).map(|i| 10f64.powf(i as f64 / 10.0)).collect();
/// let h: Vec<Complex> = freqs
///     .iter()
///     .map(|&f| Complex::ONE / Complex::new(1.0, f / 1e3))
///     .collect();
/// let bode = Bode::new(freqs, h);
/// assert!((bode.dc_gain_db() - 0.0).abs() < 0.01);
/// let f3 = bode.bw_3db().unwrap();
/// assert!((f3 / 1e3 - 1.0).abs() < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct Bode {
    freqs: Vec<f64>,
    mag_db: Vec<f64>,
    phase_deg: Vec<f64>, // unwrapped
}

impl Bode {
    /// Builds a Bode record from a sampled transfer function.
    ///
    /// # Panics
    ///
    /// Panics if the inputs are empty or of different lengths.
    pub fn new(freqs: Vec<f64>, h: Vec<Complex>) -> Self {
        assert_eq!(freqs.len(), h.len(), "freqs and samples must align");
        assert!(!freqs.is_empty(), "Bode needs at least one point");
        let mag_db: Vec<f64> = h.iter().map(|c| db20(c.abs().max(1e-300))).collect();
        // Unwrap phase so it is continuous across the ±180° seam.
        let mut phase_deg = Vec::with_capacity(h.len());
        let mut offset = 0.0;
        let mut prev = h[0].arg_deg();
        phase_deg.push(prev);
        for c in h.iter().skip(1) {
            let mut p = c.arg_deg();
            while p + offset - prev > 180.0 {
                offset -= 360.0;
            }
            while p + offset - prev < -180.0 {
                offset += 360.0;
            }
            p += offset;
            phase_deg.push(p);
            prev = p;
        }
        Bode {
            freqs,
            mag_db,
            phase_deg,
        }
    }

    /// The frequency grid.
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Magnitude in dB, aligned with [`Bode::freqs`].
    pub fn mag_db(&self) -> &[f64] {
        &self.mag_db
    }

    /// Unwrapped phase in degrees, aligned with [`Bode::freqs`].
    pub fn phase_deg(&self) -> &[f64] {
        &self.phase_deg
    }

    /// Gain at the lowest sampled frequency, dB.
    pub fn dc_gain_db(&self) -> f64 {
        self.mag_db[0]
    }

    /// Magnitude at an arbitrary frequency (log-x linear interpolation).
    pub fn mag_db_at(&self, f: f64) -> f64 {
        interp_logx(&self.freqs, &self.mag_db, f)
    }

    /// Phase at an arbitrary frequency (log-x linear interpolation).
    pub fn phase_deg_at(&self, f: f64) -> f64 {
        interp_logx(&self.freqs, &self.phase_deg, f)
    }

    /// Unity-gain (0 dB) crossover frequency, if the magnitude crosses 0 dB
    /// inside the sweep.
    pub fn unity_gain_freq(&self) -> Option<f64> {
        crossing_logx(&self.freqs, &self.mag_db, 0.0)
    }

    /// −3 dB bandwidth relative to the DC gain.
    pub fn bw_3db(&self) -> Option<f64> {
        let target = self.dc_gain_db() - 3.0103;
        crossing_logx(&self.freqs, &self.mag_db, target)
    }

    /// Phase margin: `180° + phase` at the unity-gain frequency.
    ///
    /// Returns `None` when the gain never crosses 0 dB inside the sweep.
    pub fn phase_margin_deg(&self) -> Option<f64> {
        let ugf = self.unity_gain_freq()?;
        Some(180.0 + self.phase_deg_at(ugf))
    }

    /// Gain margin in dB: `−mag` at the −180° phase crossing.
    ///
    /// Returns `None` when the phase never reaches −180° inside the sweep.
    pub fn gain_margin_db(&self) -> Option<f64> {
        let f180 = crossing_logx(&self.freqs, &self.phase_deg, -180.0)?;
        Some(-self.mag_db_at(f180))
    }
}

/// Linear interpolation of `y` over `log10(x)`.
fn interp_logx(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    if x <= xs[0] {
        return ys[0];
    }
    let last = xs.len() - 1;
    if x >= xs[last] {
        return ys[last];
    }
    let idx = xs.partition_point(|&v| v <= x);
    let (x0, x1) = (xs[idx - 1].log10(), xs[idx].log10());
    let t = (x.log10() - x0) / (x1 - x0);
    ys[idx - 1] * (1.0 - t) + ys[idx] * t
}

/// First downward-or-upward crossing of `ys` through `target`, interpolated
/// on a log-x axis.
fn crossing_logx(xs: &[f64], ys: &[f64], target: f64) -> Option<f64> {
    for i in 1..ys.len() {
        let (y0, y1) = (ys[i - 1], ys[i]);
        if (y0 - target) * (y1 - target) <= 0.0 && y0 != y1 {
            let t = (target - y0) / (y1 - y0);
            let lx = xs[i - 1].log10() * (1.0 - t) + xs[i].log10() * t;
            return Some(10f64.powf(lx));
        }
    }
    None
}

/// Final value of a transient waveform (its last sample).
///
/// # Panics
///
/// Panics on an empty waveform.
pub fn final_value(v: &[f64]) -> f64 {
    *v.last().expect("waveform must not be empty")
}

/// Settling time: the time after which the waveform stays within
/// `± tol·|v_final − v_initial|` of its final value. The step is assumed to
/// start at `t_start`.
///
/// Returns `None` if the waveform never settles within the record.
///
/// # Panics
///
/// Panics if `t` and `v` differ in length or are empty.
pub fn settling_time(t: &[f64], v: &[f64], t_start: f64, tol: f64) -> Option<f64> {
    assert_eq!(t.len(), v.len(), "time and value series must align");
    assert!(!t.is_empty(), "waveform must not be empty");
    let v_final = final_value(v);
    let v_initial = v[0];
    let band = tol * (v_final - v_initial).abs();
    if band == 0.0 {
        return Some(0.0);
    }
    // Find the last excursion outside the band.
    let mut settle = t_start;
    for (&ti, &vi) in t.iter().zip(v) {
        if ti < t_start {
            continue;
        }
        if (vi - v_final).abs() > band {
            settle = ti;
        }
    }
    if (final_value(v) - v_final).abs() <= band {
        Some((settle - t_start).max(0.0))
    } else {
        None
    }
}

/// Fractional overshoot of a rising step: `(v_max − v_final) / |Δv|`.
/// Returns 0 for a monotone response.
///
/// # Panics
///
/// Panics on an empty waveform.
pub fn overshoot(v: &[f64]) -> f64 {
    let v_final = final_value(v);
    let v0 = v[0];
    let delta = (v_final - v0).abs();
    if delta == 0.0 {
        return 0.0;
    }
    let peak = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    ((peak - v_final) / delta).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_pole(f_pole: f64, gain: f64) -> Bode {
        let freqs: Vec<f64> = (0..=80).map(|i| 10f64.powf(i as f64 / 10.0)).collect();
        let h: Vec<Complex> = freqs
            .iter()
            .map(|&f| Complex::from_real(gain) / Complex::new(1.0, f / f_pole))
            .collect();
        Bode::new(freqs, h)
    }

    #[test]
    fn dc_gain_and_bandwidth() {
        let b = single_pole(1e3, 100.0);
        assert!((b.dc_gain_db() - 40.0).abs() < 0.01);
        let f3 = b.bw_3db().unwrap();
        assert!((f3 / 1e3 - 1.0).abs() < 0.05, "f3dB {f3}");
    }

    #[test]
    fn unity_gain_frequency_of_single_pole() {
        // |H| = 1 at f ≈ gain · f_pole for a single pole.
        let b = single_pole(1e3, 100.0);
        let ugf = b.unity_gain_freq().unwrap();
        assert!((ugf / 1e5 - 1.0).abs() < 0.05, "ugf {ugf}");
    }

    #[test]
    fn phase_margin_of_single_pole_is_about_90() {
        let b = single_pole(1e3, 100.0);
        let pm = b.phase_margin_deg().unwrap();
        assert!((pm - 90.0).abs() < 2.0, "pm {pm}");
    }

    #[test]
    fn two_pole_phase_margin_is_lower() {
        let freqs: Vec<f64> = (0..=80).map(|i| 10f64.powf(i as f64 / 10.0)).collect();
        let h: Vec<Complex> = freqs
            .iter()
            .map(|&f| {
                Complex::from_real(1000.0)
                    / (Complex::new(1.0, f / 1e2) * Complex::new(1.0, f / 1e4))
            })
            .collect();
        let b = Bode::new(freqs, h);
        let pm = b.phase_margin_deg().unwrap();
        assert!(pm < 60.0 && pm > 0.0, "pm {pm}");
    }

    #[test]
    fn phase_unwrapping_is_continuous() {
        // Three cascaded poles push phase past −180° — unwrapped phase must
        // fall monotonically with no +360 jumps.
        let freqs: Vec<f64> = (0..=80).map(|i| 10f64.powf(i as f64 / 10.0)).collect();
        let h: Vec<Complex> = freqs
            .iter()
            .map(|&f| {
                let p = Complex::new(1.0, f / 1e3);
                Complex::from_real(1e4) / (p * p * p)
            })
            .collect();
        let b = Bode::new(freqs, h);
        for w in b.phase_deg().windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9,
                "phase must not jump up: {} -> {}",
                w[0],
                w[1]
            );
        }
        assert!(*b.phase_deg().last().unwrap() < -200.0);
    }

    #[test]
    fn gain_margin_found_past_180() {
        let freqs: Vec<f64> = (0..=80).map(|i| 10f64.powf(i as f64 / 10.0)).collect();
        let h: Vec<Complex> = freqs
            .iter()
            .map(|&f| {
                let p = Complex::new(1.0, f / 1e3);
                Complex::from_real(30.0) / (p * p * p)
            })
            .collect();
        let b = Bode::new(freqs, h);
        assert!(b.gain_margin_db().is_some());
    }

    #[test]
    fn no_unity_crossing_returns_none() {
        let b = single_pole(1e9, 0.5); // always below 0 dB
        assert!(b.unity_gain_freq().is_none());
        assert!(b.phase_margin_deg().is_none());
    }

    #[test]
    fn settling_time_of_exponential() {
        // v(t) = 1 − e^{−t}: settles to 1% at t = ln(100) ≈ 4.605.
        let t: Vec<f64> = (0..=1000).map(|i| i as f64 * 0.01).collect();
        let v: Vec<f64> = t.iter().map(|&ti| 1.0 - (-ti).exp()).collect();
        let ts = settling_time(&t, &v, 0.0, 0.01).unwrap();
        assert!((ts - 4.605).abs() < 0.05, "settling {ts}");
    }

    #[test]
    fn settling_time_respects_start_offset() {
        let t: Vec<f64> = (0..=1000).map(|i| i as f64 * 0.01).collect();
        let v: Vec<f64> = t
            .iter()
            .map(|&ti| {
                if ti < 2.0 {
                    0.0
                } else {
                    1.0 - (-(ti - 2.0)).exp()
                }
            })
            .collect();
        let ts = settling_time(&t, &v, 2.0, 0.01).unwrap();
        assert!((ts - 4.605).abs() < 0.1, "settling {ts}");
    }

    #[test]
    fn overshoot_of_damped_ringing() {
        let t: Vec<f64> = (0..=2000).map(|i| i as f64 * 0.01).collect();
        let v: Vec<f64> = t
            .iter()
            .map(|&ti| 1.0 - (-0.5 * ti).exp() * (2.0 * ti).cos())
            .collect();
        let os = overshoot(&v);
        assert!(os > 0.1 && os < 1.0, "overshoot {os}");
        // Monotone exponential has zero overshoot.
        let v2: Vec<f64> = t.iter().map(|&ti| 1.0 - (-ti).exp()).collect();
        assert_eq!(overshoot(&v2), 0.0);
    }

    #[test]
    fn db20_of_ten_is_twenty() {
        assert!((db20(10.0) - 20.0).abs() < 1e-12);
        assert!((db20(1.0)).abs() < 1e-12);
    }
}
