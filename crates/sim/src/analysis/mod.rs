//! Circuit analyses: DC operating point, AC sweep, transient, noise, and
//! waveform/Bode measurement helpers.

pub mod ac;
pub mod dc;
pub mod fourier;
pub mod measure;
pub mod montecarlo;
pub mod noise;
pub mod tran;
