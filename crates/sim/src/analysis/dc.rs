//! DC operating-point analysis: Newton–Raphson over the MNA residual with
//! gmin stepping and source stepping as convergence aids.

use crate::circuit::{Circuit, Element, ElementId, Node};
use crate::mna::{
    assemble_resistive, eval_mosfets_batched, Layout, MosEvalScratch, MosOpsMode, SlotStamp,
};
use crate::mosfet::MosOp;
use crate::probe::Probe;
use crate::solver::{solve_newton_system, JacView, SolverKind, SolverWs, WarmstartKind};
use crate::SimError;

/// Histogram of total Newton iterations per DC solve.
pub(crate) const METRIC_NEWTON_ITERS: &str = "sim.newton_iters";
/// Counter: seeded solves where the warm attempt converged.
const METRIC_WARM_HIT: &str = "sim.warmstart.hit";
/// Counter: seeded solves rescued by the cold continuation ladder.
const METRIC_WARM_FALLBACK: &str = "sim.warmstart.fallback";
/// Counter: solves that ran the cold path (no usable seed or disabled).
const METRIC_WARM_COLD: &str = "sim.warmstart.cold";
/// Whole-solve trace span names, one per warm-start outcome.
const SPAN_DC_WARM: &str = "sim.dc.warm";
const SPAN_DC_FALLBACK: &str = "sim.dc.fallback";
const SPAN_DC_COLD: &str = "sim.dc.cold";

/// Configuration for the DC solve.
///
/// The defaults converge for every circuit in this workspace; the knobs are
/// exposed for experimentation.
#[derive(Debug, Clone)]
pub struct DcAnalysis {
    /// Newton iteration budget per continuation stage.
    pub max_iter: usize,
    /// Convergence threshold on the Newton update ∞-norm, volts.
    pub vtol: f64,
    /// Largest Newton step applied per iteration (damping), volts.
    pub step_limit: f64,
    /// Residual gmin left in place during the final solve (0 disables).
    pub final_gmin: f64,
    /// Linear-solver backend for the Newton systems.
    pub solver: SolverKind,
    /// Whether [`DcAnalysis::run_seeded`] may start Newton from a
    /// reference design's operating point.
    pub warmstart: WarmstartKind,
    /// Newton iteration budget of the warm attempt before the cold
    /// continuation ladder takes over. Deliberately much smaller than
    /// `max_iter`: a warm start either converges in a handful of
    /// iterations or is not worth pursuing.
    pub warm_budget: usize,
}

impl Default for DcAnalysis {
    fn default() -> Self {
        DcAnalysis {
            max_iter: 150,
            vtol: 1e-9,
            step_limit: 0.6,
            final_gmin: 1e-12,
            solver: SolverKind::Auto,
            warmstart: WarmstartKind::Auto,
            warm_budget: 40,
        }
    }
}

/// Reusable per-solve buffers: residual, RHS, Newton step, batched
/// MOSFET staging, and the factor workspace. Allocated once per
/// [`DcAnalysis::run_at_time`] call and reused across every Newton
/// iteration of every continuation stage.
struct DcScratch {
    f: Vec<f64>,
    neg_f: Vec<f64>,
    delta: Vec<f64>,
    mos: MosEvalScratch,
    mos_ops: Vec<MosOp>,
    solver: SolverWs,
}

/// A converged DC operating point.
///
/// Besides node voltages and branch currents it stores the small-signal
/// parameters of every MOSFET, which the AC, transient and noise analyses
/// consume.
#[derive(Debug, Clone)]
pub struct DcOp {
    pub(crate) x: Vec<f64>,
    pub(crate) layout: Layout,
    pub(crate) mos_ops: Vec<MosOp>,
    pub(crate) newton_iters: usize,
}

impl DcOp {
    /// Voltage of a node (0 for ground).
    pub fn voltage(&self, n: Node) -> f64 {
        match n.unknown() {
            Some(i) => self.x[i],
            None => 0.0,
        }
    }

    /// Current through a voltage-defined element (voltage source or VCVS),
    /// flowing **into its positive terminal** (passive sign convention): a
    /// battery delivering power reports a negative current.
    ///
    /// Returns `None` for elements without a branch current.
    pub fn branch_current(&self, id: ElementId) -> Option<f64> {
        self.layout
            .branch_of
            .get(id.0)
            .copied()
            .flatten()
            .map(|k| self.x[k])
    }

    /// Small-signal operating point of a MOSFET element.
    ///
    /// Returns `None` if `id` is not a MOSFET.
    pub fn mos_op(&self, id: ElementId) -> Option<&MosOp> {
        self.layout
            .mos_elems
            .iter()
            .position(|&e| e == id.0)
            .map(|ord| &self.mos_ops[ord])
    }

    /// The raw solution vector (node voltages then branch currents).
    pub fn unknowns(&self) -> &[f64] {
        &self.x
    }

    /// Total Newton iterations spent across all continuation stages.
    ///
    /// Identical for the sparse and dense solver backends on the same
    /// circuit (the agreement tests assert this).
    pub fn newton_iterations(&self) -> usize {
        self.newton_iters
    }
}

impl DcAnalysis {
    /// Creates the default configuration.
    pub fn new() -> Self {
        DcAnalysis::default()
    }

    /// Solves for the DC operating point.
    ///
    /// # Errors
    ///
    /// [`SimError::BadNetlist`] for invalid circuits,
    /// [`SimError::SingularMatrix`] for structurally singular systems and
    /// [`SimError::NoConvergence`] when Newton fails even with continuation.
    pub fn run(&self, ckt: &Circuit) -> Result<DcOp, SimError> {
        self.run_at_time(ckt, None, None)
    }

    /// Solves the operating point with transient sources evaluated at
    /// `time` (used to initialize transient analysis), warm-started from
    /// `guess` when provided.
    ///
    /// # Errors
    ///
    /// Same as [`DcAnalysis::run`].
    pub fn run_at_time(
        &self,
        ckt: &Circuit,
        time: Option<f64>,
        guess: Option<&[f64]>,
    ) -> Result<DcOp, SimError> {
        ckt.validate()?;
        let layout = Layout::new(ckt);
        let n = layout.n_unknowns;
        let x0: Vec<f64> = match guess {
            Some(g) if g.len() == n => g.to_vec(),
            Some(_) => {
                return Err(SimError::BadRequest {
                    reason: "initial guess has wrong length".into(),
                })
            }
            None => vec![0.0; n],
        };

        let probe = Probe::current();
        let mut ws = self.scratch(ckt, &layout);
        let mut iters = 0usize;
        let x = self.solve_staged(ckt, &layout, &mut ws, &probe, x0, time, &mut iters)?;
        probe.observe(METRIC_NEWTON_ITERS, iters as f64);
        Ok(self.finish(ckt, &layout, &mut ws, x, iters))
    }

    /// Solves the operating point, warm-starting Newton from a *reference
    /// design's* converged solution vector when one is provided and
    /// warm-starting is enabled (see [`WarmstartKind`]).
    ///
    /// The seed is advisory: when the warm attempt diverges, exceeds the
    /// `warm_budget`, or the seed has the wrong length for this circuit,
    /// the full cold continuation ladder reruns **from the flat-band
    /// guess** (never from the hostile seed), so a bad seed can cost
    /// iterations but never change which circuits converge or to what.
    /// Outcomes land in the ambient metrics as `sim.warmstart.hit` /
    /// `.fallback` / `.cold` counters plus the `sim.newton_iters`
    /// histogram (iterations of a rescued solve include the wasted warm
    /// attempt — honest accounting).
    ///
    /// # Errors
    ///
    /// Same as [`DcAnalysis::run`].
    pub fn run_seeded(
        &self,
        ckt: &Circuit,
        time: Option<f64>,
        seed: Option<&[f64]>,
    ) -> Result<DcOp, SimError> {
        ckt.validate()?;
        let layout = Layout::new(ckt);
        let n = layout.n_unknowns;
        let warm_seed = match seed {
            Some(s) if self.warmstart.enabled() && s.len() == n => Some(s),
            _ => None,
        };

        let probe = Probe::current();
        let mut ws = self.scratch(ckt, &layout);
        let mut iters = 0usize;
        let t0 = probe.start();

        let mut warm_failed = false;
        if let Some(s) = warm_seed {
            let budget = self.warm_budget.min(self.max_iter).max(1);
            if let Ok(x) = self.newton(
                ckt,
                &layout,
                &mut ws,
                &probe,
                s.to_vec(),
                self.final_gmin,
                1.0,
                time,
                budget,
                &mut iters,
            ) {
                probe.inc(METRIC_WARM_HIT);
                probe.observe(METRIC_NEWTON_ITERS, iters as f64);
                probe.span(SPAN_DC_WARM, t0);
                return Ok(self.finish(ckt, &layout, &mut ws, x, iters));
            }
            warm_failed = true;
        }

        let x = self.solve_staged(
            ckt,
            &layout,
            &mut ws,
            &probe,
            vec![0.0; n],
            time,
            &mut iters,
        )?;
        if warm_failed {
            probe.inc(METRIC_WARM_FALLBACK);
            probe.span(SPAN_DC_FALLBACK, t0);
        } else {
            probe.inc(METRIC_WARM_COLD);
            probe.span(SPAN_DC_COLD, t0);
        }
        probe.observe(METRIC_NEWTON_ITERS, iters as f64);
        Ok(self.finish(ckt, &layout, &mut ws, x, iters))
    }

    /// Fresh per-solve buffers for one run.
    fn scratch(&self, ckt: &Circuit, layout: &Layout) -> DcScratch {
        let n = layout.n_unknowns;
        DcScratch {
            f: vec![0.0; n],
            neg_f: Vec::with_capacity(n),
            delta: Vec::with_capacity(n),
            mos: MosEvalScratch::default(),
            mos_ops: Vec::with_capacity(layout.mos_elems.len()),
            solver: SolverWs::new(self.solver, ckt, layout),
        }
    }

    /// The three-stage cold continuation: direct Newton from `x0`, then
    /// gmin stepping, then source stepping. Byte-for-byte the solve
    /// sequence [`DcAnalysis::run_at_time`] has always run.
    #[allow(clippy::too_many_arguments)]
    fn solve_staged(
        &self,
        ckt: &Circuit,
        layout: &Layout,
        ws: &mut DcScratch,
        probe: &Probe,
        x0: Vec<f64>,
        time: Option<f64>,
        iters: &mut usize,
    ) -> Result<Vec<f64>, SimError> {
        // Stage 1: direct Newton from the guess.
        if let Ok(x) = self.newton(
            ckt,
            layout,
            ws,
            probe,
            x0.clone(),
            self.final_gmin,
            1.0,
            time,
            self.max_iter,
            iters,
        ) {
            return Ok(x);
        }

        // Stage 2: gmin stepping.
        let mut x = x0.clone();
        let mut ok = true;
        for gmin in [1e-2, 1e-4, 1e-6, 1e-8, 1e-10, self.final_gmin.max(1e-12)] {
            match self.newton(
                ckt,
                layout,
                ws,
                probe,
                x.clone(),
                gmin,
                1.0,
                time,
                self.max_iter,
                iters,
            ) {
                Ok(next) => x = next,
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            return Ok(x);
        }

        // Stage 3: source stepping at a safe gmin, then relax gmin.
        let mut x = x0;
        for k in 1..=10 {
            let scale = k as f64 / 10.0;
            x = self
                .newton(
                    ckt,
                    layout,
                    ws,
                    probe,
                    x,
                    1e-9,
                    scale,
                    time,
                    self.max_iter,
                    iters,
                )
                .map_err(|_| SimError::NoConvergence {
                    analysis: format!("dc (source stepping at scale {scale})"),
                    iterations: self.max_iter,
                })?;
        }
        self.newton(
            ckt,
            layout,
            ws,
            probe,
            x,
            self.final_gmin.max(1e-12),
            1.0,
            time,
            self.max_iter,
            iters,
        )
        .map_err(|_| SimError::NoConvergence {
            analysis: "dc".into(),
            iterations: self.max_iter,
        })
    }

    /// One Newton solve at fixed gmin / source scale, allowed at most
    /// `budget` iterations (`max_iter` on the cold path, `warm_budget`
    /// for a warm attempt).
    #[allow(clippy::too_many_arguments)]
    fn newton(
        &self,
        ckt: &Circuit,
        layout: &Layout,
        ws: &mut DcScratch,
        probe: &Probe,
        mut x: Vec<f64>,
        gmin: f64,
        source_scale: f64,
        time: Option<f64>,
        budget: usize,
        iters: &mut usize,
    ) -> Result<Vec<f64>, SimError> {
        for _ in 0..budget {
            *iters += 1;
            let DcScratch {
                f,
                neg_f,
                delta,
                mos,
                mos_ops,
                solver,
            } = ws;
            let mut assemble = |f: &mut [f64], jac: JacView<'_>| {
                f.fill(0.0);
                eval_mosfets_batched(ckt, layout, &x, mos, mos_ops);
                match jac {
                    JacView::Dense(m) => assemble_resistive(
                        ckt,
                        layout,
                        &x,
                        gmin,
                        source_scale,
                        time,
                        f,
                        m,
                        MosOpsMode::Precomputed(mos_ops.as_slice()),
                    ),
                    JacView::Sparse { vals, topo } => {
                        let mut st = SlotStamp::new(vals, &topo.resistive_slots);
                        assemble_resistive(
                            ckt,
                            layout,
                            &x,
                            gmin,
                            source_scale,
                            time,
                            f,
                            &mut st,
                            MosOpsMode::Precomputed(mos_ops.as_slice()),
                        );
                        st.finish();
                    }
                }
            };
            solve_newton_system(solver, "dc", probe, f, neg_f, delta, &mut assemble)?;
            let max_step = delta.iter().fold(0.0_f64, |m, d| m.max(d.abs()));
            if !max_step.is_finite() {
                return Err(SimError::NoConvergence {
                    analysis: "dc (non-finite step)".into(),
                    iterations: budget,
                });
            }
            let alpha = if max_step > self.step_limit {
                self.step_limit / max_step
            } else {
                1.0
            };
            for (xi, di) in x.iter_mut().zip(delta.iter()) {
                *xi += alpha * di;
            }
            if alpha == 1.0 && max_step < self.vtol {
                return Ok(x);
            }
        }
        Err(SimError::NoConvergence {
            analysis: "dc".into(),
            iterations: budget,
        })
    }

    /// Harvests the MOSFET operating points at the solution (a pure
    /// function of `x` — bitwise-identical to what an assembly at the
    /// solution would have produced).
    fn finish(
        &self,
        ckt: &Circuit,
        layout: &Layout,
        ws: &mut DcScratch,
        x: Vec<f64>,
        iters: usize,
    ) -> DcOp {
        let mut mos_ops = Vec::with_capacity(layout.mos_elems.len());
        eval_mosfets_batched(ckt, layout, &x, &mut ws.mos, &mut mos_ops);
        DcOp {
            x,
            layout: layout.clone(),
            mos_ops,
            newton_iters: iters,
        }
    }
}

/// Sweeps the DC value of one source, returning the operating point at each
/// step (warm-starting each solve from the previous point).
///
/// # Errors
///
/// Propagates the first failing solve.
pub fn dc_sweep(
    ckt: &mut Circuit,
    source: ElementId,
    values: &[f64],
) -> Result<Vec<DcOp>, SimError> {
    let analysis = DcAnalysis::new();
    let mut out = Vec::with_capacity(values.len());
    let mut guess: Option<Vec<f64>> = None;
    let original = match ckt.element(source) {
        Element::Vsource { dc, .. } | Element::Isource { dc, .. } => *dc,
        _ => {
            return Err(SimError::BadRequest {
                reason: "dc_sweep target must be an independent source".into(),
            })
        }
    };
    for &v in values {
        ckt.set_dc(source, v);
        let op = analysis.run_at_time(ckt, None, guess.as_deref())?;
        guess = Some(op.x.clone());
        out.push(op);
    }
    ckt.set_dc(source, original);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{nmos_180nm, pmos_180nm, MosInstance};

    #[test]
    fn voltage_divider() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("vin");
        let out = ckt.node("out");
        ckt.vsource("V1", vin, Circuit::GROUND, 9.0);
        ckt.resistor("R1", vin, out, 2e3);
        ckt.resistor("R2", out, Circuit::GROUND, 1e3);
        let op = DcAnalysis::new().run(&ckt).unwrap();
        assert!((op.voltage(out) - 3.0).abs() < 1e-7);
        assert!((op.voltage(vin) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn branch_current_sign_convention() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let v = ckt.vsource("V1", a, Circuit::GROUND, 10.0);
        ckt.resistor("R1", a, Circuit::GROUND, 1e3);
        let op = DcAnalysis::new().run(&ckt).unwrap();
        // The source delivers 10 mA; current into its + terminal is −10 mA.
        assert!((op.branch_current(v).unwrap() + 10e-3).abs() < 1e-9);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.isource("I1", Circuit::GROUND, a, 2e-3);
        ckt.resistor("R1", a, Circuit::GROUND, 1e3);
        let op = DcAnalysis::new().run(&ckt).unwrap();
        assert!((op.voltage(a) - 2.0).abs() < 1e-7);
    }

    #[test]
    fn vcvs_amplifies() {
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("V1", inp, Circuit::GROUND, 0.5);
        ckt.vcvs("E1", out, Circuit::GROUND, inp, Circuit::GROUND, 4.0);
        ckt.resistor("RL", out, Circuit::GROUND, 1e3);
        let op = DcAnalysis::new().run(&ckt).unwrap();
        assert!((op.voltage(out) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn vccs_injects_current() {
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("V1", inp, Circuit::GROUND, 1.0);
        ckt.vccs("G1", Circuit::GROUND, out, inp, Circuit::GROUND, 1e-3);
        ckt.resistor("RL", out, Circuit::GROUND, 2e3);
        let op = DcAnalysis::new().run(&ckt).unwrap();
        assert!((op.voltage(out) - 2.0).abs() < 1e-7);
    }

    #[test]
    fn diode_connected_nmos_settles_near_vth_plus_vov() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let d = ckt.node("d");
        ckt.vsource("VDD", vdd, Circuit::GROUND, 1.8);
        ckt.resistor("R1", vdd, d, 10e3);
        ckt.mosfet(
            "M1",
            d,
            d,
            Circuit::GROUND,
            Circuit::GROUND,
            MosInstance {
                model: nmos_180nm(),
                w: 10e-6,
                l: 1e-6,
                m: 1.0,
            },
        );
        let op = DcAnalysis::new().run(&ckt).unwrap();
        let vd = op.voltage(d);
        // Diode voltage must sit above threshold but well below VDD.
        assert!(vd > 0.45 && vd < 1.2, "diode voltage {vd}");
        // KCL: resistor current equals drain current.
        let m1 = ckt.find_element("M1").unwrap();
        let id = op.mos_op(m1).unwrap().id;
        let ir = (1.8 - vd) / 10e3;
        assert!((id - ir).abs() < 1e-9);
    }

    #[test]
    fn nmos_common_source_amplifier_bias() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let g = ckt.node("g");
        let d = ckt.node("d");
        ckt.vsource("VDD", vdd, Circuit::GROUND, 1.8);
        ckt.vsource("VG", g, Circuit::GROUND, 0.6);
        ckt.resistor("RD", vdd, d, 10e3);
        ckt.mosfet(
            "M1",
            d,
            g,
            Circuit::GROUND,
            Circuit::GROUND,
            MosInstance {
                model: nmos_180nm(),
                w: 20e-6,
                l: 0.5e-6,
                m: 1.0,
            },
        );
        let op = DcAnalysis::new().run(&ckt).unwrap();
        let vd = op.voltage(d);
        assert!(
            vd > 0.1 && vd < 1.7,
            "drain should bias mid-rail-ish, got {vd}"
        );
        let m1 = ckt.find_element("M1").unwrap();
        assert!(op.mos_op(m1).unwrap().gm > 0.0);
    }

    #[test]
    fn cmos_inverter_with_input_low_outputs_high() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("VDD", vdd, Circuit::GROUND, 1.8);
        ckt.vsource("VIN", inp, Circuit::GROUND, 0.0);
        ckt.mosfet(
            "MP",
            out,
            inp,
            vdd,
            vdd,
            MosInstance {
                model: pmos_180nm(),
                w: 4e-6,
                l: 0.18e-6,
                m: 1.0,
            },
        );
        ckt.mosfet(
            "MN",
            out,
            inp,
            Circuit::GROUND,
            Circuit::GROUND,
            MosInstance {
                model: nmos_180nm(),
                w: 2e-6,
                l: 0.18e-6,
                m: 1.0,
            },
        );
        let op = DcAnalysis::new().run(&ckt).unwrap();
        assert!(op.voltage(out) > 1.7, "inverter output should be near VDD");

        // Flip the input high; output must go low.
        let vin = ckt.find_element("VIN").unwrap();
        ckt.set_dc(vin, 1.8);
        let op = DcAnalysis::new().run(&ckt).unwrap();
        assert!(op.voltage(out) < 0.1, "inverter output should be near 0");
    }

    #[test]
    fn floating_node_is_held_by_gmin() {
        // A capacitor-only node has no DC path; gmin should keep the matrix
        // solvable and park the node near 0.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let fl = ckt.node("float");
        ckt.vsource("V1", a, Circuit::GROUND, 1.0);
        ckt.capacitor("C1", a, fl, 1e-12);
        ckt.capacitor("C2", fl, Circuit::GROUND, 1e-12);
        ckt.resistor("R1", a, Circuit::GROUND, 1e3);
        let op = DcAnalysis::new().run(&ckt).unwrap();
        assert!(op.voltage(fl).abs() < 1e-6);
    }

    #[test]
    fn dc_sweep_tracks_inverter_transfer() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("VDD", vdd, Circuit::GROUND, 1.8);
        let vin = ckt.vsource("VIN", inp, Circuit::GROUND, 0.0);
        ckt.mosfet(
            "MP",
            out,
            inp,
            vdd,
            vdd,
            MosInstance {
                model: pmos_180nm(),
                w: 4e-6,
                l: 0.18e-6,
                m: 1.0,
            },
        );
        ckt.mosfet(
            "MN",
            out,
            inp,
            Circuit::GROUND,
            Circuit::GROUND,
            MosInstance {
                model: nmos_180nm(),
                w: 2e-6,
                l: 0.18e-6,
                m: 1.0,
            },
        );
        let values: Vec<f64> = (0..=18).map(|i| i as f64 * 0.1).collect();
        let ops = dc_sweep(&mut ckt, vin, &values).unwrap();
        let vouts: Vec<f64> = ops.iter().map(|op| op.voltage(out)).collect();
        // Monotonically non-increasing transfer curve from ~VDD to ~0.
        assert!(vouts.first().unwrap() > &1.7);
        assert!(vouts.last().unwrap() < &0.1);
        for w in vouts.windows(2) {
            assert!(w[1] <= w[0] + 1e-6, "inverter VTC must fall: {vouts:?}");
        }
    }

    #[test]
    fn bad_guess_length_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource("V1", a, Circuit::GROUND, 1.0);
        ckt.resistor("R1", a, Circuit::GROUND, 1.0);
        let err = DcAnalysis::new().run_at_time(&ckt, None, Some(&[0.0]));
        assert!(matches!(err, Err(SimError::BadRequest { .. })));
    }

    #[test]
    fn sweep_requires_source_element() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource("V1", a, Circuit::GROUND, 1.0);
        let r = ckt.resistor("R1", a, Circuit::GROUND, 1.0);
        assert!(matches!(
            dc_sweep(&mut ckt, r, &[1.0]),
            Err(SimError::BadRequest { .. })
        ));
    }
}
