//! AC small-signal analysis: complex MNA solve of `(G + jωC)·x = b` around
//! a DC operating point.

use maopt_linalg::{CLu, CMat, Complex};

use crate::analysis::dc::DcOp;
use crate::circuit::{Circuit, Element, Node};
use crate::mna::{cap_list, CStamp, CapSpec, Layout};
use crate::mosfet::MosOp;
use crate::probe::Probe;
use crate::solver::{CSparseWs, SolverKind};
use crate::SimError;

/// Builds a logarithmically spaced frequency grid.
///
/// # Panics
///
/// Panics unless `0 < f_start < f_stop` and `points_per_decade ≥ 1`.
pub fn log_freqs(f_start: f64, f_stop: f64, points_per_decade: usize) -> Vec<f64> {
    assert!(
        f_start > 0.0 && f_stop > f_start,
        "need 0 < f_start < f_stop"
    );
    assert!(points_per_decade >= 1, "need at least one point per decade");
    let decades = (f_stop / f_start).log10();
    let n = (decades * points_per_decade as f64).ceil() as usize + 1;
    (0..n)
        .map(|i| f_start * 10f64.powf(i as f64 * decades / (n - 1) as f64))
        .collect()
}

/// Result of an AC sweep: one complex solution vector per frequency.
#[derive(Debug, Clone)]
pub struct AcSweep {
    freqs: Vec<f64>,
    sols: Vec<Vec<Complex>>,
}

impl AcSweep {
    /// The frequency grid, hertz.
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Number of frequency points.
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    /// `true` when the sweep is empty.
    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }

    /// Phasor voltage of `node` at frequency index `k`.
    pub fn voltage(&self, k: usize, node: Node) -> Complex {
        match node.unknown() {
            Some(i) => self.sols[k][i],
            None => Complex::ZERO,
        }
    }

    /// Differential phasor `v(p) − v(n)` at frequency index `k`.
    pub fn voltage_diff(&self, k: usize, p: Node, n: Node) -> Complex {
        self.voltage(k, p) - self.voltage(k, n)
    }

    /// The transfer series of one node over the whole sweep.
    pub fn transfer(&self, node: Node) -> Vec<Complex> {
        (0..self.len()).map(|k| self.voltage(k, node)).collect()
    }

    /// The differential transfer series `v(p) − v(n)` over the whole sweep.
    pub fn transfer_diff(&self, p: Node, n: Node) -> Vec<Complex> {
        (0..self.len())
            .map(|k| self.voltage_diff(k, p, n))
            .collect()
    }
}

/// Stamps the small-signal system matrix at angular frequency `omega`.
///
/// Shared by the AC and noise analyses. Independent sources contribute
/// nothing to the matrix (their excitations go in the right-hand side).
/// Like the resistive assembly, the stamp call sequence is a pure function
/// of circuit structure (`omega` and the operating point only affect
/// values), so the complex slot replay in the sparse path is sound.
pub(crate) fn assemble_ac(
    ckt: &Circuit,
    layout: &Layout,
    mos_ops: &[MosOp],
    caps: &[CapSpec],
    omega: f64,
    a: &mut dyn CStamp,
) {
    let add = |a: &mut dyn CStamp, r: Node, c: Node, v: Complex| {
        if let (Some(ri), Some(ci)) = (r.unknown(), c.unknown()) {
            a.add(ri, ci, v);
        }
    };

    let mut mos_ord = 0usize;
    for (ei, e) in ckt.elements().iter().enumerate() {
        match e {
            Element::Resistor {
                a: na, b: nb, ohms, ..
            } => {
                let g = Complex::from_real(1.0 / ohms);
                add(a, *na, *na, g);
                add(a, *na, *nb, -g);
                add(a, *nb, *na, -g);
                add(a, *nb, *nb, g);
            }
            Element::Capacitor { .. } => {} // handled via `caps` below
            Element::Inductor {
                a: na,
                b: nb,
                henries,
                ..
            } => {
                // Branch row: v_a − v_b − jωL·i = 0.
                let k = layout.branch_of[ei].expect("inductor branch");
                if let Some(ai) = na.unknown() {
                    a.add(ai, k, Complex::ONE);
                    a.add(k, ai, Complex::ONE);
                }
                if let Some(bi) = nb.unknown() {
                    a.add(bi, k, -Complex::ONE);
                    a.add(k, bi, -Complex::ONE);
                }
                a.add(k, k, -Complex::new(0.0, omega * henries));
            }
            Element::Isource { .. } => {}
            Element::Vsource { p, n: nn, .. } => {
                let k = layout.branch_of[ei].expect("vsource branch");
                if let Some(pi) = p.unknown() {
                    a.add(pi, k, Complex::ONE);
                    a.add(k, pi, Complex::ONE);
                }
                if let Some(ni) = nn.unknown() {
                    a.add(ni, k, -Complex::ONE);
                    a.add(k, ni, -Complex::ONE);
                }
            }
            Element::Vcvs {
                p,
                n: nn,
                cp,
                cn,
                gain,
                ..
            } => {
                let k = layout.branch_of[ei].expect("vcvs branch");
                if let Some(pi) = p.unknown() {
                    a.add(pi, k, Complex::ONE);
                    a.add(k, pi, Complex::ONE);
                }
                if let Some(ni) = nn.unknown() {
                    a.add(ni, k, -Complex::ONE);
                    a.add(k, ni, -Complex::ONE);
                }
                if let Some(ci) = cp.unknown() {
                    a.add(k, ci, -Complex::from_real(*gain));
                }
                if let Some(ci) = cn.unknown() {
                    a.add(k, ci, Complex::from_real(*gain));
                }
            }
            Element::Vccs {
                p,
                n: nn,
                cp,
                cn,
                gm,
                ..
            } => {
                let g = Complex::from_real(*gm);
                add(a, *p, *cp, g);
                add(a, *p, *cn, -g);
                add(a, *nn, *cp, -g);
                add(a, *nn, *cn, g);
            }
            Element::Mosfet { d, g, s, b, .. } => {
                let mop = &mos_ops[mos_ord];
                mos_ord += 1;
                // i_d = gm·v_gs + gds·v_ds + gmbs·v_bs
                let dvs = -(mop.gm + mop.gds + mop.gmbs);
                for (row, sign) in [(*d, 1.0), (*s, -1.0)] {
                    add(a, row, *d, Complex::from_real(sign * mop.gds));
                    add(a, row, *g, Complex::from_real(sign * mop.gm));
                    add(a, row, *s, Complex::from_real(sign * dvs));
                    add(a, row, *b, Complex::from_real(sign * mop.gmbs));
                }
            }
        }
    }

    // Capacitors: jωC admittance.
    for c in caps {
        let y = Complex::new(0.0, omega * c.farads);
        add(a, c.a, c.a, y);
        add(a, c.a, c.b, -y);
        add(a, c.b, c.a, -y);
        add(a, c.b, c.b, y);
    }

    // A touch of gmin keeps structurally-floating small-signal nodes solvable.
    for i in 0..layout.n_node_unknowns {
        a.add(i, i, Complex::from_real(1e-12));
    }
}

/// Dense convenience wrapper over [`assemble_ac`] (debug cross-check path
/// and the noise analysis' dense fallback).
pub(crate) fn build_ac_matrix(
    ckt: &Circuit,
    layout: &Layout,
    op: &DcOp,
    caps: &[CapSpec],
    omega: f64,
) -> CMat {
    let n = layout.n_unknowns;
    let mut a = CMat::zeros(n, n);
    assemble_ac(ckt, layout, &op.mos_ops, caps, omega, &mut a);
    a
}

/// Right-hand side from the independent sources' AC magnitudes.
pub(crate) fn ac_excitation(ckt: &Circuit, layout: &Layout) -> Vec<Complex> {
    let mut b = vec![Complex::ZERO; layout.n_unknowns];
    for (ei, e) in ckt.elements().iter().enumerate() {
        match e {
            Element::Vsource { ac_mag, .. } if *ac_mag != 0.0 => {
                let k = layout.branch_of[ei].expect("vsource branch");
                b[k] += Complex::from_real(*ac_mag);
            }
            Element::Isource { p, n, ac_mag, .. } if *ac_mag != 0.0 => {
                // Current leaves p: KCL row p gets −I on the RHS.
                if let Some(pi) = p.unknown() {
                    b[pi] -= Complex::from_real(*ac_mag);
                }
                if let Some(ni) = n.unknown() {
                    b[ni] += Complex::from_real(*ac_mag);
                }
            }
            _ => {}
        }
    }
    b
}

/// AC sweep configuration (the frequency grid).
#[derive(Debug, Clone)]
pub struct AcAnalysis {
    freqs: Vec<f64>,
    /// Linear-solver backend; one complex numeric refactor per frequency
    /// over the shared per-topology symbolic on the sparse path.
    pub solver: SolverKind,
}

impl AcAnalysis {
    /// Creates an analysis over an explicit frequency grid.
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty or contains non-positive frequencies.
    pub fn new(freqs: Vec<f64>) -> Self {
        assert!(
            !freqs.is_empty(),
            "AC analysis needs at least one frequency"
        );
        assert!(
            freqs.iter().all(|&f| f > 0.0),
            "AC frequencies must be positive"
        );
        AcAnalysis {
            freqs,
            solver: SolverKind::Auto,
        }
    }

    /// Log-spaced grid from `f_start` to `f_stop`.
    pub fn log(f_start: f64, f_stop: f64, points_per_decade: usize) -> Self {
        AcAnalysis::new(log_freqs(f_start, f_stop, points_per_decade))
    }

    /// Selects the linear-solver backend.
    pub fn with_solver(mut self, solver: SolverKind) -> Self {
        self.solver = solver;
        self
    }

    /// Runs the sweep around the given operating point.
    ///
    /// # Errors
    ///
    /// [`SimError::SingularMatrix`] if the small-signal system is singular.
    pub fn run(&self, ckt: &Circuit, op: &DcOp) -> Result<AcSweep, SimError> {
        let layout = Layout::new(ckt);
        let caps = cap_list(ckt);
        let b = ac_excitation(ckt, &layout);
        let probe = Probe::current();
        let mut sparse = CSparseWs::new(self.solver, ckt, &layout);
        let mut xbuf: Vec<Complex> = Vec::new();
        let mut sols = Vec::with_capacity(self.freqs.len());
        for &f in &self.freqs {
            let omega = 2.0 * std::f64::consts::PI * f;
            if let Some(ws) = sparse.as_mut() {
                if ws.factor_at(ckt, &layout, &op.mos_ops, &caps, omega, &probe) {
                    let t = probe.start();
                    ws.lu.solve_into(&b, &mut xbuf)?;
                    probe.span(crate::probe::SPAN_SOLVE, t);
                    sols.push(xbuf.clone());
                    continue;
                }
                // The pivot-free factorization hit a tiny pivot at this
                // frequency: fall through to the dense pivoting solver.
            }
            let t = probe.start();
            let a = build_ac_matrix(ckt, &layout, op, &caps, omega);
            let lu = CLu::new(a).map_err(|_| SimError::SingularMatrix {
                analysis: format!("ac @ {f} Hz"),
            })?;
            probe.span(crate::probe::SPAN_FACTOR, t);
            let t = probe.start();
            sols.push(lu.solve(&b)?);
            probe.span(crate::probe::SPAN_SOLVE, t);
        }
        Ok(AcSweep {
            freqs: self.freqs.clone(),
            sols,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::dc::DcAnalysis;
    use crate::{nmos_180nm, Circuit, MosInstance};

    #[test]
    fn log_freqs_endpoints_and_spacing() {
        let f = log_freqs(1.0, 1e3, 10);
        assert!((f[0] - 1.0).abs() < 1e-12);
        assert!((f.last().unwrap() - 1e3).abs() < 1e-9);
        assert_eq!(f.len(), 31);
        // Log-uniform ratio between consecutive points.
        let r0 = f[1] / f[0];
        let r1 = f[2] / f[1];
        assert!((r0 - r1).abs() < 1e-9);
    }

    #[test]
    fn rc_lowpass_pole() {
        // R = 1 kΩ, C = 1 µF → f_3dB = 159.15 Hz.
        let mut ckt = Circuit::new();
        let vin = ckt.node("vin");
        let out = ckt.node("out");
        ckt.vsource_ac("V1", vin, Circuit::GROUND, 0.0, 1.0);
        ckt.resistor("R1", vin, out, 1e3);
        ckt.capacitor("C1", out, Circuit::GROUND, 1e-6);
        let op = DcAnalysis::new().run(&ckt).unwrap();
        let f3db = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-6);
        let ac = AcAnalysis::new(vec![f3db / 100.0, f3db, f3db * 100.0])
            .run(&ckt, &op)
            .unwrap();
        // Passband ≈ 1, pole = −3 dB at 45°, stopband rolls off.
        assert!((ac.voltage(0, out).abs() - 1.0).abs() < 1e-3);
        assert!((ac.voltage(1, out).abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3);
        assert!((ac.voltage(1, out).arg_deg() + 45.0).abs() < 0.5);
        assert!(ac.voltage(2, out).abs() < 0.02);
    }

    #[test]
    fn common_source_gain_matches_gm_times_load() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let g = ckt.node("g");
        let d = ckt.node("d");
        ckt.vsource("VDD", vdd, Circuit::GROUND, 1.8);
        ckt.vsource_ac("VG", g, Circuit::GROUND, 0.75, 1.0);
        ckt.resistor("RD", vdd, d, 10e3);
        let m1 = ckt.mosfet(
            "M1",
            d,
            g,
            Circuit::GROUND,
            Circuit::GROUND,
            MosInstance {
                model: nmos_180nm(),
                w: 20e-6,
                l: 1e-6,
                m: 1.0,
            },
        );
        let op = DcAnalysis::new().run(&ckt).unwrap();
        let mop = *op.mos_op(m1).unwrap();
        let expected = mop.gm * (1.0 / (1.0 / 10e3 + mop.gds));
        let ac = AcAnalysis::new(vec![10.0]).run(&ckt, &op).unwrap();
        let gain = ac.voltage(0, d).abs();
        let rel = (gain - expected).abs() / expected;
        assert!(rel < 1e-3, "gain {gain} vs gm·(RD∥ro) {expected}");
        // Inverting amplifier: ~180° phase.
        assert!((ac.voltage(0, d).arg_deg().abs() - 180.0).abs() < 1.0);
    }

    #[test]
    fn current_source_excitation() {
        // 1 A AC into 50 Ω must read 50 V.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.isource_ac("I1", Circuit::GROUND, a, 0.0, 1.0);
        ckt.resistor("R1", a, Circuit::GROUND, 50.0);
        let op = DcAnalysis::new().run(&ckt).unwrap();
        let ac = AcAnalysis::new(vec![1e3]).run(&ckt, &op).unwrap();
        assert!((ac.voltage(0, a).abs() - 50.0).abs() < 1e-6);
    }

    #[test]
    fn quiet_circuit_has_zero_response() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource("V1", a, Circuit::GROUND, 1.0); // no AC magnitude
        ckt.resistor("R1", a, Circuit::GROUND, 1e3);
        let op = DcAnalysis::new().run(&ckt).unwrap();
        let ac = AcAnalysis::new(vec![1e3]).run(&ckt, &op).unwrap();
        assert!(ac.voltage(0, a).abs() < 1e-12);
    }

    #[test]
    fn transfer_series_has_sweep_length() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource_ac("V1", a, Circuit::GROUND, 0.0, 1.0);
        ckt.resistor("R1", a, Circuit::GROUND, 1e3);
        let op = DcAnalysis::new().run(&ckt).unwrap();
        let ac = AcAnalysis::log(1.0, 1e6, 5).run(&ckt, &op).unwrap();
        assert_eq!(ac.transfer(a).len(), ac.len());
        assert!(!ac.is_empty());
    }
}
