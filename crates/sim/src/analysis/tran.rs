//! Transient analysis: trapezoidal (or backward-Euler) integration with a
//! full Newton solve per timestep and automatic step halving on
//! non-convergence.

use crate::analysis::dc::{DcAnalysis, DcOp};
use crate::circuit::{Circuit, Node};
use crate::mna::{
    assemble_resistive, cap_list, eval_mosfets_batched, ind_list, stamp_reactive, CapSpec, IndSpec,
    Layout, MosEvalScratch, MosOpsMode, SlotStamp,
};
use crate::mosfet::MosOp;
use crate::probe::Probe;
use crate::solver::{solve_newton_system, JacView, SolverKind, SolverWs, WarmstartKind};
use crate::SimError;

/// Integration method for the capacitor companion models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integrator {
    /// Trapezoidal rule — second order, the default.
    #[default]
    Trapezoidal,
    /// Backward Euler — first order, more damped; useful for oscillatory
    /// artifacts.
    BackwardEuler,
}

/// Transient analysis configuration.
#[derive(Debug, Clone)]
pub struct TranAnalysis {
    /// Simulation stop time, seconds.
    pub t_stop: f64,
    /// Nominal (maximum) timestep, seconds.
    pub dt: f64,
    /// Integration method.
    pub method: Integrator,
    /// Newton iteration budget per timestep.
    pub max_newton: usize,
    /// Maximum number of consecutive step halvings before giving up.
    pub max_halvings: usize,
    /// Linear-solver backend for the per-timestep Newton systems.
    pub solver: SolverKind,
    /// Whether each timestep's Newton start is linearly extrapolated from
    /// the previous two accepted solutions instead of copied from the
    /// last one. Converged solutions still satisfy the same tolerance;
    /// `Off` restores the historical start exactly.
    pub warmstart: WarmstartKind,
}

/// Reusable per-run buffers shared by every Newton iteration of every
/// timestep (mirrors the DC scratch — see `DcScratch`).
struct TranScratch {
    f: Vec<f64>,
    neg_f: Vec<f64>,
    delta: Vec<f64>,
    mos: MosEvalScratch,
    mos_ops: Vec<MosOp>,
    solver: SolverWs,
}

impl TranAnalysis {
    /// Creates a transient run to `t_stop` with nominal step `dt`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < dt ≤ t_stop`.
    pub fn new(t_stop: f64, dt: f64) -> Self {
        assert!(dt > 0.0 && dt <= t_stop, "need 0 < dt <= t_stop");
        TranAnalysis {
            t_stop,
            dt,
            method: Integrator::Trapezoidal,
            max_newton: 60,
            max_halvings: 14,
            solver: SolverKind::Auto,
            warmstart: WarmstartKind::Auto,
        }
    }

    /// Selects the integration method.
    pub fn with_method(mut self, method: Integrator) -> Self {
        self.method = method;
        self
    }

    /// Selects the linear-solver backend.
    pub fn with_solver(mut self, solver: SolverKind) -> Self {
        self.solver = solver;
        self
    }

    /// Runs the transient simulation.
    ///
    /// The initial condition is the DC operating point with transient
    /// sources evaluated at `t = 0`.
    ///
    /// # Errors
    ///
    /// Propagates DC failures; returns [`SimError::NoConvergence`] when a
    /// timestep cannot be completed even at the minimum step size.
    pub fn run(&self, ckt: &Circuit) -> Result<TranResult, SimError> {
        let op0 = DcAnalysis::new().run_at_time(ckt, Some(0.0), None)?;
        self.run_from(ckt, &op0)
    }

    /// Runs the transient simulation from a caller-provided initial
    /// operating point (e.g. a bias point computed with different source
    /// values).
    ///
    /// # Errors
    ///
    /// Same as [`TranAnalysis::run`].
    pub fn run_from(&self, ckt: &Circuit, op0: &DcOp) -> Result<TranResult, SimError> {
        ckt.validate()?;
        let layout = Layout::new(ckt);
        let caps = cap_list(ckt);
        let inds = ind_list(ckt, &layout);
        let n = layout.n_unknowns;

        let mut x = op0.unknowns().to_vec();
        if x.len() != n {
            return Err(SimError::BadRequest {
                reason: "initial operating point does not match circuit".into(),
            });
        }

        // Capacitor state: voltage across and current through at t_prev.
        // At a DC operating point every capacitor current is zero.
        let mut cap_v: Vec<f64> = caps.iter().map(|c| vdiff(&x, c)).collect();
        let mut cap_i: Vec<f64> = vec![0.0; caps.len()];
        // Inductor state: branch current and voltage across at t_prev
        // (zero volts at a DC operating point — inductors are shorts).
        let mut ind_i: Vec<f64> = inds.iter().map(|l| x[l.branch]).collect();
        let mut ind_v: Vec<f64> = vec![0.0; inds.len()];

        let mut times = vec![0.0];
        let mut sols = vec![x.clone()];

        let mut t = 0.0;
        let mut h = self.dt;
        let h_min = self.dt / 2f64.powi(self.max_halvings as i32);

        let probe = Probe::current();
        let mut ws = TranScratch {
            f: vec![0.0; n],
            neg_f: Vec::with_capacity(n),
            delta: Vec::with_capacity(n),
            mos: MosEvalScratch::default(),
            mos_ops: Vec::with_capacity(layout.mos_elems.len()),
            solver: SolverWs::new(self.solver, ckt, &layout),
        };

        let predict = self.warmstart.enabled();
        while t < self.t_stop - 1e-18 {
            let h_eff = h.min(self.t_stop - t);
            let t_next = t + h_eff;

            // Predictor: linear extrapolation of the Newton start from
            // the previous two accepted solutions. Recomputed on every
            // attempt because `h_eff` changes when a step is halved. The
            // corrector (the Newton solve below) still converges to the
            // same tolerance, so this only trades iterations, never
            // accuracy; with warm-starting off the start is the previous
            // solution, exactly as before.
            let k = sols.len();
            let x_start: Vec<f64> = if predict && k >= 2 && times[k - 1] > times[k - 2] {
                let r = h_eff / (times[k - 1] - times[k - 2]);
                sols[k - 1]
                    .iter()
                    .zip(&sols[k - 2])
                    .map(|(a, b)| a + r * (a - b))
                    .collect()
            } else {
                x.clone()
            };

            match self.newton_step(
                ckt, &layout, &caps, &inds, &mut ws, &probe, &x_start, &cap_v, &cap_i, &ind_i,
                &ind_v, t_next, h_eff,
            ) {
                Ok(x_next) => {
                    // Update capacitor companion state.
                    for (k, c) in caps.iter().enumerate() {
                        let v_new = vdiff(&x_next, c);
                        let i_new = match self.method {
                            Integrator::Trapezoidal => {
                                2.0 * c.farads / h_eff * (v_new - cap_v[k]) - cap_i[k]
                            }
                            Integrator::BackwardEuler => c.farads / h_eff * (v_new - cap_v[k]),
                        };
                        cap_v[k] = v_new;
                        cap_i[k] = i_new;
                    }
                    // Update inductor companion state (dual of the capacitor).
                    for (k, l) in inds.iter().enumerate() {
                        let i_new = x_next[l.branch];
                        let v_new = match self.method {
                            Integrator::Trapezoidal => {
                                2.0 * l.henries / h_eff * (i_new - ind_i[k]) - ind_v[k]
                            }
                            Integrator::BackwardEuler => l.henries / h_eff * (i_new - ind_i[k]),
                        };
                        ind_i[k] = i_new;
                        ind_v[k] = v_new;
                    }
                    x = x_next;
                    t = t_next;
                    times.push(t);
                    sols.push(x.clone());
                    // Gentle step growth back toward the nominal dt.
                    h = (h * 1.5).min(self.dt);
                }
                Err(_) if h_eff > h_min => {
                    h = h_eff / 2.0;
                }
                Err(_) => {
                    return Err(SimError::NoConvergence {
                        analysis: format!("tran @ t={t_next:.3e}"),
                        iterations: self.max_newton,
                    });
                }
            }
        }

        Ok(TranResult { times, sols })
    }

    /// One Newton solve for the state at `t_next`, started from
    /// `x_start` (the previous solution, or the predictor's
    /// extrapolation). The companion-model state is carried separately in
    /// `cap_*`/`ind_*`, so the start vector is purely an initial guess.
    #[allow(clippy::too_many_arguments)]
    fn newton_step(
        &self,
        ckt: &Circuit,
        layout: &Layout,
        caps: &[CapSpec],
        inds: &[IndSpec],
        ws: &mut TranScratch,
        probe: &Probe,
        x_start: &[f64],
        cap_v: &[f64],
        cap_i: &[f64],
        ind_i: &[f64],
        ind_v: &[f64],
        t_next: f64,
        h: f64,
    ) -> Result<Vec<f64>, SimError> {
        let mut x = x_start.to_vec();
        for _ in 0..self.max_newton {
            let TranScratch {
                f,
                neg_f,
                delta,
                mos,
                mos_ops,
                solver,
            } = ws;
            let mut assemble = |f: &mut [f64], jac: JacView<'_>| {
                f.fill(0.0);
                eval_mosfets_batched(ckt, layout, &x, mos, mos_ops);
                match jac {
                    JacView::Dense(m) => {
                        assemble_resistive(
                            ckt,
                            layout,
                            &x,
                            1e-12,
                            1.0,
                            Some(t_next),
                            f,
                            m,
                            MosOpsMode::Precomputed(mos_ops.as_slice()),
                        );
                        stamp_reactive(
                            caps,
                            inds,
                            self.method,
                            h,
                            &x,
                            cap_v,
                            cap_i,
                            ind_i,
                            ind_v,
                            f,
                            m,
                        );
                    }
                    JacView::Sparse { vals, topo } => {
                        let mut st = SlotStamp::new(&mut *vals, &topo.resistive_slots);
                        assemble_resistive(
                            ckt,
                            layout,
                            &x,
                            1e-12,
                            1.0,
                            Some(t_next),
                            f,
                            &mut st,
                            MosOpsMode::Precomputed(mos_ops.as_slice()),
                        );
                        st.finish();
                        let mut st = SlotStamp::new(vals, &topo.reactive_slots);
                        stamp_reactive(
                            caps,
                            inds,
                            self.method,
                            h,
                            &x,
                            cap_v,
                            cap_i,
                            ind_i,
                            ind_v,
                            f,
                            &mut st,
                        );
                        st.finish();
                    }
                }
            };
            solve_newton_system(solver, "tran", probe, f, neg_f, delta, &mut assemble)?;
            let max_step = delta.iter().fold(0.0_f64, |m, d| m.max(d.abs()));
            if !max_step.is_finite() {
                return Err(SimError::NoConvergence {
                    analysis: "tran".into(),
                    iterations: self.max_newton,
                });
            }
            let limit = 0.6;
            let alpha = if max_step > limit {
                limit / max_step
            } else {
                1.0
            };
            for (xi, di) in x.iter_mut().zip(delta.iter()) {
                *xi += alpha * di;
            }
            if alpha == 1.0 && max_step < 1e-9 {
                return Ok(x);
            }
        }
        Err(SimError::NoConvergence {
            analysis: "tran".into(),
            iterations: self.max_newton,
        })
    }
}

fn vdiff(x: &[f64], c: &CapSpec) -> f64 {
    let va = c.a.unknown().map_or(0.0, |i| x[i]);
    let vb = c.b.unknown().map_or(0.0, |i| x[i]);
    va - vb
}

/// Stored transient waveforms: one solution vector per accepted timestep.
#[derive(Debug, Clone)]
pub struct TranResult {
    times: Vec<f64>,
    sols: Vec<Vec<f64>>,
}

impl TranResult {
    /// Accepted time points, seconds.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` when no points were stored (cannot happen for a successful run).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Voltage of `node` at stored point `k`.
    pub fn voltage_at(&self, k: usize, node: Node) -> f64 {
        match node.unknown() {
            Some(i) => self.sols[k][i],
            None => 0.0,
        }
    }

    /// The full voltage series of one node.
    pub fn voltage(&self, node: Node) -> Vec<f64> {
        (0..self.len()).map(|k| self.voltage_at(k, node)).collect()
    }

    /// Linearly interpolated voltage at an arbitrary time.
    ///
    /// Clamps to the first/last stored values outside the simulated span.
    pub fn voltage_at_time(&self, t: f64, node: Node) -> f64 {
        if t <= self.times[0] {
            return self.voltage_at(0, node);
        }
        let last = self.len() - 1;
        if t >= self.times[last] {
            return self.voltage_at(last, node);
        }
        let idx = self.times.partition_point(|&tt| tt <= t);
        let (t0, t1) = (self.times[idx - 1], self.times[idx]);
        let (v0, v1) = (self.voltage_at(idx - 1, node), self.voltage_at(idx, node));
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Circuit, Waveform};

    /// RC charging: v(t) = V·(1 − e^{−t/RC}).
    #[test]
    fn rc_step_response_matches_analytic() {
        let r = 1e3;
        let c = 1e-9;
        let tau = r * c;
        let mut ckt = Circuit::new();
        let vin = ckt.node("vin");
        let out = ckt.node("out");
        let v1 = ckt.vsource("V1", vin, Circuit::GROUND, 0.0);
        ckt.set_waveform(
            v1,
            Waveform::pulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0, f64::INFINITY),
        );
        ckt.resistor("R1", vin, out, r);
        ckt.capacitor("C1", out, Circuit::GROUND, c);
        let res = TranAnalysis::new(5.0 * tau, tau / 200.0).run(&ckt).unwrap();
        for &t_probe in &[0.5 * tau, tau, 2.0 * tau, 4.0 * tau] {
            let expected = 1.0 - (-t_probe / tau).exp();
            let got = res.voltage_at_time(t_probe, out);
            assert!(
                (got - expected).abs() < 5e-3,
                "v({t_probe}) = {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn backward_euler_also_tracks_rc() {
        let tau = 1e-6;
        let mut ckt = Circuit::new();
        let vin = ckt.node("vin");
        let out = ckt.node("out");
        let v1 = ckt.vsource("V1", vin, Circuit::GROUND, 0.0);
        ckt.set_waveform(
            v1,
            Waveform::pulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0, f64::INFINITY),
        );
        ckt.resistor("R1", vin, out, 1e3);
        ckt.capacitor("C1", out, Circuit::GROUND, 1e-9);
        let res = TranAnalysis::new(5.0 * tau, tau / 100.0)
            .with_method(Integrator::BackwardEuler)
            .run(&ckt)
            .unwrap();
        let got = res.voltage_at_time(tau, out);
        assert!((got - 0.632).abs() < 0.01, "BE v(tau) = {got}");
    }

    #[test]
    fn initial_condition_comes_from_dc() {
        // Source sits at 2 V from t = 0; the cap must start charged.
        let mut ckt = Circuit::new();
        let vin = ckt.node("vin");
        let out = ckt.node("out");
        ckt.vsource("V1", vin, Circuit::GROUND, 2.0);
        ckt.resistor("R1", vin, out, 1e3);
        ckt.capacitor("C1", out, Circuit::GROUND, 1e-9);
        let res = TranAnalysis::new(1e-6, 1e-8).run(&ckt).unwrap();
        assert!((res.voltage_at(0, out) - 2.0).abs() < 1e-6);
        assert!((res.voltage_at_time(1e-6, out) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn pwl_ramp_is_followed() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let v1 = ckt.vsource("V1", a, Circuit::GROUND, 0.0);
        ckt.set_waveform(v1, Waveform::pwl(vec![(0.0, 0.0), (1e-3, 1.0)]));
        ckt.resistor("R1", a, Circuit::GROUND, 1e3);
        let res = TranAnalysis::new(1e-3, 1e-5).run(&ckt).unwrap();
        let mid = res.voltage_at_time(0.5e-3, a);
        assert!((mid - 0.5).abs() < 1e-6, "ramp midpoint {mid}");
    }

    #[test]
    fn trapezoidal_preserves_lc_like_energy_better_than_be() {
        // RC discharge comparison: trap should track the analytic decay more
        // closely than BE at equal (coarse) step.
        let tau = 1e-6;
        let build = || {
            let mut ckt = Circuit::new();
            let out = ckt.node("out");
            let vin = ckt.node("vin");
            let v1 = ckt.vsource("V1", vin, Circuit::GROUND, 1.0);
            ckt.set_waveform(
                v1,
                Waveform::pulse(1.0, 0.0, 0.0, 1e-12, 1e-12, 1.0, f64::INFINITY),
            );
            ckt.resistor("R1", vin, out, 1e3);
            ckt.capacitor("C1", out, Circuit::GROUND, 1e-9);
            (ckt, out)
        };
        let (ckt, out) = build();
        let coarse = tau / 4.0;
        let trap = TranAnalysis::new(3.0 * tau, coarse).run(&ckt).unwrap();
        let be = TranAnalysis::new(3.0 * tau, coarse)
            .with_method(Integrator::BackwardEuler)
            .run(&ckt)
            .unwrap();
        let analytic = (-2.0_f64).exp();
        let err_trap = (trap.voltage_at_time(2.0 * tau, out) - analytic).abs();
        let err_be = (be.voltage_at_time(2.0 * tau, out) - analytic).abs();
        assert!(err_trap < err_be, "trap {err_trap} vs BE {err_be}");
    }

    #[test]
    fn result_accessors_are_consistent() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource("V1", a, Circuit::GROUND, 1.0);
        ckt.resistor("R1", a, Circuit::GROUND, 1e3);
        ckt.capacitor("C1", a, Circuit::GROUND, 1e-12);
        let res = TranAnalysis::new(1e-9, 1e-10).run(&ckt).unwrap();
        assert_eq!(res.voltage(a).len(), res.len());
        assert!(!res.is_empty());
        assert_eq!(res.times().len(), res.len());
        assert_eq!(res.voltage_at(0, Circuit::GROUND), 0.0);
    }

    #[test]
    #[should_panic(expected = "dt <= t_stop")]
    fn zero_dt_rejected() {
        let _ = TranAnalysis::new(1.0, 0.0);
    }
}
