//! Fourier analysis of transient waveforms: single-bin DFT (Goertzel-style
//! direct evaluation on the non-uniform transient grid) and total harmonic
//! distortion — the `.FOUR` card of classic SPICE.

use maopt_linalg::Complex;

use crate::analysis::tran::TranResult;
use crate::circuit::Node;

/// Complex Fourier coefficient of a waveform at frequency `freq`, computed
/// over `[t_start, t_end]` by trapezoidal integration on the (possibly
/// non-uniform) transient time grid:
///
/// ```text
/// X(f) = (2/T) ∫ x(t)·e^{−j2πft} dt
/// ```
///
/// The window should cover an integer number of periods for accurate
/// results; [`fourier_coefficient`] does not window or taper.
///
/// # Panics
///
/// Panics if the window is empty or `t_end ≤ t_start`.
pub fn fourier_coefficient(
    res: &TranResult,
    node: Node,
    freq: f64,
    t_start: f64,
    t_end: f64,
) -> Complex {
    assert!(t_end > t_start, "need a positive analysis window");
    let times = res.times();
    // Collect samples inside the window (with interpolated endpoints).
    let mut ts = vec![t_start];
    let mut vs = vec![res.voltage_at_time(t_start, node)];
    for (k, &t) in times.iter().enumerate() {
        if t > t_start && t < t_end {
            ts.push(t);
            vs.push(res.voltage_at(k, node));
        }
    }
    ts.push(t_end);
    vs.push(res.voltage_at_time(t_end, node));
    assert!(ts.len() >= 2, "analysis window contains no samples");

    let omega = 2.0 * std::f64::consts::PI * freq;
    let mut acc = Complex::ZERO;
    for k in 1..ts.len() {
        let (t0, t1) = (ts[k - 1], ts[k]);
        let f0 = Complex::from_polar(vs[k - 1], -omega * t0);
        let f1 = Complex::from_polar(vs[k], -omega * t1);
        acc += (f0 + f1) * (0.5 * (t1 - t0));
    }
    acc * (2.0 / (t_end - t_start))
}

/// Harmonic decomposition of a periodic steady-state waveform.
#[derive(Debug, Clone)]
pub struct HarmonicAnalysis {
    /// Fundamental frequency, hertz.
    pub fundamental: f64,
    /// Magnitudes of harmonics 1..=n (index 0 is the fundamental).
    pub magnitudes: Vec<f64>,
    /// Total harmonic distortion, as a fraction of the fundamental.
    pub thd: f64,
}

/// Measures THD of `node` assuming periodic steady state at `f0` over the
/// window `[t_start, t_start + cycles/f0]` (which must lie inside the
/// transient record for accuracy).
///
/// # Panics
///
/// Panics if `n_harmonics == 0` or `cycles == 0`.
pub fn thd(
    res: &TranResult,
    node: Node,
    f0: f64,
    n_harmonics: usize,
    t_start: f64,
    cycles: usize,
) -> HarmonicAnalysis {
    assert!(n_harmonics >= 1, "need at least the fundamental");
    assert!(cycles >= 1, "need at least one period");
    let t_end = t_start + cycles as f64 / f0;
    let magnitudes: Vec<f64> = (1..=n_harmonics)
        .map(|h| fourier_coefficient(res, node, f0 * h as f64, t_start, t_end).abs())
        .collect();
    let fund = magnitudes[0].max(1e-300);
    let harm_power: f64 = magnitudes[1..].iter().map(|m| m * m).sum();
    HarmonicAnalysis {
        fundamental: f0,
        magnitudes,
        thd: harm_power.sqrt() / fund,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::tran::TranAnalysis;
    use crate::{nmos_180nm, Circuit, MosInstance, Waveform};

    /// A pure sine through a linear RC passes with negligible THD and the
    /// right fundamental magnitude.
    #[test]
    fn linear_circuit_has_tiny_thd() {
        let f0 = 1e6;
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let v1 = ckt.vsource("V1", a, Circuit::GROUND, 0.0);
        ckt.set_waveform(
            v1,
            Waveform::Sine {
                offset: 0.0,
                amplitude: 0.5,
                freq: f0,
                delay: 0.0,
            },
        );
        ckt.resistor("R1", a, Circuit::GROUND, 1e3);
        // Fine timestep for clean harmonics.
        let res = TranAnalysis::new(6.0 / f0, 1.0 / (f0 * 400.0))
            .run(&ckt)
            .unwrap();
        let h = thd(&res, a, f0, 5, 2.0 / f0, 3);
        assert!(
            (h.magnitudes[0] - 0.5).abs() < 5e-3,
            "fundamental {}",
            h.magnitudes[0]
        );
        assert!(h.thd < 0.01, "linear THD {}", h.thd);
    }

    /// Fourier coefficient of a known two-tone signal separates the tones.
    #[test]
    fn coefficient_separates_tones() {
        let f0 = 1e5;
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let v1 = ckt.vsource("V1", a, Circuit::GROUND, 0.0);
        ckt.set_waveform(
            v1,
            Waveform::Sine {
                offset: 0.0,
                amplitude: 1.0,
                freq: f0,
                delay: 0.0,
            },
        );
        let v2 = ckt.vsource("V2", b, Circuit::GROUND, 0.0);
        ckt.set_waveform(
            v2,
            Waveform::Sine {
                offset: 0.0,
                amplitude: 0.3,
                freq: 3.0 * f0,
                delay: 0.0,
            },
        );
        // Sum the tones through a resistive adder into node s.
        let s = ckt.node("s");
        ckt.resistor("R1", a, s, 1e3);
        ckt.resistor("R2", b, s, 1e3);
        ckt.resistor("R3", s, Circuit::GROUND, 1e9);
        let res = TranAnalysis::new(8.0 / f0, 1.0 / (f0 * 600.0))
            .run(&ckt)
            .unwrap();
        // Superposition: v(s) = (v_a + v_b)/2 for equal resistors.
        let c1 = fourier_coefficient(&res, s, f0, 2.0 / f0, 6.0 / f0).abs();
        let c3 = fourier_coefficient(&res, s, 3.0 * f0, 2.0 / f0, 6.0 / f0).abs();
        assert!((c1 - 0.5).abs() < 0.01, "tone 1 {c1}");
        assert!((c3 - 0.15).abs() < 0.01, "tone 3 {c3}");
    }

    /// An overdriven common-source stage generates measurable distortion —
    /// more drive, more THD.
    #[test]
    fn amplifier_distortion_grows_with_drive() {
        let f0 = 1e6;
        let build = |amp: f64| {
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            let g = ckt.node("g");
            let d = ckt.node("d");
            ckt.vsource("VDD", vdd, Circuit::GROUND, 1.8);
            let vg = ckt.vsource("VG", g, Circuit::GROUND, 0.65);
            ckt.set_waveform(
                vg,
                Waveform::Sine {
                    offset: 0.65,
                    amplitude: amp,
                    freq: f0,
                    delay: 0.0,
                },
            );
            ckt.resistor("RD", vdd, d, 10e3);
            ckt.mosfet(
                "M1",
                d,
                g,
                Circuit::GROUND,
                Circuit::GROUND,
                MosInstance {
                    model: nmos_180nm(),
                    w: 10e-6,
                    l: 0.5e-6,
                    m: 1.0,
                },
            );
            ckt
        };
        let mut thds = Vec::new();
        for amp in [0.02, 0.15] {
            let ckt = build(amp);
            let res = TranAnalysis::new(6.0 / f0, 1.0 / (f0 * 300.0))
                .run(&ckt)
                .unwrap();
            let d = ckt.find_node("d").unwrap();
            let h = thd(&res, d, f0, 5, 2.0 / f0, 3);
            thds.push(h.thd);
        }
        assert!(
            thds[1] > 3.0 * thds[0],
            "THD must grow with drive: {thds:?}"
        );
        assert!(
            thds[0] < 0.1,
            "small-signal THD should be modest: {}",
            thds[0]
        );
    }

    #[test]
    #[should_panic(expected = "positive analysis window")]
    fn empty_window_panics() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource("V1", a, Circuit::GROUND, 1.0);
        ckt.resistor("R1", a, Circuit::GROUND, 1e3);
        ckt.capacitor("C1", a, Circuit::GROUND, 1e-12);
        let res = TranAnalysis::new(1e-9, 1e-10).run(&ckt).unwrap();
        let _ = fourier_coefficient(&res, a, 1e6, 1e-9, 1e-9);
    }
}
