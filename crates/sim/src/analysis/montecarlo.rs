//! Monte-Carlo mismatch analysis: Pelgrom-model random device variation.
//!
//! Each MOSFET's threshold voltage and transconductance parameter receive
//! independent Gaussian perturbations whose standard deviation shrinks with
//! the gate area,
//!
//! ```text
//! σ(ΔV_T) = A_vt / √(W·L·m),      σ(ΔK_P)/K_P = A_kp / √(W·L·m)
//! ```
//!
//! which is how real processes characterize local mismatch. The analysis
//! clones the netlist per sample with perturbed model cards and runs a
//! caller-supplied measurement.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::circuit::{Circuit, Element};
use crate::SimError;

/// Pelgrom mismatch coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MismatchModel {
    /// Threshold mismatch coefficient `A_vt`, volt·meters (≈ 5 mV·µm for
    /// a 180 nm process → 5e-9 V·m).
    pub a_vt: f64,
    /// Relative K_P mismatch coefficient `A_kp`, meters (≈ 1 %·µm → 1e-8).
    pub a_kp: f64,
}

impl Default for MismatchModel {
    fn default() -> Self {
        MismatchModel {
            a_vt: 5e-9,
            a_kp: 1e-8,
        }
    }
}

impl MismatchModel {
    /// Standard deviation of ΔV_T for a device of area `w·l·m` (m²).
    pub fn sigma_vt(&self, area: f64) -> f64 {
        self.a_vt / area.sqrt()
    }

    /// Relative standard deviation of ΔK_P for a device of area `w·l·m`.
    pub fn sigma_kp_rel(&self, area: f64) -> f64 {
        self.a_kp / area.sqrt()
    }
}

/// Draws a standard normal via Box–Muller.
fn randn(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Returns a copy of the circuit with every MOSFET's `vt0` and `kp`
/// perturbed per the mismatch model.
pub fn perturb_circuit(ckt: &Circuit, model: &MismatchModel, rng: &mut StdRng) -> Circuit {
    let mut out = ckt.clone();
    for e in out.elements_mut() {
        if let Element::Mosfet { inst, .. } = e {
            let area = inst.w * inst.l * inst.m;
            inst.model.vt0 += model.sigma_vt(area) * randn(rng);
            let rel = 1.0 + model.sigma_kp_rel(area) * randn(rng);
            inst.model.kp *= rel.max(0.05);
        }
    }
    out
}

/// Runs `n` Monte-Carlo samples, applying `measure` to each perturbed
/// circuit. Failed samples are returned as `Err` entries so yield loss is
/// observable.
pub fn monte_carlo<R>(
    ckt: &Circuit,
    model: &MismatchModel,
    n: usize,
    seed: u64,
    mut measure: impl FnMut(&Circuit) -> Result<R, SimError>,
) -> Vec<Result<R, SimError>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let sample = perturb_circuit(ckt, model, &mut rng);
            measure(&sample)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::dc::DcAnalysis;
    use crate::{nmos_180nm, pmos_180nm, MosInstance};

    fn diff_pair(w_um: f64, l_um: f64) -> Circuit {
        // Five-transistor OTA in unity feedback: the output offset from VCM
        // directly reads the input-referred offset.
        let nmos = nmos_180nm();
        let pmos = pmos_180nm();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inp = ckt.node("inp");
        let out = ckt.node("out");
        let tail = ckt.node("tail");
        let d1 = ckt.node("d1");
        let bias = ckt.node("bias");
        let gnd = Circuit::GROUND;
        let m = |model: &crate::MosModel, w: f64, l: f64, mult: f64| MosInstance {
            model: model.clone(),
            w: w * 1e-6,
            l: l * 1e-6,
            m: mult,
        };
        ckt.vsource("VDD", vdd, gnd, 1.8);
        ckt.vsource("VIN", inp, gnd, 0.9);
        ckt.isource("IB", vdd, bias, 10e-6);
        ckt.mosfet("MB", bias, bias, gnd, gnd, m(&nmos, 2.0, 1.0, 1.0));
        ckt.mosfet("M5", tail, bias, gnd, gnd, m(&nmos, 4.0, 1.0, 1.0));
        ckt.mosfet("M1", d1, inp, tail, gnd, m(&nmos, w_um, l_um, 1.0));
        ckt.mosfet("M2", out, out, tail, gnd, m(&nmos, w_um, l_um, 1.0));
        ckt.mosfet("M3", d1, d1, vdd, vdd, m(&pmos, 8.0, 1.0, 1.0));
        ckt.mosfet("M4", out, d1, vdd, vdd, m(&pmos, 8.0, 1.0, 1.0));
        ckt
    }

    #[test]
    fn zero_mismatch_is_identity() {
        let ckt = diff_pair(10.0, 1.0);
        let model = MismatchModel {
            a_vt: 0.0,
            a_kp: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let p = perturb_circuit(&ckt, &model, &mut rng);
        let a = DcAnalysis::new().run(&ckt).unwrap();
        let b = DcAnalysis::new().run(&p).unwrap();
        assert_eq!(a.unknowns(), b.unknowns());
    }

    #[test]
    fn sigma_follows_pelgrom_scaling() {
        let m = MismatchModel::default();
        let small: f64 = 1e-6 * 0.18e-6;
        let big = 100.0 * small;
        assert!((m.sigma_vt(small) / m.sigma_vt(big) - 10.0).abs() < 1e-9);
        assert!(m.sigma_kp_rel(big) < m.sigma_kp_rel(small));
    }

    #[test]
    fn offset_spread_shrinks_with_device_area() {
        // The differential (d1 − out) isolates pair/load imbalance; scaling
        // the *pair* area should shrink its spread toward the fixed-load
        // mismatch floor.
        let model = MismatchModel {
            a_vt: 5e-9,
            a_kp: 0.0,
        };
        let spread = |w: f64, l: f64| -> f64 {
            let ckt = diff_pair(w, l);
            let nominal = DcAnalysis::new().run(&ckt).unwrap();
            let d1 = ckt.find_node("d1").unwrap();
            let out = ckt.find_node("out").unwrap();
            let v0 = nominal.voltage(d1) - nominal.voltage(out);
            let results = monte_carlo(&ckt, &model, 30, 7, |sample| {
                let op = DcAnalysis::new().run(sample)?;
                let d1 = sample.find_node("d1").expect("d1");
                let out = sample.find_node("out").expect("out");
                Ok((op.voltage(d1) - op.voltage(out)) - v0)
            });
            let deltas: Vec<f64> = results.into_iter().filter_map(Result::ok).collect();
            assert!(deltas.len() >= 25, "too many failed samples");
            maopt_linalg::stats::std_dev(&deltas)
        };
        let tiny = spread(1.0, 0.18);
        let large = spread(60.0, 1.5);
        assert!(
            large < tiny * 0.75,
            "bigger pairs must match better: σ {tiny:.5} vs {large:.5}"
        );
    }

    #[test]
    fn monte_carlo_is_seeded() {
        let ckt = diff_pair(5.0, 0.5);
        let model = MismatchModel::default();
        let run = |seed| -> Vec<f64> {
            monte_carlo(&ckt, &model, 5, seed, |s| {
                let op = DcAnalysis::new().run(s)?;
                Ok(op.voltage(s.find_node("d1").expect("d1")))
            })
            .into_iter()
            .filter_map(Result::ok)
            .collect()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }
}
