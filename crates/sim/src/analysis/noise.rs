//! Noise analysis: thermal and flicker current noise of resistors and
//! MOSFETs propagated to an output node.
//!
//! For each frequency the complex MNA matrix is factored once; each noise
//! source is then a cheap extra right-hand side (a unit current injection
//! between the device terminals). The output power spectral density is
//!
//! ```text
//! S_out(f) = Σ_k |H_k(f)|² · S_k(f)
//! ```
//!
//! where `H_k` is the transimpedance from source `k` to the output node and
//! `S_k` its current PSD (4kT/R for resistors, `4kT·(2/3)·gm` thermal plus
//! `KF·Id/(Cox·W·L·f)` flicker for MOSFETs).

use maopt_linalg::{CLu, Complex};

use crate::analysis::ac::build_ac_matrix;
use crate::analysis::dc::DcOp;
use crate::circuit::{Circuit, Element, Node};
use crate::mna::{cap_list, Layout};
use crate::probe::{Probe, SPAN_FACTOR, SPAN_SOLVE};
use crate::solver::{CSparseWs, SolverKind};
use crate::{SimError, KT};

/// One contributor to the integrated output noise.
#[derive(Debug, Clone)]
pub struct NoiseContributor {
    /// Name of the element responsible.
    pub element: String,
    /// Its share of the integrated output noise power, V².
    pub power: f64,
}

/// Output-referred noise spectrum and its integral.
#[derive(Debug, Clone)]
pub struct NoiseResult {
    freqs: Vec<f64>,
    psd: Vec<f64>,
    contributors: Vec<NoiseContributor>,
}

impl NoiseResult {
    /// The frequency grid, hertz.
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Output noise PSD in V²/Hz, aligned with [`NoiseResult::freqs`].
    pub fn psd(&self) -> &[f64] {
        &self.psd
    }

    /// Total integrated output noise, volts RMS (trapezoidal integral of the
    /// PSD over the analysis band).
    pub fn output_rms(&self) -> f64 {
        integrate_trapezoid(&self.freqs, &self.psd).sqrt()
    }

    /// Per-element integrated contributions, largest first.
    pub fn contributors(&self) -> &[NoiseContributor] {
        &self.contributors
    }
}

fn integrate_trapezoid(f: &[f64], y: &[f64]) -> f64 {
    f.windows(2)
        .zip(y.windows(2))
        .map(|(fw, yw)| 0.5 * (yw[0] + yw[1]) * (fw[1] - fw[0]))
        .sum()
}

/// Noise analysis configuration.
#[derive(Debug, Clone)]
pub struct NoiseAnalysis {
    freqs: Vec<f64>,
    /// Linear-solver backend for the per-frequency factorizations.
    pub solver: SolverKind,
}

impl NoiseAnalysis {
    /// Creates an analysis over an explicit frequency grid.
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty or unsorted.
    pub fn new(freqs: Vec<f64>) -> Self {
        assert!(
            !freqs.is_empty(),
            "noise analysis needs at least one frequency"
        );
        assert!(
            freqs.windows(2).all(|w| w[0] < w[1]),
            "noise frequency grid must be strictly increasing"
        );
        NoiseAnalysis {
            freqs,
            solver: SolverKind::Auto,
        }
    }

    /// Selects the linear-solver backend.
    pub fn with_solver(mut self, solver: SolverKind) -> Self {
        self.solver = solver;
        self
    }

    /// Log-spaced grid from `f_start` to `f_stop`.
    pub fn log(f_start: f64, f_stop: f64, points_per_decade: usize) -> Self {
        NoiseAnalysis::new(crate::analysis::ac::log_freqs(
            f_start,
            f_stop,
            points_per_decade,
        ))
    }

    /// Computes the output noise spectrum at `out`.
    ///
    /// # Errors
    ///
    /// [`SimError::SingularMatrix`] if the small-signal system is singular.
    pub fn run(&self, ckt: &Circuit, op: &DcOp, out: Node) -> Result<NoiseResult, SimError> {
        let layout = Layout::new(ckt);
        let caps = cap_list(ckt);
        let out_idx = match out.unknown() {
            Some(i) => i,
            None => {
                return Err(SimError::BadRequest {
                    reason: "noise output node cannot be ground".into(),
                })
            }
        };

        // Enumerate noise sources once: (element name, node a, node b, psd_fn).
        struct Source {
            name: String,
            a: Node,
            b: Node,
            /// Current PSD at frequency f, A²/Hz.
            psd: Box<dyn Fn(f64) -> f64>,
        }
        let mut sources: Vec<Source> = Vec::new();
        let mut mos_ord = 0usize;
        for e in ckt.elements() {
            match e {
                Element::Resistor {
                    name, a, b, ohms, ..
                } => {
                    let g = 1.0 / ohms;
                    sources.push(Source {
                        name: name.clone(),
                        a: *a,
                        b: *b,
                        psd: Box::new(move |_f| 4.0 * KT * g),
                    });
                }
                Element::Mosfet {
                    name, d, s, inst, ..
                } => {
                    let mop = op.mos_ops[mos_ord];
                    mos_ord += 1;
                    let model = inst.model.clone();
                    let (w, l, m) = (inst.w, inst.l, inst.m);
                    sources.push(Source {
                        name: name.clone(),
                        a: *d,
                        b: *s,
                        psd: Box::new(move |f| {
                            model.thermal_noise_psd(mop.gm)
                                + model.flicker_noise_psd(mop.id, w, l, m, f)
                        }),
                    });
                }
                _ => {}
            }
        }

        let n = layout.n_unknowns;
        let mut psd_total = vec![0.0; self.freqs.len()];
        let mut contrib_power = vec![0.0; sources.len()];
        let mut psd_per_source = vec![vec![0.0; self.freqs.len()]; sources.len()];

        let probe = Probe::current();
        let mut ws = CSparseWs::new(self.solver, ckt, &layout);
        let mut rhs = vec![Complex::ZERO; n];
        let mut xbuf: Vec<Complex> = Vec::with_capacity(n);

        for (fi, &f) in self.freqs.iter().enumerate() {
            let omega = 2.0 * std::f64::consts::PI * f;
            // Factor once per frequency; every noise source is then just an
            // extra right-hand side against the same factorization.
            let sparse_ok = ws
                .as_mut()
                .is_some_and(|w| w.factor_at(ckt, &layout, &op.mos_ops, &caps, omega, &probe));
            let dense_lu = if sparse_ok {
                None
            } else {
                let t = probe.start();
                let a = build_ac_matrix(ckt, &layout, op, &caps, omega);
                let lu = CLu::new(a).map_err(|_| SimError::SingularMatrix {
                    analysis: format!("noise @ {f} Hz"),
                })?;
                probe.span(SPAN_FACTOR, t);
                Some(lu)
            };
            for (si, src) in sources.iter().enumerate() {
                // Unit current injected from b into a (sign irrelevant: |H|²).
                let ai = src.a.unknown();
                let bi = src.b.unknown();
                if let Some(i) = ai {
                    rhs[i] += Complex::ONE;
                }
                if let Some(i) = bi {
                    rhs[i] -= Complex::ONE;
                }
                let t = probe.start();
                let h2 = match (&dense_lu, ws.as_mut()) {
                    (Some(lu), _) => lu.solve(&rhs)?[out_idx].norm_sqr(),
                    (None, Some(w)) => {
                        w.lu.solve_into(&rhs, &mut xbuf)?;
                        xbuf[out_idx].norm_sqr()
                    }
                    (None, None) => unreachable!("no factorization for this frequency"),
                };
                probe.span(SPAN_SOLVE, t);
                if let Some(i) = ai {
                    rhs[i] = Complex::ZERO;
                }
                if let Some(i) = bi {
                    rhs[i] = Complex::ZERO;
                }
                let s = (src.psd)(f);
                psd_total[fi] += h2 * s;
                psd_per_source[si][fi] = h2 * s;
            }
        }

        for (si, series) in psd_per_source.iter().enumerate() {
            contrib_power[si] = integrate_trapezoid(&self.freqs, series);
        }
        let mut contributors: Vec<NoiseContributor> = sources
            .iter()
            .zip(&contrib_power)
            .map(|(s, &p)| NoiseContributor {
                element: s.name.clone(),
                power: p,
            })
            .collect();
        contributors.sort_by(|a, b| b.power.partial_cmp(&a.power).expect("finite powers"));

        Ok(NoiseResult {
            freqs: self.freqs.clone(),
            psd: psd_total,
            contributors,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::dc::DcAnalysis;
    use crate::{nmos_180nm, Circuit, MosInstance};

    /// A lone resistor to ground shows its full thermal voltage noise
    /// 4kTR at the node.
    #[test]
    fn resistor_thermal_noise_psd() {
        let r = 10e3;
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.resistor("R1", a, Circuit::GROUND, r);
        // A DC source elsewhere keeps the netlist non-trivial but quiet.
        let b = ckt.node("b");
        ckt.vsource("V1", b, Circuit::GROUND, 1.0);
        ckt.resistor("R2", b, Circuit::GROUND, 1e3);
        let op = DcAnalysis::new().run(&ckt).unwrap();
        let res = NoiseAnalysis::new(vec![1e3, 1e4])
            .run(&ckt, &op, a)
            .unwrap();
        let expected = 4.0 * KT * r; // |Z|²·(4kT/R) = R²·4kT/R
        for &p in res.psd() {
            let rel = (p - expected).abs() / expected;
            assert!(rel < 1e-6, "psd {p} vs 4kTR {expected}");
        }
    }

    /// Two parallel resistors: noise of the parallel combination.
    #[test]
    fn parallel_resistors_noise_combines() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.resistor("R1", a, Circuit::GROUND, 2e3);
        ckt.resistor("R2", a, Circuit::GROUND, 2e3);
        let op = DcAnalysis::new().run(&ckt).unwrap();
        let res = NoiseAnalysis::new(vec![1e3]).run(&ckt, &op, a).unwrap();
        let expected = 4.0 * KT * 1e3; // parallel resistance 1 kΩ
        let rel = (res.psd()[0] - expected).abs() / expected;
        assert!(rel < 1e-6);
    }

    /// RC-filtered resistor noise integrates to kT/C over an infinite band;
    /// over 4 decades past the pole we should capture most of it.
    #[test]
    fn ktc_noise_integral() {
        let r = 1e3;
        let c = 1e-9;
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.resistor("R1", a, Circuit::GROUND, r);
        ckt.capacitor("C1", a, Circuit::GROUND, c);
        let op = DcAnalysis::new().run(&ckt).unwrap();
        let f_pole = 1.0 / (2.0 * std::f64::consts::PI * r * c);
        let res = NoiseAnalysis::log(f_pole * 1e-3, f_pole * 1e3, 20)
            .run(&ckt, &op, a)
            .unwrap();
        let v2 = res.output_rms().powi(2);
        let ktc = KT / c;
        let rel = (v2 - ktc).abs() / ktc;
        assert!(
            rel < 0.05,
            "integrated noise {v2} vs kT/C {ktc} (rel {rel})"
        );
    }

    #[test]
    fn amplifier_noise_includes_mosfet() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let g = ckt.node("g");
        let d = ckt.node("d");
        ckt.vsource("VDD", vdd, Circuit::GROUND, 1.8);
        ckt.vsource("VG", g, Circuit::GROUND, 0.75);
        ckt.resistor("RD", vdd, d, 10e3);
        ckt.mosfet(
            "M1",
            d,
            g,
            Circuit::GROUND,
            Circuit::GROUND,
            MosInstance {
                model: nmos_180nm(),
                w: 20e-6,
                l: 1e-6,
                m: 1.0,
            },
        );
        let op = DcAnalysis::new().run(&ckt).unwrap();
        let res = NoiseAnalysis::log(10.0, 1e6, 5).run(&ckt, &op, d).unwrap();
        assert!(res.output_rms() > 0.0);
        let names: Vec<&str> = res
            .contributors()
            .iter()
            .map(|c| c.element.as_str())
            .collect();
        assert!(names.contains(&"M1"));
        assert!(names.contains(&"RD"));
        // Contributions are sorted descending.
        let powers: Vec<f64> = res.contributors().iter().map(|c| c.power).collect();
        for w in powers.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn ground_output_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.resistor("R1", a, Circuit::GROUND, 1e3);
        let op = DcAnalysis::new().run(&ckt).unwrap();
        assert!(matches!(
            NoiseAnalysis::new(vec![1e3]).run(&ckt, &op, Circuit::GROUND),
            Err(SimError::BadRequest { .. })
        ));
    }
}
