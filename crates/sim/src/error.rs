use std::error::Error;
use std::fmt;

use maopt_linalg::LinalgError;

/// Errors reported by the circuit analyses.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// Newton–Raphson failed to converge within the iteration budget, even
    /// after gmin and source stepping.
    NoConvergence {
        /// Which analysis failed, e.g. `"dc"` or `"tran @ t=1.5e-6"`.
        analysis: String,
        /// Iterations spent before giving up.
        iterations: usize,
    },
    /// The MNA matrix was singular — usually a floating node or a loop of
    /// voltage sources.
    SingularMatrix {
        /// Which analysis hit the singularity.
        analysis: String,
    },
    /// The netlist is malformed (unknown node, non-positive element value…).
    BadNetlist {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// An analysis was asked for a quantity it cannot produce
    /// (e.g. noise at a node with no DC path).
    BadRequest {
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoConvergence {
                analysis,
                iterations,
            } => {
                write!(
                    f,
                    "{analysis} analysis failed to converge after {iterations} iterations"
                )
            }
            SimError::SingularMatrix { analysis } => {
                write!(
                    f,
                    "singular MNA matrix in {analysis} analysis (floating node?)"
                )
            }
            SimError::BadNetlist { reason } => write!(f, "bad netlist: {reason}"),
            SimError::BadRequest { reason } => write!(f, "bad request: {reason}"),
        }
    }
}

impl Error for SimError {}

impl From<LinalgError> for SimError {
    fn from(e: LinalgError) -> Self {
        match e {
            LinalgError::Singular { .. } => SimError::SingularMatrix {
                analysis: "linear solve".into(),
            },
            other => SimError::BadNetlist {
                reason: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::NoConvergence {
            analysis: "dc".into(),
            iterations: 100,
        };
        assert!(e.to_string().contains("dc"));
        assert!(e.to_string().contains("100"));
        let e = SimError::SingularMatrix {
            analysis: "ac".into(),
        };
        assert!(e.to_string().contains("floating node"));
    }

    #[test]
    fn from_linalg_singular() {
        let e: SimError = LinalgError::Singular { pivot: 2 }.into();
        assert!(matches!(e, SimError::SingularMatrix { .. }));
    }

    #[test]
    fn error_trait_object_usable() {
        let e: Box<dyn Error + Send + Sync> = Box::new(SimError::BadNetlist {
            reason: "negative resistor".into(),
        });
        assert!(e.to_string().contains("negative resistor"));
    }
}
