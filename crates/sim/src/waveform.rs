/// Time-dependent value of an independent source during transient analysis.
///
/// DC and AC analyses use the source's dedicated `dc` / `ac_mag` fields;
/// the waveform only drives [`crate::analysis::tran`].
///
/// # Example
///
/// ```
/// use maopt_sim::Waveform;
///
/// let pulse = Waveform::pulse(0.0, 1.0, 1e-6, 1e-9, 1e-9, 5e-6, 10e-6);
/// assert_eq!(pulse.value(0.0), 0.0);
/// assert_eq!(pulse.value(2e-6), 1.0);   // inside the pulse
/// assert_eq!(pulse.value(8e-6), 0.0);   // after pulse width + fall
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// SPICE-style PULSE source.
    Pulse {
        /// Initial value.
        v1: f64,
        /// Pulsed value.
        v2: f64,
        /// Delay before the first edge, seconds.
        delay: f64,
        /// Rise time, seconds.
        rise: f64,
        /// Fall time, seconds.
        fall: f64,
        /// Pulse width at `v2`, seconds.
        width: f64,
        /// Period; `f64::INFINITY` for a single pulse.
        period: f64,
    },
    /// Piece-wise linear: sorted `(time, value)` breakpoints. Values before
    /// the first point and after the last are held constant.
    Pwl(Vec<(f64, f64)>),
    /// Sinusoid `offset + amplitude·sin(2πf·(t − delay))`, zero before `delay`.
    Sine {
        /// DC offset.
        offset: f64,
        /// Peak amplitude.
        amplitude: f64,
        /// Frequency in hertz.
        freq: f64,
        /// Start delay in seconds.
        delay: f64,
    },
}

impl Waveform {
    /// Convenience constructor for [`Waveform::Pulse`].
    pub fn pulse(
        v1: f64,
        v2: f64,
        delay: f64,
        rise: f64,
        fall: f64,
        width: f64,
        period: f64,
    ) -> Self {
        Waveform::Pulse {
            v1,
            v2,
            delay,
            rise,
            fall,
            width,
            period,
        }
    }

    /// Builds a PWL waveform, sorting the breakpoints by time.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty.
    pub fn pwl(mut points: Vec<(f64, f64)>) -> Self {
        assert!(!points.is_empty(), "PWL waveform needs at least one point");
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("PWL time must not be NaN"));
        Waveform::Pwl(points)
    }

    /// Value at time `t` (seconds).
    pub fn value(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse {
                v1,
                v2,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *v1;
                }
                let mut tau = t - delay;
                if period.is_finite() && *period > 0.0 {
                    tau %= period;
                }
                // Guard against zero rise/fall by treating them as 1 ps.
                let rise = rise.max(1e-12);
                let fall = fall.max(1e-12);
                if tau < rise {
                    v1 + (v2 - v1) * tau / rise
                } else if tau < rise + width {
                    *v2
                } else if tau < rise + width + fall {
                    v2 + (v1 - v2) * (tau - rise - width) / fall
                } else {
                    *v1
                }
            }
            Waveform::Pwl(points) => {
                if t <= points[0].0 {
                    return points[0].1;
                }
                if t >= points[points.len() - 1].0 {
                    return points[points.len() - 1].1;
                }
                // Find the surrounding segment.
                let idx = points.partition_point(|&(pt, _)| pt <= t);
                let (t0, v0) = points[idx - 1];
                let (t1, v1) = points[idx];
                if t1 == t0 {
                    v1
                } else {
                    v0 + (v1 - v0) * (t - t0) / (t1 - t0)
                }
            }
            Waveform::Sine {
                offset,
                amplitude,
                freq,
                delay,
            } => {
                if t < *delay {
                    *offset
                } else {
                    offset + amplitude * (2.0 * std::f64::consts::PI * freq * (t - delay)).sin()
                }
            }
        }
    }

    /// Value at `t = 0`, used as the transient initial condition.
    pub fn initial_value(&self) -> f64 {
        self.value(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = Waveform::Dc(3.3);
        assert_eq!(w.value(0.0), 3.3);
        assert_eq!(w.value(1.0), 3.3);
    }

    #[test]
    fn pulse_edges() {
        let w = Waveform::pulse(0.0, 2.0, 1.0, 0.5, 0.5, 2.0, f64::INFINITY);
        assert_eq!(w.value(0.5), 0.0); // before delay
        assert_eq!(w.value(1.25), 1.0); // mid-rise
        assert_eq!(w.value(2.0), 2.0); // plateau
        assert_eq!(w.value(3.75), 1.0); // mid-fall
        assert_eq!(w.value(5.0), 0.0); // after
    }

    #[test]
    fn pulse_periodic_repeats() {
        let w = Waveform::pulse(0.0, 1.0, 0.0, 0.1, 0.1, 0.3, 1.0);
        assert_eq!(w.value(0.2), 1.0);
        assert_eq!(w.value(1.2), 1.0); // next period
        assert_eq!(w.value(0.7), 0.0);
        assert_eq!(w.value(1.7), 0.0);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = Waveform::pwl(vec![(1.0, 0.0), (2.0, 10.0)]);
        assert_eq!(w.value(0.0), 0.0); // clamp left
        assert_eq!(w.value(1.5), 5.0); // interior
        assert_eq!(w.value(3.0), 10.0); // clamp right
    }

    #[test]
    fn pwl_sorts_points() {
        let w = Waveform::pwl(vec![(2.0, 10.0), (1.0, 0.0)]);
        assert_eq!(w.value(1.5), 5.0);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_pwl_panics() {
        let _ = Waveform::pwl(vec![]);
    }

    #[test]
    fn sine_starts_after_delay() {
        let w = Waveform::Sine {
            offset: 1.0,
            amplitude: 0.5,
            freq: 1.0,
            delay: 1.0,
        };
        assert_eq!(w.value(0.5), 1.0);
        assert!((w.value(1.25) - 1.5).abs() < 1e-12); // quarter period
    }

    #[test]
    fn initial_value_matches_value_at_zero() {
        let w = Waveform::pulse(0.7, 1.0, 1.0, 0.1, 0.1, 1.0, f64::INFINITY);
        assert_eq!(w.initial_value(), 0.7);
    }
}
