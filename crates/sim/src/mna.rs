//! MNA system layout and shared residual/Jacobian assembly.
//!
//! Unknown ordering: node voltages (all nodes except ground, in creation
//! order) followed by one branch current per voltage-defined element
//! (independent voltage sources and VCVS).
//!
//! The nonlinear analyses use the *residual* formulation: `f(x)` collects
//! KCL sums (current leaving a node is positive) and branch voltage
//! equations, and Newton solves `J·Δx = −f`.

use maopt_linalg::{CMat, Complex, Mat};

use crate::analysis::tran::Integrator;
use crate::circuit::{Circuit, Element, Node};
use crate::mosfet::MosOp;
use crate::mosfet_batch::{DesignPoint, MosBatch};

/// Index map of the MNA unknown vector.
#[derive(Debug, Clone)]
pub(crate) struct Layout {
    /// Number of node-voltage unknowns (node count excluding ground).
    pub n_node_unknowns: usize,
    /// Total unknowns (nodes + branches).
    pub n_unknowns: usize,
    /// Per-element branch unknown index (voltage-defined elements only).
    pub branch_of: Vec<Option<usize>>,
    /// Element indices of MOSFETs, in element order.
    pub mos_elems: Vec<usize>,
}

impl Layout {
    pub fn new(ckt: &Circuit) -> Layout {
        let n_node_unknowns = ckt.node_count() - 1;
        let mut branch_of = vec![None; ckt.elements().len()];
        let mut mos_elems = Vec::new();
        let mut next = n_node_unknowns;
        for (i, e) in ckt.elements().iter().enumerate() {
            match e {
                Element::Vsource { .. } | Element::Vcvs { .. } | Element::Inductor { .. } => {
                    branch_of[i] = Some(next);
                    next += 1;
                }
                Element::Mosfet { .. } => mos_elems.push(i),
                _ => {}
            }
        }
        Layout {
            n_node_unknowns,
            n_unknowns: next,
            branch_of,
            mos_elems,
        }
    }
}

/// Node voltage from the unknown vector (ground → 0).
pub(crate) fn volt(x: &[f64], n: Node) -> f64 {
    match n.unknown() {
        Some(i) => x[i],
        None => 0.0,
    }
}

// ---------------------------------------------------------------------------
// Stamp targets
// ---------------------------------------------------------------------------
//
// The assembly routines write Jacobian entries through the `Stamp` trait
// (`CStamp` for the complex AC system) instead of a concrete matrix. Three
// backends exist:
//
// * `Mat` / `CMat` — the dense debug path, exactly the old behavior;
// * `StampCollector` / `CStampCollector` — record the `(row, col)` call
//   sequence once per topology (values discarded) to build the cached
//   `SparsityPattern` and stamp-slot maps in `crate::topology`;
// * `SlotStamp` / `CSlotStamp` — replay a collected sequence as flat
//   `vals[slot] += v` writes into a CSC value array; the hot path.
//
// For the slot replay to be sound the stamp sequence must be a pure
// function of circuit *structure* (never of values, bias, time, or step
// size). This is why the gmin stamp below is unconditional and why every
// data-dependent quantity only affects stamped *values*.

/// Write target of the real-valued assembly routines.
pub(crate) trait Stamp {
    /// Adds `v` at `(r, c)` of the Jacobian.
    fn add(&mut self, r: usize, c: usize, v: f64);
}

impl Stamp for Mat {
    fn add(&mut self, r: usize, c: usize, v: f64) {
        self[(r, c)] += v;
    }
}

/// Records the `(row, col)` stamp sequence of an assembly (values are
/// discarded). Used once per topology to build the sparsity pattern and
/// the slot maps.
#[derive(Debug, Default)]
pub(crate) struct StampCollector {
    pub entries: Vec<(usize, usize)>,
}

impl Stamp for StampCollector {
    fn add(&mut self, r: usize, c: usize, _v: f64) {
        self.entries.push((r, c));
    }
}

/// Replays a collected stamp sequence as flat writes into a CSC value
/// array: the k-th `add` call lands in `vals[slots[k]]`.
pub(crate) struct SlotStamp<'a> {
    vals: &'a mut [f64],
    slots: &'a [u32],
    cursor: usize,
}

impl<'a> SlotStamp<'a> {
    pub fn new(vals: &'a mut [f64], slots: &'a [u32]) -> SlotStamp<'a> {
        SlotStamp {
            vals,
            slots,
            cursor: 0,
        }
    }

    /// Asserts the assembly made exactly as many stamps as were collected
    /// at topology-build time — any drift means the stamp sequence is not
    /// the pure function of structure the slot replay relies on.
    pub fn finish(self) {
        assert_eq!(self.cursor, self.slots.len(), "stamp sequence drift");
    }
}

impl Stamp for SlotStamp<'_> {
    fn add(&mut self, _r: usize, _c: usize, v: f64) {
        self.vals[self.slots[self.cursor] as usize] += v;
        self.cursor += 1;
    }
}

/// Write target of the complex (AC) assembly; see [`Stamp`].
pub(crate) trait CStamp {
    /// Adds `v` at `(r, c)` of the complex system matrix.
    fn add(&mut self, r: usize, c: usize, v: Complex);
}

impl CStamp for CMat {
    fn add(&mut self, r: usize, c: usize, v: Complex) {
        self[(r, c)] += v;
    }
}

/// Complex twin of [`StampCollector`].
#[derive(Debug, Default)]
pub(crate) struct CStampCollector {
    pub entries: Vec<(usize, usize)>,
}

impl CStamp for CStampCollector {
    fn add(&mut self, r: usize, c: usize, _v: Complex) {
        self.entries.push((r, c));
    }
}

/// Complex twin of [`SlotStamp`].
pub(crate) struct CSlotStamp<'a> {
    vals: &'a mut [Complex],
    slots: &'a [u32],
    cursor: usize,
}

impl<'a> CSlotStamp<'a> {
    pub fn new(vals: &'a mut [Complex], slots: &'a [u32]) -> CSlotStamp<'a> {
        CSlotStamp {
            vals,
            slots,
            cursor: 0,
        }
    }

    /// See [`SlotStamp::finish`].
    pub fn finish(self) {
        assert_eq!(self.cursor, self.slots.len(), "stamp sequence drift");
    }
}

impl CStamp for CSlotStamp<'_> {
    fn add(&mut self, _r: usize, _c: usize, v: Complex) {
        self.vals[self.slots[self.cursor] as usize] += v;
        self.cursor += 1;
    }
}

/// How the resistive assembly obtains MOSFET operating points.
#[derive(Debug)]
pub(crate) enum MosOpsMode<'a> {
    /// Evaluate each device inline while assembling (used by the topology
    /// collection pass and the standalone assembly tests).
    Inline,
    /// Use precomputed operating points, in `layout.mos_elems` order — the
    /// batched hot path (see [`eval_mosfets_batched`]).
    Precomputed(&'a [MosOp]),
}

/// A capacitance extracted from the netlist (explicit capacitors plus the
/// four intrinsic MOSFET capacitances), used by AC and transient analyses.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CapSpec {
    pub a: Node,
    pub b: Node,
    pub farads: f64,
}

/// An inductor extracted from the netlist, with its branch unknown.
/// (The node incidence is already stamped by the resistive assembly; the
/// transient companion only needs `L` and the branch index.)
#[derive(Debug, Clone, Copy)]
pub(crate) struct IndSpec {
    pub henries: f64,
    /// Index of the branch-current unknown.
    pub branch: usize,
}

/// Collects every inductor in the circuit.
pub(crate) fn ind_list(ckt: &Circuit, layout: &Layout) -> Vec<IndSpec> {
    ckt.elements()
        .iter()
        .enumerate()
        .filter_map(|(ei, e)| match e {
            Element::Inductor { henries, .. } => Some(IndSpec {
                henries: *henries,
                branch: layout.branch_of[ei].expect("inductor has a branch"),
            }),
            _ => None,
        })
        .collect()
}

/// Collects every capacitance in the circuit.
pub(crate) fn cap_list(ckt: &Circuit) -> Vec<CapSpec> {
    let mut caps = Vec::new();
    for e in ckt.elements() {
        match e {
            Element::Capacitor { a, b, farads, .. } => {
                caps.push(CapSpec {
                    a: *a,
                    b: *b,
                    farads: *farads,
                });
            }
            Element::Mosfet {
                d, g, s, b, inst, ..
            } => {
                let (w, l, m) = (inst.w, inst.l, inst.m);
                caps.push(CapSpec {
                    a: *g,
                    b: *s,
                    farads: inst.model.cgs(w, l, m),
                });
                caps.push(CapSpec {
                    a: *g,
                    b: *d,
                    farads: inst.model.cgd(w, l, m),
                });
                caps.push(CapSpec {
                    a: *d,
                    b: *b,
                    farads: inst.model.cdb(w, l, m),
                });
                caps.push(CapSpec {
                    a: *s,
                    b: *b,
                    farads: inst.model.csb(w, l, m),
                });
            }
            _ => {}
        }
    }
    caps
}

/// Value of an independent source: waveform at `time` when both are present,
/// otherwise the DC value, scaled by `source_scale` (used by source
/// stepping).
fn source_value(dc: f64, waveform: &Option<crate::Waveform>, time: Option<f64>, scale: f64) -> f64 {
    let raw = match (waveform, time) {
        (Some(wf), Some(t)) => wf.value(t),
        _ => dc,
    };
    raw * scale
}

/// Assembles the resistive (memoryless) part of the system into `f`/`jac`,
/// which must be pre-zeroed with dimension `layout.n_unknowns`.
///
/// The stamp call sequence on `jac` is a pure function of the circuit
/// structure (see the `Stamp` module comment); all value dependence is in
/// the stamped numbers.
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble_resistive(
    ckt: &Circuit,
    layout: &Layout,
    x: &[f64],
    gmin: f64,
    source_scale: f64,
    time: Option<f64>,
    f: &mut [f64],
    jac: &mut dyn Stamp,
    mos_ops: MosOpsMode<'_>,
) {
    // Convenience closures over the optional ground row/col.
    let add_f = |f: &mut [f64], n: Node, v: f64| {
        if let Some(i) = n.unknown() {
            f[i] += v;
        }
    };
    let add_j = |jac: &mut dyn Stamp, r: Node, c: Node, v: f64| {
        if let (Some(ri), Some(ci)) = (r.unknown(), c.unknown()) {
            jac.add(ri, ci, v);
        }
    };

    let mut mos_ord = 0usize;
    for (ei, e) in ckt.elements().iter().enumerate() {
        match e {
            Element::Resistor { a, b, ohms, .. } => {
                let g = 1.0 / ohms;
                let i = g * (volt(x, *a) - volt(x, *b));
                add_f(f, *a, i);
                add_f(f, *b, -i);
                add_j(jac, *a, *a, g);
                add_j(jac, *a, *b, -g);
                add_j(jac, *b, *a, -g);
                add_j(jac, *b, *b, g);
            }
            Element::Capacitor { .. } => {} // open in the resistive network
            Element::Inductor { a, b, .. } => {
                // DC: a short (v_a = v_b) carrying branch current x[k].
                // Transient analysis adds the companion terms on top.
                let k = layout.branch_of[ei].expect("inductor has a branch");
                let ib = x[k];
                add_f(f, *a, ib);
                add_f(f, *b, -ib);
                f[k] += volt(x, *a) - volt(x, *b);
                if let Some(ai) = a.unknown() {
                    jac.add(ai, k, 1.0);
                    jac.add(k, ai, 1.0);
                }
                if let Some(bi) = b.unknown() {
                    jac.add(bi, k, -1.0);
                    jac.add(k, bi, -1.0);
                }
            }
            Element::Isource {
                p, n, dc, waveform, ..
            } => {
                let i = source_value(*dc, waveform, time, source_scale);
                add_f(f, *p, i);
                add_f(f, *n, -i);
            }
            Element::Vsource {
                p, n, dc, waveform, ..
            } => {
                let k = layout.branch_of[ei].expect("vsource has a branch");
                let v = source_value(*dc, waveform, time, source_scale);
                let ib = x[k];
                add_f(f, *p, ib);
                add_f(f, *n, -ib);
                f[k] += (volt(x, *p) - volt(x, *n)) - v;
                if let Some(pi) = p.unknown() {
                    jac.add(pi, k, 1.0);
                    jac.add(k, pi, 1.0);
                }
                if let Some(ni) = n.unknown() {
                    jac.add(ni, k, -1.0);
                    jac.add(k, ni, -1.0);
                }
            }
            Element::Vcvs {
                p, n, cp, cn, gain, ..
            } => {
                let k = layout.branch_of[ei].expect("vcvs has a branch");
                let ib = x[k];
                add_f(f, *p, ib);
                add_f(f, *n, -ib);
                f[k] += (volt(x, *p) - volt(x, *n)) - gain * (volt(x, *cp) - volt(x, *cn));
                if let Some(pi) = p.unknown() {
                    jac.add(pi, k, 1.0);
                    jac.add(k, pi, 1.0);
                }
                if let Some(ni) = n.unknown() {
                    jac.add(ni, k, -1.0);
                    jac.add(k, ni, -1.0);
                }
                if let Some(ci) = cp.unknown() {
                    jac.add(k, ci, -*gain);
                }
                if let Some(ci) = cn.unknown() {
                    jac.add(k, ci, *gain);
                }
            }
            Element::Vccs {
                p, n, cp, cn, gm, ..
            } => {
                let i = gm * (volt(x, *cp) - volt(x, *cn));
                add_f(f, *p, i);
                add_f(f, *n, -i);
                add_j(jac, *p, *cp, *gm);
                add_j(jac, *p, *cn, -*gm);
                add_j(jac, *n, *cp, -*gm);
                add_j(jac, *n, *cn, *gm);
            }
            Element::Mosfet {
                d, g, s, b, inst, ..
            } => {
                let op = match &mos_ops {
                    MosOpsMode::Precomputed(ops) => ops[mos_ord],
                    MosOpsMode::Inline => inst.model.eval(
                        volt(x, *d),
                        volt(x, *g),
                        volt(x, *s),
                        volt(x, *b),
                        inst.w,
                        inst.l,
                        inst.m,
                    ),
                };
                mos_ord += 1;
                add_f(f, *d, op.id);
                add_f(f, *s, -op.id);
                let dvs = -(op.gm + op.gds + op.gmbs);
                for (row, sign) in [(*d, 1.0), (*s, -1.0)] {
                    add_j(jac, row, *d, sign * op.gds);
                    add_j(jac, row, *g, sign * op.gm);
                    add_j(jac, row, *s, sign * dvs);
                    add_j(jac, row, *b, sign * op.gmbs);
                }
            }
        }
    }

    // gmin from every node to ground stabilises floating nodes. Stamped
    // unconditionally (adding 0.0 when gmin is 0.0) so the stamp sequence
    // does not depend on the gmin value.
    for i in 0..layout.n_node_unknowns {
        f[i] += gmin * x[i];
        jac.add(i, i, gmin);
    }
}

/// Evaluates every MOSFET of the circuit at `x` via the batched SoA
/// evaluator, filling `out` in `layout.mos_elems` order (the order
/// [`MosOpsMode::Precomputed`] expects).
///
/// Consecutive devices sharing one model card are evaluated as one batch,
/// amortizing the per-card precompute; results are bitwise-identical to
/// inline evaluation.
pub(crate) fn eval_mosfets_batched(
    ckt: &Circuit,
    layout: &Layout,
    x: &[f64],
    scratch: &mut MosEvalScratch,
    out: &mut Vec<MosOp>,
) {
    out.clear();
    let elems = ckt.elements();
    let mos = &layout.mos_elems;
    let inst_of = |ei: usize| match &elems[ei] {
        Element::Mosfet { inst, .. } => inst,
        _ => unreachable!("mos_elems indexes MOSFETs"),
    };
    let mut i = 0;
    while i < mos.len() {
        let first = inst_of(mos[i]);
        let mut j = i + 1;
        while j < mos.len() && inst_of(mos[j]).model == first.model {
            j += 1;
        }
        scratch.pts.clear();
        for &ei in &mos[i..j] {
            if let Element::Mosfet {
                d, g, s, b, inst, ..
            } = &elems[ei]
            {
                scratch.pts.push(DesignPoint {
                    vd: volt(x, *d),
                    vg: volt(x, *g),
                    vs: volt(x, *s),
                    vb: volt(x, *b),
                    w: inst.w,
                    l: inst.l,
                    m: inst.m,
                });
            }
        }
        first
            .model
            .eval_batch_into(&scratch.pts, &mut scratch.soa, out);
        i = j;
    }
}

/// Reusable buffers for [`eval_mosfets_batched`].
#[derive(Debug, Default)]
pub(crate) struct MosEvalScratch {
    pts: Vec<DesignPoint>,
    soa: MosBatch,
}

/// Stamps the transient companion models (capacitors and inductors) on top
/// of the resistive assembly. Shared by the transient Newton loop and the
/// topology collection pass; like [`assemble_resistive`], its stamp
/// sequence is a pure function of circuit structure.
#[allow(clippy::too_many_arguments)]
pub(crate) fn stamp_reactive(
    caps: &[CapSpec],
    inds: &[IndSpec],
    method: Integrator,
    h: f64,
    x: &[f64],
    cap_v: &[f64],
    cap_i: &[f64],
    ind_i: &[f64],
    ind_v: &[f64],
    f: &mut [f64],
    jac: &mut dyn Stamp,
) {
    // Capacitor companion models.
    for (k, c) in caps.iter().enumerate() {
        let v = volt(x, c.a) - volt(x, c.b);
        let (geq, ieq) = match method {
            Integrator::Trapezoidal => {
                let geq = 2.0 * c.farads / h;
                (geq, -geq * cap_v[k] - cap_i[k])
            }
            Integrator::BackwardEuler => {
                let geq = c.farads / h;
                (geq, -geq * cap_v[k])
            }
        };
        let i = geq * v + ieq;
        if let Some(ai) = c.a.unknown() {
            f[ai] += i;
            jac.add(ai, ai, geq);
            if let Some(bi) = c.b.unknown() {
                jac.add(ai, bi, -geq);
            }
        }
        if let Some(bi) = c.b.unknown() {
            f[bi] -= i;
            jac.add(bi, bi, geq);
            if let Some(ai) = c.a.unknown() {
                jac.add(bi, ai, -geq);
            }
        }
    }

    // Inductor companion models, correcting the DC short stamped by the
    // resistive assembly: v − (αL/h)·i + rhs = 0 with α = 2 (trap) or
    // 1 (BE).
    for (k, l) in inds.iter().enumerate() {
        let (geq, rhs) = match method {
            Integrator::Trapezoidal => {
                let geq = 2.0 * l.henries / h;
                (geq, geq * ind_i[k] + ind_v[k])
            }
            Integrator::BackwardEuler => {
                let geq = l.henries / h;
                (geq, geq * ind_i[k])
            }
        };
        f[l.branch] += -geq * x[l.branch] + rhs;
        jac.add(l.branch, l.branch, -geq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_counts_unknowns() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("V1", a, Circuit::GROUND, 1.0);
        ckt.resistor("R1", a, b, 1e3);
        ckt.vcvs("E1", b, Circuit::GROUND, a, Circuit::GROUND, 2.0);
        let layout = Layout::new(&ckt);
        assert_eq!(layout.n_node_unknowns, 2);
        assert_eq!(layout.n_unknowns, 4); // 2 nodes + 2 branches
        assert_eq!(layout.branch_of[0], Some(2));
        assert_eq!(layout.branch_of[2], Some(3));
    }

    #[test]
    fn cap_list_includes_mosfet_parasitics() {
        let mut ckt = Circuit::new();
        let d = ckt.node("d");
        let g = ckt.node("g");
        ckt.capacitor("C1", d, Circuit::GROUND, 1e-12);
        ckt.mosfet(
            "M1",
            d,
            g,
            Circuit::GROUND,
            Circuit::GROUND,
            crate::MosInstance {
                model: crate::nmos_180nm(),
                w: 1e-6,
                l: 1e-6,
                m: 1.0,
            },
        );
        let caps = cap_list(&ckt);
        assert_eq!(caps.len(), 1 + 4);
        assert!(caps.iter().all(|c| c.farads > 0.0));
    }

    #[test]
    fn resistor_stamp_balances() {
        // Single resistor from node a to ground with gmin: residual at the
        // solution of a trivial divider must be zero.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource("V1", a, Circuit::GROUND, 2.0);
        ckt.resistor("R1", a, Circuit::GROUND, 1e3);
        let layout = Layout::new(&ckt);
        // x = [v_a, i_branch]; at the solution v_a = 2, i_r = 2 mA so the
        // branch current must be −2 mA (current enters the + terminal).
        let x = [2.0, -2e-3];
        let mut f = vec![0.0; 2];
        let mut jac = Mat::zeros(2, 2);
        assemble_resistive(
            &ckt,
            &layout,
            &x,
            0.0,
            1.0,
            None,
            &mut f,
            &mut jac,
            MosOpsMode::Inline,
        );
        assert!(f.iter().all(|r| r.abs() < 1e-15), "residual {f:?}");
    }

    #[test]
    fn source_scale_scales_sources_only() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.isource("I1", Circuit::GROUND, a, 1e-3);
        ckt.resistor("R1", a, Circuit::GROUND, 1e3);
        let layout = Layout::new(&ckt);
        let x = [0.0];
        let mut f = vec![0.0; 1];
        let mut jac = Mat::zeros(1, 1);
        assemble_resistive(
            &ckt,
            &layout,
            &x,
            0.0,
            0.5,
            None,
            &mut f,
            &mut jac,
            MosOpsMode::Inline,
        );
        // Half the current is injected into node a.
        assert!((f[0] + 0.5e-3).abs() < 1e-18);
    }

    #[test]
    fn waveform_overrides_dc_when_time_given() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let v = ckt.vsource("V1", a, Circuit::GROUND, 1.0);
        ckt.set_waveform(v, crate::Waveform::Dc(5.0));
        ckt.resistor("R1", a, Circuit::GROUND, 1.0);
        let layout = Layout::new(&ckt);
        let x = [0.0, 0.0];
        let mut f = vec![0.0; 2];
        let mut jac = Mat::zeros(2, 2);
        assemble_resistive(
            &ckt,
            &layout,
            &x,
            0.0,
            1.0,
            Some(0.0),
            &mut f,
            &mut jac,
            MosOpsMode::Inline,
        );
        // Branch equation: (0 − 0) − 5 = −5
        assert!((f[1] + 5.0).abs() < 1e-15);
    }
}
