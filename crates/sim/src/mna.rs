//! MNA system layout and shared residual/Jacobian assembly.
//!
//! Unknown ordering: node voltages (all nodes except ground, in creation
//! order) followed by one branch current per voltage-defined element
//! (independent voltage sources and VCVS).
//!
//! The nonlinear analyses use the *residual* formulation: `f(x)` collects
//! KCL sums (current leaving a node is positive) and branch voltage
//! equations, and Newton solves `J·Δx = −f`.

use maopt_linalg::Mat;

use crate::circuit::{Circuit, Element, Node};
use crate::mosfet::MosOp;

/// Index map of the MNA unknown vector.
#[derive(Debug, Clone)]
pub(crate) struct Layout {
    /// Number of node-voltage unknowns (node count excluding ground).
    pub n_node_unknowns: usize,
    /// Total unknowns (nodes + branches).
    pub n_unknowns: usize,
    /// Per-element branch unknown index (voltage-defined elements only).
    pub branch_of: Vec<Option<usize>>,
    /// Element indices of MOSFETs, in element order.
    pub mos_elems: Vec<usize>,
}

impl Layout {
    pub fn new(ckt: &Circuit) -> Layout {
        let n_node_unknowns = ckt.node_count() - 1;
        let mut branch_of = vec![None; ckt.elements().len()];
        let mut mos_elems = Vec::new();
        let mut next = n_node_unknowns;
        for (i, e) in ckt.elements().iter().enumerate() {
            match e {
                Element::Vsource { .. } | Element::Vcvs { .. } | Element::Inductor { .. } => {
                    branch_of[i] = Some(next);
                    next += 1;
                }
                Element::Mosfet { .. } => mos_elems.push(i),
                _ => {}
            }
        }
        Layout {
            n_node_unknowns,
            n_unknowns: next,
            branch_of,
            mos_elems,
        }
    }
}

/// Node voltage from the unknown vector (ground → 0).
pub(crate) fn volt(x: &[f64], n: Node) -> f64 {
    match n.unknown() {
        Some(i) => x[i],
        None => 0.0,
    }
}

/// A capacitance extracted from the netlist (explicit capacitors plus the
/// four intrinsic MOSFET capacitances), used by AC and transient analyses.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CapSpec {
    pub a: Node,
    pub b: Node,
    pub farads: f64,
}

/// An inductor extracted from the netlist, with its branch unknown.
/// (The node incidence is already stamped by the resistive assembly; the
/// transient companion only needs `L` and the branch index.)
#[derive(Debug, Clone, Copy)]
pub(crate) struct IndSpec {
    pub henries: f64,
    /// Index of the branch-current unknown.
    pub branch: usize,
}

/// Collects every inductor in the circuit.
pub(crate) fn ind_list(ckt: &Circuit, layout: &Layout) -> Vec<IndSpec> {
    ckt.elements()
        .iter()
        .enumerate()
        .filter_map(|(ei, e)| match e {
            Element::Inductor { henries, .. } => Some(IndSpec {
                henries: *henries,
                branch: layout.branch_of[ei].expect("inductor has a branch"),
            }),
            _ => None,
        })
        .collect()
}

/// Collects every capacitance in the circuit.
pub(crate) fn cap_list(ckt: &Circuit) -> Vec<CapSpec> {
    let mut caps = Vec::new();
    for e in ckt.elements() {
        match e {
            Element::Capacitor { a, b, farads, .. } => {
                caps.push(CapSpec {
                    a: *a,
                    b: *b,
                    farads: *farads,
                });
            }
            Element::Mosfet {
                d, g, s, b, inst, ..
            } => {
                let (w, l, m) = (inst.w, inst.l, inst.m);
                caps.push(CapSpec {
                    a: *g,
                    b: *s,
                    farads: inst.model.cgs(w, l, m),
                });
                caps.push(CapSpec {
                    a: *g,
                    b: *d,
                    farads: inst.model.cgd(w, l, m),
                });
                caps.push(CapSpec {
                    a: *d,
                    b: *b,
                    farads: inst.model.cdb(w, l, m),
                });
                caps.push(CapSpec {
                    a: *s,
                    b: *b,
                    farads: inst.model.csb(w, l, m),
                });
            }
            _ => {}
        }
    }
    caps
}

/// Value of an independent source: waveform at `time` when both are present,
/// otherwise the DC value, scaled by `source_scale` (used by source
/// stepping).
fn source_value(dc: f64, waveform: &Option<crate::Waveform>, time: Option<f64>, scale: f64) -> f64 {
    let raw = match (waveform, time) {
        (Some(wf), Some(t)) => wf.value(t),
        _ => dc,
    };
    raw * scale
}

/// Assembles the resistive (memoryless) part of the system into `f`/`jac`,
/// which must be pre-zeroed with dimension `layout.n_unknowns`.
///
/// When `mos_ops` is provided it is filled with the operating point of each
/// MOSFET in `layout.mos_elems` order.
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble_resistive(
    ckt: &Circuit,
    layout: &Layout,
    x: &[f64],
    gmin: f64,
    source_scale: f64,
    time: Option<f64>,
    f: &mut [f64],
    jac: &mut Mat,
    mut mos_ops: Option<&mut Vec<MosOp>>,
) {
    // Convenience closures over the optional ground row/col.
    let add_f = |f: &mut [f64], n: Node, v: f64| {
        if let Some(i) = n.unknown() {
            f[i] += v;
        }
    };
    let add_j = |jac: &mut Mat, r: Node, c: Node, v: f64| {
        if let (Some(ri), Some(ci)) = (r.unknown(), c.unknown()) {
            jac[(ri, ci)] += v;
        }
    };

    for (ei, e) in ckt.elements().iter().enumerate() {
        match e {
            Element::Resistor { a, b, ohms, .. } => {
                let g = 1.0 / ohms;
                let i = g * (volt(x, *a) - volt(x, *b));
                add_f(f, *a, i);
                add_f(f, *b, -i);
                add_j(jac, *a, *a, g);
                add_j(jac, *a, *b, -g);
                add_j(jac, *b, *a, -g);
                add_j(jac, *b, *b, g);
            }
            Element::Capacitor { .. } => {} // open in the resistive network
            Element::Inductor { a, b, .. } => {
                // DC: a short (v_a = v_b) carrying branch current x[k].
                // Transient analysis adds the companion terms on top.
                let k = layout.branch_of[ei].expect("inductor has a branch");
                let ib = x[k];
                add_f(f, *a, ib);
                add_f(f, *b, -ib);
                f[k] += volt(x, *a) - volt(x, *b);
                if let Some(ai) = a.unknown() {
                    jac[(ai, k)] += 1.0;
                    jac[(k, ai)] += 1.0;
                }
                if let Some(bi) = b.unknown() {
                    jac[(bi, k)] -= 1.0;
                    jac[(k, bi)] -= 1.0;
                }
            }
            Element::Isource {
                p, n, dc, waveform, ..
            } => {
                let i = source_value(*dc, waveform, time, source_scale);
                add_f(f, *p, i);
                add_f(f, *n, -i);
            }
            Element::Vsource {
                p, n, dc, waveform, ..
            } => {
                let k = layout.branch_of[ei].expect("vsource has a branch");
                let v = source_value(*dc, waveform, time, source_scale);
                let ib = x[k];
                add_f(f, *p, ib);
                add_f(f, *n, -ib);
                f[k] += (volt(x, *p) - volt(x, *n)) - v;
                if let Some(pi) = p.unknown() {
                    jac[(pi, k)] += 1.0;
                    jac[(k, pi)] += 1.0;
                }
                if let Some(ni) = n.unknown() {
                    jac[(ni, k)] -= 1.0;
                    jac[(k, ni)] -= 1.0;
                }
            }
            Element::Vcvs {
                p, n, cp, cn, gain, ..
            } => {
                let k = layout.branch_of[ei].expect("vcvs has a branch");
                let ib = x[k];
                add_f(f, *p, ib);
                add_f(f, *n, -ib);
                f[k] += (volt(x, *p) - volt(x, *n)) - gain * (volt(x, *cp) - volt(x, *cn));
                if let Some(pi) = p.unknown() {
                    jac[(pi, k)] += 1.0;
                    jac[(k, pi)] += 1.0;
                }
                if let Some(ni) = n.unknown() {
                    jac[(ni, k)] -= 1.0;
                    jac[(k, ni)] -= 1.0;
                }
                if let Some(ci) = cp.unknown() {
                    jac[(k, ci)] -= gain;
                }
                if let Some(ci) = cn.unknown() {
                    jac[(k, ci)] += gain;
                }
            }
            Element::Vccs {
                p, n, cp, cn, gm, ..
            } => {
                let i = gm * (volt(x, *cp) - volt(x, *cn));
                add_f(f, *p, i);
                add_f(f, *n, -i);
                add_j(jac, *p, *cp, *gm);
                add_j(jac, *p, *cn, -*gm);
                add_j(jac, *n, *cp, -*gm);
                add_j(jac, *n, *cn, *gm);
            }
            Element::Mosfet {
                d, g, s, b, inst, ..
            } => {
                let op = inst.model.eval(
                    volt(x, *d),
                    volt(x, *g),
                    volt(x, *s),
                    volt(x, *b),
                    inst.w,
                    inst.l,
                    inst.m,
                );
                add_f(f, *d, op.id);
                add_f(f, *s, -op.id);
                let dvs = -(op.gm + op.gds + op.gmbs);
                for (row, sign) in [(*d, 1.0), (*s, -1.0)] {
                    add_j(jac, row, *d, sign * op.gds);
                    add_j(jac, row, *g, sign * op.gm);
                    add_j(jac, row, *s, sign * dvs);
                    add_j(jac, row, *b, sign * op.gmbs);
                }
                if let Some(ops) = mos_ops.as_deref_mut() {
                    ops.push(op);
                }
            }
        }
    }

    // gmin from every node to ground stabilises floating nodes.
    if gmin > 0.0 {
        for i in 0..layout.n_node_unknowns {
            f[i] += gmin * x[i];
            jac[(i, i)] += gmin;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_counts_unknowns() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("V1", a, Circuit::GROUND, 1.0);
        ckt.resistor("R1", a, b, 1e3);
        ckt.vcvs("E1", b, Circuit::GROUND, a, Circuit::GROUND, 2.0);
        let layout = Layout::new(&ckt);
        assert_eq!(layout.n_node_unknowns, 2);
        assert_eq!(layout.n_unknowns, 4); // 2 nodes + 2 branches
        assert_eq!(layout.branch_of[0], Some(2));
        assert_eq!(layout.branch_of[2], Some(3));
    }

    #[test]
    fn cap_list_includes_mosfet_parasitics() {
        let mut ckt = Circuit::new();
        let d = ckt.node("d");
        let g = ckt.node("g");
        ckt.capacitor("C1", d, Circuit::GROUND, 1e-12);
        ckt.mosfet(
            "M1",
            d,
            g,
            Circuit::GROUND,
            Circuit::GROUND,
            crate::MosInstance {
                model: crate::nmos_180nm(),
                w: 1e-6,
                l: 1e-6,
                m: 1.0,
            },
        );
        let caps = cap_list(&ckt);
        assert_eq!(caps.len(), 1 + 4);
        assert!(caps.iter().all(|c| c.farads > 0.0));
    }

    #[test]
    fn resistor_stamp_balances() {
        // Single resistor from node a to ground with gmin: residual at the
        // solution of a trivial divider must be zero.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource("V1", a, Circuit::GROUND, 2.0);
        ckt.resistor("R1", a, Circuit::GROUND, 1e3);
        let layout = Layout::new(&ckt);
        // x = [v_a, i_branch]; at the solution v_a = 2, i_r = 2 mA so the
        // branch current must be −2 mA (current enters the + terminal).
        let x = [2.0, -2e-3];
        let mut f = vec![0.0; 2];
        let mut jac = Mat::zeros(2, 2);
        assemble_resistive(&ckt, &layout, &x, 0.0, 1.0, None, &mut f, &mut jac, None);
        assert!(f.iter().all(|r| r.abs() < 1e-15), "residual {f:?}");
    }

    #[test]
    fn source_scale_scales_sources_only() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.isource("I1", Circuit::GROUND, a, 1e-3);
        ckt.resistor("R1", a, Circuit::GROUND, 1e3);
        let layout = Layout::new(&ckt);
        let x = [0.0];
        let mut f = vec![0.0; 1];
        let mut jac = Mat::zeros(1, 1);
        assemble_resistive(&ckt, &layout, &x, 0.0, 0.5, None, &mut f, &mut jac, None);
        // Half the current is injected into node a.
        assert!((f[0] + 0.5e-3).abs() < 1e-18);
    }

    #[test]
    fn waveform_overrides_dc_when_time_given() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let v = ckt.vsource("V1", a, Circuit::GROUND, 1.0);
        ckt.set_waveform(v, crate::Waveform::Dc(5.0));
        ckt.resistor("R1", a, Circuit::GROUND, 1.0);
        let layout = Layout::new(&ckt);
        let x = [0.0, 0.0];
        let mut f = vec![0.0; 2];
        let mut jac = Mat::zeros(2, 2);
        assemble_resistive(
            &ckt,
            &layout,
            &x,
            0.0,
            1.0,
            Some(0.0),
            &mut f,
            &mut jac,
            None,
        );
        // Branch equation: (0 − 0) − 5 = −5
        assert!((f[1] + 5.0).abs() < 1e-15);
    }
}
