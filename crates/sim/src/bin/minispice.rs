//! `minispice` — a command-line front end for the `maopt-sim` engine.
//!
//! Reads a SPICE-flavoured netlist (see [`maopt_sim::parse_netlist`]) and
//! runs one analysis:
//!
//! ```text
//! minispice ckt.cir op
//! minispice ckt.cir ac <f_start> <f_stop> <pts/dec> <node> [node…]
//! minispice ckt.cir tran <t_stop> <dt> <node> [node…]
//! minispice ckt.cir noise <f_start> <f_stop> <pts/dec> <out_node>
//! ```
//!
//! Output is plain text (`op`) or CSV on stdout (`ac`, `tran`, `noise`),
//! ready for plotting.

use std::process::ExitCode;

use maopt_sim::analysis::ac::AcAnalysis;
use maopt_sim::analysis::dc::DcAnalysis;
use maopt_sim::analysis::noise::NoiseAnalysis;
use maopt_sim::analysis::tran::TranAnalysis;
use maopt_sim::{parse_netlist, parse_value, Circuit, Element, Node};

fn usage() -> ExitCode {
    eprintln!(
        "usage: minispice <netlist> op\n\
         \x20      minispice <netlist> ac <f_start> <f_stop> <pts/dec> <node> [node...]\n\
         \x20      minispice <netlist> tran <t_stop> <dt> <node> [node...]\n\
         \x20      minispice <netlist> noise <f_start> <f_stop> <pts/dec> <out_node>"
    );
    ExitCode::from(2)
}

fn value_arg(args: &[String], k: usize, what: &str) -> Result<f64, String> {
    args.get(k)
        .and_then(|s| parse_value(s))
        .ok_or_else(|| format!("missing or invalid {what}"))
}

fn node_args(ckt: &Circuit, args: &[String]) -> Result<Vec<(String, Node)>, String> {
    if args.is_empty() {
        return Err("at least one node name required".into());
    }
    args.iter()
        .map(|name| {
            ckt.find_node(name)
                .map(|n| (name.clone(), n))
                .ok_or_else(|| format!("unknown node '{name}'"))
        })
        .collect()
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        return Err("not enough arguments".into());
    }
    let text =
        std::fs::read_to_string(&args[0]).map_err(|e| format!("cannot read {}: {e}", args[0]))?;
    let ckt = parse_netlist(&text).map_err(|e| e.to_string())?;

    match args[1].as_str() {
        "op" => {
            let op = DcAnalysis::new().run(&ckt).map_err(|e| e.to_string())?;
            println!("-- node voltages --");
            for node in ckt.nodes().into_iter().filter(|n| !n.is_ground()) {
                println!("V({}) = {:.6e}", ckt.node_name(node), op.voltage(node));
            }
            println!("-- device operating points --");
            for (id, e) in ckt.elements_with_ids() {
                match e {
                    Element::Mosfet { name, .. } => {
                        let mos = op.mos_op(id).expect("mosfet op");
                        println!(
                            "{name}: Id={:.4e} A  gm={:.4e} S  gds={:.4e} S  region={:?}",
                            mos.id, mos.gm, mos.gds, mos.region
                        );
                    }
                    Element::Vsource { name, .. } => {
                        if let Some(i) = op.branch_current(id) {
                            println!("{name}: I={:.4e} A", i);
                        }
                    }
                    _ => {}
                }
            }
            Ok(())
        }
        "ac" => {
            let f0 = value_arg(&args, 2, "f_start")?;
            let f1 = value_arg(&args, 3, "f_stop")?;
            let ppd = value_arg(&args, 4, "pts/dec")? as usize;
            let nodes = node_args(&ckt, &args[5..])?;
            let op = DcAnalysis::new().run(&ckt).map_err(|e| e.to_string())?;
            let ac = AcAnalysis::log(f0, f1, ppd)
                .run(&ckt, &op)
                .map_err(|e| e.to_string())?;
            print!("freq");
            for (name, _) in &nodes {
                print!(",mag({name}),phase({name})");
            }
            println!();
            for k in 0..ac.len() {
                print!("{:.6e}", ac.freqs()[k]);
                for (_, node) in &nodes {
                    let v = ac.voltage(k, *node);
                    print!(",{:.6e},{:.3}", v.abs(), v.arg_deg());
                }
                println!();
            }
            Ok(())
        }
        "tran" => {
            let t_stop = value_arg(&args, 2, "t_stop")?;
            let dt = value_arg(&args, 3, "dt")?;
            let nodes = node_args(&ckt, &args[4..])?;
            let res = TranAnalysis::new(t_stop, dt)
                .run(&ckt)
                .map_err(|e| e.to_string())?;
            print!("time");
            for (name, _) in &nodes {
                print!(",v({name})");
            }
            println!();
            for k in 0..res.len() {
                print!("{:.6e}", res.times()[k]);
                for (_, node) in &nodes {
                    print!(",{:.6e}", res.voltage_at(k, *node));
                }
                println!();
            }
            Ok(())
        }
        "noise" => {
            let f0 = value_arg(&args, 2, "f_start")?;
            let f1 = value_arg(&args, 3, "f_stop")?;
            let ppd = value_arg(&args, 4, "pts/dec")? as usize;
            let nodes = node_args(&ckt, &args[5..])?;
            let (_, out) = nodes[0];
            let op = DcAnalysis::new().run(&ckt).map_err(|e| e.to_string())?;
            let res = NoiseAnalysis::log(f0, f1, ppd)
                .run(&ckt, &op, out)
                .map_err(|e| e.to_string())?;
            println!("freq,psd_v2_per_hz");
            for (f, p) in res.freqs().iter().zip(res.psd()) {
                println!("{f:.6e},{p:.6e}");
            }
            eprintln!("integrated output noise: {:.4e} Vrms", res.output_rms());
            for c in res.contributors().iter().take(5) {
                eprintln!("  {}: {:.3e} V^2", c.element, c.power);
            }
            Ok(())
        }
        other => Err(format!("unknown analysis '{other}'")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("minispice: {e}");
            usage()
        }
    }
}
