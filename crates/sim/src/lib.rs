//! A from-scratch analog circuit simulator for the MA-Opt reproduction.
//!
//! The paper sizes circuits against Synopsys HSpice and a commercial 180 nm
//! PDK — neither of which is available here — so this crate supplies the
//! simulation substrate: a modified-nodal-analysis (MNA) engine with
//!
//! * **DC operating point** ([`analysis::dc`]) — Newton–Raphson with gmin
//!   stepping and source stepping for robust convergence,
//! * **AC small-signal sweeps** ([`analysis::ac`]) — complex MNA solve of
//!   `G + jωC` around the DC operating point,
//! * **transient analysis** ([`analysis::tran`]) — trapezoidal / backward-
//!   Euler integration with a Newton solve per timestep and step-halving on
//!   non-convergence,
//! * **noise analysis** ([`analysis::noise`]) — thermal and flicker sources
//!   propagated to an output node and integrated over a band,
//! * a smooth **LEVEL-1-style MOSFET** model ([`MosModel`]) with softplus
//!   subthreshold blending, channel-length modulation and body effect,
//!   carrying representative 180 nm parameters.
//!
//! The optimizer only observes `x → f(x)`; what matters for reproducing the
//! paper is that this map has realistic analog-sizing structure, which an
//! MNA-level simulator of the same topologies provides.
//!
//! # Example: resistive divider
//!
//! ```
//! use maopt_sim::{Circuit, analysis::dc::DcAnalysis};
//!
//! # fn main() -> Result<(), maopt_sim::SimError> {
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("vin");
//! let out = ckt.node("out");
//! ckt.vsource("V1", vin, Circuit::GROUND, 10.0);
//! ckt.resistor("R1", vin, out, 1e3);
//! ckt.resistor("R2", out, Circuit::GROUND, 3e3);
//! let op = DcAnalysis::new().run(&ckt)?;
//! assert!((op.voltage(out) - 7.5).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod circuit;
mod error;
mod mna;
mod mosfet;
mod mosfet_batch;
mod netlist;
mod probe;
mod solver;
mod topology;
mod waveform;

pub use circuit::{Circuit, Element, ElementId, MosInstance, Node};
pub use error::SimError;
pub use mosfet::{nmos_180nm, pmos_180nm, MosModel, MosOp, MosPolarity, MosRegion};
pub use mosfet_batch::{DesignPoint, MosBatch};
pub use netlist::{parse_netlist, parse_value};
pub use solver::{SolverKind, WarmstartKind};
pub use waveform::Waveform;

/// Boltzmann constant × 300 K, in joules (used by noise analysis).
pub const KT: f64 = 1.380649e-23 * 300.0;

/// Thermal voltage kT/q at 300 K, in volts.
pub const VT_THERMAL: f64 = 0.025851;
