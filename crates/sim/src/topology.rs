//! Per-topology cache of the sparse-solver data: sparsity pattern,
//! symbolic LU factorization, and the stamp-slot maps that turn assembly
//! into flat writes.
//!
//! Every design of one circuit family (same netlist structure, different
//! component values and device geometries) shares an MNA sparsity
//! pattern, because the stamp call sequences of the assembly routines in
//! [`crate::mna`] are pure functions of structure. MA-Opt evaluates
//! thousands of designs per circuit per round, so the expensive,
//! per-pattern work — pattern construction, maximum matching, fill
//! analysis — is done **once** per topology and shared process-wide:
//!
//! * The cache key is the exact [`Circuit::structure_key`] byte sequence
//!   (element tags + node incidence, no values). Keys are compared
//!   exactly, so two different topologies can never collide.
//! * The cached value holds the union pattern of the resistive, reactive
//!   (transient companion) and AC stamp sequences, one symbolic LU over
//!   that union (shared by DC/transient — real — and AC/noise — complex),
//!   and a slot map per sequence.
//!
//! Determinism: building a topology is itself deterministic (fixed
//! element order, fixed elimination order in
//! [`SymbolicLu::analyze`]), so concurrent builds of the same key
//! produce identical values and the first insert wins harmlessly.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use maopt_linalg::{SparsityPattern, SymbolicLu};

use crate::analysis::ac::assemble_ac;
use crate::analysis::tran::Integrator;
use crate::circuit::Circuit;
use crate::mna::{
    assemble_resistive, cap_list, ind_list, CStampCollector, Layout, MosOpsMode, StampCollector,
};
use crate::mosfet::{MosOp, MosRegion};

/// Cached per-topology sparse-solver data.
#[derive(Debug)]
pub(crate) struct Topology {
    /// Union sparsity pattern of all three stamp sequences.
    pub pattern: Arc<SparsityPattern>,
    /// Symbolic LU over `pattern`; `None` when the pattern is structurally
    /// singular (no perfect row matching) — callers then use the dense
    /// path, which reports the singularity with identical errors.
    pub symbolic: Option<Arc<SymbolicLu>>,
    /// Slot of each `Stamp::add` call of the resistive assembly.
    pub resistive_slots: Vec<u32>,
    /// Slot of each `Stamp::add` call of the transient companion stamping.
    pub reactive_slots: Vec<u32>,
    /// Slot of each `CStamp::add` call of the AC assembly.
    pub ac_slots: Vec<u32>,
}

/// Operating-point placeholder used when collecting the AC stamp
/// sequence (only the *positions* of the stamps are recorded).
const DUMMY_OP: MosOp = MosOp {
    id: 0.0,
    gm: 0.0,
    gds: 0.0,
    gmbs: 0.0,
    vth: 0.0,
    vov: 0.0,
    vdsat: 0.0,
    region: MosRegion::Subthreshold,
};

fn cache() -> &'static Mutex<HashMap<Vec<u32>, Arc<Topology>>> {
    static CACHE: OnceLock<Mutex<HashMap<Vec<u32>, Arc<Topology>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The cached topology for `ckt`, building it on first sight.
pub(crate) fn topology_for(ckt: &Circuit, layout: &Layout) -> Arc<Topology> {
    let key = ckt.structure_key();
    {
        let guard = cache().lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(t) = guard.get(&key) {
            return Arc::clone(t);
        }
    }
    // Build outside the lock: concurrent builders of the same key produce
    // identical data (deterministic build) and the first insert wins.
    let topo = Arc::new(build_topology(ckt, layout));
    let mut guard = cache().lock().unwrap_or_else(PoisonError::into_inner);
    Arc::clone(guard.entry(key).or_insert(topo))
}

/// Runs each assembly once against a collector to learn its stamp
/// sequence, then builds the union pattern, slot maps and symbolic LU.
fn build_topology(ckt: &Circuit, layout: &Layout) -> Topology {
    let n = layout.n_unknowns;
    let x = vec![0.0; n];
    let mut f = vec![0.0; n];
    let caps = cap_list(ckt);
    let inds = ind_list(ckt, layout);

    let mut resistive = StampCollector::default();
    assemble_resistive(
        ckt,
        layout,
        &x,
        1e-12,
        1.0,
        None,
        &mut f,
        &mut resistive,
        MosOpsMode::Inline,
    );

    let mut reactive = StampCollector::default();
    let cap_zero = vec![0.0; caps.len()];
    let ind_zero = vec![0.0; inds.len()];
    f.fill(0.0);
    crate::mna::stamp_reactive(
        &caps,
        &inds,
        Integrator::Trapezoidal,
        1.0,
        &x,
        &cap_zero,
        &cap_zero,
        &ind_zero,
        &ind_zero,
        &mut f,
        &mut reactive,
    );

    let mut ac = CStampCollector::default();
    let dummy_ops = vec![DUMMY_OP; layout.mos_elems.len()];
    assemble_ac(ckt, layout, &dummy_ops, &caps, 1.0, &mut ac);

    let mut entries =
        Vec::with_capacity(resistive.entries.len() + reactive.entries.len() + ac.entries.len());
    entries.extend_from_slice(&resistive.entries);
    entries.extend_from_slice(&reactive.entries);
    entries.extend_from_slice(&ac.entries);
    let pattern = Arc::new(SparsityPattern::from_entries(n, &entries));

    let to_slots = |seq: &[(usize, usize)]| -> Vec<u32> {
        seq.iter()
            .map(|&(r, c)| {
                pattern
                    .slot(r, c)
                    .expect("collected stamp entry is in the union pattern") as u32
            })
            .collect()
    };

    Topology {
        resistive_slots: to_slots(&resistive.entries),
        reactive_slots: to_slots(&reactive.entries),
        ac_slots: to_slots(&ac.entries),
        symbolic: SymbolicLu::analyze(&pattern).ok().map(Arc::new),
        pattern,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{nmos_180nm, MosInstance};

    fn divider(r1: f64, r2: f64) -> Circuit {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("V1", a, Circuit::GROUND, 1.0);
        ckt.resistor("R1", a, b, r1);
        ckt.resistor("R2", b, Circuit::GROUND, r2);
        ckt
    }

    #[test]
    fn same_structure_different_values_share_topology() {
        let c1 = divider(1e3, 2e3);
        let c2 = divider(47.0, 330.0);
        let t1 = topology_for(&c1, &Layout::new(&c1));
        let t2 = topology_for(&c2, &Layout::new(&c2));
        assert!(Arc::ptr_eq(&t1, &t2), "value changes must not re-key");
    }

    #[test]
    fn different_structure_gets_different_topology() {
        let c1 = divider(1e3, 2e3);
        let mut c2 = divider(1e3, 2e3);
        let b = c2.node("b");
        c2.capacitor("C1", b, Circuit::GROUND, 1e-12);
        let t1 = topology_for(&c1, &Layout::new(&c1));
        let t2 = topology_for(&c2, &Layout::new(&c2));
        assert!(!Arc::ptr_eq(&t1, &t2));
    }

    #[test]
    fn topology_has_symbolic_and_consistent_slots() {
        let mut ckt = Circuit::new();
        let d = ckt.node("d");
        let g = ckt.node("g");
        ckt.vsource("VD", d, Circuit::GROUND, 1.8);
        ckt.vsource("VG", g, Circuit::GROUND, 0.9);
        ckt.mosfet(
            "M1",
            d,
            g,
            Circuit::GROUND,
            Circuit::GROUND,
            MosInstance {
                model: nmos_180nm(),
                w: 10e-6,
                l: 1e-6,
                m: 1.0,
            },
        );
        let layout = Layout::new(&ckt);
        let topo = topology_for(&ckt, &layout);
        assert!(topo.symbolic.is_some(), "MNA system must admit a matching");
        let nnz = topo.pattern.nnz() as u32;
        for slots in [&topo.resistive_slots, &topo.reactive_slots, &topo.ac_slots] {
            assert!(slots.iter().all(|&s| s < nnz));
        }
        assert_eq!(topo.pattern.n(), layout.n_unknowns);
    }
}
