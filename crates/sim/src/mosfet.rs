//! A smooth LEVEL-1-style MOSFET model.
//!
//! The classic SPICE LEVEL-1 square-law model has a hard cutoff at
//! `vgs = vth`, which is murder for Newton convergence. We therefore blend
//! the overdrive through a softplus,
//!
//! ```text
//! vov_eff = n·vt · ln(1 + exp((vgs − vth) / (n·vt)))
//! ```
//!
//! which reproduces the square law in strong inversion and an exponential
//! subthreshold characteristic below threshold, with C¹ continuity
//! everywhere. Channel-length modulation (`λ`), body effect (`γ, φ`) and
//! drain–source symmetry (automatic terminal swap for `vds < 0`) are
//! included, as are the overlap/oxide capacitances and thermal + flicker
//! noise parameters used by the AC, transient and noise analyses.

use crate::VT_THERMAL;

/// N- or P-channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosPolarity {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

/// Operating region of a MOSFET at a bias point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosRegion {
    /// `vgs` below threshold (weak inversion).
    Subthreshold,
    /// Strong inversion, `vds < vdsat`.
    Triode,
    /// Strong inversion, `vds ≥ vdsat`.
    Saturation,
}

/// MOSFET model card.
///
/// The default cards [`nmos_180nm`] and [`pmos_180nm`] carry representative
/// 180 nm CMOS values (they are not a foundry PDK — see `DESIGN.md`).
#[derive(Debug, Clone, PartialEq)]
pub struct MosModel {
    /// Channel polarity.
    pub polarity: MosPolarity,
    /// Zero-bias threshold voltage magnitude, volts (positive number).
    pub vt0: f64,
    /// Transconductance parameter `µ·Cox`, A/V².
    pub kp: f64,
    /// Channel-length modulation per meter of length: `λ = lambda_l / L`.
    /// Units: V⁻¹·m.
    pub lambda_l: f64,
    /// Body-effect coefficient γ, √V.
    pub gamma: f64,
    /// Surface potential 2φF, volts.
    pub phi: f64,
    /// Subthreshold slope factor `n` (typically 1.3–1.6).
    pub n_sub: f64,
    /// Gate-oxide capacitance per area, F/m².
    pub cox: f64,
    /// Gate-drain/source overlap capacitance per width, F/m.
    pub c_overlap: f64,
    /// Junction capacitance per area, F/m².
    pub cj: f64,
    /// Source/drain diffusion length, meters (sets junction area `W·ldiff`).
    pub ldiff: f64,
    /// Flicker-noise coefficient KF (SPICE convention), A·F.
    pub kf: f64,
}

/// Representative 180 nm NMOS card.
pub fn nmos_180nm() -> MosModel {
    MosModel {
        polarity: MosPolarity::Nmos,
        vt0: 0.45,
        kp: 300e-6,
        lambda_l: 0.02e-6, // λ = 0.11 V⁻¹ at L = 0.18 µm
        gamma: 0.5,
        phi: 0.8,
        n_sub: 1.4,
        cox: 8.5e-3,
        c_overlap: 0.4e-9,
        cj: 1.0e-3,
        ldiff: 0.5e-6,
        kf: 2e-26,
    }
}

/// Representative 180 nm PMOS card.
pub fn pmos_180nm() -> MosModel {
    MosModel {
        polarity: MosPolarity::Pmos,
        vt0: 0.45,
        kp: 80e-6,
        lambda_l: 0.025e-6,
        gamma: 0.45,
        phi: 0.8,
        n_sub: 1.45,
        cox: 8.5e-3,
        c_overlap: 0.4e-9,
        cj: 1.1e-3,
        ldiff: 0.5e-6,
        kf: 1e-26,
    }
}

/// Large- and small-signal quantities of a MOSFET at a bias point.
///
/// All quantities are in the **circuit frame**: `id` is the current flowing
/// into the drain terminal (negative for a conducting PMOS), and the
/// conductances are the partial derivatives of that current with respect to
/// the circuit-frame `vgs`, `vds`, `vbs`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosOp {
    /// Drain current (into the drain terminal), amps.
    pub id: f64,
    /// `∂id/∂vgs`, siemens.
    pub gm: f64,
    /// `∂id/∂vds`, siemens.
    pub gds: f64,
    /// `∂id/∂vbs`, siemens.
    pub gmbs: f64,
    /// Effective threshold voltage (device frame), volts.
    pub vth: f64,
    /// Effective overdrive (softplus-blended), volts.
    pub vov: f64,
    /// Saturation voltage, volts.
    pub vdsat: f64,
    /// Operating region.
    pub region: MosRegion,
}

impl MosModel {
    /// λ for a given channel length.
    pub fn lambda(&self, l: f64) -> f64 {
        self.lambda_l / l
    }

    /// Precomputed per-model-card constants shared by every lane of a
    /// batched evaluation (see `mosfet_batch`). Hoisting these out of the
    /// per-device loop removes a `sqrt` and several multiplies per lane
    /// without changing a single FP operation in the lane itself.
    pub(crate) fn pre(&self) -> MosPre {
        MosPre {
            pmos: self.polarity == MosPolarity::Pmos,
            vt0: self.vt0,
            gamma: self.gamma,
            phi: self.phi,
            sqrt_phi: self.phi.sqrt(),
            nvt: self.n_sub * VT_THERMAL,
        }
    }

    /// Evaluates the device at circuit-frame terminal voltages.
    ///
    /// `vd, vg, vs, vb` are node voltages; geometry is width `w`, length
    /// `l` (meters) and multiplier `m`.
    // Four terminals + three geometry values is the device's natural arity.
    #[allow(clippy::too_many_arguments)]
    pub fn eval(&self, vd: f64, vg: f64, vs: f64, vb: f64, w: f64, l: f64, m: f64) -> MosOp {
        eval_lane(
            &self.pre(),
            self.kp * (w / l) * m,
            self.lambda(l),
            vd,
            vg,
            vs,
            vb,
        )
    }

    /// Gate–source capacitance (2/3 C_ox + overlap), farads.
    pub fn cgs(&self, w: f64, l: f64, m: f64) -> f64 {
        (2.0 / 3.0 * self.cox * w * l + self.c_overlap * w) * m
    }

    /// Gate–drain capacitance (overlap only, saturation approximation).
    pub fn cgd(&self, w: f64, _l: f64, m: f64) -> f64 {
        self.c_overlap * w * m
    }

    /// Drain–bulk junction capacitance.
    pub fn cdb(&self, w: f64, _l: f64, m: f64) -> f64 {
        self.cj * w * self.ldiff * m
    }

    /// Source–bulk junction capacitance.
    pub fn csb(&self, w: f64, l: f64, m: f64) -> f64 {
        self.cdb(w, l, m)
    }

    /// Thermal drain-noise current PSD `4kT·(2/3)·gm`, A²/Hz.
    pub fn thermal_noise_psd(&self, gm: f64) -> f64 {
        4.0 * crate::KT * (2.0 / 3.0) * gm.abs()
    }

    /// Flicker drain-noise current PSD `KF·|Id| / (Cox·W·L·m·f)`, A²/Hz.
    pub fn flicker_noise_psd(&self, id: f64, w: f64, l: f64, m: f64, freq: f64) -> f64 {
        self.kf * id.abs() / (self.cox * w * l * m * freq.max(1e-3))
    }
}

/// Per-model-card constants precomputed by [`MosModel::pre`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct MosPre {
    pmos: bool,
    vt0: f64,
    gamma: f64,
    phi: f64,
    sqrt_phi: f64,
    /// `n_sub · VT_THERMAL`.
    nvt: f64,
}

/// Evaluates one device lane from precomputed model constants and the
/// per-device `beta = kp·(W/L)·m`, `lambda = lambda_l/L`.
///
/// This is THE model evaluation: the scalar [`MosModel::eval`] and the
/// batched `MosModel::eval_batch_into` both route through it, so batched
/// operating points are bitwise-identical to scalar ones.
pub(crate) fn eval_lane(
    pre: &MosPre,
    beta: f64,
    lambda: f64,
    vd: f64,
    vg: f64,
    vs: f64,
    vb: f64,
) -> MosOp {
    let (vgs, vds, vbs) = (vg - vs, vd - vs, vb - vs);
    if pre.pmos {
        // Evaluate the mirrored device and flip the current sign;
        // conductances are even under the mirror.
        let op = eval_nmos_frame(pre, beta, lambda, -vgs, -vds, -vbs);
        MosOp { id: -op.id, ..op }
    } else {
        eval_nmos_frame(pre, beta, lambda, vgs, vds, vbs)
    }
}

/// Evaluates in the NMOS frame, handling drain–source swap for
/// `vds < 0` so the model is symmetric.
fn eval_nmos_frame(pre: &MosPre, beta: f64, lambda: f64, vgs: f64, vds: f64, vbs: f64) -> MosOp {
    if vds >= 0.0 {
        eval_forward(pre, beta, lambda, vgs, vds, vbs)
    } else {
        // Swap D and S: the "source" is now the original drain.
        let op = eval_forward(pre, beta, lambda, vgs - vds, -vds, vbs - vds);
        // id = −id'(vgs − vds, −vds, vbs − vds); chain rule gives:
        MosOp {
            id: -op.id,
            gm: -op.gm,
            gds: op.gm + op.gds + op.gmbs,
            gmbs: -op.gmbs,
            ..op
        }
    }
}

/// Core forward-mode evaluation (`vds ≥ 0`, NMOS frame).
fn eval_forward(pre: &MosPre, beta: f64, lambda: f64, vgs: f64, vds: f64, vbs: f64) -> MosOp {
    let nvt = pre.nvt;

    // Body effect, with vbs clamped below phi to keep the sqrt real.
    let vbs_c = vbs.min(pre.phi - 1e-3);
    let sqrt_term = (pre.phi - vbs_c).sqrt();
    let vth = pre.vt0 + pre.gamma * (sqrt_term - pre.sqrt_phi);
    // dvth/dvbs = −γ / (2√(φ − vbs)); zero in the clamped zone.
    let dvth_dvbs = if vbs < pre.phi - 1e-3 {
        -pre.gamma / (2.0 * sqrt_term)
    } else {
        0.0
    };

    // Softplus-blended overdrive.
    let x = (vgs - vth) / nvt;
    let (vov, sigma) = if x > 40.0 {
        (vgs - vth, 1.0)
    } else if x < -40.0 {
        (nvt * x.exp(), x.exp())
    } else {
        (nvt * x.exp().ln_1p(), 1.0 / (1.0 + (-x).exp()))
    };

    let clm = 1.0 + lambda * vds;
    let (ids0, d_dvds, d_dvov, region) = if vds < vov {
        // Triode.
        let i = beta * (vov * vds - 0.5 * vds * vds);
        (i, beta * (vov - vds), beta * vds, MosRegion::Triode)
    } else {
        // Saturation.
        let i = 0.5 * beta * vov * vov;
        (i, 0.0, beta * vov, MosRegion::Saturation)
    };
    let region = if x < 0.0 {
        MosRegion::Subthreshold
    } else {
        region
    };

    let id = ids0 * clm;
    let gds = d_dvds * clm + ids0 * lambda;
    let gm_vov = d_dvov * clm;
    let gm = gm_vov * sigma;
    // vth falls with vbs rising → more current: gmbs = gm_vov·σ·(−dvth/dvbs)
    let gmbs = gm_vov * sigma * (-dvth_dvbs);

    MosOp {
        id,
        gm,
        gds,
        gmbs,
        vth,
        vov,
        vdsat: vov,
        region,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: f64 = 10e-6;
    const L: f64 = 1e-6;
    const M: f64 = 1.0;

    #[test]
    fn cutoff_current_is_tiny() {
        let nmos = nmos_180nm();
        let op = nmos.eval(1.8, 0.0, 0.0, 0.0, W, L, M);
        assert!(op.id > 0.0, "subthreshold current should be positive");
        assert!(op.id < 1e-9, "cutoff leakage too large: {}", op.id);
        assert_eq!(op.region, MosRegion::Subthreshold);
    }

    #[test]
    fn saturation_current_matches_square_law() {
        let nmos = nmos_180nm();
        let vgs = 1.0;
        let op = nmos.eval(1.8, vgs, 0.0, 0.0, W, L, M);
        assert_eq!(op.region, MosRegion::Saturation);
        let beta = nmos.kp * W / L;
        let vov = vgs - nmos.vt0;
        let expected = 0.5 * beta * vov * vov * (1.0 + nmos.lambda(L) * 1.8);
        let rel = (op.id - expected).abs() / expected;
        // Softplus blending slightly reshapes the overdrive near threshold.
        assert!(rel < 0.15, "Id {} vs square-law {}", op.id, expected);
    }

    #[test]
    fn triode_region_detected() {
        let nmos = nmos_180nm();
        let op = nmos.eval(0.05, 1.5, 0.0, 0.0, W, L, M);
        assert_eq!(op.region, MosRegion::Triode);
        // Small-vds triode current ≈ beta·vov·vds
        assert!(op.id > 0.0);
        assert!(op.gds > op.gm * 0.1, "triode should be resistive");
    }

    #[test]
    fn gm_positive_and_increases_with_bias() {
        let nmos = nmos_180nm();
        let g1 = nmos.eval(1.8, 0.8, 0.0, 0.0, W, L, M).gm;
        let g2 = nmos.eval(1.8, 1.2, 0.0, 0.0, W, L, M).gm;
        assert!(g1 > 0.0);
        assert!(g2 > g1);
    }

    #[test]
    fn body_effect_raises_threshold() {
        let nmos = nmos_180nm();
        let op0 = nmos.eval(1.8, 1.0, 0.0, 0.0, W, L, M);
        let op1 = nmos.eval(1.8, 1.0, 0.0, -0.9, W, L, M); // reverse body bias
        assert!(op1.vth > op0.vth);
        assert!(op1.id < op0.id);
        assert!(op0.gmbs > 0.0);
    }

    #[test]
    fn pmos_mirrors_nmos() {
        let pmos = pmos_180nm();
        // PMOS with source at 1.8 V, gate at 0.8 V (|vgs| = 1), drain at 0.
        let op = pmos.eval(0.0, 0.8, 1.8, 1.8, W, L, M);
        assert!(
            op.id < 0.0,
            "conducting PMOS drain current must be negative"
        );
        assert!(op.gm > 0.0, "conductances stay positive");
        assert!(op.gds > 0.0);
        assert_eq!(op.region, MosRegion::Saturation);
    }

    #[test]
    fn drain_source_swap_is_antisymmetric() {
        let nmos = nmos_180nm();
        // A symmetric device: swapping D and S must negate the current.
        let fwd = nmos.eval(0.3, 1.2, 0.0, 0.0, W, L, M);
        let rev = nmos.eval(0.0, 1.2, 0.3, 0.0, W, L, M);
        // In the reverse case the gate-to-true-source voltage differs (the
        // true source is at 0.3 V), so only check sign and continuity.
        assert!(fwd.id > 0.0);
        assert!(rev.id < 0.0);
    }

    #[test]
    fn current_is_continuous_across_vds_zero() {
        let nmos = nmos_180nm();
        let e = 1e-6;
        let ip = nmos.eval(e, 1.2, 0.0, 0.0, W, L, M).id;
        let im = nmos.eval(-e, 1.2, 0.0, 0.0, W, L, M).id;
        assert!(ip > 0.0 && im < 0.0);
        assert!((ip + im).abs() < 1e-8, "asymmetry at vds=0: {ip} vs {im}");
    }

    /// Central-difference check of all three conductances across regions.
    #[test]
    fn conductances_match_finite_difference() {
        let nmos = nmos_180nm();
        let h = 1e-7;
        let biases = [
            (1.8, 1.0, 0.0, 0.0),  // saturation
            (0.1, 1.5, 0.0, 0.0),  // triode
            (1.8, 0.40, 0.0, 0.0), // subthreshold
            (1.2, 0.9, 0.3, 0.0),  // with source degeneration + body
            (-0.2, 1.2, 0.0, 0.0), // reversed vds
        ];
        for (vd, vg, vs, vb) in biases {
            let op = nmos.eval(vd, vg, vs, vb, W, L, M);
            let fd_gm = (nmos.eval(vd, vg + h, vs, vb, W, L, M).id
                - nmos.eval(vd, vg - h, vs, vb, W, L, M).id)
                / (2.0 * h);
            let fd_gds = (nmos.eval(vd + h, vg, vs, vb, W, L, M).id
                - nmos.eval(vd - h, vg, vs, vb, W, L, M).id)
                / (2.0 * h);
            let fd_gmbs = (nmos.eval(vd, vg, vs, vb + h, W, L, M).id
                - nmos.eval(vd, vg, vs, vb - h, W, L, M).id)
                / (2.0 * h);
            let tol = |fd: f64| 1e-5 * (1.0 + fd.abs());
            assert!(
                (op.gm - fd_gm).abs() < tol(fd_gm),
                "gm at {vd},{vg},{vs},{vb}: {} vs {fd_gm}",
                op.gm
            );
            assert!(
                (op.gds - fd_gds).abs() < tol(fd_gds),
                "gds at {vd},{vg},{vs},{vb}: {} vs {fd_gds}",
                op.gds
            );
            assert!(
                (op.gmbs - fd_gmbs).abs() < tol(fd_gmbs),
                "gmbs at {vd},{vg},{vs},{vb}: {} vs {fd_gmbs}",
                op.gmbs
            );
        }
    }

    #[test]
    fn pmos_conductances_match_finite_difference() {
        let pmos = pmos_180nm();
        let h = 1e-7;
        let (vd, vg, vs, vb) = (0.3, 0.7, 1.8, 1.8);
        let op = pmos.eval(vd, vg, vs, vb, W, L, M);
        let fd_gm = (pmos.eval(vd, vg + h, vs, vb, W, L, M).id
            - pmos.eval(vd, vg - h, vs, vb, W, L, M).id)
            / (2.0 * h);
        // Circuit-frame gm is ∂id/∂vgs = ∂id/∂vg (vs held fixed).
        assert!(
            (op.gm - fd_gm).abs() < 1e-5 * (1.0 + fd_gm.abs()),
            "pmos gm {} vs fd {}",
            op.gm,
            fd_gm
        );
        let fd_gds = (pmos.eval(vd + h, vg, vs, vb, W, L, M).id
            - pmos.eval(vd - h, vg, vs, vb, W, L, M).id)
            / (2.0 * h);
        assert!((op.gds - fd_gds).abs() < 1e-5 * (1.0 + fd_gds.abs()));
    }

    #[test]
    fn multiplier_scales_current_linearly() {
        let nmos = nmos_180nm();
        let i1 = nmos.eval(1.8, 1.0, 0.0, 0.0, W, L, 1.0).id;
        let i4 = nmos.eval(1.8, 1.0, 0.0, 0.0, W, L, 4.0).id;
        assert!((i4 / i1 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn capacitances_scale_with_geometry() {
        let nmos = nmos_180nm();
        assert!(nmos.cgs(2.0 * W, L, M) > nmos.cgs(W, L, M));
        assert!(nmos.cgs(W, L, 2.0) > nmos.cgs(W, L, 1.0));
        assert!(nmos.cgd(W, L, M) > 0.0);
        assert!(nmos.cdb(W, L, M) > 0.0);
        assert_eq!(nmos.cdb(W, L, M), nmos.csb(W, L, M));
    }

    #[test]
    fn noise_psds_positive() {
        let nmos = nmos_180nm();
        assert!(nmos.thermal_noise_psd(1e-3) > 0.0);
        let f1 = nmos.flicker_noise_psd(1e-4, W, L, M, 1.0);
        let f1k = nmos.flicker_noise_psd(1e-4, W, L, M, 1000.0);
        assert!(f1 > f1k * 999.0, "flicker must fall as 1/f");
    }

    #[test]
    fn longer_channel_reduces_lambda() {
        let nmos = nmos_180nm();
        assert!(nmos.lambda(0.18e-6) > nmos.lambda(1.0e-6));
    }
}
