//! Linear-solver selection and the reusable Newton workspaces shared by
//! the DC and transient analyses.
//!
//! Two backends solve the Newton systems `J·Δx = −f`:
//!
//! * **Sparse** (default): per-topology symbolic LU (see
//!   [`crate::topology`]) with assembly replayed as flat slot writes and a
//!   pivot-free numeric refactor per iteration. Deterministic: the FP
//!   operation sequence is a pure function of topology, never of values
//!   or thread count.
//! * **Dense**: the original partial-pivoting LU, kept as a debug
//!   cross-check (`MAOPT_SIM_SOLVER=dense`) and as the per-iteration
//!   fallback when the pivot-free factorization hits a tiny pivot — so
//!   genuinely singular systems surface exactly the same errors on both
//!   backends.
//!
//! Neither backend allocates per iteration in steady state: the dense
//! path reuses its matrix + factor buffers ([`maopt_linalg::Lu::refactor_from`]),
//! the sparse path reuses the CSC value array and factor workspace.

use std::sync::{Arc, OnceLock};

use maopt_linalg::{Complex, Lu, Mat, SparseLu, SparseMat};

use crate::analysis::ac::assemble_ac;
use crate::circuit::Circuit;
use crate::mna::{CSlotStamp, CapSpec, Layout};
use crate::mosfet::MosOp;
use crate::probe::{Probe, SPAN_ASSEMBLE, SPAN_FACTOR, SPAN_SOLVE};
use crate::topology::{topology_for, Topology};
use crate::SimError;

/// Which linear solver backs an analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverKind {
    /// Honor the `MAOPT_SIM_SOLVER` environment variable (`sparse` when
    /// unset). The default.
    #[default]
    Auto,
    /// The sparse path: per-topology symbolic factorization reuse.
    Sparse,
    /// The dense partial-pivoting path (debug cross-check).
    Dense,
}

impl SolverKind {
    /// Resolves to a concrete backend choice.
    ///
    /// # Panics
    ///
    /// Panics when `MAOPT_SIM_SOLVER` is set to anything other than
    /// `sparse` or `dense` (misconfiguration must not silently change
    /// numerics).
    pub(crate) fn use_sparse(self) -> bool {
        match self {
            SolverKind::Sparse => true,
            SolverKind::Dense => false,
            SolverKind::Auto => {
                static CHOICE: OnceLock<bool> = OnceLock::new();
                *CHOICE.get_or_init(|| match std::env::var("MAOPT_SIM_SOLVER") {
                    Err(_) => true,
                    Ok(v) if v.eq_ignore_ascii_case("sparse") => true,
                    Ok(v) if v.eq_ignore_ascii_case("dense") => false,
                    Ok(v) => panic!("MAOPT_SIM_SOLVER must be `sparse` or `dense`, got `{v}`"),
                })
            }
        }
    }
}

/// Whether an analysis may start Newton from caller-provided state (a
/// reference design's operating point) or extrapolated state (the
/// transient predictor) instead of the cold flat-band guess.
///
/// Warm-starting only changes the Newton *starting point*; a converged
/// solution still satisfies the same tolerance, and the full cold
/// continuation ladder remains the automatic rescue when a warm attempt
/// diverges. `Off` is bitwise identical to the pre-warm-start solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WarmstartKind {
    /// Honor the `MAOPT_SIM_WARMSTART` environment variable (`on` when
    /// unset). The default.
    #[default]
    Auto,
    /// Warm-starting active regardless of the environment.
    On,
    /// Cold path only.
    Off,
}

impl WarmstartKind {
    /// Resolves to a concrete choice.
    ///
    /// # Panics
    ///
    /// Panics when `MAOPT_SIM_WARMSTART` is set to anything other than
    /// `on` or `off` (misconfiguration must not silently change
    /// performance characteristics).
    pub(crate) fn enabled(self) -> bool {
        match self {
            WarmstartKind::On => true,
            WarmstartKind::Off => false,
            WarmstartKind::Auto => {
                static CHOICE: OnceLock<bool> = OnceLock::new();
                *CHOICE.get_or_init(|| match std::env::var("MAOPT_SIM_WARMSTART") {
                    Err(_) => true,
                    Ok(v) if v.eq_ignore_ascii_case("on") => true,
                    Ok(v) if v.eq_ignore_ascii_case("off") => false,
                    Ok(v) => panic!("MAOPT_SIM_WARMSTART must be `on` or `off`, got `{v}`"),
                })
            }
        }
    }
}

/// Dense matrix + factor buffers, reused across iterations.
#[derive(Debug)]
pub(crate) struct DenseWs {
    pub jac: Mat,
    pub lu: Lu,
}

impl DenseWs {
    pub fn new(n: usize) -> DenseWs {
        DenseWs {
            jac: Mat::zeros(n, n),
            lu: Lu::empty(),
        }
    }
}

/// The Jacobian write target handed to an assembly callback; see
/// [`solve_newton_system`].
pub(crate) enum JacView<'a> {
    /// Stamp into a dense matrix (pre-zeroed).
    Dense(&'a mut Mat),
    /// Stamp into a CSC value array (pre-zeroed) via the topology's slot
    /// maps.
    Sparse {
        vals: &'a mut [f64],
        topo: &'a Topology,
    },
}

/// Per-analysis real solver workspace.
#[derive(Debug)]
pub(crate) enum SolverWs {
    Dense(DenseWs),
    Sparse {
        topo: Arc<Topology>,
        mat: SparseMat<f64>,
        lu: SparseLu<f64>,
        /// Dense retry workspace, created lazily on the first tiny-pivot
        /// event.
        fallback: Option<DenseWs>,
    },
}

impl SolverWs {
    /// Builds the workspace for `kind`, falling back to dense when the
    /// topology admits no symbolic factorization (the dense solve then
    /// reports the structural singularity).
    pub fn new(kind: SolverKind, ckt: &Circuit, layout: &Layout) -> SolverWs {
        if kind.use_sparse() {
            let topo = topology_for(ckt, layout);
            if let Some(sym) = topo.symbolic.clone() {
                let mat = SparseMat::zeros(Arc::clone(&topo.pattern));
                return SolverWs::Sparse {
                    topo,
                    mat,
                    lu: SparseLu::new(sym),
                    fallback: None,
                };
            }
        }
        SolverWs::Dense(DenseWs::new(layout.n_unknowns))
    }
}

fn singular(analysis: &str) -> SimError {
    SimError::SingularMatrix {
        analysis: analysis.into(),
    }
}

fn fill_neg(f: &[f64], neg_f: &mut Vec<f64>) {
    neg_f.clear();
    neg_f.extend(f.iter().map(|v| -v));
}

/// One Newton linear step: assemble (through the callback), factor, and
/// solve `J·Δx = −f` into `delta`.
///
/// The callback must fill `f` from zero and stamp the Jacobian through
/// the given [`JacView`]; it may be invoked twice (sparse attempt, then
/// dense fallback) and must be idempotent.
pub(crate) fn solve_newton_system(
    ws: &mut SolverWs,
    analysis: &str,
    probe: &Probe,
    f: &mut [f64],
    neg_f: &mut Vec<f64>,
    delta: &mut Vec<f64>,
    assemble: &mut dyn FnMut(&mut [f64], JacView<'_>),
) -> Result<(), SimError> {
    match ws {
        SolverWs::Dense(d) => {
            let t = probe.start();
            d.jac.fill_zero();
            assemble(f, JacView::Dense(&mut d.jac));
            probe.span(SPAN_ASSEMBLE, t);
            let t = probe.start();
            d.lu.refactor_from(&d.jac).map_err(|_| singular(analysis))?;
            probe.span(SPAN_FACTOR, t);
            let t = probe.start();
            fill_neg(f, neg_f);
            d.lu.solve_into(neg_f, delta)?;
            probe.span(SPAN_SOLVE, t);
        }
        SolverWs::Sparse {
            topo,
            mat,
            lu,
            fallback,
        } => {
            let t = probe.start();
            mat.fill_zero();
            assemble(
                f,
                JacView::Sparse {
                    vals: mat.values_mut(),
                    topo,
                },
            );
            probe.span(SPAN_ASSEMBLE, t);
            let t = probe.start();
            if lu.factor(mat).is_ok() {
                probe.span(SPAN_FACTOR, t);
                let t = probe.start();
                fill_neg(f, neg_f);
                lu.solve_into(neg_f, delta)?;
                probe.span(SPAN_SOLVE, t);
            } else {
                // The pivot-free elimination hit a tiny pivot: retry this
                // iteration on the dense pivoting solver. A genuinely
                // singular system fails there too, so errors surface
                // identically to the dense backend.
                let d = fallback.get_or_insert_with(|| DenseWs::new(topo.pattern.n()));
                d.jac.fill_zero();
                assemble(f, JacView::Dense(&mut d.jac));
                d.lu.refactor_from(&d.jac).map_err(|_| singular(analysis))?;
                probe.span(SPAN_FACTOR, t);
                let t = probe.start();
                fill_neg(f, neg_f);
                d.lu.solve_into(neg_f, delta)?;
                probe.span(SPAN_SOLVE, t);
            }
        }
    }
    Ok(())
}

/// Complex sparse workspace for the AC and noise analyses: value array +
/// factor buffers over the *same* per-topology symbolic as the real path.
#[derive(Debug)]
pub(crate) struct CSparseWs {
    pub topo: Arc<Topology>,
    pub mat: SparseMat<Complex>,
    pub lu: SparseLu<Complex>,
}

impl CSparseWs {
    /// `Some` when `kind` resolves to sparse and the topology admits a
    /// symbolic factorization; `None` sends the caller down the dense
    /// path.
    pub fn new(kind: SolverKind, ckt: &Circuit, layout: &Layout) -> Option<CSparseWs> {
        if !kind.use_sparse() {
            return None;
        }
        let topo = topology_for(ckt, layout);
        let sym = topo.symbolic.clone()?;
        Some(CSparseWs {
            mat: SparseMat::zeros(Arc::clone(&topo.pattern)),
            lu: SparseLu::new(sym),
            topo,
        })
    }

    /// Assembles `G + jωC` and refactors in place. Returns `false` on a
    /// tiny pivot, in which case the caller should solve this frequency
    /// densely.
    pub fn factor_at(
        &mut self,
        ckt: &Circuit,
        layout: &Layout,
        mos_ops: &[MosOp],
        caps: &[CapSpec],
        omega: f64,
        probe: &Probe,
    ) -> bool {
        let t = probe.start();
        self.mat.fill_zero();
        let mut st = CSlotStamp::new(self.mat.values_mut(), &self.topo.ac_slots);
        assemble_ac(ckt, layout, mos_ops, caps, omega, &mut st);
        st.finish();
        probe.span(SPAN_ASSEMBLE, t);
        let t = probe.start();
        let ok = self.lu.factor(&self.mat).is_ok();
        if ok {
            probe.span(SPAN_FACTOR, t);
        }
        ok
    }
}
