use maopt_linalg::Mat;

/// Per-column min–max scaler mapping data into `[0, 1]`.
///
/// The critic is trained on metric vectors whose components span wildly
/// different magnitudes (dB of gain vs. amperes of quiescent current);
/// scaling each output column to the unit interval keeps the MSE loss
/// balanced across metrics. The scaler is refit as the population grows.
///
/// Columns with zero range are mapped to the constant `0.5` and inverse
/// transforms return the original constant.
///
/// # Example
///
/// ```
/// use maopt_nn::MinMaxScaler;
/// use maopt_linalg::Mat;
///
/// let data = Mat::from_rows(&[&[0.0, 100.0], &[10.0, 300.0]]);
/// let scaler = MinMaxScaler::fit(&data);
/// let scaled = scaler.transform(&data);
/// assert_eq!(scaled[(0, 0)], 0.0);
/// assert_eq!(scaled[(1, 1)], 1.0);
/// let back = scaler.inverse_transform(&scaled);
/// assert!((back[(1, 1)] - 300.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    ranges: Vec<f64>, // 0.0 marks a degenerate (constant) column
}

impl MinMaxScaler {
    /// Fits column-wise minima and ranges.
    ///
    /// Non-finite entries are ignored during fitting; a column with no
    /// finite entries is treated as constant zero.
    ///
    /// # Panics
    ///
    /// Panics if `data` has no rows.
    pub fn fit(data: &Mat) -> Self {
        assert!(data.rows() > 0, "cannot fit a scaler on an empty matrix");
        let cols = data.cols();
        let mut mins = vec![f64::INFINITY; cols];
        let mut maxs = vec![f64::NEG_INFINITY; cols];
        for i in 0..data.rows() {
            for (j, &v) in data.row(i).iter().enumerate() {
                if v.is_finite() {
                    mins[j] = mins[j].min(v);
                    maxs[j] = maxs[j].max(v);
                }
            }
        }
        let ranges = mins
            .iter_mut()
            .zip(&maxs)
            .map(|(mn, mx)| {
                if !mn.is_finite() {
                    *mn = 0.0;
                    return 0.0;
                }
                let r = mx - *mn;
                if r > 0.0 {
                    r
                } else {
                    0.0
                }
            })
            .collect();
        MinMaxScaler { mins, ranges }
    }

    /// Number of columns this scaler handles.
    pub fn cols(&self) -> usize {
        self.mins.len()
    }

    /// Captures the fitted parameters for checkpointing.
    pub fn state(&self) -> crate::state::ScalerState {
        crate::state::ScalerState {
            mins: self.mins.clone(),
            ranges: self.ranges.clone(),
        }
    }

    /// Rebuilds a scaler from parameters captured by
    /// [`MinMaxScaler::state`].
    ///
    /// # Panics
    ///
    /// Panics when `mins` and `ranges` have different lengths.
    pub fn from_state(state: &crate::state::ScalerState) -> Self {
        assert_eq!(
            state.mins.len(),
            state.ranges.len(),
            "scaler state columns mismatch"
        );
        MinMaxScaler {
            mins: state.mins.clone(),
            ranges: state.ranges.clone(),
        }
    }

    /// Scales a matrix into the unit box.
    ///
    /// Values outside the fitted range extrapolate linearly (they are not
    /// clipped), so unseen-but-nearby data keeps its ordering.
    ///
    /// # Panics
    ///
    /// Panics if `data.cols() != self.cols()`.
    pub fn transform(&self, data: &Mat) -> Mat {
        let mut out = Mat::default();
        self.transform_into(data, &mut out);
        out
    }

    /// [`MinMaxScaler::transform`] writing into a caller-owned buffer.
    ///
    /// `out` is resized to `data`'s shape reusing its capacity; results
    /// are bitwise identical to the allocating path.
    ///
    /// # Panics
    ///
    /// Panics if `data.cols() != self.cols()`.
    pub fn transform_into(&self, data: &Mat, out: &mut Mat) {
        assert_eq!(data.cols(), self.cols(), "scaler column mismatch");
        out.resize_reset(data.rows(), data.cols());
        for i in 0..data.rows() {
            for j in 0..data.cols() {
                out[(i, j)] = self.transform_value(data[(i, j)], j);
            }
        }
    }

    /// Scales a single row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.cols()`.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.cols(), "scaler column mismatch");
        row.iter()
            .enumerate()
            .map(|(j, &v)| self.transform_value(v, j))
            .collect()
    }

    /// Maps one value in column `j` into scaled space.
    pub fn transform_value(&self, v: f64, j: usize) -> f64 {
        if self.ranges[j] == 0.0 {
            0.5
        } else {
            (v - self.mins[j]) / self.ranges[j]
        }
    }

    /// Inverse of [`MinMaxScaler::transform`].
    ///
    /// # Panics
    ///
    /// Panics if `data.cols() != self.cols()`.
    pub fn inverse_transform(&self, data: &Mat) -> Mat {
        let mut out = data.clone();
        self.inverse_transform_inplace(&mut out);
        out
    }

    /// Inverse-transforms a matrix in place (no allocation).
    ///
    /// Results are bitwise identical to
    /// [`MinMaxScaler::inverse_transform`].
    ///
    /// # Panics
    ///
    /// Panics if `data.cols() != self.cols()`.
    pub fn inverse_transform_inplace(&self, data: &mut Mat) {
        assert_eq!(data.cols(), self.cols(), "scaler column mismatch");
        for i in 0..data.rows() {
            for j in 0..data.cols() {
                data[(i, j)] = self.inverse_value(data[(i, j)], j);
            }
        }
    }

    /// Inverse-transforms a single row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.cols()`.
    pub fn inverse_row(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.cols(), "scaler column mismatch");
        row.iter()
            .enumerate()
            .map(|(j, &v)| self.inverse_value(v, j))
            .collect()
    }

    /// Maps one scaled value in column `j` back to the original units.
    pub fn inverse_value(&self, v: f64, j: usize) -> f64 {
        if self.ranges[j] == 0.0 {
            self.mins[j]
        } else {
            v * self.ranges[j] + self.mins[j]
        }
    }

    /// Scale factor `∂scaled/∂raw` of column `j` (0 for constant columns).
    pub fn scale_factor(&self, j: usize) -> f64 {
        if self.ranges[j] == 0.0 {
            0.0
        } else {
            1.0 / self.ranges[j]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data = Mat::from_rows(&[&[1.0, -5.0, 3.0], &[2.0, 5.0, 3.5], &[0.0, 0.0, 4.0]]);
        let s = MinMaxScaler::fit(&data);
        let t = s.transform(&data);
        assert!(t.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        let back = s.inverse_transform(&t);
        assert!((&back - &data).max_abs() < 1e-12);
    }

    #[test]
    fn constant_column_maps_to_half() {
        let data = Mat::from_rows(&[&[7.0], &[7.0]]);
        let s = MinMaxScaler::fit(&data);
        let t = s.transform(&data);
        assert_eq!(t[(0, 0)], 0.5);
        assert_eq!(s.inverse_value(0.123, 0), 7.0);
        assert_eq!(s.scale_factor(0), 0.0);
    }

    #[test]
    fn out_of_range_extrapolates() {
        let data = Mat::from_rows(&[&[0.0], &[10.0]]);
        let s = MinMaxScaler::fit(&data);
        assert_eq!(s.transform_value(20.0, 0), 2.0);
        assert_eq!(s.transform_value(-10.0, 0), -1.0);
    }

    #[test]
    fn ignores_non_finite_entries() {
        let data = Mat::from_rows(&[&[0.0], &[f64::INFINITY], &[4.0]]);
        let s = MinMaxScaler::fit(&data);
        assert_eq!(s.transform_value(2.0, 0), 0.5);
    }

    #[test]
    fn row_api_matches_matrix_api() {
        let data = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 8.0]]);
        let s = MinMaxScaler::fit(&data);
        let row = s.transform_row(&[2.0, 5.0]);
        assert_eq!(row, vec![0.5, 0.5]);
        assert_eq!(s.inverse_row(&row), vec![2.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_fit_panics() {
        let _ = MinMaxScaler::fit(&Mat::zeros(0, 2));
    }
}
