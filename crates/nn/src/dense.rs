use maopt_linalg::Mat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Activation;

/// A fully connected layer: `y = act(x·Wᵀ + b)`.
///
/// Rows of the weight matrix correspond to output units, columns to inputs.
/// The layer caches its last input and output so that [`Dense::backward`]
/// can compute parameter and input gradients.
#[derive(Debug, Clone)]
pub struct Dense {
    weights: Mat,
    bias: Vec<f64>,
    activation: Activation,
    grad_weights: Mat,
    grad_bias: Vec<f64>,
    // Caches from the most recent forward pass.
    last_input: Mat,
    last_output: Mat,
}

impl Dense {
    /// Creates a layer with Xavier-uniform initialized weights.
    ///
    /// The `rng` drives initialization; pass a seeded RNG for reproducible
    /// networks.
    pub fn new(inputs: usize, outputs: usize, activation: Activation, rng: &mut StdRng) -> Self {
        let limit = (6.0 / (inputs + outputs) as f64).sqrt();
        let weights = Mat::from_fn(outputs, inputs, |_, _| rng.random_range(-limit..limit));
        Dense {
            weights,
            bias: vec![0.0; outputs],
            activation,
            grad_weights: Mat::zeros(outputs, inputs),
            grad_bias: vec![0.0; outputs],
            last_input: Mat::zeros(0, 0),
            last_output: Mat::zeros(0, 0),
        }
    }

    /// Deterministic convenience constructor used by tests.
    pub fn with_seed(inputs: usize, outputs: usize, activation: Activation, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Dense::new(inputs, outputs, activation, &mut rng)
    }

    /// Number of input features.
    pub fn inputs(&self) -> usize {
        self.weights.cols()
    }

    /// Number of output units.
    pub fn outputs(&self) -> usize {
        self.weights.rows()
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Immutable view of the weights (rows = outputs).
    pub fn weights(&self) -> &Mat {
        &self.weights
    }

    /// Immutable view of the bias.
    pub fn bias(&self) -> &[f64] {
        &self.bias
    }

    /// Forward pass over a batch (rows = samples).
    ///
    /// Caches the input and output for the subsequent backward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.inputs()`.
    pub fn forward(&mut self, x: &Mat) -> Mat {
        assert_eq!(x.cols(), self.inputs(), "dense layer input width mismatch");
        let mut out = Mat::zeros(x.rows(), self.outputs());
        for s in 0..x.rows() {
            let row = x.row(s);
            for o in 0..self.outputs() {
                let z: f64 = self
                    .weights
                    .row(o)
                    .iter()
                    .zip(row)
                    .map(|(w, v)| w * v)
                    .sum::<f64>()
                    + self.bias[o];
                out[(s, o)] = self.activation.apply(z);
            }
        }
        self.last_input = x.clone();
        self.last_output = out.clone();
        out
    }

    /// Inference-only forward pass that does not touch the caches.
    pub fn forward_inference(&self, x: &Mat) -> Mat {
        assert_eq!(x.cols(), self.inputs(), "dense layer input width mismatch");
        let mut out = Mat::zeros(x.rows(), self.outputs());
        for s in 0..x.rows() {
            let row = x.row(s);
            for o in 0..self.outputs() {
                let z: f64 = self
                    .weights
                    .row(o)
                    .iter()
                    .zip(row)
                    .map(|(w, v)| w * v)
                    .sum::<f64>()
                    + self.bias[o];
                out[(s, o)] = self.activation.apply(z);
            }
        }
        out
    }

    /// Backward pass: given `∂L/∂y`, accumulates parameter gradients and
    /// returns `∂L/∂x`.
    ///
    /// Gradients accumulate across calls until [`Dense::zero_grad`]; combine
    /// with `accumulate_params = false` to propagate through a frozen layer
    /// (used when training an actor through the critic).
    ///
    /// # Panics
    ///
    /// Panics if no forward pass preceded this call or if `grad_out` does not
    /// match the cached output shape.
    pub fn backward(&mut self, grad_out: &Mat, accumulate_params: bool) -> Mat {
        assert_eq!(
            (grad_out.rows(), grad_out.cols()),
            (self.last_output.rows(), self.last_output.cols()),
            "backward called with mismatched gradient shape (did you forward first?)"
        );
        let batch = grad_out.rows();
        let mut grad_in = Mat::zeros(batch, self.inputs());
        for s in 0..batch {
            for o in 0..self.outputs() {
                let dz = grad_out[(s, o)]
                    * self
                        .activation
                        .derivative_from_output(self.last_output[(s, o)]);
                if dz == 0.0 {
                    continue;
                }
                if accumulate_params {
                    self.grad_bias[o] += dz;
                    let in_row = self.last_input.row(s);
                    let gw_row = self.grad_weights.row_mut(o);
                    for (g, &xi) in gw_row.iter_mut().zip(in_row) {
                        *g += dz * xi;
                    }
                }
                let w_row = self.weights.row(o);
                let gi_row = grad_in.row_mut(s);
                for (gi, &w) in gi_row.iter_mut().zip(w_row) {
                    *gi += dz * w;
                }
            }
        }
        grad_in
    }

    /// Clears accumulated parameter gradients.
    pub fn zero_grad(&mut self) {
        self.grad_weights.fill_zero();
        self.grad_bias.fill(0.0);
    }

    /// Applies `params -= lr * grads` (plain SGD step).
    pub fn sgd_step(&mut self, lr: f64) {
        self.weights.axpy_mut(-lr, &self.grad_weights);
        for (b, g) in self.bias.iter_mut().zip(&self.grad_bias) {
            *b -= lr * g;
        }
    }

    /// Visits `(parameter, gradient)` pairs mutably — used by optimizers.
    pub(crate) fn visit_params_mut(&mut self, mut f: impl FnMut(&mut f64, f64)) {
        for (w, g) in self
            .weights
            .as_mut_slice()
            .iter_mut()
            .zip(self.grad_weights.as_slice())
        {
            f(w, *g);
        }
        for (b, g) in self.bias.iter_mut().zip(&self.grad_bias) {
            f(b, *g);
        }
    }

    /// Total number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.weights.rows() * self.weights.cols() + self.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_identity_is_affine() {
        let mut layer = Dense::with_seed(2, 1, Activation::Identity, 1);
        let x = Mat::from_rows(&[&[1.0, 2.0]]);
        let y = layer.forward(&x);
        let expected = layer.weights()[(0, 0)] + 2.0 * layer.weights()[(0, 1)];
        assert!((y[(0, 0)] - expected).abs() < 1e-15);
    }

    #[test]
    fn forward_inference_matches_forward() {
        let mut layer = Dense::with_seed(3, 4, Activation::Tanh, 7);
        let x = Mat::from_rows(&[&[0.1, -0.2, 0.3], &[1.0, 0.0, -1.0]]);
        let a = layer.forward(&x);
        let b = layer.forward_inference(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn xavier_init_within_limit() {
        let layer = Dense::with_seed(10, 10, Activation::Relu, 3);
        let limit = (6.0 / 20.0_f64).sqrt();
        assert!(layer.weights().as_slice().iter().all(|w| w.abs() <= limit));
        assert!(layer.bias().iter().all(|&b| b == 0.0));
    }

    #[test]
    fn param_count() {
        let layer = Dense::with_seed(3, 5, Activation::Relu, 0);
        assert_eq!(layer.param_count(), 3 * 5 + 5);
    }

    /// Central-difference gradient check of both parameter and input
    /// gradients for a single layer under an L = Σ y² loss.
    #[test]
    fn backward_matches_finite_difference() {
        for act in [Activation::Identity, Activation::Tanh, Activation::Sigmoid] {
            let mut layer = Dense::with_seed(3, 2, act, 11);
            let x = Mat::from_rows(&[&[0.3, -0.7, 0.2], &[0.9, 0.1, -0.4]]);

            let loss = |l: &Dense, xx: &Mat| -> f64 {
                let y = l.forward_inference(xx);
                y.as_slice().iter().map(|v| v * v).sum()
            };

            // Analytic gradients: dL/dy = 2y.
            let y = layer.forward(&x);
            let grad_out = y.scaled(2.0);
            layer.zero_grad();
            let grad_in = layer.backward(&grad_out, true);

            let h = 1e-6;
            // Parameter gradients.
            for o in 0..2 {
                for i in 0..3 {
                    let mut lp = layer.clone();
                    lp.weights[(o, i)] += h;
                    let mut lm = layer.clone();
                    lm.weights[(o, i)] -= h;
                    let fd = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * h);
                    let an = layer.grad_weights[(o, i)];
                    assert!(
                        (fd - an).abs() < 1e-4 * (1.0 + fd.abs()),
                        "{act:?} dW[{o}][{i}]: fd={fd} an={an}"
                    );
                }
                let mut lp = layer.clone();
                lp.bias[o] += h;
                let mut lm = layer.clone();
                lm.bias[o] -= h;
                let fd = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * h);
                let an = layer.grad_bias[o];
                assert!((fd - an).abs() < 1e-4 * (1.0 + fd.abs()), "{act:?} db[{o}]");
            }
            // Input gradients.
            for s in 0..2 {
                for i in 0..3 {
                    let mut xp = x.clone();
                    xp[(s, i)] += h;
                    let mut xm = x.clone();
                    xm[(s, i)] -= h;
                    let fd = (loss(&layer, &xp) - loss(&layer, &xm)) / (2.0 * h);
                    let an = grad_in[(s, i)];
                    assert!(
                        (fd - an).abs() < 1e-4 * (1.0 + fd.abs()),
                        "{act:?} dX[{s}][{i}]: fd={fd} an={an}"
                    );
                }
            }
        }
    }

    #[test]
    fn frozen_backward_leaves_param_grads_untouched() {
        let mut layer = Dense::with_seed(2, 2, Activation::Tanh, 5);
        let x = Mat::from_rows(&[&[0.5, -0.5]]);
        let y = layer.forward(&x);
        layer.zero_grad();
        let _ = layer.backward(&y.scaled(2.0), false);
        assert!(layer.grad_weights.as_slice().iter().all(|&g| g == 0.0));
        assert!(layer.grad_bias.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn sgd_step_reduces_quadratic_loss() {
        let mut layer = Dense::with_seed(1, 1, Activation::Identity, 2);
        let x = Mat::from_rows(&[&[1.0]]);
        let target = 3.0;
        let mut prev_loss = f64::INFINITY;
        for _ in 0..50 {
            let y = layer.forward(&x);
            let err = y[(0, 0)] - target;
            let loss = err * err;
            assert!(loss <= prev_loss + 1e-12, "loss must not increase");
            prev_loss = loss;
            layer.zero_grad();
            let grad = Mat::from_rows(&[&[2.0 * err]]);
            layer.backward(&grad, true);
            layer.sgd_step(0.1);
        }
        assert!(prev_loss < 1e-6);
    }
}
