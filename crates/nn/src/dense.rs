use maopt_linalg::kernels::{axpy, debug_assert_finite, dot};
use maopt_linalg::Mat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Activation;

/// Shared forward kernel: `out = act(x·Wᵀ + b)`, resizing `out` in
/// place (no allocation once warmed up). Every forward variant —
/// caching, inference and workspace — funnels through this function, so
/// they are bitwise identical by construction.
fn forward_kernel(weights: &Mat, bias: &[f64], activation: Activation, x: &Mat, out: &mut Mat) {
    assert_eq!(x.cols(), weights.cols(), "dense layer input width mismatch");
    let outputs = weights.rows();
    out.resize_reset(x.rows(), outputs);
    for s in 0..x.rows() {
        let row = x.row(s);
        for o in 0..outputs {
            let z = dot(weights.row(o), row) + bias[o];
            out[(s, o)] = activation.apply(z);
        }
    }
}

/// Shared backward kernel over explicit caches `x` (layer input) and
/// `y` (activated output). Accumulates parameter gradients when asked,
/// writes `∂L/∂x` into `grad_in` (resized in place). The `dz == 0.0`
/// fast path skips rows that cannot contribute — bitwise-neutral for
/// finite operands, and debug builds assert the skipped operands really
/// are finite so poisoned inputs are surfaced rather than laundered.
#[allow(clippy::too_many_arguments)]
fn backward_kernel(
    weights: &Mat,
    activation: Activation,
    x: &Mat,
    y: &Mat,
    grad_out: &Mat,
    grad_weights: &mut Mat,
    grad_bias: &mut [f64],
    grad_in: &mut Mat,
    accumulate_params: bool,
) {
    assert_eq!(
        (grad_out.rows(), grad_out.cols()),
        (y.rows(), y.cols()),
        "backward called with mismatched gradient shape (did you forward first?)"
    );
    let batch = grad_out.rows();
    grad_in.resize_reset(batch, weights.cols());
    for s in 0..batch {
        for o in 0..weights.rows() {
            let dz = grad_out[(s, o)] * activation.derivative_from_output(y[(s, o)]);
            if dz == 0.0 {
                debug_assert_finite(x.row(s), "dense backward zero-skip (input)");
                debug_assert_finite(weights.row(o), "dense backward zero-skip (weights)");
                continue;
            }
            if accumulate_params {
                grad_bias[o] += dz;
                axpy(grad_weights.row_mut(o), dz, x.row(s));
            }
            axpy(grad_in.row_mut(s), dz, weights.row(o));
        }
    }
}

/// A fully connected layer: `y = act(x·Wᵀ + b)`.
///
/// Rows of the weight matrix correspond to output units, columns to inputs.
/// The layer caches its last input and output so that [`Dense::backward`]
/// can compute parameter and input gradients.
#[derive(Debug, Clone)]
pub struct Dense {
    weights: Mat,
    bias: Vec<f64>,
    activation: Activation,
    grad_weights: Mat,
    grad_bias: Vec<f64>,
    // Caches from the most recent forward pass.
    last_input: Mat,
    last_output: Mat,
}

impl Dense {
    /// Creates a layer with Xavier-uniform initialized weights.
    ///
    /// The `rng` drives initialization; pass a seeded RNG for reproducible
    /// networks.
    pub fn new(inputs: usize, outputs: usize, activation: Activation, rng: &mut StdRng) -> Self {
        let limit = (6.0 / (inputs + outputs) as f64).sqrt();
        let weights = Mat::from_fn(outputs, inputs, |_, _| rng.random_range(-limit..limit));
        Dense {
            weights,
            bias: vec![0.0; outputs],
            activation,
            grad_weights: Mat::zeros(outputs, inputs),
            grad_bias: vec![0.0; outputs],
            last_input: Mat::zeros(0, 0),
            last_output: Mat::zeros(0, 0),
        }
    }

    /// Deterministic convenience constructor used by tests.
    pub fn with_seed(inputs: usize, outputs: usize, activation: Activation, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Dense::new(inputs, outputs, activation, &mut rng)
    }

    /// Number of input features.
    pub fn inputs(&self) -> usize {
        self.weights.cols()
    }

    /// Number of output units.
    pub fn outputs(&self) -> usize {
        self.weights.rows()
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Immutable view of the weights (rows = outputs).
    pub fn weights(&self) -> &Mat {
        &self.weights
    }

    /// Immutable view of the bias.
    pub fn bias(&self) -> &[f64] {
        &self.bias
    }

    /// Forward pass over a batch (rows = samples).
    ///
    /// Caches the input and output for the subsequent backward pass.
    /// Both caches reuse their buffers from the previous call — the
    /// seed implementation's `x.clone()`/`out.clone()` pair is gone, so
    /// a steady-state call allocates only the returned matrix.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.inputs()`.
    pub fn forward(&mut self, x: &Mat) -> Mat {
        forward_kernel(
            &self.weights,
            &self.bias,
            self.activation,
            x,
            &mut self.last_output,
        );
        self.last_input.copy_from(x);
        self.last_output.clone()
    }

    /// Inference-only forward pass that does not touch the caches.
    pub fn forward_inference(&self, x: &Mat) -> Mat {
        let mut out = Mat::default();
        self.forward_into(x, &mut out);
        out
    }

    /// Forward pass into a caller-owned buffer (resized in place),
    /// touching neither the caches nor the heap once `out` is warm.
    /// Bitwise identical to [`Dense::forward`] /
    /// [`Dense::forward_inference`].
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.inputs()`.
    pub fn forward_into(&self, x: &Mat, out: &mut Mat) {
        forward_kernel(&self.weights, &self.bias, self.activation, x, out);
    }

    /// Backward pass: given `∂L/∂y`, accumulates parameter gradients and
    /// returns `∂L/∂x`.
    ///
    /// Gradients accumulate across calls until [`Dense::zero_grad`]; combine
    /// with `accumulate_params = false` to propagate through a frozen layer
    /// (used when training an actor through the critic).
    ///
    /// # Panics
    ///
    /// Panics if no forward pass preceded this call or if `grad_out` does not
    /// match the cached output shape.
    pub fn backward(&mut self, grad_out: &Mat, accumulate_params: bool) -> Mat {
        let mut grad_in = Mat::default();
        backward_kernel(
            &self.weights,
            self.activation,
            &self.last_input,
            &self.last_output,
            grad_out,
            &mut self.grad_weights,
            &mut self.grad_bias,
            &mut grad_in,
            accumulate_params,
        );
        grad_in
    }

    /// Backward pass over *explicit* caches: `x` is the input and `y`
    /// the activated output of the forward pass being differentiated
    /// (e.g. buffers held in a [`crate::Workspace`]). Writes `∂L/∂x`
    /// into `grad_in`, resized in place — no allocation once warm.
    /// Bitwise identical to [`Dense::backward`].
    ///
    /// # Panics
    ///
    /// Panics if `grad_out` does not match `y`'s shape.
    pub fn backward_into(
        &mut self,
        x: &Mat,
        y: &Mat,
        grad_out: &Mat,
        grad_in: &mut Mat,
        accumulate_params: bool,
    ) {
        backward_kernel(
            &self.weights,
            self.activation,
            x,
            y,
            grad_out,
            &mut self.grad_weights,
            &mut self.grad_bias,
            grad_in,
            accumulate_params,
        );
    }

    /// Clears accumulated parameter gradients.
    pub fn zero_grad(&mut self) {
        self.grad_weights.fill_zero();
        self.grad_bias.fill(0.0);
    }

    /// Applies `params -= lr * grads` (plain SGD step).
    pub fn sgd_step(&mut self, lr: f64) {
        self.weights.axpy_mut(-lr, &self.grad_weights);
        for (b, g) in self.bias.iter_mut().zip(&self.grad_bias) {
            *b -= lr * g;
        }
    }

    /// Overwrites weights and bias from flat slices (checkpoint restore).
    /// Weight order matches `weights().as_slice()` (row-major, rows =
    /// outputs), i.e. the same order [`Dense::visit_params_mut`] walks.
    ///
    /// # Panics
    ///
    /// Panics when a slice length does not match this layer's shape.
    pub(crate) fn load_params(&mut self, weights: &[f64], bias: &[f64]) {
        assert_eq!(
            weights.len(),
            self.weights.rows() * self.weights.cols(),
            "checkpointed weight count does not match layer shape"
        );
        assert_eq!(
            bias.len(),
            self.bias.len(),
            "checkpointed bias count does not match layer shape"
        );
        self.weights.as_mut_slice().copy_from_slice(weights);
        self.bias.copy_from_slice(bias);
    }

    /// Visits `(parameter, gradient)` pairs mutably — used by optimizers.
    pub(crate) fn visit_params_mut(&mut self, mut f: impl FnMut(&mut f64, f64)) {
        for (w, g) in self
            .weights
            .as_mut_slice()
            .iter_mut()
            .zip(self.grad_weights.as_slice())
        {
            f(w, *g);
        }
        for (b, g) in self.bias.iter_mut().zip(&self.grad_bias) {
            f(b, *g);
        }
    }

    /// Total number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.weights.rows() * self.weights.cols() + self.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_identity_is_affine() {
        let mut layer = Dense::with_seed(2, 1, Activation::Identity, 1);
        let x = Mat::from_rows(&[&[1.0, 2.0]]);
        let y = layer.forward(&x);
        let expected = layer.weights()[(0, 0)] + 2.0 * layer.weights()[(0, 1)];
        assert!((y[(0, 0)] - expected).abs() < 1e-15);
    }

    #[test]
    fn forward_inference_matches_forward() {
        let mut layer = Dense::with_seed(3, 4, Activation::Tanh, 7);
        let x = Mat::from_rows(&[&[0.1, -0.2, 0.3], &[1.0, 0.0, -1.0]]);
        let a = layer.forward(&x);
        let b = layer.forward_inference(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn xavier_init_within_limit() {
        let layer = Dense::with_seed(10, 10, Activation::Relu, 3);
        let limit = (6.0 / 20.0_f64).sqrt();
        assert!(layer.weights().as_slice().iter().all(|w| w.abs() <= limit));
        assert!(layer.bias().iter().all(|&b| b == 0.0));
    }

    #[test]
    fn param_count() {
        let layer = Dense::with_seed(3, 5, Activation::Relu, 0);
        assert_eq!(layer.param_count(), 3 * 5 + 5);
    }

    /// Central-difference gradient check of both parameter and input
    /// gradients for a single layer under an L = Σ y² loss.
    #[test]
    fn backward_matches_finite_difference() {
        for act in [Activation::Identity, Activation::Tanh, Activation::Sigmoid] {
            let mut layer = Dense::with_seed(3, 2, act, 11);
            let x = Mat::from_rows(&[&[0.3, -0.7, 0.2], &[0.9, 0.1, -0.4]]);

            let loss = |l: &Dense, xx: &Mat| -> f64 {
                let y = l.forward_inference(xx);
                y.as_slice().iter().map(|v| v * v).sum()
            };

            // Analytic gradients: dL/dy = 2y.
            let y = layer.forward(&x);
            let grad_out = y.scaled(2.0);
            layer.zero_grad();
            let grad_in = layer.backward(&grad_out, true);

            let h = 1e-6;
            // Parameter gradients.
            for o in 0..2 {
                for i in 0..3 {
                    let mut lp = layer.clone();
                    lp.weights[(o, i)] += h;
                    let mut lm = layer.clone();
                    lm.weights[(o, i)] -= h;
                    let fd = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * h);
                    let an = layer.grad_weights[(o, i)];
                    assert!(
                        (fd - an).abs() < 1e-4 * (1.0 + fd.abs()),
                        "{act:?} dW[{o}][{i}]: fd={fd} an={an}"
                    );
                }
                let mut lp = layer.clone();
                lp.bias[o] += h;
                let mut lm = layer.clone();
                lm.bias[o] -= h;
                let fd = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * h);
                let an = layer.grad_bias[o];
                assert!((fd - an).abs() < 1e-4 * (1.0 + fd.abs()), "{act:?} db[{o}]");
            }
            // Input gradients.
            for s in 0..2 {
                for i in 0..3 {
                    let mut xp = x.clone();
                    xp[(s, i)] += h;
                    let mut xm = x.clone();
                    xm[(s, i)] -= h;
                    let fd = (loss(&layer, &xp) - loss(&layer, &xm)) / (2.0 * h);
                    let an = grad_in[(s, i)];
                    assert!(
                        (fd - an).abs() < 1e-4 * (1.0 + fd.abs()),
                        "{act:?} dX[{s}][{i}]: fd={fd} an={an}"
                    );
                }
            }
        }
    }

    #[test]
    fn frozen_backward_leaves_param_grads_untouched() {
        let mut layer = Dense::with_seed(2, 2, Activation::Tanh, 5);
        let x = Mat::from_rows(&[&[0.5, -0.5]]);
        let y = layer.forward(&x);
        layer.zero_grad();
        let _ = layer.backward(&y.scaled(2.0), false);
        assert!(layer.grad_weights.as_slice().iter().all(|&g| g == 0.0));
        assert!(layer.grad_bias.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn sgd_step_reduces_quadratic_loss() {
        let mut layer = Dense::with_seed(1, 1, Activation::Identity, 2);
        let x = Mat::from_rows(&[&[1.0]]);
        let target = 3.0;
        let mut prev_loss = f64::INFINITY;
        for _ in 0..50 {
            let y = layer.forward(&x);
            let err = y[(0, 0)] - target;
            let loss = err * err;
            assert!(loss <= prev_loss + 1e-12, "loss must not increase");
            prev_loss = loss;
            layer.zero_grad();
            let grad = Mat::from_rows(&[&[2.0 * err]]);
            layer.backward(&grad, true);
            layer.sgd_step(0.1);
        }
        assert!(prev_loss < 1e-6);
    }
}
