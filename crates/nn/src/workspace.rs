use maopt_linalg::Mat;

/// Reusable buffers for allocation-free MLP passes.
///
/// A `Workspace` owns the per-layer activation buffers of an
/// [`crate::Mlp::forward_ws`] pass and the ping-pong gradient buffers of
/// the matching [`crate::Mlp::backward_ws`]. Buffers are sized lazily on
/// first use and reused afterwards: once warmed up for a given
/// `(batch, widths)` shape, a full forward + backward pass performs
/// **zero heap allocations**.
///
/// The workspace replaces the `last_input`/`last_output` clone pair that
/// [`crate::Dense::forward`] keeps for its own backward pass — with a
/// workspace, activations live in caller-owned buffers and layers stay
/// untouched (`&self`) during the forward pass.
///
/// One workspace serves one network at a time: interleaving `forward_ws`
/// calls of two differently-shaped networks through the same workspace
/// re-sizes the buffers each call (correct, but no longer
/// allocation-free). Results are bitwise identical to the allocating
/// [`crate::Mlp::forward`]/[`crate::Mlp::backward`] paths — enforced by
/// the nn property tests.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// `acts[0]` is a copy of the input; `acts[l + 1]` is layer `l`'s
    /// activated output.
    pub(crate) acts: Vec<Mat>,
    /// Ping-pong buffers holding `∂L/∂(layer input)` during backward.
    pub(crate) gbuf: [Mat; 2],
}

impl Workspace {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// The activated output of the most recent `forward_ws` pass, if
    /// one has run.
    pub fn output(&self) -> Option<&Mat> {
        self.acts.last()
    }
}
