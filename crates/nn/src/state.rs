//! Plain-data snapshots of network, optimizer and scaler state.
//!
//! Checkpointing (crate `maopt-ckpt`) serializes optimizer runs without
//! this crate knowing anything about on-disk formats: each stateful type
//! exports a `*State` struct of plain vectors that the checkpoint codec
//! can encode however it likes, and restores from one onto a freshly
//! constructed value of the same architecture. Transients (gradient
//! accumulators, forward caches, workspaces) are deliberately excluded —
//! every training step begins by overwriting them.

use crate::{Dense, Mlp};

/// One dense layer's trainable parameters.
///
/// `weights` is row-major with rows = outputs, exactly the order of
/// `Dense::weights().as_slice()` and of the optimizer's parameter walk.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerState {
    /// Input feature count.
    pub inputs: usize,
    /// Output unit count.
    pub outputs: usize,
    /// Flattened weight matrix (`outputs × inputs`, row-major).
    pub weights: Vec<f64>,
    /// Bias vector (`outputs` entries).
    pub bias: Vec<f64>,
}

/// A whole MLP's trainable parameters, layer by layer.
///
/// Activations are architecture, not state: restoring requires an MLP
/// constructed with the same widths and activations.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpState {
    /// Per-layer parameters, input side first.
    pub layers: Vec<LayerState>,
}

/// Adam's mutable state: step counter and per-parameter moments,
/// flattened in layer visit order (weights row-major, then bias).
#[derive(Debug, Clone, PartialEq)]
pub struct AdamState {
    /// Bias-correction step counter.
    pub t: u64,
    /// First-moment estimates.
    pub m: Vec<f64>,
    /// Second-moment estimates.
    pub v: Vec<f64>,
}

/// A fitted [`crate::MinMaxScaler`]'s parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalerState {
    /// Per-column minima.
    pub mins: Vec<f64>,
    /// Per-column ranges (`0.0` marks a degenerate column).
    pub ranges: Vec<f64>,
}

impl Mlp {
    /// Captures every layer's trainable parameters for checkpointing.
    pub fn state(&self) -> MlpState {
        MlpState {
            layers: self
                .layers()
                .iter()
                .map(|layer: &Dense| LayerState {
                    inputs: layer.inputs(),
                    outputs: layer.outputs(),
                    weights: layer.weights().as_slice().to_vec(),
                    bias: layer.bias().to_vec(),
                })
                .collect(),
        }
    }

    /// Restores parameters captured by [`Mlp::state`] into a network of
    /// the same architecture.
    ///
    /// # Panics
    ///
    /// Panics when the layer count or any layer shape disagrees with
    /// this network.
    pub fn restore(&mut self, state: &MlpState) {
        assert_eq!(
            state.layers.len(),
            self.layers().len(),
            "checkpointed layer count does not match network"
        );
        for (layer, s) in self.layers_mut().iter_mut().zip(&state.layers) {
            assert_eq!(
                (layer.inputs(), layer.outputs()),
                (s.inputs, s.outputs),
                "checkpointed layer shape does not match network"
            );
            layer.load_params(&s.weights, &s.bias);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mse_loss_grad, Activation, Adam, MinMaxScaler};
    use maopt_linalg::Mat;

    fn trained_pair() -> (Mlp, Adam, Mat, Mat) {
        let mut mlp = Mlp::new(&[2, 8, 1], Activation::Tanh, 5);
        let mut adam = Adam::new(&mlp, 1e-2);
        let x = Mat::from_fn(8, 2, |i, j| (i + j) as f64 / 8.0);
        let y = Mat::from_fn(8, 1, |i, _| (i as f64 / 8.0).sin());
        for _ in 0..20 {
            let pred = mlp.forward(&x);
            let (_, grad) = mse_loss_grad(&pred, &y);
            mlp.zero_grad();
            mlp.backward(&grad);
            adam.step(&mut mlp);
        }
        (mlp, adam, x, y)
    }

    #[test]
    fn mlp_state_roundtrip_is_exact() {
        let (mlp, _, x, _) = trained_pair();
        let state = mlp.state();
        let mut fresh = Mlp::new(&[2, 8, 1], Activation::Tanh, 999);
        assert_ne!(fresh.predict(&[0.3, 0.4]), mlp.predict(&[0.3, 0.4]));
        fresh.restore(&state);
        assert_eq!(fresh.predict(&[0.3, 0.4]), mlp.predict(&[0.3, 0.4]));
        assert_eq!(fresh.forward_inference(&x), mlp.forward_inference(&x));
    }

    #[test]
    fn adam_restore_continues_training_bitwise() {
        // Train 20 steps, snapshot, train 10 more; a fresh net+optimizer
        // restored from the snapshot must reproduce those 10 steps exactly.
        let (mut mlp, mut adam, x, y) = trained_pair();
        let net_state = mlp.state();
        let opt_state = adam.state();

        let mut mlp2 = Mlp::new(&[2, 8, 1], Activation::Tanh, 123);
        let mut adam2 = Adam::new(&mlp2, 1e-2);
        mlp2.restore(&net_state);
        adam2.restore(&opt_state);

        for _ in 0..10 {
            for (net, opt) in [(&mut mlp, &mut adam), (&mut mlp2, &mut adam2)] {
                let pred = net.forward(&x);
                let (_, grad) = mse_loss_grad(&pred, &y);
                net.zero_grad();
                net.backward(&grad);
                opt.step(net);
            }
        }
        assert_eq!(mlp.state(), mlp2.state());
        assert_eq!(adam.state(), adam2.state());
    }

    #[test]
    fn scaler_state_roundtrip_is_exact() {
        let data = Mat::from_rows(&[&[1.0, 7.0, -2.0], &[3.0, 7.0, 5.0]]);
        let s = MinMaxScaler::fit(&data);
        let back = MinMaxScaler::from_state(&s.state());
        assert_eq!(back, s);
        assert_eq!(back.transform(&data), s.transform(&data));
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn restore_rejects_mismatched_architecture() {
        let small = Mlp::new(&[2, 4, 1], Activation::Tanh, 0);
        let mut big = Mlp::new(&[2, 8, 1], Activation::Tanh, 0);
        big.restore(&small.state());
    }
}
