use maopt_linalg::Mat;

/// Mean-squared error over every entry of a batch.
///
/// This is Eq. 4 of the paper: the critic is trained with MSE over the
/// `m + 1` metrics of each pseudo-sample, averaged over batch *and* outputs.
///
/// # Panics
///
/// Panics if `pred` and `target` have different shapes.
pub fn mse_loss(pred: &Mat, target: &Mat) -> f64 {
    assert_eq!(
        (pred.rows(), pred.cols()),
        (target.rows(), target.cols()),
        "MSE shape mismatch"
    );
    let n = (pred.rows() * pred.cols()) as f64;
    pred.as_slice()
        .iter()
        .zip(target.as_slice())
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / n
}

/// MSE loss together with its gradient `∂L/∂pred = 2(pred − target)/N`.
///
/// # Panics
///
/// Panics if `pred` and `target` have different shapes.
pub fn mse_loss_grad(pred: &Mat, target: &Mat) -> (f64, Mat) {
    let mut grad = Mat::default();
    let loss = mse_loss_grad_into(pred, target, &mut grad);
    (loss, grad)
}

/// [`mse_loss_grad`] writing the gradient into a caller-owned buffer.
///
/// `grad` is resized to `pred`'s shape reusing its capacity, so a
/// training loop that keeps the buffer allocates nothing here. Returns
/// the loss; results are bitwise identical to [`mse_loss_grad`].
///
/// # Panics
///
/// Panics if `pred` and `target` have different shapes.
pub fn mse_loss_grad_into(pred: &Mat, target: &Mat, grad: &mut Mat) -> f64 {
    let loss = mse_loss(pred, target);
    let n = (pred.rows() * pred.cols()) as f64;
    grad.resize_reset(pred.rows(), pred.cols());
    for (g, (p, t)) in grad
        .as_mut_slice()
        .iter_mut()
        .zip(pred.as_slice().iter().zip(target.as_slice()))
    {
        *g = 2.0 * (p - t) / n;
    }
    loss
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_loss_for_identical() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let (loss, grad) = mse_loss_grad(&a, &a);
        assert_eq!(loss, 0.0);
        assert!(grad.as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn known_value() {
        let pred = Mat::from_rows(&[&[1.0, 2.0]]);
        let target = Mat::from_rows(&[&[0.0, 4.0]]);
        // ((1)² + (−2)²) / 2 = 2.5
        assert_eq!(mse_loss(&pred, &target), 2.5);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let pred = Mat::from_rows(&[&[0.3, -0.8], &[1.2, 0.1]]);
        let target = Mat::from_rows(&[&[0.0, 0.5], &[1.0, -1.0]]);
        let (_, grad) = mse_loss_grad(&pred, &target);
        let h = 1e-7;
        for i in 0..2 {
            for j in 0..2 {
                let mut pp = pred.clone();
                pp[(i, j)] += h;
                let mut pm = pred.clone();
                pm[(i, j)] -= h;
                let fd = (mse_loss(&pp, &target) - mse_loss(&pm, &target)) / (2.0 * h);
                assert!((fd - grad[(i, j)]).abs() < 1e-6);
            }
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let _ = mse_loss(&Mat::zeros(1, 2), &Mat::zeros(2, 1));
    }
}
