use maopt_linalg::Mat;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{Activation, Dense, Workspace};

/// A multi-layer perceptron: a stack of [`Dense`] layers.
///
/// Hidden layers share one activation; the output layer is linear
/// ([`Activation::Identity`]) unless overridden with
/// [`Mlp::with_output_activation`]. This mirrors the paper's networks:
/// the critic is a plain regression MLP, the actor ends in `tanh` so its
/// action is bounded.
///
/// # Example
///
/// ```
/// use maopt_nn::{Activation, Mlp};
/// use maopt_linalg::Mat;
///
/// let mlp = Mlp::new(&[2, 100, 100, 3], Activation::Relu, 0);
/// assert_eq!(mlp.inputs(), 2);
/// assert_eq!(mlp.outputs(), 3);
/// let y = mlp.predict(&[0.5, -0.5]);
/// assert_eq!(y.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Builds an MLP from layer widths, e.g. `&[4, 100, 100, 2]`.
    ///
    /// Hidden layers use `hidden_activation`; the final layer is linear.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn new(widths: &[usize], hidden_activation: Activation, seed: u64) -> Self {
        assert!(
            widths.len() >= 2,
            "an MLP needs at least input and output widths"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(widths.len() - 1);
        for w in widths.windows(2) {
            let is_last = layers.len() == widths.len() - 2;
            let act = if is_last {
                Activation::Identity
            } else {
                hidden_activation
            };
            layers.push(Dense::new(w[0], w[1], act, &mut rng));
        }
        Mlp { layers }
    }

    /// Builds an MLP whose output layer uses `output_activation` instead of
    /// the default linear output.
    pub fn with_output_activation(
        widths: &[usize],
        hidden_activation: Activation,
        output_activation: Activation,
        seed: u64,
    ) -> Self {
        assert!(
            widths.len() >= 2,
            "an MLP needs at least input and output widths"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(widths.len() - 1);
        let last = widths.len() - 2;
        for (i, w) in widths.windows(2).enumerate() {
            let act = if i == last {
                output_activation
            } else {
                hidden_activation
            };
            layers.push(Dense::new(w[0], w[1], act, &mut rng));
        }
        Mlp { layers }
    }

    /// Input feature count.
    pub fn inputs(&self) -> usize {
        self.layers.first().expect("MLP has layers").inputs()
    }

    /// Output feature count.
    pub fn outputs(&self) -> usize {
        self.layers.last().expect("MLP has layers").outputs()
    }

    /// The layers, in order.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Mutable access to the layers (used by optimizers).
    pub(crate) fn layers_mut(&mut self) -> &mut [Dense] {
        &mut self.layers
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Dense::param_count).sum()
    }

    /// Forward pass over a batch, caching activations for backward.
    pub fn forward(&mut self, x: &Mat) -> Mat {
        let (first, rest) = self.layers.split_first_mut().expect("MLP has layers");
        let mut h = first.forward(x);
        for layer in rest {
            h = layer.forward(&h);
        }
        h
    }

    /// Inference-only forward pass (no caches touched, `&self`).
    pub fn forward_inference(&self, x: &Mat) -> Mat {
        let (first, rest) = self.layers.split_first().expect("MLP has layers");
        let mut h = first.forward_inference(x);
        for layer in rest {
            h = layer.forward_inference(&h);
        }
        h
    }

    /// Forward pass through caller-owned [`Workspace`] buffers.
    ///
    /// Activations (including a copy of the input) land in `ws`, layer
    /// caches are untouched (`&self`), and nothing is allocated once
    /// the workspace is warm for this `(batch, widths)` shape. The
    /// returned reference is the activated output, living in `ws`.
    /// Bitwise identical to [`Mlp::forward`] and
    /// [`Mlp::forward_inference`]; pair with [`Mlp::backward_ws`] for a
    /// zero-allocation training step.
    pub fn forward_ws<'w>(&self, x: &Mat, ws: &'w mut Workspace) -> &'w Mat {
        let n = self.layers.len();
        ws.acts.resize_with(n + 1, Mat::default);
        ws.acts[0].copy_from(x);
        for (l, layer) in self.layers.iter().enumerate() {
            let (head, tail) = ws.acts.split_at_mut(l + 1);
            layer.forward_into(&head[l], &mut tail[0]);
        }
        &ws.acts[n]
    }

    /// Backward pass over the activations of a preceding
    /// [`Mlp::forward_ws`] on the same workspace. Parameter gradients
    /// accumulate when `accumulate` is true (frozen-network mode
    /// otherwise); the returned reference is `∂L/∂input`, living in
    /// `ws`. Allocation-free once warm and bitwise identical to
    /// [`Mlp::backward`] / [`Mlp::backward_input_only`].
    ///
    /// # Panics
    ///
    /// Panics if the workspace does not hold activations matching this
    /// network (no `forward_ws`, or one from a different network).
    pub fn backward_ws<'w>(
        &mut self,
        grad_out: &Mat,
        ws: &'w mut Workspace,
        accumulate: bool,
    ) -> &'w Mat {
        let n = self.layers.len();
        assert_eq!(
            ws.acts.len(),
            n + 1,
            "backward_ws needs the activations of a preceding forward_ws"
        );
        let (ga, gb) = ws.gbuf.split_at_mut(1);
        let (ga, gb) = (&mut ga[0], &mut gb[0]);
        ga.copy_from(grad_out);
        let mut src_is_a = true;
        for (l, layer) in self.layers.iter_mut().enumerate().rev() {
            let (src, dst) = if src_is_a {
                (&*ga, &mut *gb)
            } else {
                (&*gb, &mut *ga)
            };
            layer.backward_into(&ws.acts[l], &ws.acts[l + 1], src, dst, accumulate);
            src_is_a = !src_is_a;
        }
        if src_is_a {
            &ws.gbuf[0]
        } else {
            &ws.gbuf[1]
        }
    }

    /// Convenience single-sample prediction.
    pub fn predict(&self, x: &[f64]) -> Vec<f64> {
        let input = Mat::from_rows(&[x]);
        self.forward_inference(&input).into_vec()
    }

    /// Backward pass accumulating parameter gradients; returns `∂L/∂input`.
    ///
    /// # Panics
    ///
    /// Panics if [`Mlp::forward`] was not called first with a matching batch.
    pub fn backward(&mut self, grad_out: &Mat) -> Mat {
        self.backward_impl(grad_out, true)
    }

    /// Backward pass through a *frozen* network: parameter gradients are not
    /// accumulated, only `∂L/∂input` is computed.
    ///
    /// This is how the actor trains through the critic: the critic's
    /// input-gradient with respect to the action half of its input is the
    /// actor's output gradient.
    pub fn backward_input_only(&mut self, grad_out: &Mat) -> Mat {
        self.backward_impl(grad_out, false)
    }

    fn backward_impl(&mut self, grad_out: &Mat, accumulate: bool) -> Mat {
        let (last, rest) = self.layers.split_last_mut().expect("MLP has layers");
        let mut g = last.backward(grad_out, accumulate);
        for layer in rest.iter_mut().rev() {
            g = layer.backward(&g, accumulate);
        }
        g
    }

    /// Clears all accumulated parameter gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mse_loss_grad, Adam};

    #[test]
    fn shapes_propagate() {
        let mlp = Mlp::new(&[3, 8, 5, 2], Activation::Relu, 0);
        assert_eq!(mlp.inputs(), 3);
        assert_eq!(mlp.outputs(), 2);
        assert_eq!(mlp.layers().len(), 3);
        assert_eq!(mlp.param_count(), (3 * 8 + 8) + (8 * 5 + 5) + (5 * 2 + 2));
    }

    #[test]
    fn output_layer_is_linear_by_default() {
        let mlp = Mlp::new(&[1, 4, 1], Activation::Tanh, 0);
        assert_eq!(
            mlp.layers().last().unwrap().activation(),
            Activation::Identity
        );
        assert_eq!(mlp.layers()[0].activation(), Activation::Tanh);
    }

    #[test]
    fn with_output_activation_bounds_output() {
        let mlp = Mlp::with_output_activation(&[2, 8, 2], Activation::Relu, Activation::Tanh, 1);
        let y = mlp.predict(&[100.0, -100.0]);
        assert!(y.iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = Mlp::new(&[2, 6, 1], Activation::Tanh, 99);
        let b = Mlp::new(&[2, 6, 1], Activation::Tanh, 99);
        assert_eq!(a.predict(&[0.3, 0.4]), b.predict(&[0.3, 0.4]));
        let c = Mlp::new(&[2, 6, 1], Activation::Tanh, 100);
        assert_ne!(a.predict(&[0.3, 0.4]), c.predict(&[0.3, 0.4]));
    }

    /// Full-network gradient check against central differences.
    #[test]
    fn network_gradients_match_finite_difference() {
        let mut mlp = Mlp::new(&[2, 5, 3, 1], Activation::Tanh, 17);
        let x = Mat::from_rows(&[&[0.2, -0.4], &[0.8, 0.3], &[-0.6, 0.9]]);
        let y = Mat::from_rows(&[&[1.0], &[-1.0], &[0.5]]);

        let pred = mlp.forward(&x);
        let (_, grad) = mse_loss_grad(&pred, &y);
        mlp.zero_grad();
        let grad_in = mlp.backward(&grad);

        let loss_of = |m: &Mlp, xx: &Mat| -> f64 {
            let p = m.forward_inference(xx);
            let n = (p.rows() * p.cols()) as f64;
            p.as_slice()
                .iter()
                .zip(y.as_slice())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                / n
        };

        // Spot-check input gradients at every coordinate.
        let h = 1e-6;
        for s in 0..3 {
            for i in 0..2 {
                let mut xp = x.clone();
                xp[(s, i)] += h;
                let mut xm = x.clone();
                xm[(s, i)] -= h;
                let fd = (loss_of(&mlp, &xp) - loss_of(&mlp, &xm)) / (2.0 * h);
                let an = grad_in[(s, i)];
                assert!(
                    (fd - an).abs() < 1e-5 * (1.0 + fd.abs()),
                    "dX[{s}][{i}]: fd={fd} an={an}"
                );
            }
        }
    }

    #[test]
    fn backward_input_only_matches_backward_input_grad() {
        let mut a = Mlp::new(&[3, 6, 2], Activation::Tanh, 4);
        let mut b = a.clone();
        let x = Mat::from_rows(&[&[0.1, 0.2, 0.3]]);
        let g = Mat::from_rows(&[&[1.0, -2.0]]);
        a.forward(&x);
        b.forward(&x);
        let gi_full = a.backward(&g);
        let gi_frozen = b.backward_input_only(&g);
        assert_eq!(gi_full, gi_frozen);
    }

    #[test]
    fn learns_xor() {
        let mut mlp = Mlp::new(&[2, 16, 1], Activation::Tanh, 7);
        let mut adam = Adam::new(&mlp, 5e-3);
        let x = Mat::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let y = Mat::from_rows(&[&[0.0], &[1.0], &[1.0], &[0.0]]);
        for _ in 0..2000 {
            let pred = mlp.forward(&x);
            let (_, grad) = mse_loss_grad(&pred, &y);
            mlp.zero_grad();
            mlp.backward(&grad);
            adam.step(&mut mlp);
        }
        let pred = mlp.forward_inference(&x);
        for (p, t) in pred.as_slice().iter().zip(y.as_slice()) {
            assert!((p - t).abs() < 0.1, "XOR not learned: {p} vs {t}");
        }
    }

    #[test]
    fn fits_multioutput_sine_family() {
        // Regression with 2 outputs: [sin(πx), x²] — shapes the critic must fit.
        let mut mlp = Mlp::new(&[1, 32, 32, 2], Activation::Tanh, 3);
        let mut adam = Adam::new(&mlp, 3e-3);
        let n = 64;
        let x = Mat::from_fn(n, 1, |i, _| -1.0 + 2.0 * i as f64 / (n - 1) as f64);
        let y = Mat::from_fn(n, 2, |i, j| {
            let xi = x[(i, 0)];
            if j == 0 {
                (std::f64::consts::PI * xi).sin()
            } else {
                xi * xi
            }
        });
        let mut final_loss = f64::INFINITY;
        for _ in 0..1500 {
            let pred = mlp.forward(&x);
            let (loss, grad) = mse_loss_grad(&pred, &y);
            final_loss = loss;
            mlp.zero_grad();
            mlp.backward(&grad);
            adam.step(&mut mlp);
        }
        assert!(final_loss < 5e-3, "loss {final_loss}");
    }
}
