//! Minimal feed-forward neural-network stack for the MA-Opt reproduction.
//!
//! The paper's actor and critic networks are small MLPs (two hidden layers of
//! 100 units). This crate implements exactly what they need, from scratch:
//!
//! * [`Dense`] layers with [`Activation`] functions and hand-written
//!   backpropagation (finite-difference-verified in the test suite),
//! * an [`Mlp`] container with **input-gradient** support — training an actor
//!   *through* a frozen critic requires `∂L/∂input` of the critic,
//! * the [`Adam`] and [`Sgd`] optimizers,
//! * [`MinMaxScaler`] for normalizing network inputs/outputs to the unit box.
//!
//! # Example: fit a line
//!
//! ```
//! use maopt_nn::{Activation, Adam, Mlp, mse_loss_grad};
//! use maopt_linalg::Mat;
//!
//! let mut mlp = Mlp::new(&[1, 16, 1], Activation::Tanh, 42);
//! let mut adam = Adam::new(&mlp, 1e-2);
//! let x = Mat::from_fn(32, 1, |i, _| i as f64 / 32.0);
//! let y = Mat::from_fn(32, 1, |i, _| 2.0 * (i as f64 / 32.0) - 0.5);
//! for _ in 0..500 {
//!     let pred = mlp.forward(&x);
//!     let (_, grad) = mse_loss_grad(&pred, &y);
//!     mlp.zero_grad();
//!     mlp.backward(&grad);
//!     adam.step(&mut mlp);
//! }
//! let pred = mlp.forward(&x);
//! let (loss, _) = mse_loss_grad(&pred, &y);
//! assert!(loss < 1e-3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod dense;
mod loss;
mod mlp;
mod optimizer;
mod scaler;
mod state;
mod workspace;

pub use activation::Activation;
pub use dense::Dense;
pub use loss::{mse_loss, mse_loss_grad, mse_loss_grad_into};
pub use mlp::Mlp;
pub use optimizer::{Adam, Sgd};
pub use scaler::MinMaxScaler;
pub use state::{AdamState, LayerState, MlpState, ScalerState};
pub use workspace::Workspace;
