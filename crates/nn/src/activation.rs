/// Element-wise activation function of a [`crate::Dense`] layer.
///
/// # Example
///
/// ```
/// use maopt_nn::Activation;
///
/// assert_eq!(Activation::Relu.apply(-2.0), 0.0);
/// assert_eq!(Activation::Relu.apply(3.0), 3.0);
/// assert!((Activation::Tanh.apply(0.0)).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// `f(x) = x` — used on output layers of regression networks.
    #[default]
    Identity,
    /// Rectified linear unit, `max(0, x)`.
    Relu,
    /// Hyperbolic tangent — used on actor outputs to bound actions.
    Tanh,
    /// Logistic sigmoid, `1 / (1 + e^{-x})`.
    Sigmoid,
}

impl Activation {
    /// Applies the activation to a scalar.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// Derivative `f'(x)` expressed in terms of the *output* `y = f(x)`.
    ///
    /// All four supported activations admit this form, which lets backward
    /// passes avoid caching pre-activations.
    pub fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Sigmoid => y * (1.0 - y),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ACTS: [Activation; 4] = [
        Activation::Identity,
        Activation::Relu,
        Activation::Tanh,
        Activation::Sigmoid,
    ];

    #[test]
    fn identity_passes_through() {
        assert_eq!(Activation::Identity.apply(-3.25), -3.25);
        assert_eq!(Activation::Identity.derivative_from_output(7.0), 1.0);
    }

    #[test]
    fn relu_clips_negative() {
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert_eq!(Activation::Relu.derivative_from_output(0.0), 0.0);
        assert_eq!(Activation::Relu.derivative_from_output(5.0), 1.0);
    }

    #[test]
    fn tanh_range_and_symmetry() {
        let y = Activation::Tanh.apply(100.0);
        assert!(y <= 1.0 && y > 0.999);
        assert!((Activation::Tanh.apply(-0.5) + Activation::Tanh.apply(0.5)).abs() < 1e-15);
    }

    #[test]
    fn sigmoid_midpoint() {
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-15);
        assert!((Activation::Sigmoid.derivative_from_output(0.5) - 0.25).abs() < 1e-15);
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let h = 1e-6;
        for act in ACTS {
            // Avoid the ReLU kink at 0.
            for &x in &[-1.3, -0.4, 0.7, 1.9] {
                let y = act.apply(x);
                let fd = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                let an = act.derivative_from_output(y);
                assert!(
                    (fd - an).abs() < 1e-5,
                    "{act:?} at x={x}: fd={fd}, analytic={an}"
                );
            }
        }
    }

    #[test]
    fn default_is_identity() {
        assert_eq!(Activation::default(), Activation::Identity);
    }
}
