use crate::state::AdamState;
use crate::Mlp;

/// Plain stochastic gradient descent.
///
/// # Example
///
/// ```
/// use maopt_nn::{Activation, Mlp, Sgd};
///
/// let mut mlp = Mlp::new(&[1, 4, 1], Activation::Tanh, 0);
/// let sgd = Sgd::new(1e-2);
/// // ... forward / backward ...
/// # let mut mlp2 = mlp.clone();
/// sgd.step(&mut mlp);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Sgd {
    lr: f64,
}

impl Sgd {
    /// Creates an SGD optimizer with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        Sgd { lr }
    }

    /// The learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.lr
    }

    /// Applies one descent step using the gradients accumulated in `mlp`.
    pub fn step(&self, mlp: &mut Mlp) {
        for layer in mlp.layers_mut() {
            layer.sgd_step(self.lr);
        }
    }
}

/// The Adam optimizer (Kingma & Ba, 2015) with bias correction.
///
/// State is allocated per network; feeding a differently-shaped network to
/// [`Adam::step`] panics.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    /// First/second moment per parameter, flattened in layer visit order.
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    /// Creates an Adam optimizer sized for `mlp` with the standard
    /// `β₁ = 0.9, β₂ = 0.999, ε = 1e-8`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    pub fn new(mlp: &Mlp, lr: f64) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        let n = mlp.param_count();
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }

    /// The learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.lr
    }

    /// Overrides the learning rate (e.g. for decay schedules).
    pub fn set_learning_rate(&mut self, lr: f64) {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        self.lr = lr;
    }

    /// Resets moment estimates and the step counter.
    pub fn reset(&mut self) {
        self.t = 0;
        self.m.fill(0.0);
        self.v.fill(0.0);
    }

    /// Captures the optimizer's mutable state (step counter and moment
    /// estimates) for checkpointing. Hyperparameters (`lr`, betas, eps)
    /// are construction-time configuration and are not included.
    pub fn state(&self) -> AdamState {
        AdamState {
            t: self.t,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    /// Restores state captured by [`Adam::state`] into an optimizer
    /// built for the same network architecture.
    ///
    /// # Panics
    ///
    /// Panics when the checkpointed moment vectors do not match this
    /// optimizer's parameter count.
    pub fn restore(&mut self, state: &AdamState) {
        assert_eq!(
            state.m.len(),
            self.m.len(),
            "checkpointed Adam state does not match network size"
        );
        assert_eq!(
            state.v.len(),
            self.v.len(),
            "checkpointed Adam state does not match network size"
        );
        self.t = state.t;
        self.m.copy_from_slice(&state.m);
        self.v.copy_from_slice(&state.v);
    }

    /// Applies one Adam update using the gradients accumulated in `mlp`.
    ///
    /// # Panics
    ///
    /// Panics if `mlp` has a different parameter count than the network this
    /// optimizer was created for.
    pub fn step(&mut self, mlp: &mut Mlp) {
        assert_eq!(
            mlp.param_count(),
            self.m.len(),
            "optimizer state does not match network size"
        );
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let mut idx = 0;
        for layer in mlp.layers_mut() {
            layer.visit_params_mut(|p, g| {
                let m = &mut self.m[idx];
                let v = &mut self.v[idx];
                *m = b1 * *m + (1.0 - b1) * g;
                *v = b2 * *v + (1.0 - b2) * g * g;
                let m_hat = *m / bc1;
                let v_hat = *v / bc2;
                *p -= lr * m_hat / (v_hat.sqrt() + eps);
                idx += 1;
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mse_loss_grad, Activation};
    use maopt_linalg::Mat;

    fn train_linear(optimizer_is_adam: bool) -> f64 {
        let mut mlp = Mlp::new(&[1, 8, 1], Activation::Tanh, 5);
        let mut adam = Adam::new(&mlp, 1e-2);
        let sgd = Sgd::new(1e-2);
        let x = Mat::from_fn(16, 1, |i, _| i as f64 / 16.0);
        let y = Mat::from_fn(16, 1, |i, _| 0.5 * (i as f64 / 16.0) + 0.1);
        let mut loss = f64::INFINITY;
        for _ in 0..400 {
            let pred = mlp.forward(&x);
            let (l, grad) = mse_loss_grad(&pred, &y);
            loss = l;
            mlp.zero_grad();
            mlp.backward(&grad);
            if optimizer_is_adam {
                adam.step(&mut mlp);
            } else {
                sgd.step(&mut mlp);
            }
        }
        loss
    }

    #[test]
    fn adam_converges_on_linear_fit() {
        assert!(train_linear(true) < 1e-4);
    }

    #[test]
    fn sgd_converges_on_linear_fit() {
        assert!(train_linear(false) < 1e-2);
    }

    #[test]
    fn adam_beats_sgd_on_this_problem() {
        assert!(train_linear(true) < train_linear(false));
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn negative_lr_rejected() {
        let _ = Sgd::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "optimizer state")]
    fn mismatched_network_rejected() {
        let small = Mlp::new(&[1, 2, 1], Activation::Tanh, 0);
        let mut big = Mlp::new(&[1, 50, 1], Activation::Tanh, 0);
        let mut adam = Adam::new(&small, 1e-3);
        adam.step(&mut big);
    }

    #[test]
    fn reset_clears_state() {
        let mut mlp = Mlp::new(&[1, 2, 1], Activation::Tanh, 0);
        let mut adam = Adam::new(&mlp, 1e-2);
        let x = Mat::from_rows(&[&[1.0]]);
        let y = Mat::from_rows(&[&[2.0]]);
        let pred = mlp.forward(&x);
        let (_, grad) = mse_loss_grad(&pred, &y);
        mlp.backward(&grad);
        adam.step(&mut mlp);
        assert!(adam.m.iter().any(|&m| m != 0.0));
        adam.reset();
        assert!(adam.m.iter().all(|&m| m == 0.0));
        assert_eq!(adam.t, 0);
    }
}
