//! Property-based tests for the neural-network stack.

use maopt_linalg::Mat;
use maopt_nn::{mse_loss, mse_loss_grad, Activation, Mlp};
use proptest::prelude::*;

fn small_batch(rows: usize, cols: usize) -> impl Strategy<Value = Mat> {
    prop::collection::vec(-2.0f64..2.0, rows * cols)
        .prop_map(move |data| Mat::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Full-network parameter-free gradient check: ∂L/∂x from backward must
    /// match central differences for random inputs and targets.
    #[test]
    fn input_gradients_match_finite_difference(
        x in small_batch(2, 3),
        y in small_batch(2, 2),
        seed in 0u64..1000,
    ) {
        let mut mlp = Mlp::new(&[3, 8, 2], Activation::Tanh, seed);
        let pred = mlp.forward(&x);
        let (_, grad) = mse_loss_grad(&pred, &y);
        mlp.zero_grad();
        let gi = mlp.backward(&grad);

        let loss_of = |m: &Mlp, xx: &Mat| mse_loss(&m.forward_inference(xx), &y);
        let h = 1e-6;
        for s in 0..2 {
            for j in 0..3 {
                let mut xp = x.clone();
                xp[(s, j)] += h;
                let mut xm = x.clone();
                xm[(s, j)] -= h;
                let fd = (loss_of(&mlp, &xp) - loss_of(&mlp, &xm)) / (2.0 * h);
                prop_assert!(
                    (fd - gi[(s, j)]).abs() < 1e-4 * (1.0 + fd.abs()),
                    "dX[{s}][{j}]: fd {fd} vs {}", gi[(s, j)]
                );
            }
        }
    }

    /// Inference and training forward passes agree exactly.
    #[test]
    fn forward_modes_agree(x in small_batch(3, 4), seed in 0u64..1000) {
        let mut mlp = Mlp::new(&[4, 6, 2], Activation::Relu, seed);
        let a = mlp.forward(&x);
        let b = mlp.forward_inference(&x);
        prop_assert_eq!(a, b);
    }

    /// A tanh-output network is bounded regardless of input magnitude.
    #[test]
    fn tanh_output_is_bounded(
        raw in prop::collection::vec(-1e6f64..1e6, 3),
        seed in 0u64..1000,
    ) {
        let mlp = Mlp::with_output_activation(&[3, 8, 3], Activation::Relu, Activation::Tanh, seed);
        let y = mlp.predict(&raw);
        prop_assert!(y.iter().all(|v| v.abs() <= 1.0), "{y:?}");
    }

    /// MSE is non-negative, zero exactly on identical matrices, and
    /// symmetric in its arguments.
    #[test]
    fn mse_axioms(a in small_batch(2, 3), b in small_batch(2, 3)) {
        let l = mse_loss(&a, &b);
        prop_assert!(l >= 0.0);
        prop_assert!((mse_loss(&b, &a) - l).abs() < 1e-15);
        prop_assert_eq!(mse_loss(&a, &a), 0.0);
    }

    /// Scaler: transform ∘ inverse_transform is the identity on the data it
    /// was fitted to.
    #[test]
    fn scaler_roundtrip(data in small_batch(5, 3)) {
        let scaler = maopt_nn::MinMaxScaler::fit(&data);
        let there = scaler.transform(&data);
        let back = scaler.inverse_transform(&there);
        for (orig, round) in data.as_slice().iter().zip(back.as_slice()) {
            prop_assert!((orig - round).abs() < 1e-10);
        }
        // Fitted data lands in the unit box.
        prop_assert!(there.as_slice().iter().all(|&v| (-1e-12..=1.0 + 1e-12).contains(&v)));
    }

    /// Gradient accumulation: two backward passes accumulate exactly twice
    /// the gradient of one.
    #[test]
    fn gradients_accumulate_linearly(x in small_batch(2, 2), seed in 0u64..1000) {
        let mut a = Mlp::new(&[2, 4, 1], Activation::Tanh, seed);
        let mut b = a.clone();
        let grad_out = Mat::filled(2, 1, 0.3);

        a.forward(&x);
        a.zero_grad();
        a.backward(&grad_out);
        // Step with SGD lr 1: parameters move by -grad.
        let sgd = maopt_nn::Sgd::new(1.0);
        let mut a1 = a.clone();
        sgd.step(&mut a1);

        b.forward(&x);
        b.zero_grad();
        b.backward(&grad_out);
        b.forward(&x);
        b.backward(&grad_out);
        let mut b2 = b.clone();
        sgd.step(&mut b2);

        // b2's step = 2 × a1's step, so: (orig - b2) = 2 (orig - a1)
        let probe = [0.37, -0.81];
        let orig = a.predict(&probe);
        let one = a1.predict(&probe);
        let two = b2.predict(&probe);
        // Only check that the doubled-gradient step moved further in the
        // same direction (exact 2x does not survive the nonlinearity).
        let d1 = (orig[0] - one[0]).abs();
        let d2 = (orig[0] - two[0]).abs();
        prop_assert!(d2 + 1e-12 >= d1, "accumulated step should not be smaller: {d1} vs {d2}");
    }
}
