//! Property-based tests for the neural-network stack.

use maopt_linalg::Mat;
use maopt_nn::{mse_loss, mse_loss_grad, Activation, Mlp};
use proptest::prelude::*;

fn small_batch(rows: usize, cols: usize) -> impl Strategy<Value = Mat> {
    prop::collection::vec(-2.0f64..2.0, rows * cols)
        .prop_map(move |data| Mat::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Full-network parameter-free gradient check: ∂L/∂x from backward must
    /// match central differences for random inputs and targets.
    #[test]
    fn input_gradients_match_finite_difference(
        x in small_batch(2, 3),
        y in small_batch(2, 2),
        seed in 0u64..1000,
    ) {
        let mut mlp = Mlp::new(&[3, 8, 2], Activation::Tanh, seed);
        let pred = mlp.forward(&x);
        let (_, grad) = mse_loss_grad(&pred, &y);
        mlp.zero_grad();
        let gi = mlp.backward(&grad);

        let loss_of = |m: &Mlp, xx: &Mat| mse_loss(&m.forward_inference(xx), &y);
        let h = 1e-6;
        for s in 0..2 {
            for j in 0..3 {
                let mut xp = x.clone();
                xp[(s, j)] += h;
                let mut xm = x.clone();
                xm[(s, j)] -= h;
                let fd = (loss_of(&mlp, &xp) - loss_of(&mlp, &xm)) / (2.0 * h);
                prop_assert!(
                    (fd - gi[(s, j)]).abs() < 1e-4 * (1.0 + fd.abs()),
                    "dX[{s}][{j}]: fd {fd} vs {}", gi[(s, j)]
                );
            }
        }
    }

    /// Inference and training forward passes agree exactly.
    #[test]
    fn forward_modes_agree(x in small_batch(3, 4), seed in 0u64..1000) {
        let mut mlp = Mlp::new(&[4, 6, 2], Activation::Relu, seed);
        let a = mlp.forward(&x);
        let b = mlp.forward_inference(&x);
        prop_assert_eq!(a, b);
    }

    /// A tanh-output network is bounded regardless of input magnitude.
    #[test]
    fn tanh_output_is_bounded(
        raw in prop::collection::vec(-1e6f64..1e6, 3),
        seed in 0u64..1000,
    ) {
        let mlp = Mlp::with_output_activation(&[3, 8, 3], Activation::Relu, Activation::Tanh, seed);
        let y = mlp.predict(&raw);
        prop_assert!(y.iter().all(|v| v.abs() <= 1.0), "{y:?}");
    }

    /// MSE is non-negative, zero exactly on identical matrices, and
    /// symmetric in its arguments.
    #[test]
    fn mse_axioms(a in small_batch(2, 3), b in small_batch(2, 3)) {
        let l = mse_loss(&a, &b);
        prop_assert!(l >= 0.0);
        prop_assert!((mse_loss(&b, &a) - l).abs() < 1e-15);
        prop_assert_eq!(mse_loss(&a, &a), 0.0);
    }

    /// Scaler: transform ∘ inverse_transform is the identity on the data it
    /// was fitted to.
    #[test]
    fn scaler_roundtrip(data in small_batch(5, 3)) {
        let scaler = maopt_nn::MinMaxScaler::fit(&data);
        let there = scaler.transform(&data);
        let back = scaler.inverse_transform(&there);
        for (orig, round) in data.as_slice().iter().zip(back.as_slice()) {
            prop_assert!((orig - round).abs() < 1e-10);
        }
        // Fitted data lands in the unit box.
        prop_assert!(there.as_slice().iter().all(|&v| (-1e-12..=1.0 + 1e-12).contains(&v)));
    }

    /// Gradient accumulation: two backward passes accumulate exactly twice
    /// the gradient of one. SGD with lr 1 moves every parameter by exactly
    /// minus its accumulated gradient, so the parameter displacement after
    /// the doubled accumulation must be 2× the single-pass displacement —
    /// checked on the parameters themselves, where the invariant is linear
    /// (a prediction at a probe point is not: the network nonlinearity can
    /// shrink a larger parameter step into a smaller output change).
    #[test]
    fn gradients_accumulate_linearly(x in small_batch(2, 2), seed in 0u64..1000) {
        let orig = Mlp::new(&[2, 4, 1], Activation::Tanh, seed);
        let mut a = orig.clone();
        let mut b = orig.clone();
        let grad_out = Mat::filled(2, 1, 0.3);
        let sgd = maopt_nn::Sgd::new(1.0);

        a.forward(&x);
        a.zero_grad();
        a.backward(&grad_out);
        sgd.step(&mut a);

        b.forward(&x);
        b.zero_grad();
        b.backward(&grad_out);
        // No step in between, so the second pass adds the same gradient.
        b.forward(&x);
        b.backward(&grad_out);
        sgd.step(&mut b);

        for ((lo, la), lb) in orig.layers().iter().zip(a.layers()).zip(b.layers()) {
            let params = |l: &maopt_nn::Dense| {
                l.weights().as_slice().to_vec().into_iter().chain(l.bias().to_vec())
            };
            for ((po, pa), pb) in params(lo).zip(params(la)).zip(params(lb)) {
                let d1 = po - pa;
                let d2 = po - pb;
                prop_assert!(
                    (d2 - 2.0 * d1).abs() <= 1e-12 * (1.0 + d1.abs()),
                    "doubled accumulation must double the step: {d1} vs {d2}"
                );
            }
        }
    }
}
