//! Property-based tests for the neural-network stack.

use maopt_linalg::Mat;
use maopt_nn::{mse_loss, mse_loss_grad, mse_loss_grad_into, Activation, Mlp, Workspace};
use proptest::prelude::*;

fn small_batch(rows: usize, cols: usize) -> impl Strategy<Value = Mat> {
    prop::collection::vec(-2.0f64..2.0, rows * cols)
        .prop_map(move |data| Mat::from_vec(rows, cols, data))
}

/// Bit patterns of every entry, for exact (bitwise) equality checks that
/// distinguish 0.0 from -0.0 and compare NaNs by representation.
fn mat_bits(m: &Mat) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn slice_bits(s: &[f64]) -> Vec<u64> {
    s.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Full-network parameter-free gradient check: ∂L/∂x from backward must
    /// match central differences for random inputs and targets.
    #[test]
    fn input_gradients_match_finite_difference(
        x in small_batch(2, 3),
        y in small_batch(2, 2),
        seed in 0u64..1000,
    ) {
        let mut mlp = Mlp::new(&[3, 8, 2], Activation::Tanh, seed);
        let pred = mlp.forward(&x);
        let (_, grad) = mse_loss_grad(&pred, &y);
        mlp.zero_grad();
        let gi = mlp.backward(&grad);

        let loss_of = |m: &Mlp, xx: &Mat| mse_loss(&m.forward_inference(xx), &y);
        let h = 1e-6;
        for s in 0..2 {
            for j in 0..3 {
                let mut xp = x.clone();
                xp[(s, j)] += h;
                let mut xm = x.clone();
                xm[(s, j)] -= h;
                let fd = (loss_of(&mlp, &xp) - loss_of(&mlp, &xm)) / (2.0 * h);
                prop_assert!(
                    (fd - gi[(s, j)]).abs() < 1e-4 * (1.0 + fd.abs()),
                    "dX[{s}][{j}]: fd {fd} vs {}", gi[(s, j)]
                );
            }
        }
    }

    /// Inference and training forward passes agree exactly.
    #[test]
    fn forward_modes_agree(x in small_batch(3, 4), seed in 0u64..1000) {
        let mut mlp = Mlp::new(&[4, 6, 2], Activation::Relu, seed);
        let a = mlp.forward(&x);
        let b = mlp.forward_inference(&x);
        prop_assert_eq!(a, b);
    }

    /// A tanh-output network is bounded regardless of input magnitude.
    #[test]
    fn tanh_output_is_bounded(
        raw in prop::collection::vec(-1e6f64..1e6, 3),
        seed in 0u64..1000,
    ) {
        let mlp = Mlp::with_output_activation(&[3, 8, 3], Activation::Relu, Activation::Tanh, seed);
        let y = mlp.predict(&raw);
        prop_assert!(y.iter().all(|v| v.abs() <= 1.0), "{y:?}");
    }

    /// MSE is non-negative, zero exactly on identical matrices, and
    /// symmetric in its arguments.
    #[test]
    fn mse_axioms(a in small_batch(2, 3), b in small_batch(2, 3)) {
        let l = mse_loss(&a, &b);
        prop_assert!(l >= 0.0);
        prop_assert!((mse_loss(&b, &a) - l).abs() < 1e-15);
        prop_assert_eq!(mse_loss(&a, &a), 0.0);
    }

    /// Scaler: transform ∘ inverse_transform is the identity on the data it
    /// was fitted to.
    #[test]
    fn scaler_roundtrip(data in small_batch(5, 3)) {
        let scaler = maopt_nn::MinMaxScaler::fit(&data);
        let there = scaler.transform(&data);
        let back = scaler.inverse_transform(&there);
        for (orig, round) in data.as_slice().iter().zip(back.as_slice()) {
            prop_assert!((orig - round).abs() < 1e-10);
        }
        // Fitted data lands in the unit box.
        prop_assert!(there.as_slice().iter().all(|&v| (-1e-12..=1.0 + 1e-12).contains(&v)));
    }

    /// Gradient accumulation: two backward passes accumulate exactly twice
    /// the gradient of one. SGD with lr 1 moves every parameter by exactly
    /// minus its accumulated gradient, so the parameter displacement after
    /// the doubled accumulation must be 2× the single-pass displacement —
    /// checked on the parameters themselves, where the invariant is linear
    /// (a prediction at a probe point is not: the network nonlinearity can
    /// shrink a larger parameter step into a smaller output change).
    #[test]
    fn gradients_accumulate_linearly(x in small_batch(2, 2), seed in 0u64..1000) {
        let orig = Mlp::new(&[2, 4, 1], Activation::Tanh, seed);
        let mut a = orig.clone();
        let mut b = orig.clone();
        let grad_out = Mat::filled(2, 1, 0.3);
        let sgd = maopt_nn::Sgd::new(1.0);

        a.forward(&x);
        a.zero_grad();
        a.backward(&grad_out);
        sgd.step(&mut a);

        b.forward(&x);
        b.zero_grad();
        b.backward(&grad_out);
        // No step in between, so the second pass adds the same gradient.
        b.forward(&x);
        b.backward(&grad_out);
        sgd.step(&mut b);

        for ((lo, la), lb) in orig.layers().iter().zip(a.layers()).zip(b.layers()) {
            let params = |l: &maopt_nn::Dense| {
                l.weights().as_slice().to_vec().into_iter().chain(l.bias().to_vec())
            };
            for ((po, pa), pb) in params(lo).zip(params(la)).zip(params(lb)) {
                let d1 = po - pa;
                let d2 = po - pb;
                prop_assert!(
                    (d2 - 2.0 * d1).abs() <= 1e-12 * (1.0 + d1.abs()),
                    "doubled accumulation must double the step: {d1} vs {d2}"
                );
            }
        }
    }

    /// The workspace forward/backward paths are bitwise identical to the
    /// allocating ones: outputs, input gradients, and (via an SGD step
    /// with lr 1, since gradients are private) parameter gradients. Run
    /// twice over the same workspace so the buffer-reuse path is covered
    /// too.
    #[test]
    fn workspace_paths_match_allocating_paths_bitwise(
        x in small_batch(3, 4),
        y in small_batch(3, 2),
        seed in 0u64..1000,
    ) {
        let orig = Mlp::new(&[4, 6, 2], Activation::Tanh, seed);
        let mut a = orig.clone();
        let mut b = orig.clone();
        let mut ws = Workspace::new();
        let sgd = maopt_nn::Sgd::new(1.0);

        for round in 0..2 {
            let pa = a.forward(&x);
            let pb = b.forward_ws(&x, &mut ws).clone();
            prop_assert_eq!(mat_bits(&pa), mat_bits(&pb), "forward, round {}", round);
            prop_assert_eq!(
                mat_bits(&b.forward_inference(&x)),
                mat_bits(&pb),
                "forward_inference, round {}", round
            );

            let (_, grad) = mse_loss_grad(&pa, &y);
            a.zero_grad();
            b.zero_grad();
            let gia = a.backward(&grad);
            let gib = b.backward_ws(&grad, &mut ws, true).clone();
            prop_assert_eq!(mat_bits(&gia), mat_bits(&gib), "input grad, round {}", round);

            sgd.step(&mut a);
            sgd.step(&mut b);
            for (la, lb) in a.layers().iter().zip(b.layers()) {
                prop_assert_eq!(mat_bits(la.weights()), mat_bits(lb.weights()));
                prop_assert_eq!(slice_bits(la.bias()), slice_bits(lb.bias()));
            }
        }
    }

    /// Frozen-network mode: `backward_ws(…, false)` matches
    /// `backward_input_only` bitwise and leaves parameters untouched.
    #[test]
    fn workspace_frozen_backward_matches_input_only(
        x in small_batch(2, 3),
        grad in small_batch(2, 2),
        seed in 0u64..1000,
    ) {
        let orig = Mlp::new(&[3, 5, 2], Activation::Relu, seed);
        let mut a = orig.clone();
        let mut b = orig.clone();
        let mut ws = Workspace::new();

        a.forward(&x);
        let gia = a.backward_input_only(&grad);
        b.forward_ws(&x, &mut ws);
        let gib = b.backward_ws(&grad, &mut ws, false).clone();
        prop_assert_eq!(mat_bits(&gia), mat_bits(&gib));

        // No parameter gradients were accumulated: an SGD step is a no-op.
        let sgd = maopt_nn::Sgd::new(1.0);
        sgd.step(&mut b);
        for (lo, lb) in orig.layers().iter().zip(b.layers()) {
            prop_assert_eq!(mat_bits(lo.weights()), mat_bits(lb.weights()));
            prop_assert_eq!(slice_bits(lo.bias()), slice_bits(lb.bias()));
        }
    }

    /// The `_into` loss and scaler variants are bitwise identical to their
    /// allocating counterparts, including over dirty reused buffers.
    #[test]
    fn into_variants_match_allocating_bitwise(
        pred in small_batch(3, 2),
        target in small_batch(3, 2),
    ) {
        let (loss, grad) = mse_loss_grad(&pred, &target);
        let mut grad_buf = Mat::from_rows(&[&[9.9; 5]]); // dirty, wrong shape
        let loss_into = mse_loss_grad_into(&pred, &target, &mut grad_buf);
        prop_assert_eq!(loss.to_bits(), loss_into.to_bits());
        prop_assert_eq!(mat_bits(&grad), mat_bits(&grad_buf));

        let scaler = maopt_nn::MinMaxScaler::fit(&pred);
        let scaled = scaler.transform(&pred);
        let mut scaled_buf = Mat::from_rows(&[&[-7.0; 4]]);
        scaler.transform_into(&pred, &mut scaled_buf);
        prop_assert_eq!(mat_bits(&scaled), mat_bits(&scaled_buf));

        let back = scaler.inverse_transform(&scaled);
        scaler.inverse_transform_inplace(&mut scaled_buf);
        prop_assert_eq!(mat_bits(&back), mat_bits(&scaled_buf));
    }
}
