//! Append-only JSONL run journal: a cloneable handle that is either a
//! real buffered file writer or a zero-cost no-op sink.

use std::fmt;
use std::fs::{self, File};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::record::Record;

/// A handle to one run's journal file.
///
/// Cheap to clone (an `Arc` internally) and safe to share across
/// threads; lines are written atomically under a mutex. The disabled
/// variant holds no file and makes [`Journal::write`] a no-op, so
/// instrumented code can take a `&Journal` unconditionally and guard
/// only *expensive stat computation* behind [`Journal::enabled`].
///
/// Writes are buffered; the buffer is flushed on [`Journal::flush`] and
/// when the last clone is dropped.
#[derive(Clone, Default)]
pub struct Journal {
    inner: Option<Arc<Inner>>,
}

struct Inner {
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
}

impl Drop for Inner {
    fn drop(&mut self) {
        if let Ok(mut w) = self.writer.lock() {
            let _ = w.flush();
        }
    }
}

impl Journal {
    /// The no-op sink: [`Journal::enabled`] is `false` and writes are
    /// discarded without any I/O or allocation.
    pub fn disabled() -> Self {
        Journal { inner: None }
    }

    /// Creates (truncates) a journal file at `path`, creating parent
    /// directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file-creation failures.
    pub fn create(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(&path)?;
        Ok(Journal {
            inner: Some(Arc::new(Inner {
                path,
                writer: Mutex::new(BufWriter::new(file)),
            })),
        })
    }

    /// Whether this handle writes anywhere. Gate expensive stat
    /// computation (elite geometry, Spearman fidelity, loss traces) on
    /// this so the disabled journal stays zero-cost.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The journal file path, when enabled.
    pub fn path(&self) -> Option<&Path> {
        self.inner.as_deref().map(|i| i.path.as_path())
    }

    /// Appends one record as a JSONL line. No-op when disabled; I/O
    /// errors are swallowed (observability must never fail a run).
    pub fn write(&self, record: &Record) {
        if let Some(inner) = &self.inner {
            let line = record.to_json_line();
            if let Ok(mut w) = inner.writer.lock() {
                let _ = writeln!(w, "{line}");
            }
        }
    }

    /// Appends one pre-serialized JSONL line verbatim. Used by
    /// checkpoint resume to replay the lines of a prior run's journal
    /// byte-for-byte before new rounds append. No-op when disabled;
    /// I/O errors are swallowed like [`Journal::write`].
    pub fn write_raw(&self, line: &str) {
        if let Some(inner) = &self.inner {
            if let Ok(mut w) = inner.writer.lock() {
                let _ = writeln!(w, "{line}");
            }
        }
    }

    /// Flushes buffered lines to disk.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            if let Ok(mut w) = inner.writer.lock() {
                let _ = w.flush();
            }
        }
    }
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.path() {
            Some(p) => write!(f, "Journal({})", p.display()),
            None => write!(f, "Journal(disabled)"),
        }
    }
}

/// Why a journal failed to load.
#[derive(Debug)]
pub enum JournalError {
    /// The file could not be read.
    Io(std::io::Error),
    /// A line failed schema validation.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        msg: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Parse { line, msg } => write!(f, "journal line {line}: {msg}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Loads every record of a journal file, in order. Blank lines are
/// skipped; a malformed *interior* line aborts the load with its line
/// number. A malformed **final** line is skipped with a warning on
/// stderr instead: a crash mid-append leaves exactly one torn line at
/// the tail, and readers (report renderers, resume diffs) must treat
/// such a journal as "everything up to the crash" rather than refuse
/// it wholesale.
///
/// # Errors
///
/// Returns [`JournalError::Io`] on read failure and
/// [`JournalError::Parse`] on a malformed line that is not the final
/// non-blank line.
pub fn read_journal(path: impl AsRef<Path>) -> Result<Vec<Record>, JournalError> {
    let path = path.as_ref();
    let reader = BufReader::new(File::open(path)?);
    let mut lines = Vec::new();
    for line in reader.lines() {
        lines.push(line?);
    }
    let last_nonblank = lines.iter().rposition(|l| !l.trim().is_empty());
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match Record::parse(line) {
            Ok(record) => out.push(record),
            Err(msg) if Some(idx) == last_nonblank => {
                eprintln!(
                    "warning: {}: skipping torn final journal line {} ({msg})",
                    path.display(),
                    idx + 1
                );
            }
            Err(msg) => return Err(JournalError::Parse { line: idx + 1, msg }),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Manifest, RunEnd};
    use maopt_exec::CounterSnapshot;

    fn tmp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("maopt-obs-{}-{name}", std::process::id()))
    }

    fn manifest() -> Record {
        let (version, build) = Manifest::build_info();
        Record::Manifest(Manifest {
            label: "MA-Opt".into(),
            problem: "test".into(),
            dim: 2,
            num_metrics: 3,
            seed: 7,
            budget: 10,
            init_size: 4,
            jobs: 1,
            version,
            build,
            config: crate::json::Json::obj(vec![]),
        })
    }

    fn run_end() -> Record {
        Record::RunEnd(RunEnd {
            rounds: 3,
            sims: 10,
            best_fom: 0.5,
            success: true,
            total_s: 0.25,
            training_s: 0.125,
            simulation_s: 0.0625,
            near_sampling_s: 0.0,
            engine: CounterSnapshot::default(),
        })
    }

    #[test]
    fn disabled_journal_is_inert() {
        let j = Journal::disabled();
        assert!(!j.enabled());
        assert_eq!(j.path(), None);
        j.write(&manifest()); // must not panic or create files
        j.flush();
    }

    #[test]
    fn write_flush_read_roundtrip() {
        let path = tmp_path("roundtrip/run0.jsonl"); // exercises create_dir_all
        let j = Journal::create(&path).unwrap();
        assert!(j.enabled());
        assert_eq!(j.path(), Some(path.as_path()));
        j.write(&manifest());
        let clone = j.clone();
        clone.write(&run_end());
        drop(clone); // must not flush-close the shared writer early
        j.flush();
        let records = read_journal(&path).unwrap();
        assert_eq!(records, vec![manifest(), run_end()]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn drop_flushes_buffered_lines() {
        let path = tmp_path("dropflush.jsonl");
        let j = Journal::create(&path).unwrap();
        j.write(&manifest());
        drop(j);
        assert_eq!(read_journal(&path).unwrap(), vec![manifest()]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_interior_line_reports_line_number() {
        let path = tmp_path("badline.jsonl");
        std::fs::write(
            &path,
            format!(
                "{}\n\nnot json\n{}\n",
                manifest().to_json_line(),
                run_end().to_json_line()
            ),
        )
        .unwrap();
        match read_journal(&path) {
            Err(JournalError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_line_is_skipped_not_fatal() {
        // A crash mid-append truncates the last line; with or without a
        // trailing newline the reader must keep everything before it.
        for (name, tail) in [
            ("torn-cut.jsonl", "{\"kind\":\"run_en"),
            ("torn-nl.jsonl", "not json\n"),
            ("torn-blank.jsonl", "{}\n\n\n"),
        ] {
            let path = tmp_path(name);
            std::fs::write(&path, format!("{}\n{tail}", manifest().to_json_line())).unwrap();
            let records = read_journal(&path).unwrap_or_else(|e| {
                panic!("torn tail {name} must not be fatal: {e}");
            });
            assert_eq!(records, vec![manifest()], "case {name}");
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn write_raw_replays_lines_verbatim() {
        let path = tmp_path("raw.jsonl");
        let j = Journal::create(&path).unwrap();
        j.write_raw(&manifest().to_json_line());
        j.write(&run_end());
        j.flush();
        let records = read_journal(&path).unwrap();
        assert_eq!(records, vec![manifest(), run_end()]);
        let _ = std::fs::remove_file(&path);
    }
}
