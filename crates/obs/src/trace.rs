//! Reader for the flight-recorder trace artifact
//! ([`maopt_exec::TraceRecorder::write_jsonl`]).
//!
//! The artifact is JSONL: a header line, one `thread` line per
//! recording thread, then `span` / `instant` / `counter` event lines
//! (see the writer's docs for the exact grammar). Like the journal
//! reader, this reader is hermetic (the [`crate::json`] parser) and
//! torn-tail tolerant: a process killed mid-write leaves a partial
//! final line, which is ignored rather than failing the whole trace —
//! a flight recorder exists precisely for runs that ended badly.

use std::path::Path;

use crate::json::Json;

/// One recording thread, from a `thread` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceThread {
    /// Trace-local thread id.
    pub tid: u32,
    /// OS thread name at registration (e.g. `maopt-pool1-w0`).
    pub label: String,
    /// Events the ring overwrote before the drain.
    pub dropped: u64,
}

/// Kind-specific payload of a [`TraceEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEventKind {
    /// A completed span.
    Span {
        /// Span duration in nanoseconds.
        dur_ns: u64,
    },
    /// A point-in-time marker (e.g. `fault:panic`).
    Instant,
    /// A sampled counter value.
    Counter {
        /// The sampled value.
        value: f64,
    },
}

/// One event line of the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// The recording thread's trace-local id.
    pub tid: u32,
    /// Event name (span phase, marker name, or counter name).
    pub name: String,
    /// Nanoseconds since recorder creation (span start for spans).
    pub t_ns: u64,
    /// Optional payload (e.g. the design hash `evaluate_one` attaches).
    pub arg: Option<u64>,
    /// Kind-specific data.
    pub kind: TraceEventKind,
}

impl TraceEvent {
    /// The event's end time: `t_ns + dur_ns` for spans, `t_ns` otherwise.
    #[must_use]
    pub fn end_ns(&self) -> u64 {
        match self.kind {
            TraceEventKind::Span { dur_ns } => self.t_ns + dur_ns,
            _ => self.t_ns,
        }
    }
}

/// A fully loaded trace artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceData {
    /// Schema version from the header line.
    pub version: u64,
    /// Recording threads, as declared in the artifact.
    pub threads: Vec<TraceThread>,
    /// All events, in file order (monotone `t_ns` within each thread).
    pub events: Vec<TraceEvent>,
}

impl TraceData {
    /// The `[min start, max end]` window covered by the events, or
    /// `None` for an empty trace.
    #[must_use]
    pub fn window_ns(&self) -> Option<(u64, u64)> {
        let start = self.events.iter().map(|e| e.t_ns).min()?;
        let end = self.events.iter().map(TraceEvent::end_ns).max()?;
        Some((start, end))
    }

    /// The label of thread `tid` (`thread-<tid>` when undeclared).
    #[must_use]
    pub fn thread_label(&self, tid: u32) -> String {
        self.threads
            .iter()
            .find(|t| t.tid == tid)
            .map_or_else(|| format!("thread-{tid}"), |t| t.label.clone())
    }
}

fn need_u64(obj: &Json, key: &str, line_no: usize) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("trace line {line_no}: missing or non-integer {key:?}"))
}

/// Parses trace artifact text (see [`read_trace`] for the file form).
///
/// # Errors
///
/// A descriptive message on a missing/foreign header, an unparseable
/// non-final line, an unknown record kind, or a record missing its
/// required fields. A torn *final* line is tolerated.
pub fn parse_trace(text: &str) -> Result<TraceData, String> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or("empty trace file")?;
    let header = Json::parse(header).map_err(|e| format!("trace header: {e}"))?;
    if header.get("trace").and_then(Json::as_str) != Some("maopt") {
        return Err("not a maopt trace (header lacks \"trace\":\"maopt\")".into());
    }
    let version = header.get("version").and_then(Json::as_u64).unwrap_or(0);
    if version != 1 {
        return Err(format!("unsupported trace version {version}"));
    }

    let total_lines = text.lines().count();
    let ends_complete = text.ends_with('\n');
    let mut threads = Vec::new();
    let mut events = Vec::new();
    for (i, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let obj = match Json::parse(line) {
            Ok(obj) => obj,
            // The final line of a torn write parses as garbage; every
            // earlier line must be sound.
            Err(_) if i + 1 == total_lines && !ends_complete => break,
            Err(e) => return Err(format!("trace line {}: {e}", i + 1)),
        };
        let line_no = i + 1;
        let kind = obj
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("trace line {line_no}: missing \"kind\""))?;
        match kind {
            "thread" => {
                threads.push(TraceThread {
                    tid: need_u64(&obj, "tid", line_no)? as u32,
                    label: obj
                        .get("label")
                        .and_then(Json::as_str)
                        .unwrap_or("unnamed")
                        .to_string(),
                    dropped: obj.get("dropped").and_then(Json::as_u64).unwrap_or(0),
                });
            }
            "span" | "instant" | "counter" => {
                let event_kind = match kind {
                    "span" => TraceEventKind::Span {
                        dur_ns: need_u64(&obj, "dur_ns", line_no)?,
                    },
                    "instant" => TraceEventKind::Instant,
                    _ => TraceEventKind::Counter {
                        value: obj
                            .get("value")
                            .and_then(Json::as_f64)
                            .ok_or_else(|| format!("trace line {line_no}: missing \"value\""))?,
                    },
                };
                events.push(TraceEvent {
                    tid: need_u64(&obj, "tid", line_no)? as u32,
                    name: obj
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("trace line {line_no}: missing \"name\""))?
                        .to_string(),
                    t_ns: need_u64(&obj, "t_ns", line_no)?,
                    arg: obj.get("arg").and_then(Json::as_u64),
                    kind: event_kind,
                });
            }
            other => {
                return Err(format!("trace line {line_no}: unknown kind {other:?}"));
            }
        }
    }
    Ok(TraceData {
        version,
        threads,
        events,
    })
}

/// Loads and parses a trace artifact from disk.
///
/// # Errors
///
/// I/O failures (with the path named) and every [`parse_trace`] error.
pub fn read_trace(path: &Path) -> Result<TraceData, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read trace {}: {e}", path.display()))?;
    parse_trace(&text).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        "{\"trace\":\"maopt\",\"version\":1}\n",
        "{\"kind\":\"thread\",\"tid\":0,\"label\":\"main\",\"dropped\":0}\n",
        "{\"kind\":\"thread\",\"tid\":1,\"label\":\"maopt-pool1-w0\",\"dropped\":2}\n",
        "{\"kind\":\"span\",\"tid\":1,\"name\":\"sim\",\"t_ns\":100,\"dur_ns\":50,\"arg\":77}\n",
        "{\"kind\":\"instant\",\"tid\":1,\"name\":\"fault:panic\",\"t_ns\":160}\n",
        "{\"kind\":\"counter\",\"tid\":0,\"name\":\"depth\",\"t_ns\":90,\"value\":3}\n",
    );

    #[test]
    fn parses_threads_and_all_event_kinds() {
        let data = parse_trace(SAMPLE).unwrap();
        assert_eq!(data.version, 1);
        assert_eq!(data.threads.len(), 2);
        assert_eq!(data.threads[1].label, "maopt-pool1-w0");
        assert_eq!(data.threads[1].dropped, 2);
        assert_eq!(data.events.len(), 3);
        assert_eq!(
            data.events[0],
            TraceEvent {
                tid: 1,
                name: "sim".into(),
                t_ns: 100,
                arg: Some(77),
                kind: TraceEventKind::Span { dur_ns: 50 },
            }
        );
        assert_eq!(data.events[0].end_ns(), 150);
        assert_eq!(data.events[1].kind, TraceEventKind::Instant);
        assert_eq!(data.events[2].kind, TraceEventKind::Counter { value: 3.0 });
        assert_eq!(data.window_ns(), Some((90, 160)));
        assert_eq!(data.thread_label(1), "maopt-pool1-w0");
        assert_eq!(data.thread_label(9), "thread-9");
    }

    #[test]
    fn torn_final_line_is_tolerated_torn_middle_is_not() {
        let torn_tail = format!("{SAMPLE}{{\"kind\":\"span\",\"tid\":0,\"na");
        let data = parse_trace(&torn_tail).expect("torn tail tolerated");
        assert_eq!(data.events.len(), 3, "complete events all load");

        let torn_middle = SAMPLE.replace(
            "{\"kind\":\"instant\",\"tid\":1,\"name\":\"fault:panic\",\"t_ns\":160}",
            "{\"kind\":\"instant\",\"tid",
        );
        assert!(
            parse_trace(&torn_middle).is_err(),
            "mid-file corruption fails"
        );
    }

    #[test]
    fn rejects_foreign_headers_and_unknown_kinds() {
        assert!(parse_trace("").is_err());
        assert!(parse_trace("{\"not\":\"a trace\"}\n").is_err());
        assert!(parse_trace("{\"trace\":\"maopt\",\"version\":9}\n").is_err());
        let unknown = format!("{SAMPLE}{{\"kind\":\"warp\",\"tid\":0}}\n");
        let err = parse_trace(&unknown).unwrap_err();
        assert!(err.contains("unknown kind"), "{err}");
    }

    #[test]
    fn roundtrips_the_writer_artifact() {
        let dir = std::env::temp_dir().join(format!("maopt-obs-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let tr = maopt_exec::TraceRecorder::new();
        let t0 = tr.now_ns();
        tr.span("simulation", t0, 500, Some(42));
        tr.counter("exec.pool.queue_depth", 2.0);
        tr.write_jsonl(&path).unwrap();
        let data = read_trace(&path).unwrap();
        assert_eq!(data.threads.len(), 1);
        assert_eq!(data.events.len(), 2);
        assert_eq!(data.events[0].name, "simulation");
        assert_eq!(data.events[0].arg, Some(42));
        assert_eq!(data.events[0].kind, TraceEventKind::Span { dur_ns: 500 });
        std::fs::remove_dir_all(&dir).ok();
    }
}
