//! Typed journal records and their versioned JSONL schema.
//!
//! Every journal line is one JSON object with a `"record"` kind tag and a
//! `"v"` schema version. The schema is append-only: adding fields is a
//! compatible change (readers ignore unknown fields), removing or
//! renaming one requires bumping [`SCHEMA_VERSION`]. Non-finite floats
//! follow the `json_f64` convention (`NaN` → `null`, `±inf` → strings),
//! and `u64` seeds are serialized as strings so they survive the `f64`
//! number pipeline exactly.

use maopt_exec::{CounterSnapshot, HistogramSnapshot, MetricSnapshot};

use crate::json::Json;

/// Version of the journal record schema.
pub const SCHEMA_VERSION: u32 = 1;

/// Run manifest: everything needed to identify and re-run one
/// optimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Optimizer label, e.g. `"MA-Opt"`.
    pub label: String,
    /// Problem name, e.g. `"Two-stage OTA"`.
    pub problem: String,
    /// Design-space dimensionality.
    pub dim: usize,
    /// Metric vector length (`m + 1`).
    pub num_metrics: usize,
    /// RNG seed of this run.
    pub seed: u64,
    /// Optimization simulation budget.
    pub budget: usize,
    /// Initial sample count.
    pub init_size: usize,
    /// Engine worker count.
    pub jobs: usize,
    /// Crate version that wrote the journal.
    pub version: String,
    /// Build profile (`"release"` / `"debug"`).
    pub build: String,
    /// Free-form optimizer configuration (hyperparameters etc.).
    pub config: Json,
}

impl Manifest {
    /// This build's `(version, profile)` pair for manifest stamping.
    pub fn build_info() -> (String, String) {
        let profile = if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        };
        (env!("CARGO_PKG_VERSION").to_string(), profile.to_string())
    }
}

/// One actor's contribution to a round.
#[derive(Debug, Clone, PartialEq)]
pub struct ActorRound {
    /// Actor index.
    pub id: usize,
    /// Final actor training loss (Eqs. 5–6).
    pub loss: f64,
    /// Critic-predicted FoM of the actor's chosen proposal.
    pub predicted_fom: f64,
    /// Simulated FoM of the proposal (`NaN` when the budget ran out
    /// before this proposal was simulated).
    pub simulated_fom: f64,
    /// Whether the simulated proposal met every spec.
    pub feasible: bool,
}

/// Elite-set statistics after one rebuild (Fig. 2 internals).
#[derive(Debug, Clone, PartialEq)]
pub struct EliteStats {
    /// Designs currently held.
    pub size: usize,
    /// Members not present in the previous round's set (refresh rate).
    pub refreshed: usize,
    /// Bounding-box volume (product of per-coordinate extents).
    pub volume: f64,
    /// Bounding-box diagonal length.
    pub diameter: f64,
    /// Worst-minus-best elite FoM.
    pub fom_spread: f64,
}

/// One actor-critic round (Algorithm 1).
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// 1-based optimizer round index.
    pub round: usize,
    /// Simulations consumed after this round.
    pub sims_used: usize,
    /// Best FoM seen so far after this round.
    pub best_fom: f64,
    /// Critic training-loss trajectory of this round (scaled units, one
    /// entry per training step, members concatenated for ensembles).
    pub critic_loss: Vec<f64>,
    /// Per-actor losses and proposal quality.
    pub actors: Vec<ActorRound>,
    /// Elite-set stats (the shared set, or actor 0's set for
    /// individual-elite variants).
    pub elite: EliteStats,
    /// Engine counter deltas for this round.
    pub engine: CounterSnapshot,
}

/// One near-sampling round (Algorithm 2).
#[derive(Debug, Clone, PartialEq)]
pub struct NearSamplingRecord {
    /// 1-based optimizer round index.
    pub round: usize,
    /// Simulations consumed after this round.
    pub sims_used: usize,
    /// Why near-sampling triggered (currently always `"period"`: specs
    /// met, critic trained, and `t` a multiple of `T_NS`).
    pub trigger: String,
    /// Candidates drawn around the incumbent (paper: 2000).
    pub n_candidates: usize,
    /// Critic-predicted FoM of the chosen candidate.
    pub predicted_fom: f64,
    /// Simulated FoM of the chosen candidate.
    pub simulated_fom: f64,
    /// Incumbent best FoM before this round.
    pub incumbent_fom: f64,
    /// Whether the candidate beat the incumbent (accept decision).
    pub accepted: bool,
    /// Critic-rank → simulated-FoM Spearman correlation over the most
    /// recent simulated designs (`NaN` when undefined).
    pub spearman: f64,
    /// Sample size behind [`NearSamplingRecord::spearman`].
    pub fidelity_n: usize,
    /// Engine counter deltas for this round.
    pub engine: CounterSnapshot,
}

/// Run summary written once at the end.
#[derive(Debug, Clone, PartialEq)]
pub struct RunEnd {
    /// Total optimizer rounds executed.
    pub rounds: usize,
    /// Total optimization simulations consumed.
    pub sims: usize,
    /// Best FoM over the whole run.
    pub best_fom: f64,
    /// Whether any design met every spec.
    pub success: bool,
    /// Wall-clock total, seconds.
    pub total_s: f64,
    /// Time spent training networks, seconds.
    pub training_s: f64,
    /// Time spent in circuit simulations, seconds.
    pub simulation_s: f64,
    /// Time spent in near-sampling proposal generation, seconds.
    pub near_sampling_s: f64,
    /// Engine counter deltas for the whole run.
    pub engine: CounterSnapshot,
}

/// Engine-level aggregate written by the harness (per method): span
/// totals, counters and the metrics-registry dump.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineRecord {
    /// What the aggregate covers, e.g. a method name.
    pub label: String,
    /// Per-phase wall time `(phase, seconds)`, summed across workers.
    pub spans: Vec<(String, f64)>,
    /// Engine counters for the labelled scope.
    pub counters: CounterSnapshot,
    /// Metrics-registry snapshot (engine-lifetime values).
    pub metrics: Vec<MetricSnapshot>,
}

/// One journal line.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// Run manifest (first line of a run's journal).
    Manifest(Manifest),
    /// Actor-critic round.
    Round(RoundRecord),
    /// Near-sampling round.
    NearSampling(NearSamplingRecord),
    /// Run summary (last line of a run's journal).
    RunEnd(RunEnd),
    /// Harness-level engine aggregate.
    Engine(EngineRecord),
}

impl Record {
    /// The record's kind tag.
    pub fn kind(&self) -> &'static str {
        match self {
            Record::Manifest(_) => "manifest",
            Record::Round(_) => "round",
            Record::NearSampling(_) => "near_sampling",
            Record::RunEnd(_) => "run_end",
            Record::Engine(_) => "engine",
        }
    }

    /// Serializes to one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut fields: Vec<(&str, Json)> = vec![
            ("record", Json::Str(self.kind().to_string())),
            ("v", Json::num_u(u64::from(SCHEMA_VERSION))),
        ];
        match self {
            Record::Manifest(m) => {
                fields.push(("label", Json::Str(m.label.clone())));
                fields.push(("problem", Json::Str(m.problem.clone())));
                fields.push(("dim", Json::num_u(m.dim as u64)));
                fields.push(("num_metrics", Json::num_u(m.num_metrics as u64)));
                fields.push(("seed", Json::Str(m.seed.to_string())));
                fields.push(("budget", Json::num_u(m.budget as u64)));
                fields.push(("init_size", Json::num_u(m.init_size as u64)));
                fields.push(("jobs", Json::num_u(m.jobs as u64)));
                fields.push(("version", Json::Str(m.version.clone())));
                fields.push(("build", Json::Str(m.build.clone())));
                fields.push(("config", m.config.clone()));
            }
            Record::Round(r) => {
                fields.push(("round", Json::num_u(r.round as u64)));
                fields.push(("sims_used", Json::num_u(r.sims_used as u64)));
                fields.push(("best_fom", Json::Num(r.best_fom)));
                fields.push((
                    "critic_loss",
                    Json::Arr(r.critic_loss.iter().map(|&v| Json::Num(v)).collect()),
                ));
                fields.push((
                    "actors",
                    Json::Arr(
                        r.actors
                            .iter()
                            .map(|a| {
                                Json::obj(vec![
                                    ("id", Json::num_u(a.id as u64)),
                                    ("loss", Json::Num(a.loss)),
                                    ("predicted_fom", Json::Num(a.predicted_fom)),
                                    ("simulated_fom", Json::Num(a.simulated_fom)),
                                    ("feasible", Json::Bool(a.feasible)),
                                ])
                            })
                            .collect(),
                    ),
                ));
                fields.push(("elite", elite_to_json(&r.elite)));
                fields.push(("engine", counters_to_json(&r.engine)));
            }
            Record::NearSampling(r) => {
                fields.push(("round", Json::num_u(r.round as u64)));
                fields.push(("sims_used", Json::num_u(r.sims_used as u64)));
                fields.push(("trigger", Json::Str(r.trigger.clone())));
                fields.push(("n_candidates", Json::num_u(r.n_candidates as u64)));
                fields.push(("predicted_fom", Json::Num(r.predicted_fom)));
                fields.push(("simulated_fom", Json::Num(r.simulated_fom)));
                fields.push(("incumbent_fom", Json::Num(r.incumbent_fom)));
                fields.push(("accepted", Json::Bool(r.accepted)));
                fields.push(("spearman", Json::Num(r.spearman)));
                fields.push(("fidelity_n", Json::num_u(r.fidelity_n as u64)));
                fields.push(("engine", counters_to_json(&r.engine)));
            }
            Record::RunEnd(r) => {
                fields.push(("rounds", Json::num_u(r.rounds as u64)));
                fields.push(("sims", Json::num_u(r.sims as u64)));
                fields.push(("best_fom", Json::Num(r.best_fom)));
                fields.push(("success", Json::Bool(r.success)));
                fields.push(("total_s", Json::Num(r.total_s)));
                fields.push(("training_s", Json::Num(r.training_s)));
                fields.push(("simulation_s", Json::Num(r.simulation_s)));
                fields.push(("near_sampling_s", Json::Num(r.near_sampling_s)));
                fields.push(("engine", counters_to_json(&r.engine)));
            }
            Record::Engine(r) => {
                fields.push(("label", Json::Str(r.label.clone())));
                fields.push((
                    "spans",
                    Json::Arr(
                        r.spans
                            .iter()
                            .map(|(name, secs)| {
                                Json::Arr(vec![Json::Str(name.clone()), Json::Num(*secs)])
                            })
                            .collect(),
                    ),
                ));
                fields.push(("counters", counters_to_json(&r.counters)));
                fields.push((
                    "metrics",
                    Json::Arr(r.metrics.iter().map(metric_to_json).collect()),
                ));
            }
        }
        Json::obj(fields).to_string()
    }

    /// Parses one JSONL line back into a typed record.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field on malformed input or
    /// an unsupported schema version.
    pub fn parse(line: &str) -> Result<Record, String> {
        let v = Json::parse(line)?;
        let version = field(&v, "v")?.as_u64().ok_or("version must be a number")?;
        if version != u64::from(SCHEMA_VERSION) {
            return Err(format!(
                "unsupported schema version {version} (reader supports {SCHEMA_VERSION})"
            ));
        }
        let kind = field(&v, "record")?
            .as_str()
            .ok_or("record tag must be a string")?;
        match kind {
            "manifest" => Ok(Record::Manifest(Manifest {
                label: str_field(&v, "label")?,
                problem: str_field(&v, "problem")?,
                dim: usize_field(&v, "dim")?,
                num_metrics: usize_field(&v, "num_metrics")?,
                seed: str_field(&v, "seed")?
                    .parse()
                    .map_err(|_| "seed must be a u64 string".to_string())?,
                budget: usize_field(&v, "budget")?,
                init_size: usize_field(&v, "init_size")?,
                jobs: usize_field(&v, "jobs")?,
                version: str_field(&v, "version")?,
                build: str_field(&v, "build")?,
                config: field(&v, "config")?.clone(),
            })),
            "round" => Ok(Record::Round(RoundRecord {
                round: usize_field(&v, "round")?,
                sims_used: usize_field(&v, "sims_used")?,
                best_fom: f64_field(&v, "best_fom")?,
                critic_loss: f64_arr_field(&v, "critic_loss")?,
                actors: field(&v, "actors")?
                    .as_arr()
                    .ok_or("actors must be an array")?
                    .iter()
                    .map(|a| {
                        Ok(ActorRound {
                            id: usize_field(a, "id")?,
                            loss: f64_field(a, "loss")?,
                            predicted_fom: f64_field(a, "predicted_fom")?,
                            simulated_fom: f64_field(a, "simulated_fom")?,
                            feasible: bool_field(a, "feasible")?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?,
                elite: elite_from_json(field(&v, "elite")?)?,
                engine: counters_from_json(field(&v, "engine")?)?,
            })),
            "near_sampling" => Ok(Record::NearSampling(NearSamplingRecord {
                round: usize_field(&v, "round")?,
                sims_used: usize_field(&v, "sims_used")?,
                trigger: str_field(&v, "trigger")?,
                n_candidates: usize_field(&v, "n_candidates")?,
                predicted_fom: f64_field(&v, "predicted_fom")?,
                simulated_fom: f64_field(&v, "simulated_fom")?,
                incumbent_fom: f64_field(&v, "incumbent_fom")?,
                accepted: bool_field(&v, "accepted")?,
                spearman: f64_field(&v, "spearman")?,
                fidelity_n: usize_field(&v, "fidelity_n")?,
                engine: counters_from_json(field(&v, "engine")?)?,
            })),
            "run_end" => Ok(Record::RunEnd(RunEnd {
                rounds: usize_field(&v, "rounds")?,
                sims: usize_field(&v, "sims")?,
                best_fom: f64_field(&v, "best_fom")?,
                success: bool_field(&v, "success")?,
                total_s: f64_field(&v, "total_s")?,
                training_s: f64_field(&v, "training_s")?,
                simulation_s: f64_field(&v, "simulation_s")?,
                near_sampling_s: f64_field(&v, "near_sampling_s")?,
                engine: counters_from_json(field(&v, "engine")?)?,
            })),
            "engine" => Ok(Record::Engine(EngineRecord {
                label: str_field(&v, "label")?,
                spans: field(&v, "spans")?
                    .as_arr()
                    .ok_or("spans must be an array")?
                    .iter()
                    .map(|pair| {
                        let items = pair.as_arr().ok_or("span entry must be a pair")?;
                        match items {
                            [Json::Str(name), secs] => Ok((
                                name.clone(),
                                secs.as_f64().ok_or("span seconds must be a number")?,
                            )),
                            _ => Err("span entry must be [name, seconds]".to_string()),
                        }
                    })
                    .collect::<Result<Vec<_>, String>>()?,
                counters: counters_from_json(field(&v, "counters")?)?,
                metrics: field(&v, "metrics")?
                    .as_arr()
                    .ok_or("metrics must be an array")?
                    .iter()
                    .map(metric_from_json)
                    .collect::<Result<Vec<_>, String>>()?,
            })),
            other => Err(format!("unknown record kind {other:?}")),
        }
    }
}

fn elite_to_json(e: &EliteStats) -> Json {
    Json::obj(vec![
        ("size", Json::num_u(e.size as u64)),
        ("refreshed", Json::num_u(e.refreshed as u64)),
        ("volume", Json::Num(e.volume)),
        ("diameter", Json::Num(e.diameter)),
        ("fom_spread", Json::Num(e.fom_spread)),
    ])
}

fn elite_from_json(v: &Json) -> Result<EliteStats, String> {
    Ok(EliteStats {
        size: usize_field(v, "size")?,
        refreshed: usize_field(v, "refreshed")?,
        volume: f64_field(v, "volume")?,
        diameter: f64_field(v, "diameter")?,
        fom_spread: f64_field(v, "fom_spread")?,
    })
}

fn counters_to_json(c: &CounterSnapshot) -> Json {
    Json::obj(vec![
        ("sims", Json::num_u(c.sims)),
        ("cache_hits", Json::num_u(c.cache_hits)),
        ("cache_misses", Json::num_u(c.cache_misses)),
        ("retries", Json::num_u(c.retries)),
        ("panics", Json::num_u(c.panics)),
        ("timeouts", Json::num_u(c.timeouts)),
        ("non_finite", Json::num_u(c.non_finite)),
        ("failures", Json::num_u(c.failures)),
    ])
}

fn counters_from_json(v: &Json) -> Result<CounterSnapshot, String> {
    Ok(CounterSnapshot {
        sims: u64_field(v, "sims")?,
        cache_hits: u64_field(v, "cache_hits")?,
        cache_misses: u64_field(v, "cache_misses")?,
        retries: u64_field(v, "retries")?,
        panics: u64_field(v, "panics")?,
        timeouts: u64_field(v, "timeouts")?,
        // Absent in journals written before the counter existed.
        non_finite: if field(v, "non_finite").is_ok() {
            u64_field(v, "non_finite")?
        } else {
            0
        },
        failures: u64_field(v, "failures")?,
    })
}

fn metric_to_json(m: &MetricSnapshot) -> Json {
    match m {
        MetricSnapshot::Counter { name, value } => Json::obj(vec![
            ("kind", Json::Str("counter".into())),
            ("name", Json::Str(name.clone())),
            ("value", Json::num_u(*value)),
        ]),
        MetricSnapshot::Gauge { name, value } => Json::obj(vec![
            ("kind", Json::Str("gauge".into())),
            ("name", Json::Str(name.clone())),
            ("value", Json::Num(*value)),
        ]),
        MetricSnapshot::Histogram(h) => Json::obj(vec![
            ("kind", Json::Str("histogram".into())),
            ("name", Json::Str(h.name.clone())),
            ("count", Json::num_u(h.count)),
            ("invalid", Json::num_u(h.invalid)),
            ("sum", Json::Num(h.sum)),
            ("min", Json::Num(h.min)),
            ("max", Json::Num(h.max)),
            (
                "buckets",
                Json::Arr(
                    h.buckets
                        .iter()
                        .map(|&(upper, n)| Json::Arr(vec![Json::Num(upper), Json::num_u(n)]))
                        .collect(),
                ),
            ),
        ]),
    }
}

fn metric_from_json(v: &Json) -> Result<MetricSnapshot, String> {
    match field(v, "kind")?.as_str() {
        Some("counter") => Ok(MetricSnapshot::Counter {
            name: str_field(v, "name")?,
            value: u64_field(v, "value")?,
        }),
        Some("gauge") => Ok(MetricSnapshot::Gauge {
            name: str_field(v, "name")?,
            value: f64_field(v, "value")?,
        }),
        Some("histogram") => Ok(MetricSnapshot::Histogram(HistogramSnapshot {
            name: str_field(v, "name")?,
            count: u64_field(v, "count")?,
            invalid: u64_field(v, "invalid")?,
            sum: f64_field(v, "sum")?,
            min: f64_field(v, "min")?,
            max: f64_field(v, "max")?,
            buckets: field(v, "buckets")?
                .as_arr()
                .ok_or("buckets must be an array")?
                .iter()
                .map(|pair| {
                    let items = pair.as_arr().ok_or("bucket must be a pair")?;
                    match items {
                        [upper, count] => Ok((
                            upper.as_f64().ok_or("bucket bound must be a number")?,
                            count.as_u64().ok_or("bucket count must be an integer")?,
                        )),
                        _ => Err("bucket must be [upper, count]".to_string()),
                    }
                })
                .collect::<Result<Vec<_>, String>>()?,
        })),
        _ => Err("metric kind must be counter|gauge|histogram".to_string()),
    }
}

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn f64_field(v: &Json, key: &str) -> Result<f64, String> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| format!("field {key:?} must be a number"))
}

fn u64_field(v: &Json, key: &str) -> Result<u64, String> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field {key:?} must be a non-negative integer"))
}

fn usize_field(v: &Json, key: &str) -> Result<usize, String> {
    u64_field(v, key).map(|x| x as usize)
}

fn bool_field(v: &Json, key: &str) -> Result<bool, String> {
    field(v, key)?
        .as_bool()
        .ok_or_else(|| format!("field {key:?} must be a bool"))
}

fn str_field(v: &Json, key: &str) -> Result<String, String> {
    field(v, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("field {key:?} must be a string"))
}

fn f64_arr_field(v: &Json, key: &str) -> Result<Vec<f64>, String> {
    field(v, key)?
        .as_arr()
        .ok_or_else(|| format!("field {key:?} must be an array"))?
        .iter()
        .map(|x| {
            x.as_f64()
                .ok_or_else(|| format!("field {key:?} must contain numbers"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_counters() -> CounterSnapshot {
        CounterSnapshot {
            sims: 12,
            cache_hits: 3,
            cache_misses: 9,
            retries: 1,
            panics: 0,
            timeouts: 0,
            non_finite: 2,
            failures: 0,
        }
    }

    /// One of every record kind, exercising every field.
    fn samples() -> Vec<Record> {
        vec![
            Record::Manifest(Manifest {
                label: "MA-Opt".into(),
                problem: "Two-stage OTA".into(),
                dim: 16,
                num_metrics: 5,
                seed: u64::MAX - 3, // would not survive an f64 round-trip
                budget: 200,
                init_size: 100,
                jobs: 4,
                version: "0.1.0".into(),
                build: "release".into(),
                config: Json::obj(vec![
                    ("n_actors", Json::num_u(3)),
                    ("near_sampling", Json::Bool(true)),
                    ("delta", Json::Num(0.05)),
                ]),
            }),
            Record::Round(RoundRecord {
                round: 4,
                sims_used: 12,
                best_fom: 0.125,
                critic_loss: vec![0.9, 0.5, 0.25],
                actors: vec![
                    ActorRound {
                        id: 0,
                        loss: 0.75,
                        predicted_fom: 0.5,
                        simulated_fom: 0.625,
                        feasible: true,
                    },
                    ActorRound {
                        id: 1,
                        loss: 1.5,
                        predicted_fom: 0.25,
                        simulated_fom: f64::NAN,
                        feasible: false,
                    },
                ],
                elite: EliteStats {
                    size: 10,
                    refreshed: 2,
                    volume: 1e-6,
                    diameter: 0.375,
                    fom_spread: 0.5,
                },
                engine: sample_counters(),
            }),
            Record::NearSampling(NearSamplingRecord {
                round: 5,
                sims_used: 13,
                trigger: "period".into(),
                n_candidates: 2000,
                predicted_fom: 0.1,
                simulated_fom: 0.11,
                incumbent_fom: 0.125,
                accepted: true,
                spearman: 0.875,
                fidelity_n: 64,
                engine: sample_counters(),
            }),
            Record::RunEnd(RunEnd {
                rounds: 70,
                sims: 200,
                best_fom: 0.0625,
                success: true,
                total_s: 12.5,
                training_s: 8.0,
                simulation_s: 3.5,
                near_sampling_s: 0.5,
                engine: sample_counters(),
            }),
            Record::Engine(EngineRecord {
                label: "MA-Opt".into(),
                spans: vec![("simulation".into(), 3.5), ("actor_training".into(), 8.0)],
                counters: sample_counters(),
                metrics: vec![
                    MetricSnapshot::Counter {
                        name: "opt.rounds".into(),
                        value: 70,
                    },
                    MetricSnapshot::Gauge {
                        name: "opt.best_fom".into(),
                        value: 0.0625,
                    },
                    MetricSnapshot::Histogram(HistogramSnapshot {
                        name: "exec.sim_seconds".into(),
                        count: 200,
                        invalid: 0,
                        sum: 3.5,
                        min: 0.001,
                        max: 0.5,
                        buckets: vec![(0.01, 150), (0.1, 45), (1.0, 5)],
                    }),
                ],
            }),
        ]
    }

    #[test]
    fn every_record_kind_roundtrips_through_jsonl() {
        for record in samples() {
            let line = record.to_json_line();
            assert!(!line.contains('\n'), "one line per record");
            let back = Record::parse(&line)
                .unwrap_or_else(|e| panic!("{}: {e}\nline: {line}", record.kind()));
            // NaN != NaN, so compare through re-serialization (the schema
            // maps NaN to null deterministically).
            assert_eq!(back.to_json_line(), line, "kind {}", record.kind());
            if record.kind() != "round" {
                assert_eq!(back, record, "kind {}", record.kind());
            }
        }
    }

    #[test]
    fn nan_simulated_fom_survives_as_nan() {
        let Record::Round(r) = &samples()[1] else {
            panic!("expected round sample");
        };
        let line = Record::Round(r.clone()).to_json_line();
        assert!(line.contains("\"simulated_fom\":null"));
        let Record::Round(back) = Record::parse(&line).unwrap() else {
            panic!("expected round back");
        };
        assert!(back.actors[1].simulated_fom.is_nan());
    }

    #[test]
    fn huge_seed_is_exact() {
        let Record::Manifest(m) = &samples()[0] else {
            panic!("expected manifest sample");
        };
        let line = Record::Manifest(m.clone()).to_json_line();
        let Record::Manifest(back) = Record::parse(&line).unwrap() else {
            panic!("expected manifest back");
        };
        assert_eq!(back.seed, u64::MAX - 3);
    }

    #[test]
    fn unknown_version_and_kind_are_rejected() {
        let line = samples()[0].to_json_line().replace("\"v\":1", "\"v\":99");
        assert!(Record::parse(&line).unwrap_err().contains("version"));
        let line = samples()[0]
            .to_json_line()
            .replace("\"record\":\"manifest\"", "\"record\":\"mystery\"");
        assert!(Record::parse(&line).unwrap_err().contains("mystery"));
        assert!(Record::parse("not json").is_err());
    }

    #[test]
    fn readers_ignore_unknown_fields() {
        let mut line = samples()[3].to_json_line();
        line.insert_str(line.len() - 1, ",\"future_field\":[1,2,3]");
        assert!(Record::parse(&line).is_ok(), "append-only schema policy");
    }
}
