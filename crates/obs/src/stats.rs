//! Rank statistics for surrogate-fidelity signals.
//!
//! The critic only has to *rank* candidates correctly for the optimizer
//! to pick good proposals (Algorithm 1 line 8, Algorithm 2 line 7), so
//! the right fidelity measure is rank correlation, not MSE: a Spearman
//! coefficient near 1 means the critic orders designs like the simulator
//! does.

/// Average ranks (1-based) of `v`, ties sharing their mean rank.
fn ranks(v: &[f64]) -> Vec<f64> {
    let n = v.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| v[a].partial_cmp(&v[b]).expect("finite values"));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && v[order[j + 1]] == v[order[i]] {
            j += 1;
        }
        // Indices i..=j are tied; they share the mean of ranks i+1..=j+1.
        let rank = (i + 1 + j + 1) as f64 / 2.0;
        for &k in &order[i..=j] {
            out[k] = rank;
        }
        i = j + 1;
    }
    out
}

/// Pearson correlation; `None` when either side has zero variance.
fn pearson(a: &[f64], b: &[f64]) -> Option<f64> {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va <= 0.0 || vb <= 0.0 {
        return None;
    }
    Some(cov / (va * vb).sqrt())
}

/// Spearman rank correlation between two paired samples.
///
/// Pairs containing a non-finite value on either side are dropped first
/// (a faulted simulation must not poison the fidelity signal). Returns
/// `None` with fewer than two clean pairs or when either side is
/// constant (rank correlation undefined).
pub fn spearman(a: &[f64], b: &[f64]) -> Option<f64> {
    assert_eq!(a.len(), b.len(), "paired samples must have equal length");
    let (fa, fb): (Vec<f64>, Vec<f64>) = a
        .iter()
        .zip(b)
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .map(|(&x, &y)| (x, y))
        .unzip();
    if fa.len() < 2 {
        return None;
    }
    pearson(&ranks(&fa), &ranks(&fb))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_monotone_agreement_is_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 100.0, 1000.0, 10000.0]; // nonlinear but monotone
        assert!((spearman(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        let rev: Vec<f64> = b.iter().rev().copied().collect();
        assert!((spearman(&a, &rev).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn ties_share_average_ranks() {
        assert_eq!(ranks(&[5.0, 1.0, 5.0]), vec![2.5, 1.0, 2.5]);
        let r = spearman(&[1.0, 2.0, 2.0, 3.0], &[1.0, 2.0, 2.0, 3.0]).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn non_finite_pairs_are_dropped() {
        let a = [1.0, f64::NAN, 2.0, 3.0];
        let b = [1.0, 0.0, 2.0, f64::INFINITY];
        // Only (1,1) and (2,2) survive.
        assert!((spearman(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert_eq!(spearman(&[1.0], &[2.0]), None);
        assert_eq!(spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), None);
        assert_eq!(spearman(&[f64::NAN, 1.0], &[1.0, 2.0]), None);
    }

    #[test]
    fn uncorrelated_data_is_near_zero() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let b = [5.0, 1.0, 7.0, 3.0, 8.0, 2.0, 6.0, 4.0];
        let r = spearman(&a, &b).unwrap();
        assert!(r.abs() < 0.5, "shuffled data should decorrelate: {r}");
    }
}
