//! A minimal JSON value type, serializer and recursive-descent parser.
//!
//! The workspace is hermetic (no serde), and PR 1's telemetry only ever
//! *wrote* JSON. Reading journals back for reporting needs a real parser;
//! this one covers the full JSON grammar in a few hundred lines. Floats
//! follow the journal convention of [`maopt_exec::telemetry::json_f64`]:
//! `NaN` serializes as `null` and infinities as the strings `"inf"` /
//! `"-inf"`, and [`Json::as_f64`] maps them back.

use std::collections::BTreeMap;
use std::fmt;

use maopt_exec::telemetry::{json_f64, json_string};

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order normalized).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A number from a `u64` (exact up to 2^53, like any JSON reader).
    pub fn num_u(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as an `f64`, honouring the journal's non-finite encoding:
    /// `null` → `NaN`, `"inf"` / `"-inf"` → infinities.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::Null => Some(f64::NAN),
            Json::Str(s) if s == "inf" => Some(f64::INFINITY),
            Json::Str(s) if s == "-inf" => Some(f64::NEG_INFINITY),
            _ => None,
        }
    }

    /// The value as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|v| v as usize)
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, nothing else).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message with a byte offset on malformed
    /// input.
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) => f.write_str(&json_f64(*v)),
            Json::Str(s) => f.write_str(&json_string(s)),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", json_string(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected character at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let second = self.hex4()?;
                                    let c = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(first)
                            };
                            out.push(ch.ok_or_else(|| {
                                format!("invalid \\u escape before byte {}", self.pos)
                            })?);
                            continue;
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through unchanged.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let ch = s.chars().next().expect("non-empty by peek");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "invalid \\u escape".to_string())?;
        let v = u32::from_str_radix(hex, 16)
            .map_err(|_| format!("invalid hex at byte {}", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for text in ["null", "true", "false", "0", "-1.5", "1e300", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.to_string()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn nested_structure_roundtrips() {
        let v = Json::obj(vec![
            (
                "a",
                Json::Arr(vec![Json::num_u(1), Json::Null, Json::Bool(true)]),
            ),
            ("b", Json::obj(vec![("nested", Json::Str("x\"y\n".into()))])),
            ("c", Json::Num(-0.125)),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn non_finite_floats_follow_journal_convention() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "\"inf\"");
        assert!(Json::parse("null").unwrap().as_f64().unwrap().is_nan());
        assert_eq!(
            Json::parse("\"-inf\"").unwrap().as_f64(),
            Some(f64::NEG_INFINITY)
        );
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            Json::parse("\"\\u0041\\u00e9\"").unwrap(),
            Json::Str("Aé".into())
        );
        // Surrogate pair: U+1F600.
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("😀".into())
        );
        // Raw multi-byte UTF-8 passes through.
        assert_eq!(Json::parse("\"héllo\"").unwrap(), Json::Str("héllo".into()));
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in [
            "", "{", "[1,", "\"open", "{\"a\":}", "nul", "1.2.3", "[] []",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accessors_extract_expected_types() {
        let v = Json::parse("{\"n\":3,\"s\":\"x\",\"b\":false,\"a\":[1,2]}").unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("n").unwrap().as_usize(), Some(3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert!(v.get("missing").is_none());
        assert_eq!(Json::Num(1.5).as_u64(), None, "fractions are not integers");
    }
}
