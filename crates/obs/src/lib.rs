//! `maopt-obs`: run-level observability for the MA-Opt reproduction.
//!
//! The optimizer's headline evidence is convergence behaviour driven by
//! internals that engine-level counters cannot see: critic surrogate
//! fidelity (Eq. 4), per-actor training losses and proposal quality
//! (Eqs. 5–6), shared-elite-set refresh rate, and near-sampling accept
//! decisions (Algorithm 2). This crate makes those signals durable:
//!
//! * a structured, append-only **run journal** ([`Journal`]) — one typed
//!   JSONL record per line with a versioned schema ([`Record`],
//!   [`SCHEMA_VERSION`]): a run manifest, per-round records, near-sampling
//!   records, and engine counter deltas;
//! * a hermetic **JSON value type + parser** ([`json::Json`]) so journals
//!   can be read back without external dependencies;
//! * **rank statistics** ([`stats::spearman`]) used for the critic-rank →
//!   simulated-FoM fidelity signal.
//!
//! The disabled journal ([`Journal::disabled`]) is a zero-cost no-op sink:
//! instrumented code guards every stat computation behind
//! [`Journal::enabled`], so benchmarks are unaffected when journaling is
//! off.
//!
//! Dependency direction: `maopt-core` depends on this crate (to emit
//! records), and `maopt-bench`'s `maopt-report` binary depends on it (to
//! load and render them). This crate depends only on `maopt-exec`, whose
//! [`maopt_exec::CounterSnapshot`] and [`maopt_exec::MetricSnapshot`] are
//! embedded in records.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod json;
pub mod record;
pub mod stats;
pub mod tail;
pub mod trace;

pub use journal::{read_journal, Journal, JournalError};
pub use record::{
    ActorRound, EliteStats, EngineRecord, Manifest, NearSamplingRecord, Record, RoundRecord,
    RunEnd, SCHEMA_VERSION,
};
pub use tail::JournalTail;
pub use trace::{parse_trace, read_trace, TraceData, TraceEvent, TraceEventKind, TraceThread};
