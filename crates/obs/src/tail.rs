//! Incremental journal tailing: follow an append-only JSONL file as it
//! grows, yielding only complete lines.
//!
//! The serve daemon's `subscribe` command streams a job's journal to
//! clients while the optimizer is still appending to it. A plain
//! `BufReader::lines` loop would hand out the torn final line of an
//! in-flight append; [`JournalTail`] instead remembers its byte offset
//! and only yields data up to the last `\n`, so every returned string is
//! a complete journal line. Poll [`JournalTail::poll`] after each
//! flush/interval; it returns the new complete lines since the previous
//! call.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// Follows one journal file, yielding complete lines incrementally.
///
/// Tolerates the file not existing yet (the job may not have started):
/// [`JournalTail::poll`] simply returns no lines until it appears.
#[derive(Debug)]
pub struct JournalTail {
    path: PathBuf,
    offset: u64,
    partial: Vec<u8>,
}

impl JournalTail {
    /// A tail positioned at the start of `path` (which need not exist
    /// yet); the first [`JournalTail::poll`] returns every complete line
    /// written so far.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        JournalTail {
            path: path.into(),
            offset: 0,
            partial: Vec::new(),
        }
    }

    /// The tailed file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Byte offset of the next unread data (including any buffered
    /// partial line).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Reads and returns every *complete* line appended since the last
    /// poll. A trailing fragment without a newline is buffered and
    /// returned once its terminator arrives. A missing file yields no
    /// lines; a file that shrank below the current offset (truncated and
    /// recreated) restarts the tail from the beginning.
    ///
    /// # Errors
    ///
    /// Propagates read failures other than `NotFound`.
    pub fn poll(&mut self) -> std::io::Result<Vec<String>> {
        let mut file = match File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let len = file.metadata()?.len();
        if len < self.offset {
            self.offset = 0;
            self.partial.clear();
        }
        if len == self.offset {
            return Ok(Vec::new());
        }
        file.seek(SeekFrom::Start(self.offset))?;
        let mut fresh = Vec::with_capacity((len - self.offset) as usize);
        file.take(len - self.offset).read_to_end(&mut fresh)?;
        self.offset += fresh.len() as u64;
        self.partial.extend_from_slice(&fresh);

        let mut lines = Vec::new();
        let mut start = 0usize;
        while let Some(nl) = self.partial[start..].iter().position(|&b| b == b'\n') {
            let end = start + nl;
            lines.push(String::from_utf8_lossy(&self.partial[start..end]).into_owned());
            start = end + 1;
        }
        self.partial.drain(..start);
        Ok(lines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("maopt-obs-tail-{}-{name}", std::process::id()))
    }

    #[test]
    fn missing_file_yields_nothing() {
        let mut tail = JournalTail::new(tmp_path("absent.jsonl"));
        assert!(tail.poll().unwrap().is_empty());
        assert_eq!(tail.offset(), 0);
    }

    #[test]
    fn yields_only_complete_lines_across_polls() {
        let path = tmp_path("grow.jsonl");
        let mut f = File::create(&path).unwrap();
        let mut tail = JournalTail::new(&path);

        write!(f, "{{\"a\":1}}\n{{\"b\":").unwrap();
        f.flush().unwrap();
        assert_eq!(tail.poll().unwrap(), vec!["{\"a\":1}".to_string()]);

        // Torn line completes plus a new one arrives.
        write!(f, "2}}\n{{\"c\":3}}\n").unwrap();
        f.flush().unwrap();
        assert_eq!(
            tail.poll().unwrap(),
            vec!["{\"b\":2}".to_string(), "{\"c\":3}".to_string()]
        );
        assert!(tail.poll().unwrap().is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_file_restarts_from_beginning() {
        let path = tmp_path("trunc.jsonl");
        std::fs::write(&path, "one\ntwo\n").unwrap();
        let mut tail = JournalTail::new(&path);
        assert_eq!(tail.poll().unwrap(), vec!["one", "two"]);
        std::fs::write(&path, "x\n").unwrap();
        assert_eq!(tail.poll().unwrap(), vec!["x"]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncation_mid_line_restarts_and_buffers_the_torn_tail() {
        // A crash-recovery tool may truncate a journal *inside* a line.
        // The tail must restart, yield only the lines that are complete
        // in the truncated file, and hold the torn remainder until its
        // terminator is appended.
        let path = tmp_path("trunc-mid.jsonl");
        std::fs::write(&path, "one\ntwo\nthree\n").unwrap();
        let mut tail = JournalTail::new(&path);
        assert_eq!(tail.poll().unwrap(), vec!["one", "two", "three"]);

        // Truncate to "one\ntw" — mid-way through the second line.
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(6).unwrap();
        drop(f);
        assert_eq!(
            tail.poll().unwrap(),
            vec!["one"],
            "only the complete prefix of the truncated file is replayed"
        );

        // The torn "tw" completes on the next append — no byte is lost
        // and nothing is duplicated.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        write!(f, "o-again\nfour\n").unwrap();
        drop(f);
        assert_eq!(tail.poll().unwrap(), vec!["two-again", "four"]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncation_never_fuses_a_stale_partial_with_new_content() {
        // A partial line buffered from *before* a truncation must be
        // discarded with the truncated bytes, not glued onto whatever is
        // written afterwards.
        let path = tmp_path("trunc-stale.jsonl");
        std::fs::write(&path, "{\"a\":1}\n{\"b\":").unwrap();
        let mut tail = JournalTail::new(&path);
        assert_eq!(tail.poll().unwrap(), vec!["{\"a\":1}"]);

        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(0).unwrap();
        drop(f);
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        writeln!(f, "{{\"x\":9}}").unwrap();
        drop(f);
        assert_eq!(
            tail.poll().unwrap(),
            vec!["{\"x\":9}"],
            "stale partial {{\"b\": must not prefix the new line"
        );
        let _ = std::fs::remove_file(&path);
    }
}
