//! Property tests for the journal reader's crash tolerance: mangled
//! bytes never panic the reader, and a torn *final* line costs exactly
//! that line — everything before it still loads.

use std::path::PathBuf;

use maopt_exec::CounterSnapshot;
use maopt_obs::{read_journal, JournalError, Manifest, Record, RunEnd};
use proptest::prelude::*;

fn manifest() -> Record {
    let (version, build) = Manifest::build_info();
    Record::Manifest(Manifest {
        label: "MA-Opt".into(),
        problem: "prop".into(),
        dim: 2,
        num_metrics: 3,
        seed: 7,
        budget: 10,
        init_size: 4,
        jobs: 1,
        version,
        build,
        config: maopt_obs::json::Json::obj(vec![]),
    })
}

fn run_end(rounds: usize) -> Record {
    Record::RunEnd(RunEnd {
        rounds,
        sims: 10 + rounds,
        best_fom: 0.5,
        success: true,
        total_s: 0.25,
        training_s: 0.125,
        simulation_s: 0.0625,
        near_sampling_s: 0.0,
        engine: CounterSnapshot::default(),
    })
}

/// A small valid journal as bytes (ASCII, so byte-level mangling stays
/// valid UTF-8 and exercises the parser rather than the UTF-8 decoder).
fn valid_journal(extra_records: usize) -> (Vec<Record>, Vec<u8>) {
    let mut records = vec![manifest()];
    for r in 0..extra_records {
        records.push(run_end(r));
    }
    let text: String = records
        .iter()
        .map(|r| format!("{}\n", r.to_json_line()))
        .collect();
    (records, text.into_bytes())
}

fn write_tmp(name: u64, bytes: &[u8]) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "maopt-obs-prop-{}-{name}.jsonl",
        std::process::id()
    ));
    std::fs::write(&path, bytes).unwrap();
    path
}

proptest! {
    /// Truncating a journal at any byte — the crash-at-any-instant model
    /// for an append-only file — must never panic, and must recover every
    /// record whose line survived intact.
    #[test]
    fn truncation_at_any_byte_never_panics(extra in 0usize..4, cut_frac in 0.0f64..1.0, case in 0u64..u64::MAX) {
        let (records, bytes) = valid_journal(extra);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let path = write_tmp(case, &bytes[..cut]);
        let result = read_journal(&path);
        let _ = std::fs::remove_file(&path);

        let loaded = result.expect("a pure truncation leaves at most one torn final line");
        // Lines followed by their newline are guaranteed intact; a cut
        // landing exactly on a line's last byte also leaves it parseable.
        let intact = bytes[..cut].iter().filter(|&&b| b == b'\n').count();
        prop_assert!(loaded.len() >= intact, "complete lines must survive");
        prop_assert!(loaded.len() <= intact + 1);
        prop_assert_eq!(&records[..loaded.len()], &loaded[..], "loaded is a prefix");
    }

    /// Arbitrary byte garbage appended after a valid journal (a torn tail
    /// that is not even JSON-shaped) must not panic; interior records load.
    #[test]
    fn garbage_tail_is_skipped(extra in 0usize..3, tail in prop::collection::vec(32u64..127, 0..40), case in 0u64..u64::MAX) {
        let (records, mut bytes) = valid_journal(extra);
        bytes.extend(tail.iter().map(|&b| b as u8));
        let path = write_tmp(case.wrapping_add(1), &bytes);
        let result = read_journal(&path);
        let _ = std::fs::remove_file(&path);

        let loaded = result.expect("garbage confined to the final line must be skipped");
        // The garbage line either parses to nothing extra or is skipped;
        // all original records must survive.
        prop_assert_eq!(&loaded[..records.len()], &records[..]);
    }

    /// Flipping one byte anywhere must never panic the reader: it either
    /// still loads, or reports a typed parse/IO error.
    #[test]
    fn single_byte_corruption_never_panics(extra in 1usize..4, pos_frac in 0.0f64..1.0, new_byte in 0u64..256, case in 0u64..u64::MAX) {
        let (_, mut bytes) = valid_journal(extra);
        let pos = (((bytes.len() - 1) as f64) * pos_frac) as usize;
        bytes[pos] = new_byte as u8;
        let path = write_tmp(case.wrapping_add(2), &bytes);
        let result = read_journal(&path);
        let _ = std::fs::remove_file(&path);

        match result {
            Ok(_) => {}
            Err(JournalError::Parse { line, .. }) => prop_assert!(line >= 1),
            Err(JournalError::Io(_)) => {} // non-UTF-8 byte: typed IO error
        }
    }
}
