use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub};

use crate::LinalgError;

/// A dense, row-major matrix of `f64` values.
///
/// `Mat` is the shared currency between the neural-network stack, the
/// Gaussian-process baseline and the circuit solver. It favours clarity and
/// predictable performance over micro-optimization; all the matrices in this
/// workspace are small (at most a few hundred rows).
///
/// # Example
///
/// ```
/// use maopt_linalg::Mat;
///
/// let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Mat::identity(2);
/// let c = a.matmul(&b);
/// assert_eq!(c[(1, 0)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Mat {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Mat {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "flat data must have rows*cols entries"
        );
        Mat { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Mat::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// A view of row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// A mutable view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(
            j < self.cols,
            "column index {j} out of bounds ({})",
            self.cols
        );
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// The flat row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the flat row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its flat row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix × matrix product.
    ///
    /// Delegates to [`crate::kernels::matmul_into`]; see that kernel for
    /// the reduction-order and zero-skip contracts.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Mat) -> Mat {
        let mut out = Mat::zeros(0, 0);
        crate::kernels::matmul_into(self, rhs, &mut out);
        out
    }

    /// Matrix × vector product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        crate::kernels::matvec_into(self, x, &mut out);
        out
    }

    /// Transposed matrix × vector product (`Aᵀ x`) without forming `Aᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn matvec_transposed(&self, x: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        crate::kernels::matvec_transposed_into(self, x, &mut out);
        out
    }

    /// In-place scaling by a scalar.
    pub fn scale_mut(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Returns `self * s` as a new matrix.
    pub fn scaled(&self, s: f64) -> Mat {
        let mut m = self.clone();
        m.scale_mut(s);
        m
    }

    /// Adds `s * rhs` into `self` (AXPY).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy_mut(&mut self, s: f64, rhs: &Mat) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "axpy shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += s * b;
        }
    }

    /// Fills the matrix with zeros, keeping its shape.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Reshapes to `rows × cols` and fills with zeros, reusing the
    /// existing heap buffer whenever its capacity suffices.
    ///
    /// After a warm-up call at a given size, repeated calls perform no
    /// heap allocation — the workhorse of the workspace-reuse kernels.
    pub fn resize_reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Makes `self` a copy of `src` (shape and contents), reusing the
    /// existing heap buffer whenever its capacity suffices.
    pub fn copy_from(&mut self, src: &Mat) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Checks that every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Returns an error unless the matrix is square.
    pub(crate) fn require_square(&self) -> Result<usize, LinalgError> {
        if self.rows == self.cols {
            Ok(self.rows)
        } else {
            Err(LinalgError::DimensionMismatch {
                expected: "square matrix".into(),
                found: format!("{}x{}", self.rows, self.cols),
            })
        }
    }
}

impl Default for Mat {
    /// The empty `0 × 0` matrix (no heap allocation).
    fn default() -> Self {
        Mat::zeros(0, 0)
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl Add<&Mat> for &Mat {
    type Output = Mat;

    fn add(self, rhs: &Mat) -> Mat {
        let mut out = self.clone();
        out.axpy_mut(1.0, rhs);
        out
    }
}

impl Sub<&Mat> for &Mat {
    type Output = Mat;

    fn sub(self, rhs: &Mat) -> Mat {
        let mut out = self.clone();
        out.axpy_mut(-1.0, rhs);
        out
    }
}

impl AddAssign<&Mat> for Mat {
    fn add_assign(&mut self, rhs: &Mat) {
        self.axpy_mut(1.0, rhs);
    }
}

impl Mul<f64> for &Mat {
    type Output = Mat;

    fn mul(self, s: f64) -> Mat {
        self.scaled(s)
    }
}

impl fmt::Display for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Mat::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Mat::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn from_rows_and_indexing() {
        let m = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn from_rows_ragged_panics() {
        let _ = Mat::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_small() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Mat::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Mat::from_rows(&[&[1.5, -2.0, 0.5], &[0.0, 3.0, 9.0]]);
        assert_eq!(a.matmul(&Mat::identity(3)), a);
        assert_eq!(Mat::identity(2).matmul(&a), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let x = vec![2.0, -1.0];
        assert_eq!(a.matvec(&x), vec![0.0, 2.0, 4.0]);
    }

    #[test]
    fn matvec_transposed_matches_explicit_transpose() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let x = vec![1.0, 0.5, -2.0];
        let explicit = a.transpose().matvec(&x);
        assert_eq!(a.matvec_transposed(&x), explicit);
    }

    #[test]
    fn add_sub_axpy() {
        let a = Mat::from_rows(&[&[1.0, 2.0]]);
        let b = Mat::from_rows(&[&[10.0, 20.0]]);
        assert_eq!((&a + &b).as_slice(), &[11.0, 22.0]);
        assert_eq!((&b - &a).as_slice(), &[9.0, 18.0]);
        let mut c = a.clone();
        c.axpy_mut(2.0, &b);
        assert_eq!(c.as_slice(), &[21.0, 42.0]);
    }

    #[test]
    fn scaling_and_norms() {
        let m = Mat::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert_eq!(m.frobenius_norm(), 5.0);
        assert_eq!(m.max_abs(), 4.0);
        assert_eq!(m.scaled(2.0)[(1, 1)], 8.0);
    }

    #[test]
    fn from_fn_builds_expected_entries() {
        let m = Mat::from_fn(2, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut m = Mat::identity(2);
        assert!(m.is_finite());
        m[(0, 1)] = f64::NAN;
        assert!(!m.is_finite());
    }

    #[test]
    fn require_square_rejects_rectangular() {
        let m = Mat::zeros(2, 3);
        assert!(m.require_square().is_err());
        assert_eq!(Mat::zeros(3, 3).require_square(), Ok(3));
    }
}
