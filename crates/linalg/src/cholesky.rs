use crate::{LinalgError, Mat};

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite matrix.
///
/// Used by the Gaussian-process regression baseline ([`maopt-bo`]) to factor
/// kernel matrices: solving with the factor is `O(n²)` per right-hand side and
/// the log-determinant falls out of the diagonal.
///
/// [`maopt-bo`]: ../maopt_bo/index.html
///
/// # Example
///
/// ```
/// use maopt_linalg::{Cholesky, Mat};
///
/// # fn main() -> Result<(), maopt_linalg::LinalgError> {
/// let a = Mat::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let ch = Cholesky::new(&a)?;
/// let x = ch.solve(&[2.0, 1.0])?;
/// // Verify A x = b
/// assert!((4.0 * x[0] + 2.0 * x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor (entries above the diagonal are zero).
    l: Mat,
}

impl Cholesky {
    /// Factors the symmetric positive-definite matrix `a`.
    ///
    /// Only the lower triangle of `a` is read; symmetry is assumed, not
    /// verified.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] if a diagonal pivot is
    /// non-positive, and [`LinalgError::DimensionMismatch`] for a non-square
    /// input.
    pub fn new(a: &Mat) -> Result<Self, LinalgError> {
        let n = a.require_square()?;
        let mut l = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { index: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &Mat {
        &self.l
    }

    /// Solves `A·x = b` via two triangular solves.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    // Index form mirrors the textbook forward/backward substitution.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("rhs of length {n}"),
                found: format!("length {}", b.len()),
            });
        }
        // Forward: L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for j in 0..i {
                sum -= self.l[(i, j)] * y[j];
            }
            y[i] = sum / self.l[(i, i)];
        }
        // Backward: Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for j in (i + 1)..n {
                sum -= self.l[(j, i)] * x[j];
            }
            x[i] = sum / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Log-determinant of the original matrix: `2·Σ log L[i,i]`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Mat {
        // A = Bᵀ B + I is SPD for any B.
        let b = Mat::from_rows(&[&[1.0, 2.0, 0.0], &[0.5, -1.0, 2.0], &[3.0, 0.0, 1.0]]);
        let mut a = b.transpose().matmul(&b);
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        a
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let l = ch.factor();
        let recon = l.matmul(&l.transpose());
        assert!((&recon - &a).max_abs() < 1e-12);
    }

    #[test]
    fn solve_matches_lu() {
        let a = spd3();
        let b = [1.0, -2.0, 0.5];
        let x_ch = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        let x_lu = crate::Lu::new(a).unwrap().solve(&b).unwrap();
        for (c, l) in x_ch.iter().zip(&x_lu) {
            assert!((c - l).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        assert!(Cholesky::new(&Mat::zeros(2, 3)).is_err());
    }

    #[test]
    fn log_det_matches_lu_det() {
        let a = spd3();
        let ld = Cholesky::new(&a).unwrap().log_det();
        let det = crate::Lu::new(a).unwrap().det();
        assert!((ld - det.ln()).abs() < 1e-10);
    }

    #[test]
    fn solve_checks_rhs_length() {
        let ch = Cholesky::new(&Mat::identity(3)).unwrap();
        assert!(ch.solve(&[1.0]).is_err());
    }
}
