use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// Used throughout the AC small-signal analysis: node voltages, branch
/// currents and transfer functions at a given frequency are complex phasors.
///
/// # Example
///
/// ```
/// use maopt_linalg::Complex;
///
/// let s = Complex::new(0.0, 1.0); // j
/// assert!((s * s - Complex::new(-1.0, 0.0)).abs() < 1e-15);
/// let h = Complex::new(1.0, 0.0) / Complex::new(1.0, 1.0);
/// assert!((h.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `j`.
    pub const J: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar form.
    pub fn from_polar(magnitude: f64, phase_rad: f64) -> Self {
        Complex::new(magnitude * phase_rad.cos(), magnitude * phase_rad.sin())
    }

    /// Magnitude (absolute value).
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude, avoiding the square root.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in radians, in `(-π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }

    /// Multiplicative inverse.
    ///
    /// Returns infinities when `self` is zero, mirroring `1.0 / 0.0`.
    pub fn recip(self) -> Complex {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// `true` when both components are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Magnitude in decibels: `20·log10(|self|)`.
    pub fn abs_db(self) -> f64 {
        20.0 * self.abs().log10()
    }

    /// Phase in degrees.
    pub fn arg_deg(self) -> f64 {
        self.arg().to_degrees()
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, s: f64) -> Complex {
        Complex::new(self.re * s, self.im * s)
    }
}

impl Div for Complex {
    type Output = Complex;
    // Division via the numerically-guarded reciprocal, not Mul misuse.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    fn div(self, s: f64) -> Complex {
        Complex::new(self.re / s, self.im / s)
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert_eq!(a + b, Complex::new(-2.0, 2.5));
        assert_eq!(a - b, Complex::new(4.0, 1.5));
        assert_eq!(a * Complex::ONE, a);
        assert_eq!(a + Complex::ZERO, a);
        assert_eq!(-a, Complex::new(-1.0, -2.0));
    }

    #[test]
    fn multiplication_and_division_invert() {
        let a = Complex::new(2.0, -3.0);
        let b = Complex::new(0.5, 4.0);
        let q = (a * b) / b;
        assert!((q - a).abs() < 1e-12);
    }

    #[test]
    fn j_squared_is_minus_one() {
        assert!((Complex::J * Complex::J + Complex::ONE).abs() < 1e-15);
    }

    #[test]
    fn polar_roundtrip() {
        let c = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!((c.abs() - 2.0).abs() < 1e-12);
        assert!((c.arg() - std::f64::consts::FRAC_PI_3).abs() < 1e-12);
    }

    #[test]
    fn conjugate_properties() {
        let a = Complex::new(3.0, 4.0);
        assert_eq!(a.conj().im, -4.0);
        let prod = a * a.conj();
        assert!((prod.re - 25.0).abs() < 1e-12);
        assert!(prod.im.abs() < 1e-12);
    }

    #[test]
    fn db_and_degrees() {
        let c = Complex::new(10.0, 0.0);
        assert!((c.abs_db() - 20.0).abs() < 1e-12);
        assert!((Complex::J.arg_deg() - 90.0).abs() < 1e-12);
    }

    #[test]
    fn recip_of_zero_is_nonfinite() {
        assert!(!Complex::ZERO.recip().is_finite());
    }

    #[test]
    fn scalar_ops() {
        let a = Complex::new(1.0, -1.0);
        assert_eq!(a * 2.0, Complex::new(2.0, -2.0));
        assert_eq!(a / 2.0, Complex::new(0.5, -0.5));
        assert_eq!(Complex::from(3.5), Complex::new(3.5, 0.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2j");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2j");
    }
}
