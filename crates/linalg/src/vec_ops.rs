//! Small vector helpers shared across the workspace.
//!
//! These operate on plain `&[f64]` slices so that callers are not forced to
//! wrap their data in a dedicated vector type.

/// Dot product of two slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Euclidean distance between two points.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Element-wise `a + s·b`, returning a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(a: &[f64], s: f64, b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "axpy length mismatch");
    a.iter().zip(b).map(|(x, y)| x + s * y).collect()
}

/// Element-wise subtraction `a - b`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    axpy(a, -1.0, b)
}

/// Element-wise addition `a + b`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    axpy(a, 1.0, b)
}

/// Clamps every element into `[lo[i], hi[i]]`.
///
/// # Panics
///
/// Panics if lengths disagree.
pub fn clamp_box(x: &[f64], lo: &[f64], hi: &[f64]) -> Vec<f64> {
    assert!(
        x.len() == lo.len() && x.len() == hi.len(),
        "clamp_box length mismatch"
    );
    x.iter()
        .zip(lo.iter().zip(hi))
        .map(|(&v, (&l, &h))| v.clamp(l, h))
        .collect()
}

/// Maximum absolute difference between two slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff length mismatch");
    a.iter()
        .zip(b)
        .fold(0.0_f64, |m, (x, y)| m.max((x - y).abs()))
}

/// Linear interpolation between `a` and `b` with parameter `t ∈ [0, 1]`.
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn distance_symmetric() {
        let a = [1.0, 2.0];
        let b = [4.0, 6.0];
        assert_eq!(distance(&a, &b), 5.0);
        assert_eq!(distance(&b, &a), 5.0);
        assert_eq!(distance(&a, &a), 0.0);
    }

    #[test]
    fn axpy_add_sub() {
        let a = [1.0, 2.0];
        let b = [10.0, 20.0];
        assert_eq!(axpy(&a, 0.5, &b), vec![6.0, 12.0]);
        assert_eq!(add(&a, &b), vec![11.0, 22.0]);
        assert_eq!(sub(&b, &a), vec![9.0, 18.0]);
    }

    #[test]
    fn clamp_box_clamps_each_coordinate() {
        let x = [-1.0, 0.5, 2.0];
        let lo = [0.0, 0.0, 0.0];
        let hi = [1.0, 1.0, 1.0];
        assert_eq!(clamp_box(&x, &lo, &hi), vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn max_abs_diff_finds_extreme() {
        assert_eq!(max_abs_diff(&[1.0, 5.0], &[1.5, 2.0]), 3.0);
    }

    #[test]
    fn lerp_endpoints() {
        assert_eq!(lerp(2.0, 4.0, 0.0), 2.0);
        assert_eq!(lerp(2.0, 4.0, 1.0), 4.0);
        assert_eq!(lerp(2.0, 4.0, 0.5), 3.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
