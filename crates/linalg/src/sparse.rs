//! Sparse (compressed-sparse-column) matrices and a deterministic sparse LU.
//!
//! This is the solver behind the fast MNA path in `maopt-sim`. The design
//! splits factorization into two phases:
//!
//! * **Symbolic** ([`SymbolicLu::analyze`]): computed *once per sparsity
//!   pattern*. Picks a deterministic row permutation via maximum bipartite
//!   matching so every diagonal entry of `P·A` is structurally nonzero (MNA
//!   matrices have structurally zero diagonals on voltage-source branch
//!   rows), then runs a bitset fill analysis under the **fixed natural column
//!   order** to obtain the filled pattern `F = L + U`. No numeric values are
//!   consulted, so the result is a pure function of the pattern and can be
//!   cached and shared (`Arc`) across Newton iterations, homotopy sweeps,
//!   designs, and runs.
//! * **Numeric** ([`SparseLu::factor`]): left-looking column factorization
//!   into preallocated storage aligned with the symbolic pattern. No
//!   allocation, no pivot search, no data-dependent ordering — the floating
//!   point operation sequence is identical for every matrix sharing the
//!   pattern, which is what makes journals bitwise-reproducible across
//!   designs and thread counts.
//!
//! Because the elimination order is fixed, a matrix that *would* factor under
//! partial pivoting can still hit a tiny pivot here; callers detect
//! [`LinalgError::Singular`] and fall back to the dense pivoting solver
//! ([`crate::Lu`] / [`crate::CLu`]). The factorization is generic over
//! [`SparseScalar`] so the AC/noise analyses reuse the *same* symbolic
//! object for the complex system `G + jωC`.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};
use std::sync::Arc;

use crate::{Complex, LinalgError};

/// Pivots with magnitude below this are treated as singular (matches
/// [`crate::Lu`]).
const PIVOT_EPS: f64 = 1e-300;

/// Scalar types the sparse factorization works over (`f64` and [`Complex`]).
pub trait SparseScalar:
    Copy
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + std::fmt::Debug
{
    /// Additive identity.
    const ZERO: Self;
    /// Magnitude used for pivot admissibility checks.
    fn magnitude(self) -> f64;
}

impl SparseScalar for f64 {
    const ZERO: f64 = 0.0;
    fn magnitude(self) -> f64 {
        self.abs()
    }
}

impl SparseScalar for Complex {
    const ZERO: Complex = Complex::ZERO;
    fn magnitude(self) -> f64 {
        self.abs()
    }
}

/// The set of structurally-nonzero positions of a square matrix, stored in
/// compressed-sparse-column (CSC) form with rows sorted within each column.
///
/// Building a pattern is deterministic: entries are sorted by `(col, row)`
/// and deduplicated, so any insertion order yields the same pattern (and the
/// same slot numbering).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparsityPattern {
    n: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
}

impl SparsityPattern {
    /// Builds a pattern for an `n × n` matrix from an arbitrary list of
    /// `(row, col)` positions. Duplicates are merged.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn from_entries(n: usize, entries: &[(usize, usize)]) -> SparsityPattern {
        let mut sorted: Vec<(usize, usize)> = entries
            .iter()
            .map(|&(r, c)| {
                assert!(r < n && c < n, "entry ({r},{c}) out of range for n={n}");
                (c, r)
            })
            .collect();
        sorted.sort_unstable();
        sorted.dedup();
        let mut col_ptr = vec![0usize; n + 1];
        let mut row_idx = Vec::with_capacity(sorted.len());
        for &(c, r) in &sorted {
            col_ptr[c + 1] += 1;
            row_idx.push(r);
        }
        for c in 0..n {
            col_ptr[c + 1] += col_ptr[c];
        }
        SparsityPattern {
            n,
            col_ptr,
            row_idx,
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of structural nonzeros.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Slot range of column `j` in the value array.
    pub fn col_range(&self, j: usize) -> std::ops::Range<usize> {
        self.col_ptr[j]..self.col_ptr[j + 1]
    }

    /// Row indices of column `j`, ascending.
    pub fn rows_of(&self, j: usize) -> &[usize] {
        &self.row_idx[self.col_range(j)]
    }

    /// Value-array slot of entry `(r, c)`, if it is in the pattern.
    pub fn slot(&self, r: usize, c: usize) -> Option<usize> {
        let range = self.col_range(c);
        let rows = &self.row_idx[range.clone()];
        rows.binary_search(&r).ok().map(|k| range.start + k)
    }
}

/// A square sparse matrix: an [`Arc`]-shared [`SparsityPattern`] plus a flat
/// value array. Assembly writes values through precomputed slots
/// ([`SparsityPattern::slot`]) so the hot loop is flat indexed stores.
#[derive(Debug, Clone)]
pub struct SparseMat<T = f64> {
    pattern: Arc<SparsityPattern>,
    vals: Vec<T>,
}

impl<T: SparseScalar> SparseMat<T> {
    /// An all-zero matrix over `pattern`.
    pub fn zeros(pattern: Arc<SparsityPattern>) -> SparseMat<T> {
        let nnz = pattern.nnz();
        SparseMat {
            pattern,
            vals: vec![T::ZERO; nnz],
        }
    }

    /// The shared pattern.
    pub fn pattern(&self) -> &Arc<SparsityPattern> {
        &self.pattern
    }

    /// Resets every stored value to zero (pattern unchanged, no allocation).
    pub fn fill_zero(&mut self) {
        self.vals.fill(T::ZERO);
    }

    /// The flat value array, slot-indexed.
    pub fn values(&self) -> &[T] {
        &self.vals
    }

    /// Mutable flat value array, slot-indexed.
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.vals
    }

    /// Adds `v` at entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `(r, c)` is not in the pattern.
    pub fn add(&mut self, r: usize, c: usize, v: T) {
        let slot = self
            .pattern
            .slot(r, c)
            .unwrap_or_else(|| panic!("entry ({r},{c}) not in sparsity pattern"));
        self.vals[slot] += v;
    }

    /// Dense matrix-vector product (test/debug helper).
    pub fn matvec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.pattern.n, "matvec dimension mismatch");
        let mut y = vec![T::ZERO; self.pattern.n];
        for (j, &xj) in x.iter().enumerate() {
            if xj == T::ZERO {
                continue;
            }
            for p in self.pattern.col_range(j) {
                y[self.pattern.row_idx[p]] += self.vals[p] * xj;
            }
        }
        y
    }
}

/// Symbolic sparse LU: row permutation + filled pattern `F = L + U`,
/// computed once per [`SparsityPattern`] and shared across all numeric
/// factorizations of matrices with that pattern.
#[derive(Debug)]
pub struct SymbolicLu {
    n: usize,
    /// `row_perm[i]` = original row placed at permuted position `i`.
    row_perm: Vec<usize>,
    /// `row_perm_inv[orig]` = permuted position of original row `orig`.
    row_perm_inv: Vec<usize>,
    /// Filled pattern of `P·A` (CSC, rows ascending; includes the diagonal).
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    /// Position of the diagonal entry within each column of the fill.
    diag_ptr: Vec<usize>,
}

impl SymbolicLu {
    /// Analyzes `pattern`: finds a deterministic row permutation giving a
    /// structurally nonzero diagonal (maximum bipartite matching,
    /// diagonal-preferring) and the fill pattern of the pivot-free
    /// elimination in natural column order.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if the matrix is *structurally*
    /// singular (no perfect matching exists).
    pub fn analyze(pattern: &SparsityPattern) -> Result<SymbolicLu, LinalgError> {
        let n = pattern.n;
        // --- 1. structural diagonal via maximum bipartite matching -------
        // match_col[r] = column matched to original row r (or NONE).
        const NONE: usize = usize::MAX;
        let mut match_col = vec![NONE; n];
        // Prefer the identity assignment where the diagonal is structural:
        // deterministic and keeps node rows in place.
        for (j, mc) in match_col.iter_mut().enumerate() {
            if pattern.slot(j, j).is_some() && *mc == NONE {
                *mc = j;
            }
        }
        let mut visited = vec![false; n];
        for j in 0..n {
            if match_col.contains(&j) {
                continue; // already matched in the diagonal pass
            }
            visited.fill(false);
            if !augment(pattern, j, &mut match_col, &mut visited) {
                return Err(LinalgError::Singular { pivot: j });
            }
        }
        // row_perm: permuted position j holds the original row matched to
        // column j.
        let mut row_perm = vec![NONE; n];
        for (orig_row, &col) in match_col.iter().enumerate() {
            debug_assert_ne!(col, NONE);
            row_perm[col] = orig_row;
        }
        let mut row_perm_inv = vec![NONE; n];
        for (pos, &orig) in row_perm.iter().enumerate() {
            row_perm_inv[orig] = pos;
        }

        // --- 2. bitset fill analysis in natural column order -------------
        let words = n.div_ceil(64);
        let mut bits = vec![0u64; n * words];
        for j in 0..n {
            let base = j * words;
            for &r in pattern.rows_of(j) {
                let pr = row_perm_inv[r];
                bits[base + pr / 64] |= 1u64 << (pr % 64);
            }
            debug_assert!(
                bits[base + j / 64] & (1u64 << (j % 64)) != 0,
                "matching must give a structural diagonal"
            );
        }
        // Right-looking symbolic elimination: when column j contains row k
        // (k < j), it absorbs column k's sub-diagonal rows.
        for k in 0..n {
            let kw = k / 64;
            let kb = k % 64;
            // Mask selecting bits strictly greater than k within word kw.
            let high_mask = if kb == 63 { 0 } else { !0u64 << (kb + 1) };
            for j in (k + 1)..n {
                let jb = j * words;
                if bits[jb + kw] & (1u64 << kb) == 0 {
                    continue;
                }
                let kbase = k * words;
                bits[jb + kw] |= bits[kbase + kw] & high_mask;
                for w in (kw + 1)..words {
                    bits[jb + w] |= bits[kbase + w];
                }
            }
        }
        // --- 3. gather the filled CSC pattern -----------------------------
        let mut col_ptr = Vec::with_capacity(n + 1);
        let mut row_idx = Vec::new();
        let mut diag_ptr = vec![0usize; n];
        col_ptr.push(0);
        for (j, dp) in diag_ptr.iter_mut().enumerate() {
            let base = j * words;
            for w in 0..words {
                let mut word = bits[base + w];
                while word != 0 {
                    let bit = word.trailing_zeros() as usize;
                    let row = w * 64 + bit;
                    if row == j {
                        *dp = row_idx.len();
                    }
                    row_idx.push(row);
                    word &= word - 1;
                }
            }
            col_ptr.push(row_idx.len());
        }
        Ok(SymbolicLu {
            n,
            row_perm,
            row_perm_inv,
            col_ptr,
            row_idx,
            diag_ptr,
        })
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Structural nonzeros of `L + U` (fill included).
    pub fn factor_nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// `row_perm[i]` = original row placed at permuted position `i`.
    pub fn row_perm(&self) -> &[usize] {
        &self.row_perm
    }
}

/// Depth-first augmenting-path search for the bipartite matching. Iteration
/// order over `pattern.rows_of` is ascending, so the matching is
/// deterministic.
fn augment(
    pattern: &SparsityPattern,
    col: usize,
    match_col: &mut [usize],
    visited: &mut [bool],
) -> bool {
    for &r in pattern.rows_of(col) {
        if visited[r] {
            continue;
        }
        visited[r] = true;
        let prev = match_col[r];
        if prev == usize::MAX || augment(pattern, prev, match_col, visited) {
            match_col[r] = col;
            return true;
        }
    }
    false
}

/// Numeric sparse LU over a shared [`SymbolicLu`]. Owns preallocated factor
/// storage and a dense scatter workspace; [`SparseLu::factor`] and
/// [`SparseLu::solve_into`] perform no heap allocation after construction.
#[derive(Debug, Clone)]
pub struct SparseLu<T = f64> {
    sym: Arc<SymbolicLu>,
    /// Values aligned with `sym.row_idx`: U on/above the diagonal,
    /// L multipliers below (unit diagonal implicit).
    vals: Vec<T>,
    /// Dense scatter workspace, length `n`, kept all-zero between calls.
    work: Vec<T>,
    factored: bool,
}

impl<T: SparseScalar> SparseLu<T> {
    /// An unfactored solver bound to `sym`.
    pub fn new(sym: Arc<SymbolicLu>) -> SparseLu<T> {
        let nnz = sym.factor_nnz();
        let n = sym.n;
        SparseLu {
            sym,
            vals: vec![T::ZERO; nnz],
            work: vec![T::ZERO; n],
            factored: false,
        }
    }

    /// The shared symbolic factorization.
    pub fn sym(&self) -> &Arc<SymbolicLu> {
        &self.sym
    }

    /// Numerically factors `a` (which must share the pattern the symbolic
    /// analysis was computed from) using the fixed elimination order.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] if `a` has a different dimension.
    /// * [`LinalgError::Singular`] if a pivot is non-finite or its magnitude
    ///   underflows; callers typically fall back to the dense pivoting
    ///   solver in that case.
    pub fn factor(&mut self, a: &SparseMat<T>) -> Result<(), LinalgError> {
        let n = self.sym.n;
        if a.pattern.n != n {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("{n}x{n} matrix"),
                found: format!("{0}x{0}", a.pattern.n),
            });
        }
        self.factored = false;
        let sym = &*self.sym;
        let work = &mut self.work;
        let vals = &mut self.vals;
        for j in 0..n {
            // Scatter permuted column j of A into the dense workspace. The
            // fill pattern is a superset of the input pattern, and `work` is
            // all-zero here, so plain stores suffice.
            for p in a.pattern.col_range(j) {
                work[sym.row_perm_inv[a.pattern.row_idx[p]]] = a.vals[p];
            }
            // Left-looking update: for each U entry (row k < j, ascending),
            // subtract its multiple of column k's L.
            let col = sym.col_ptr[j]..sym.col_ptr[j + 1];
            let diag = sym.diag_ptr[j];
            for p in col.start..diag {
                let k = sym.row_idx[p];
                let ukj = work[k];
                vals[p] = ukj;
                if ukj != T::ZERO {
                    for q in (sym.diag_ptr[k] + 1)..sym.col_ptr[k + 1] {
                        work[sym.row_idx[q]] -= vals[q] * ukj;
                    }
                }
            }
            let pivot = work[j];
            let mag = pivot.magnitude();
            if !mag.is_finite() || mag < PIVOT_EPS {
                // Leave the workspace clean for the next attempt: every row
                // written this iteration lies in F-column j.
                for q in col.clone() {
                    work[sym.row_idx[q]] = T::ZERO;
                }
                return Err(LinalgError::Singular { pivot: j });
            }
            vals[diag] = pivot;
            for q in (diag + 1)..col.end {
                vals[q] = work[sym.row_idx[q]] / pivot;
            }
            // Clear exactly the rows of F-column j: the fill rule guarantees
            // every row written this iteration is in this set.
            for q in col {
                work[sym.row_idx[q]] = T::ZERO;
            }
        }
        self.factored = true;
        Ok(())
    }

    /// Solves `A·x = b` into `x` (cleared and refilled; no allocation once
    /// `x` has capacity `n`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on a wrong-length rhs.
    ///
    /// # Panics
    ///
    /// Panics if no successful [`SparseLu::factor`] call preceded.
    pub fn solve_into(&self, b: &[T], x: &mut Vec<T>) -> Result<(), LinalgError> {
        assert!(self.factored, "SparseLu::solve_into before factor()");
        let n = self.sym.n;
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("rhs of length {n}"),
                found: format!("length {}", b.len()),
            });
        }
        x.clear();
        x.extend(self.sym.row_perm.iter().map(|&pi| b[pi]));
        // Forward substitution with unit-lower L (column-oriented).
        for j in 0..n {
            let xj = x[j];
            if xj == T::ZERO {
                continue;
            }
            for q in (self.sym.diag_ptr[j] + 1)..self.sym.col_ptr[j + 1] {
                x[self.sym.row_idx[q]] -= self.vals[q] * xj;
            }
        }
        // Back substitution with U (column-oriented).
        for j in (0..n).rev() {
            let xj = x[j] / self.vals[self.sym.diag_ptr[j]];
            x[j] = xj;
            if xj == T::ZERO {
                continue;
            }
            for q in self.sym.col_ptr[j]..self.sym.diag_ptr[j] {
                x[self.sym.row_idx[q]] -= self.vals[q] * xj;
            }
        }
        Ok(())
    }

    /// Allocating convenience wrapper around [`SparseLu::solve_into`].
    ///
    /// # Errors
    ///
    /// See [`SparseLu::solve_into`].
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>, LinalgError> {
        let mut x = Vec::with_capacity(b.len());
        self.solve_into(b, &mut x)?;
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CLu, CMat, Lu, Mat};

    fn dense_of(m: &SparseMat<f64>) -> Mat {
        let n = m.pattern().n();
        let mut d = Mat::zeros(n, n);
        for j in 0..n {
            for p in m.pattern().col_range(j) {
                d[(m.pattern().row_idx[p], j)] = m.values()[p];
            }
        }
        d
    }

    fn pattern_of_dense(n: usize, entries: &[(usize, usize, f64)]) -> SparseMat<f64> {
        let pat: Vec<(usize, usize)> = entries.iter().map(|&(r, c, _)| (r, c)).collect();
        let pattern = Arc::new(SparsityPattern::from_entries(n, &pat));
        let mut m = SparseMat::zeros(pattern);
        for &(r, c, v) in entries {
            m.add(r, c, v);
        }
        m
    }

    #[test]
    fn pattern_dedups_and_sorts() {
        let p = SparsityPattern::from_entries(3, &[(2, 0), (0, 0), (2, 0), (1, 2)]);
        assert_eq!(p.nnz(), 3);
        assert_eq!(p.rows_of(0), &[0, 2]);
        assert_eq!(p.rows_of(1), &[] as &[usize]);
        assert_eq!(p.rows_of(2), &[1]);
        assert_eq!(p.slot(2, 0), Some(1));
        assert_eq!(p.slot(1, 0), None);
    }

    #[test]
    fn pattern_independent_of_insertion_order() {
        let a = SparsityPattern::from_entries(4, &[(0, 0), (3, 1), (1, 1), (2, 2)]);
        let b = SparsityPattern::from_entries(4, &[(2, 2), (1, 1), (0, 0), (3, 1), (1, 1)]);
        assert_eq!(a, b);
    }

    #[test]
    fn factor_solve_matches_dense() {
        // Asymmetric sparse system with off-diagonal structure.
        let m = pattern_of_dense(
            4,
            &[
                (0, 0, 4.0),
                (0, 1, -1.0),
                (1, 0, -2.0),
                (1, 1, 5.0),
                (1, 3, 1.0),
                (2, 2, 3.0),
                (2, 0, 0.5),
                (3, 3, 2.0),
                (3, 1, -0.25),
            ],
        );
        let sym = Arc::new(SymbolicLu::analyze(m.pattern()).unwrap());
        let mut lu = SparseLu::<f64>::new(sym);
        lu.factor(&m).unwrap();
        let b = [1.0, -2.0, 3.0, 0.5];
        let x = lu.solve(&b).unwrap();
        let xd = Lu::new(dense_of(&m)).unwrap().solve(&b).unwrap();
        for (a, b) in x.iter().zip(&xd) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn zero_structural_diagonal_is_handled() {
        // MNA-style: voltage source branch row has a zero diagonal.
        //   [ g   1 ] [v]   [0]
        //   [ 1   0 ] [i] = [V]
        let m = pattern_of_dense(2, &[(0, 0, 1e-3), (0, 1, 1.0), (1, 0, 1.0)]);
        let sym = Arc::new(SymbolicLu::analyze(m.pattern()).unwrap());
        let mut lu = SparseLu::<f64>::new(sym);
        lu.factor(&m).unwrap();
        let x = lu.solve(&[0.0, 1.8]).unwrap();
        assert!((x[0] - 1.8).abs() < 1e-12);
        assert!((x[1] + 1.8e-3).abs() < 1e-15);
    }

    #[test]
    fn structurally_singular_detected_at_analysis() {
        // Column 1 and column 2 both only touch row 0: no perfect matching.
        let p = SparsityPattern::from_entries(3, &[(0, 0), (0, 1), (0, 2), (1, 0), (2, 0)]);
        assert!(matches!(
            SymbolicLu::analyze(&p),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn numerically_singular_detected_at_factor() {
        // Structurally fine, numerically rank-1.
        let m = pattern_of_dense(2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 2.0), (1, 1, 4.0)]);
        let sym = Arc::new(SymbolicLu::analyze(m.pattern()).unwrap());
        let mut lu = SparseLu::<f64>::new(sym);
        assert!(matches!(lu.factor(&m), Err(LinalgError::Singular { .. })));
        // Workspace stays clean: a subsequent factor of a good matrix works.
        let good = pattern_of_dense(2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 2.0), (1, 1, 5.0)]);
        let sym2 = Arc::new(SymbolicLu::analyze(good.pattern()).unwrap());
        let mut lu2: SparseLu<f64> = SparseLu::new(sym2);
        lu2.factor(&good).unwrap();
        let x = lu2.solve(&[5.0, 12.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
        // And the original workspace is reusable too (same structure).
        lu.factor(&good).unwrap();
    }

    #[test]
    fn refactor_reuses_symbolic_across_value_changes() {
        let pattern = Arc::new(SparsityPattern::from_entries(
            3,
            &[(0, 0), (1, 1), (2, 2), (0, 2), (2, 0), (1, 0)],
        ));
        let sym = Arc::new(SymbolicLu::analyze(&pattern).unwrap());
        let mut lu = SparseLu::<f64>::new(Arc::clone(&sym));
        let mut m: SparseMat<f64> = SparseMat::zeros(Arc::clone(&pattern));
        for scale in [1.0, 2.5, -3.0] {
            m.fill_zero();
            m.add(0, 0, 2.0 * scale);
            m.add(1, 1, 3.0 * scale);
            m.add(2, 2, 4.0 * scale);
            m.add(0, 2, 1.0);
            m.add(2, 0, -1.0);
            m.add(1, 0, 0.5);
            lu.factor(&m).unwrap();
            let b = [1.0, 2.0, 3.0];
            let x = lu.solve(&b).unwrap();
            let y = m.matvec(&x);
            for (yi, bi) in y.iter().zip(&b) {
                assert!((yi - bi).abs() < 1e-12);
            }
        }
        assert_eq!(Arc::strong_count(&sym), 2);
    }

    #[test]
    fn complex_factor_matches_dense_clu() {
        let n = 3;
        let entries = [
            (0, 0, Complex::new(2.0, 1.0)),
            (0, 1, Complex::new(0.0, -0.5)),
            (1, 1, Complex::new(3.0, 0.0)),
            (1, 2, Complex::new(1.0, 1.0)),
            (2, 0, Complex::new(0.5, 0.0)),
            (2, 2, Complex::new(-1.0, 2.0)),
        ];
        let pat: Vec<(usize, usize)> = entries.iter().map(|&(r, c, _)| (r, c)).collect();
        let pattern = Arc::new(SparsityPattern::from_entries(n, &pat));
        let mut m: SparseMat<Complex> = SparseMat::zeros(Arc::clone(&pattern));
        let mut d = CMat::zeros(n, n);
        for &(r, c, v) in &entries {
            m.add(r, c, v);
            d[(r, c)] += v;
        }
        let sym = Arc::new(SymbolicLu::analyze(&pattern).unwrap());
        let mut lu: SparseLu<Complex> = SparseLu::new(sym);
        lu.factor(&m).unwrap();
        let b = [Complex::new(1.0, 0.0), Complex::new(0.0, 1.0), Complex::ONE];
        let x = lu.solve(&b).unwrap();
        let xd = CLu::new(d).unwrap().solve(&b).unwrap();
        for (a, b) in x.iter().zip(&xd) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn larger_random_sparse_agrees_with_dense() {
        // Deterministic xorshift-built band+scatter matrix at n = 60.
        let n = 60;
        let mut seed = 0x243F6A8885A308D3u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) - 0.5
        };
        let mut entries: Vec<(usize, usize, f64)> = Vec::new();
        for i in 0..n {
            entries.push((i, i, 6.0 + next()));
            if i + 1 < n {
                entries.push((i, i + 1, next()));
                entries.push((i + 1, i, next()));
            }
            let far = (i * 7 + 3) % n;
            if far != i {
                entries.push((i, far, next()));
            }
        }
        let m = pattern_of_dense(n, &entries);
        let sym = Arc::new(SymbolicLu::analyze(m.pattern()).unwrap());
        assert!(sym.factor_nnz() < n * n / 2, "fill should stay sparse-ish");
        let mut lu = SparseLu::<f64>::new(sym);
        lu.factor(&m).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let x = lu.solve(&b).unwrap();
        let xd = Lu::new(dense_of(&m)).unwrap().solve(&b).unwrap();
        for (a, bb) in x.iter().zip(&xd) {
            assert!((a - bb).abs() < 1e-9, "{a} vs {bb}");
        }
    }

    #[test]
    fn solve_into_reuses_buffer_and_checks_len() {
        let m = pattern_of_dense(2, &[(0, 0, 2.0), (1, 1, 4.0)]);
        let sym = Arc::new(SymbolicLu::analyze(m.pattern()).unwrap());
        let mut lu = SparseLu::<f64>::new(sym);
        lu.factor(&m).unwrap();
        let mut x = Vec::new();
        lu.solve_into(&[2.0, 8.0], &mut x).unwrap();
        assert_eq!(x, vec![1.0, 2.0]);
        lu.solve_into(&[4.0, 8.0], &mut x).unwrap();
        assert_eq!(x, vec![2.0, 2.0]);
        assert!(lu.solve_into(&[1.0], &mut x).is_err());
    }
}
