use crate::{LinalgError, Mat};

/// LU decomposition with partial pivoting: `P·A = L·U`.
///
/// This is the linear solver behind the MNA circuit analyses: the Jacobian of
/// a Newton–Raphson DC iteration and the complex AC system (via [`crate::CLu`])
/// are both factored this way.
///
/// # Example
///
/// ```
/// use maopt_linalg::{Lu, Mat};
///
/// # fn main() -> Result<(), maopt_linalg::LinalgError> {
/// let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
/// let lu = Lu::new(a)?;
/// let x = lu.solve(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (unit lower, below diagonal) and U (upper incl. diagonal).
    lu: Mat,
    /// Row permutation: `perm[i]` is the original row now at position `i`.
    perm: Vec<usize>,
    /// Parity of the permutation, +1.0 or -1.0.
    sign: f64,
}

/// Pivots with absolute value below this are treated as singular.
const PIVOT_EPS: f64 = 1e-300;

impl Lu {
    /// Factors `a` in place.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] for a non-square matrix and
    /// [`LinalgError::Singular`] if a pivot underflows.
    pub fn new(mut a: Mat) -> Result<Self, LinalgError> {
        let n = a.require_square()?;
        let mut perm: Vec<usize> = (0..n).collect();
        let sign = eliminate(&mut a, &mut perm)?;
        Ok(Lu { lu: a, perm, sign })
    }

    /// An empty (0×0) factorization, usable as a reusable workspace for
    /// [`Lu::refactor_from`].
    pub fn empty() -> Lu {
        Lu {
            lu: Mat::default(),
            perm: Vec::new(),
            sign: 1.0,
        }
    }

    /// Re-factors `a` into this workspace, reusing the existing buffers:
    /// after warm-up this performs no heap allocation, eliminating the
    /// per-Newton-iteration `Lu::new(jac.clone())` churn on the dense path.
    ///
    /// # Errors
    ///
    /// Same contract as [`Lu::new`]. On error the workspace holds no valid
    /// factorization; call [`Lu::refactor_from`] again before solving.
    pub fn refactor_from(&mut self, a: &Mat) -> Result<(), LinalgError> {
        let n = a.require_square()?;
        self.lu.copy_from(a);
        self.perm.clear();
        self.perm.extend(0..n);
        self.sign = eliminate(&mut self.lu, &mut self.perm)?;
        Ok(())
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    // Index form mirrors the textbook forward/backward substitution.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("rhs of length {n}"),
                found: format!("length {}", b.len()),
            });
        }
        let mut x = Vec::with_capacity(n);
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A·x = b` into a reusable output buffer (cleared and refilled;
    /// no allocation once `x` has capacity `self.dim()`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    // Index form mirrors the textbook forward/backward substitution.
    #[allow(clippy::needless_range_loop)]
    pub fn solve_into(&self, b: &[f64], x: &mut Vec<f64>) -> Result<(), LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("rhs of length {n}"),
                found: format!("length {}", b.len()),
            });
        }
        // Apply permutation, then forward substitution with unit-lower L.
        x.clear();
        x.extend(self.perm.iter().map(|&pi| b[pi]));
        for i in 1..n {
            let mut sum = x[i];
            for j in 0..i {
                sum -= self.lu[(i, j)] * x[j];
            }
            x[i] = sum;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut sum = x[i];
            for j in (i + 1)..n {
                sum -= self.lu[(i, j)] * x[j];
            }
            x[i] = sum / self.lu[(i, i)];
        }
        Ok(())
    }

    /// Solves `A·X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.rows() != self.dim()`.
    pub fn solve_mat(&self, b: &Mat) -> Result<Mat, LinalgError> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("rhs with {n} rows"),
                found: format!("{} rows", b.rows()),
            });
        }
        let mut out = Mat::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve(&col)?;
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Inverse of the original matrix.
    ///
    /// # Errors
    ///
    /// Propagates solver errors (cannot occur for a successfully factored
    /// matrix, but the signature is kept fallible for uniformity).
    pub fn inverse(&self) -> Result<Mat, LinalgError> {
        self.solve_mat(&Mat::identity(self.dim()))
    }
}

/// In-place partial-pivoting elimination shared by [`Lu::new`] and
/// [`Lu::refactor_from`]. Returns the permutation sign.
fn eliminate(a: &mut Mat, perm: &mut [usize]) -> Result<f64, LinalgError> {
    let n = perm.len();
    let mut sign = 1.0;
    for k in 0..n {
        // Partial pivoting: bring the largest |entry| in column k to row k.
        let mut p = k;
        let mut max = a[(k, k)].abs();
        for i in (k + 1)..n {
            let v = a[(i, k)].abs();
            if v > max {
                max = v;
                p = i;
            }
        }
        if max < PIVOT_EPS || !max.is_finite() {
            return Err(LinalgError::Singular { pivot: k });
        }
        if p != k {
            for j in 0..n {
                let tmp = a[(k, j)];
                a[(k, j)] = a[(p, j)];
                a[(p, j)] = tmp;
            }
            perm.swap(k, p);
            sign = -sign;
        }
        let pivot = a[(k, k)];
        for i in (k + 1)..n {
            let factor = a[(i, k)] / pivot;
            a[(i, k)] = factor;
            if factor != 0.0 {
                for j in (k + 1)..n {
                    let akj = a[(k, j)];
                    a[(i, j)] -= factor * akj;
                }
            }
        }
    }
    Ok(sign)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual_norm(a: &Mat, x: &[f64], b: &[f64]) -> f64 {
        a.matvec(x)
            .iter()
            .zip(b)
            .map(|(ax, bi)| (ax - bi).powi(2))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn solve_2x2() {
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let lu = Lu::new(a.clone()).unwrap();
        let b = [3.0, 5.0];
        let x = lu.solve(&b).unwrap();
        assert!(residual_norm(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the (0,0) diagonal: fails without partial pivoting.
        let a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = Lu::new(a.clone()).unwrap();
        let x = lu.solve(&[2.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-14);
        assert!((x[1] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn singular_detected() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(Lu::new(a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn non_square_rejected() {
        let a = Mat::zeros(2, 3);
        assert!(matches!(
            Lu::new(a),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rhs_length_checked() {
        let lu = Lu::new(Mat::identity(3)).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn determinant_2x2() {
        let a = Mat::from_rows(&[&[3.0, 8.0], &[4.0, 6.0]]);
        let lu = Lu::new(a).unwrap();
        assert!((lu.det() - (-14.0)).abs() < 1e-12);
    }

    #[test]
    fn determinant_sign_after_pivot() {
        let a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = Lu::new(a).unwrap();
        assert!((lu.det() - (-1.0)).abs() < 1e-12);
    }

    #[test]
    fn inverse_multiplies_to_identity() {
        let a = Mat::from_rows(&[&[4.0, 7.0, 2.0], &[3.0, 5.0, 1.0], &[8.0, 1.0, 6.0]]);
        let inv = Lu::new(a.clone()).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv);
        let err = (&prod - &Mat::identity(3)).max_abs();
        assert!(err < 1e-12, "err = {err}");
    }

    #[test]
    fn solve_mat_matches_columnwise_solve() {
        let a = Mat::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]);
        let b = Mat::from_rows(&[&[2.0, 4.0], &[8.0, 12.0]]);
        let x = Lu::new(a).unwrap().solve_mat(&b).unwrap();
        assert_eq!(x, Mat::from_rows(&[&[1.0, 2.0], &[2.0, 3.0]]));
    }

    #[test]
    fn refactor_from_matches_new_bitwise() {
        let a = Mat::from_rows(&[&[0.0, 1.0, 2.0], &[3.0, -4.0, 0.5], &[1.0, 1.0, 9.0]]);
        let fresh = Lu::new(a.clone()).unwrap();
        let mut ws = Lu::empty();
        // Warm the workspace on a different matrix first, then refactor.
        ws.refactor_from(&Mat::identity(3)).unwrap();
        ws.refactor_from(&a).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x0 = fresh.solve(&b).unwrap();
        let mut x1 = Vec::new();
        ws.solve_into(&b, &mut x1).unwrap();
        assert_eq!(x0, x1, "workspace refactor must be bitwise-identical");
        assert_eq!(fresh.det().to_bits(), ws.det().to_bits());
    }

    #[test]
    fn refactor_from_reports_singular_and_recovers() {
        let mut ws = Lu::empty();
        let singular = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            ws.refactor_from(&singular),
            Err(LinalgError::Singular { .. })
        ));
        ws.refactor_from(&Mat::identity(2)).unwrap();
        let mut x = Vec::new();
        ws.solve_into(&[5.0, 6.0], &mut x).unwrap();
        assert_eq!(x, vec![5.0, 6.0]);
    }

    #[test]
    fn larger_random_system_solves_accurately() {
        // Deterministic pseudo-random matrix (diagonally boosted for
        // conditioning) exercising the pivoting path at n = 40.
        let n = 40;
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) - 0.5
        };
        let mut a = Mat::from_fn(n, n, |_, _| next());
        for i in 0..n {
            a[(i, i)] += 5.0;
        }
        let b: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let x = Lu::new(a.clone()).unwrap().solve(&b).unwrap();
        assert!(residual_norm(&a, &x, &b) < 1e-9);
    }
}
