//! Scalar statistics helpers for aggregating experiment results.

/// Arithmetic mean; returns `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n−1 denominator); returns `NaN` when fewer than
/// two samples are provided.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Minimum value; returns `NaN` for an empty slice.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NAN, f64::min)
}

/// Maximum value; returns `NaN` for an empty slice.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NAN, f64::max)
}

/// Median via sorting a copy; returns `NaN` for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Linear-interpolated percentile `p ∈ [0, 100]`; returns `NaN` when empty.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let t = rank - lo as f64;
        sorted[lo] * (1.0 - t) + sorted[hi] * t
    }
}

/// Index of the minimum value; `None` when empty or all-NaN.
pub fn argmin(xs: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in xs.iter().enumerate() {
        if x.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv <= x => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.138089935299395).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_give_nan() {
        assert!(mean(&[]).is_nan());
        assert!(std_dev(&[1.0]).is_nan());
        assert!(min(&[]).is_nan());
        assert!(max(&[]).is_nan());
        assert!(median(&[]).is_nan());
    }

    #[test]
    fn min_max() {
        let xs = [3.0, -1.0, 7.0];
        assert_eq!(min(&xs), -1.0);
        assert_eq!(max(&xs), 7.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(percentile(&xs, 0.0), 0.0);
        assert_eq!(percentile(&xs, 100.0), 10.0);
        assert_eq!(percentile(&xs, 25.0), 2.5);
    }

    #[test]
    fn argmin_skips_nan() {
        assert_eq!(argmin(&[f64::NAN, 2.0, 1.0, 3.0]), Some(2));
        assert_eq!(argmin(&[f64::NAN]), None);
        assert_eq!(argmin(&[]), None);
    }
}
