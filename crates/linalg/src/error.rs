use std::error::Error;
use std::fmt;

/// Errors produced by factorizations and solvers in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// The matrix is singular (or numerically singular) at the given pivot.
    Singular {
        /// Pivot index at which elimination broke down.
        pivot: usize,
    },
    /// The matrix is not positive definite (Cholesky only).
    NotPositiveDefinite {
        /// Diagonal index at which the failure was detected.
        index: usize,
    },
    /// Operand dimensions do not agree.
    DimensionMismatch {
        /// What was expected, e.g. `"rhs of length 4"`.
        expected: String,
        /// What was provided, e.g. `"length 3"`.
        found: String,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            LinalgError::NotPositiveDefinite { index } => {
                write!(f, "matrix is not positive definite at diagonal {index}")
            }
            LinalgError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_singular() {
        let e = LinalgError::Singular { pivot: 3 };
        assert_eq!(e.to_string(), "matrix is singular at pivot 3");
    }

    #[test]
    fn display_not_positive_definite() {
        let e = LinalgError::NotPositiveDefinite { index: 1 };
        assert_eq!(
            e.to_string(),
            "matrix is not positive definite at diagonal 1"
        );
    }

    #[test]
    fn display_dimension_mismatch() {
        let e = LinalgError::DimensionMismatch {
            expected: "rhs of length 4".into(),
            found: "length 3".into(),
        };
        assert!(e.to_string().contains("expected rhs of length 4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
