//! Allocation-free dense kernels with a fixed reduction order.
//!
//! These are the hot inner loops of the neural-network stack: every
//! `Dense` forward/backward and every batched critic prediction bottoms
//! out here. Two contracts hold for every kernel in this module:
//!
//! 1. **Caller-owned outputs.** `_into` kernels write into buffers the
//!    caller provides and never allocate, so a training step that reuses
//!    its buffers performs zero heap allocations after warm-up.
//! 2. **Fixed reduction order.** Every reduction accumulates strictly
//!    left-to-right into a single accumulator — the same order as the
//!    naive scalar loop (and as `Iterator::sum`, which folds
//!    sequentially). Loop unrolling only widens the *body*, never splits
//!    the accumulator, so results are bitwise identical to the
//!    allocating counterparts. This is what keeps run journals
//!    reproducible bit-for-bit at any parallelism or buffering level.
//!
//! Zero-skip fast paths (`0.0 * x` contributions are not added) are kept
//! from the original implementations: they are bitwise-neutral for
//! finite operands, but would silently launder `0.0 * NaN` or
//! `0.0 * ∞` to zero. Debug builds therefore assert that skipped
//! operands are finite, surfacing poisoned inputs instead of masking
//! them.

use crate::Mat;

/// Debug-only finiteness check used on zero-skip fast paths.
///
/// Compiled out in release builds; in debug builds it panics when a
/// skipped operand would have contributed a `0.0 * NaN` / `0.0 * ∞`
/// term that the fast path silently drops.
#[inline]
pub fn debug_assert_finite(values: &[f64], context: &str) {
    debug_assert!(
        values.iter().all(|v| v.is_finite()),
        "{context}: non-finite operand would be laundered to zero by a \
         zero-skip fast path"
    );
}

/// Dot product with a single left-to-right accumulator.
///
/// Bitwise identical to
/// `a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>()` — the 4× unrolled
/// body keeps one accumulator so the reduction order is unchanged.
///
/// # Panics
///
/// Panics (debug) if the slices have different lengths; in release the
/// shorter length governs, matching `zip`.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot length mismatch");
    let n = a.len().min(b.len());
    // `Iterator::sum::<f64>()` folds from -0.0 (the additive identity
    // that preserves the sign of a -0.0 first element); starting from
    // +0.0 would differ bitwise whenever the first product is -0.0.
    let mut acc = -0.0;
    let mut i = 0;
    while i + 4 <= n {
        acc += a[i] * b[i];
        acc += a[i + 1] * b[i + 1];
        acc += a[i + 2] * b[i + 2];
        acc += a[i + 3] * b[i + 3];
        i += 4;
    }
    while i < n {
        acc += a[i] * b[i];
        i += 1;
    }
    acc
}

/// `y += alpha * x`, element-wise (AXPY on slices).
///
/// Each element is updated independently, so the unrolled body is
/// bitwise identical to the scalar loop.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(y: &mut [f64], alpha: f64, x: &[f64]) {
    assert_eq!(y.len(), x.len(), "axpy length mismatch");
    let n = y.len();
    let mut i = 0;
    while i + 4 <= n {
        y[i] += alpha * x[i];
        y[i + 1] += alpha * x[i + 1];
        y[i + 2] += alpha * x[i + 2];
        y[i + 3] += alpha * x[i + 3];
        i += 4;
    }
    while i < n {
        y[i] += alpha * x[i];
        i += 1;
    }
}

/// Row block height of the register-tiled matmul kernel.
const MR: usize = 4;
/// Column block width of the register-tiled matmul / transposed-matvec
/// kernels.
const NR: usize = 8;

/// Matrix × matrix product written into `out` (resized by the kernel,
/// reusing its capacity).
///
/// Register-tiled over `MR x NR` output blocks: each block accumulates
/// its `k`-reduction in a stack array small enough to live in registers,
/// so every `a`/`b` element in the block is touched once per `k` step
/// without round-tripping partial sums through memory.
///
/// Bitwise identical to the naive row-AXPY kernel (and hence to
/// [`Mat::matmul`]): tiling only reorders *which output element* is
/// worked on next — each individual element still accumulates its
/// products from `0.0` in strictly ascending `k` order, with the same
/// `a[i][k] == 0.0` fast path. Floating-point addition is applied per
/// element, so blocking over `i`/`j` cannot change any result bit; only
/// splitting the `k` reduction could, and this kernel never does.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul_into(a: &Mat, b: &Mat, out: &mut Mat) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul dimension mismatch: {}x{} * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    out.resize_reset(a.rows(), b.cols());
    let (ar, ac, bc) = (a.rows(), a.cols(), b.cols());
    for ib in (0..ar).step_by(MR) {
        let iw = MR.min(ar - ib);
        let mut a_rows: [&[f64]; MR] = [&[]; MR];
        for (ii, a_row) in a_rows.iter_mut().enumerate().take(iw) {
            *a_row = a.row(ib + ii);
        }
        for jb in (0..bc).step_by(NR) {
            let jw = NR.min(bc - jb);
            let mut acc = [[0.0f64; NR]; MR];
            for k in 0..ac {
                let b_blk = &b.row(k)[jb..jb + jw];
                for (a_row, acc_row) in a_rows.iter().zip(acc.iter_mut()).take(iw) {
                    let aik = a_row[k];
                    if aik == 0.0 {
                        debug_assert_finite(b_blk, "matmul zero-skip");
                        continue;
                    }
                    for (jj, &bkj) in b_blk.iter().enumerate() {
                        acc_row[jj] += aik * bkj;
                    }
                }
            }
            for (ii, acc_row) in acc.iter().enumerate().take(iw) {
                let start = (ib + ii) * bc + jb;
                out.as_mut_slice()[start..start + jw].copy_from_slice(&acc_row[..jw]);
            }
        }
    }
}

/// Matrix × vector product written into `out` (resized, capacity
/// reused). Bitwise identical to [`Mat::matvec`].
///
/// # Panics
///
/// Panics if `x.len() != a.cols()`.
pub fn matvec_into(a: &Mat, x: &[f64], out: &mut Vec<f64>) {
    assert_eq!(x.len(), a.cols(), "matvec dimension mismatch");
    out.clear();
    out.extend((0..a.rows()).map(|i| dot(a.row(i), x)));
}

/// Transposed matrix × vector product (`Aᵀ x`) written into `out`
/// without forming `Aᵀ`. Bitwise identical to
/// [`Mat::matvec_transposed`], including the `x[i] == 0.0` fast path.
///
/// Blocked over `NR`-wide column strips so the partial sums of one strip
/// accumulate in a stack array (registers) instead of read-modify-write
/// traffic on `out`. As in [`matmul_into`], blocking only chooses which
/// output element is worked on next: each `out[j]` still sums its
/// `x[i] * a[i][j]` terms from `0.0` in strictly ascending `i` order, so
/// no result bit can change.
///
/// # Panics
///
/// Panics if `x.len() != a.rows()`.
pub fn matvec_transposed_into(a: &Mat, x: &[f64], out: &mut Vec<f64>) {
    assert_eq!(x.len(), a.rows(), "matvec_transposed dimension mismatch");
    let cols = a.cols();
    out.clear();
    out.resize(cols, 0.0);
    for jb in (0..cols).step_by(NR) {
        let jw = NR.min(cols - jb);
        let mut acc = [0.0f64; NR];
        for (i, &xi) in x.iter().enumerate() {
            let row_blk = &a.row(i)[jb..jb + jw];
            if xi == 0.0 {
                debug_assert_finite(row_blk, "matvec_transposed zero-skip");
                continue;
            }
            for (jj, &aij) in row_blk.iter().enumerate() {
                acc[jj] += xi * aij;
            }
        }
        out[jb..jb + jw].copy_from_slice(&acc[..jw]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_mat(rows: usize, cols: usize, scale: f64) -> Mat {
        Mat::from_fn(rows, cols, |i, j| {
            ((i * cols + j) as f64 * 0.37 - 1.3) * scale
        })
    }

    #[test]
    fn dot_matches_iterator_sum_bitwise() {
        for n in [0, 1, 3, 4, 7, 8, 17, 100] {
            let a: Vec<f64> = (0..n).map(|i| (i as f64).sin() * 3.7).collect();
            let b: Vec<f64> = (0..n).map(|i| (i as f64).cos() - 0.4).collect();
            let reference: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert_eq!(dot(&a, &b).to_bits(), reference.to_bits(), "n = {n}");
        }
    }

    #[test]
    fn axpy_matches_scalar_loop_bitwise() {
        for n in [0, 1, 5, 8, 13] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64) * 0.7 - 2.0).collect();
            let mut y: Vec<f64> = (0..n).map(|i| (i as f64).sqrt()).collect();
            let mut reference = y.clone();
            for (r, &xi) in reference.iter_mut().zip(&x) {
                *r += -1.75 * xi;
            }
            axpy(&mut y, -1.75, &x);
            assert_eq!(y, reference, "n = {n}");
        }
    }

    #[test]
    fn matmul_into_matches_matmul_bitwise() {
        let a = seq_mat(5, 7, 0.9);
        let b = seq_mat(7, 3, -1.1);
        let mut out = Mat::zeros(0, 0);
        matmul_into(&a, &b, &mut out);
        let reference = a.matmul(&b);
        assert_eq!(out, reference);
        // Reuse without reallocation: result must still be identical.
        matmul_into(&a, &b, &mut out);
        assert_eq!(out, reference);
    }

    #[test]
    fn matvec_kernels_match_allocating_bitwise() {
        let a = seq_mat(6, 4, 1.3);
        let x = [0.5, -1.5, 2.5, 0.0];
        let mut out = Vec::new();
        matvec_into(&a, &x, &mut out);
        assert_eq!(out, a.matvec(&x));

        let xt = [1.0, 0.0, -2.0, 0.5, 0.0, 3.0];
        let mut out_t = vec![99.0; 10];
        matvec_transposed_into(&a, &xt, &mut out_t);
        assert_eq!(out_t, a.matvec_transposed(&xt));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "laundered")]
    fn zero_skip_surfaces_nan_in_debug() {
        let a = Mat::from_rows(&[&[0.0, 1.0]]);
        let mut b = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        b[(0, 0)] = f64::NAN;
        let mut out = Mat::zeros(0, 0);
        matmul_into(&a, &b, &mut out);
    }
}
