//! Dense linear algebra foundation for the MA-Opt reproduction.
//!
//! This crate deliberately implements only what the rest of the workspace
//! needs — no external numerics dependencies are used anywhere in the
//! reproduction:
//!
//! * [`Mat`]: a dense, row-major, real (`f64`) matrix with the usual
//!   arithmetic, used by the neural-network stack and the Gaussian-process
//!   baseline.
//! * [`Lu`]: LU decomposition with partial pivoting, the workhorse of the
//!   modified-nodal-analysis (MNA) circuit solver.
//! * [`Cholesky`]: SPD factorization used by Gaussian-process regression.
//! * [`Complex`] / [`CMat`] / [`CLu`]: complex scalars, matrices and a
//!   complex LU solver for small-signal AC circuit analysis.
//! * [`stats`]: tiny statistics helpers (mean, standard deviation,
//!   percentiles) used when aggregating experiment runs.
//! * [`kernels`]: allocation-free `_into` variants of the dense
//!   products with a fixed reduction order — the zero-allocation hot
//!   path of the neural-network stack (see DESIGN.md §8).
//! * [`sparse`]: CSC sparse matrices and a deterministic sparse LU with a
//!   symbolic factorization computed once per sparsity pattern — the fast
//!   MNA solver path (see DESIGN.md §13).
//!
//! # Example
//!
//! ```
//! use maopt_linalg::{Mat, Lu};
//!
//! # fn main() -> Result<(), maopt_linalg::LinalgError> {
//! let a = Mat::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
//! let lu = Lu::new(a)?;
//! let x = lu.solve(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cholesky;
mod cmat;
mod complex;
mod error;
pub mod kernels;
mod lu;
mod mat;
pub mod sparse;
pub mod stats;
pub mod vec_ops;

pub use cholesky::Cholesky;
pub use cmat::{CLu, CMat};
pub use complex::Complex;
pub use error::LinalgError;
pub use lu::Lu;
pub use mat::Mat;
pub use sparse::{SparseLu, SparseMat, SparseScalar, SparsityPattern, SymbolicLu};
