use std::ops::{Index, IndexMut};

use crate::{Complex, LinalgError};

/// A dense, row-major complex matrix, used for AC small-signal MNA systems.
///
/// # Example
///
/// ```
/// use maopt_linalg::{CMat, CLu, Complex};
///
/// # fn main() -> Result<(), maopt_linalg::LinalgError> {
/// // Solve (1+j)·x = 2
/// let mut a = CMat::zeros(1, 1);
/// a[(0, 0)] = Complex::new(1.0, 1.0);
/// let x = CLu::new(a)?.solve(&[Complex::from_real(2.0)])?;
/// assert!((x[0] - Complex::new(1.0, -1.0)).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CMat {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl CMat {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMat {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Fills the matrix with zeros, keeping its shape.
    pub fn fill_zero(&mut self) {
        self.data.fill(Complex::ZERO);
    }

    /// Matrix × vector product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[Complex]) -> Vec<Complex> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows)
            .map(|i| {
                let mut acc = Complex::ZERO;
                for j in 0..self.cols {
                    acc += self[(i, j)] * x[j];
                }
                acc
            })
            .collect()
    }

    fn require_square(&self) -> Result<usize, LinalgError> {
        if self.rows == self.cols {
            Ok(self.rows)
        } else {
            Err(LinalgError::DimensionMismatch {
                expected: "square matrix".into(),
                found: format!("{}x{}", self.rows, self.cols),
            })
        }
    }
}

impl Index<(usize, usize)> for CMat {
    type Output = Complex;

    fn index(&self, (i, j): (usize, usize)) -> &Complex {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for CMat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

/// Complex LU decomposition with partial pivoting (by magnitude).
///
/// The AC analysis factors `G + jωC` once per frequency point and solves for
/// one or more excitation vectors.
#[derive(Debug, Clone)]
pub struct CLu {
    lu: CMat,
    perm: Vec<usize>,
}

const PIVOT_EPS: f64 = 1e-300;

impl CLu {
    /// Factors `a` in place.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if a pivot magnitude underflows and
    /// [`LinalgError::DimensionMismatch`] for a non-square input.
    pub fn new(mut a: CMat) -> Result<Self, LinalgError> {
        let n = a.require_square()?;
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            let mut p = k;
            let mut max = a[(k, k)].norm_sqr();
            for i in (k + 1)..n {
                let v = a[(i, k)].norm_sqr();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if max < PIVOT_EPS * PIVOT_EPS || !max.is_finite() {
                return Err(LinalgError::Singular { pivot: k });
            }
            if p != k {
                for j in 0..n {
                    let tmp = a[(k, j)];
                    a[(k, j)] = a[(p, j)];
                    a[(p, j)] = tmp;
                }
                perm.swap(k, p);
            }
            let pivot_inv = a[(k, k)].recip();
            for i in (k + 1)..n {
                let factor = a[(i, k)] * pivot_inv;
                a[(i, k)] = factor;
                if factor != Complex::ZERO {
                    for j in (k + 1)..n {
                        let akj = a[(k, j)];
                        a[(i, j)] -= factor * akj;
                    }
                }
            }
        }
        Ok(CLu { lu: a, perm })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    // Index form mirrors the textbook forward/backward substitution.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self, b: &[Complex]) -> Result<Vec<Complex>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("rhs of length {n}"),
                found: format!("length {}", b.len()),
            });
        }
        let mut x: Vec<Complex> = self.perm.iter().map(|&pi| b[pi]).collect();
        for i in 1..n {
            let mut sum = x[i];
            for j in 0..i {
                sum -= self.lu[(i, j)] * x[j];
            }
            x[i] = sum;
        }
        for i in (0..n).rev() {
            let mut sum = x[i];
            for j in (i + 1)..n {
                sum -= self.lu[(i, j)] * x[j];
            }
            x[i] = sum * self.lu[(i, i)].recip();
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_real_system_matches_real_lu() {
        let entries = [[4.0, 1.0, 0.0], [1.0, 3.0, -1.0], [0.0, -1.0, 2.0]];
        let mut a = CMat::zeros(3, 3);
        let mut ar = crate::Mat::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                a[(i, j)] = Complex::from_real(entries[i][j]);
                ar[(i, j)] = entries[i][j];
            }
        }
        let b = [1.0, 2.0, 3.0];
        let bc: Vec<Complex> = b.iter().map(|&v| Complex::from_real(v)).collect();
        let xc = CLu::new(a).unwrap().solve(&bc).unwrap();
        let xr = crate::Lu::new(ar).unwrap().solve(&b).unwrap();
        for (c, r) in xc.iter().zip(&xr) {
            assert!((c.re - r).abs() < 1e-12);
            assert!(c.im.abs() < 1e-12);
        }
    }

    #[test]
    fn solve_complex_rc_divider() {
        // Series R with shunt C at ω where |Zc| = R: |H| = 1/√2.
        // Single-node MNA: (1/R + jωC) v = 1/R · vin
        let r = 1e3;
        let c = 1e-9;
        let omega = 1.0 / (r * c);
        let mut a = CMat::zeros(1, 1);
        a[(0, 0)] = Complex::new(1.0 / r, omega * c);
        let rhs = [Complex::from_real(1.0 / r)];
        let v = CLu::new(a).unwrap().solve(&rhs).unwrap();
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
        assert!((v[0].arg_deg() + 45.0).abs() < 1e-6);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let mut a = CMat::zeros(2, 2);
        a[(0, 1)] = Complex::ONE;
        a[(1, 0)] = Complex::ONE;
        let x = CLu::new(a)
            .unwrap()
            .solve(&[Complex::from_real(5.0), Complex::from_real(7.0)])
            .unwrap();
        assert!((x[0].re - 7.0).abs() < 1e-14);
        assert!((x[1].re - 5.0).abs() < 1e-14);
    }

    #[test]
    fn singular_rejected() {
        let a = CMat::zeros(2, 2);
        assert!(matches!(CLu::new(a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn matvec_residual_is_small() {
        let mut a = CMat::zeros(2, 2);
        a[(0, 0)] = Complex::new(1.0, 2.0);
        a[(0, 1)] = Complex::new(0.0, -1.0);
        a[(1, 0)] = Complex::new(3.0, 0.0);
        a[(1, 1)] = Complex::new(1.0, 1.0);
        let b = [Complex::new(1.0, 0.0), Complex::new(0.0, 1.0)];
        let x = CLu::new(a.clone()).unwrap().solve(&b).unwrap();
        let ax = a.matvec(&x);
        for (axi, bi) in ax.iter().zip(&b) {
            assert!((*axi - *bi).abs() < 1e-12);
        }
    }

    #[test]
    fn rhs_length_checked() {
        let mut a = CMat::zeros(2, 2);
        a[(0, 0)] = Complex::ONE;
        a[(1, 1)] = Complex::ONE;
        let lu = CLu::new(a).unwrap();
        assert!(lu.solve(&[Complex::ONE]).is_err());
    }
}
