//! Property-based tests for the linear-algebra foundation.

use maopt_linalg::{CLu, CMat, Cholesky, Complex, Lu, Mat};
use proptest::prelude::*;

/// Strategy: an n×n matrix with entries in [-1, 1] and a boosted diagonal so
/// the system is well conditioned.
fn well_conditioned(n: usize) -> impl Strategy<Value = Mat> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
        let mut m = Mat::from_vec(n, n, data);
        for i in 0..n {
            m[(i, i)] += n as f64 + 2.0;
        }
        m
    })
}

fn rhs(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0f64..10.0, n)
}

proptest! {
    #[test]
    fn lu_solution_satisfies_system(a in well_conditioned(6), b in rhs(6)) {
        let lu = Lu::new(a.clone()).expect("well-conditioned matrix must factor");
        let x = lu.solve(&b).unwrap();
        let ax = a.matvec(&x);
        for (axi, bi) in ax.iter().zip(&b) {
            prop_assert!((axi - bi).abs() < 1e-8, "residual too large: {axi} vs {bi}");
        }
    }

    #[test]
    fn lu_inverse_roundtrip(a in well_conditioned(5)) {
        let inv = Lu::new(a.clone()).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv);
        let err = (&prod - &Mat::identity(5)).max_abs();
        prop_assert!(err < 1e-8, "A·A⁻¹ deviates from I by {err}");
    }

    #[test]
    fn det_of_product_is_product_of_dets(
        a in well_conditioned(4),
        b in well_conditioned(4),
    ) {
        let dab = Lu::new(a.matmul(&b)).unwrap().det();
        let da = Lu::new(a).unwrap().det();
        let db = Lu::new(b).unwrap().det();
        let rel = (dab - da * db).abs() / (da * db).abs().max(1.0);
        prop_assert!(rel < 1e-8, "det(AB) != det(A)det(B): {dab} vs {}", da * db);
    }

    #[test]
    fn cholesky_agrees_with_lu_on_spd(base in well_conditioned(5), b in rhs(5)) {
        // BᵀB + I is SPD.
        let mut a = base.transpose().matmul(&base);
        for i in 0..5 {
            a[(i, i)] += 1.0;
        }
        let x_ch = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        let x_lu = Lu::new(a).unwrap().solve(&b).unwrap();
        for (c, l) in x_ch.iter().zip(&x_lu) {
            prop_assert!((c - l).abs() < 1e-7);
        }
    }

    #[test]
    fn transpose_is_involution(data in prop::collection::vec(-5.0f64..5.0, 12)) {
        let m = Mat::from_vec(3, 4, data);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_is_associative(
        a in well_conditioned(3),
        b in well_conditioned(3),
        c in well_conditioned(3),
    ) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!((&left - &right).max_abs() < 1e-9);
    }

    #[test]
    fn complex_lu_solves_shifted_systems(
        a in well_conditioned(4),
        b in rhs(4),
        omega in 0.1f64..10.0,
    ) {
        // Factor A + jω·I, a shape that mirrors G + jωC in AC analysis.
        let n = 4;
        let mut cm = CMat::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                cm[(i, j)] = Complex::new(a[(i, j)], if i == j { omega } else { 0.0 });
            }
        }
        let bc: Vec<Complex> = b.iter().map(|&v| Complex::from_real(v)).collect();
        let x = CLu::new(cm.clone()).unwrap().solve(&bc).unwrap();
        let ax = cm.matvec(&x);
        for (axi, bi) in ax.iter().zip(&bc) {
            prop_assert!((*axi - *bi).abs() < 1e-8);
        }
    }

    #[test]
    fn complex_field_axioms(re1 in -5.0f64..5.0, im1 in -5.0f64..5.0,
                            re2 in -5.0f64..5.0, im2 in -5.0f64..5.0) {
        let a = Complex::new(re1, im1);
        let b = Complex::new(re2, im2);
        // Commutativity
        prop_assert!((a * b - b * a).abs() < 1e-12);
        prop_assert!((a + b - (b + a)).abs() < 1e-12);
        // |ab| = |a||b|
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-9);
        // Conjugate distributes over multiplication
        prop_assert!(((a * b).conj() - a.conj() * b.conj()).abs() < 1e-9);
    }
}
