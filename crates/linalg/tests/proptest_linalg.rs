//! Property-based tests for the linear-algebra foundation.

use maopt_linalg::{CLu, CMat, Cholesky, Complex, Lu, Mat};
use proptest::prelude::*;

/// Strategy: an n×n matrix with entries in [-1, 1] and a boosted diagonal so
/// the system is well conditioned.
fn well_conditioned(n: usize) -> impl Strategy<Value = Mat> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
        let mut m = Mat::from_vec(n, n, data);
        for i in 0..n {
            m[(i, i)] += n as f64 + 2.0;
        }
        m
    })
}

fn rhs(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0f64..10.0, n)
}

/// Strategy: an arbitrary rows×cols matrix with a sprinkling of exact
/// zeros so the kernels' zero-skip fast paths are exercised.
fn any_mat(rows: usize, cols: usize) -> impl Strategy<Value = Mat> {
    prop::collection::vec(-10.0f64..10.0, rows * cols).prop_map(move |mut data| {
        for (i, v) in data.iter_mut().enumerate() {
            if i % 4 == 0 {
                *v = 0.0;
            }
        }
        Mat::from_vec(rows, cols, data)
    })
}

/// Reference matmul: the seed implementation's exact loop, kept here so
/// the kernel path is compared against the original reduction order.
fn reference_matmul(a: &Mat, b: &Mat) -> Mat {
    let mut out = Mat::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let aik = a[(i, k)];
            if aik == 0.0 {
                continue;
            }
            for j in 0..b.cols() {
                out[(i, j)] += aik * b[(k, j)];
            }
        }
    }
    out
}

/// Reference matvec: per-row `Iterator::sum` as in the seed code.
fn reference_matvec(a: &Mat, x: &[f64]) -> Vec<f64> {
    (0..a.rows())
        .map(|i| a.row(i).iter().zip(x).map(|(p, q)| p * q).sum())
        .collect()
}

/// Reference transposed matvec: the seed implementation's exact loop.
fn reference_matvec_transposed(a: &Mat, x: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; a.cols()];
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        for (o, &v) in out.iter_mut().zip(a.row(i)) {
            *o += v * xi;
        }
    }
    out
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Strategy: an `m×k` / `k×n` matmul pair plus an `m`-vector, with the
/// dimensions ranging over sizes that straddle the tiled kernels' 4-row /
/// 8-column block boundaries (exact multiples, ragged remainders and the
/// degenerate 1-sized edges). Entry pools are drawn at the maximum size
/// and truncated to the drawn dimensions, with every fourth entry forced
/// to an exact zero to exercise the zero-skip fast paths.
fn ragged_case() -> impl Strategy<Value = (Mat, Mat, Vec<f64>)> {
    const MAX_M: usize = 9;
    const MAX_K: usize = 10;
    const MAX_N: usize = 19;
    let entries = |len: usize| prop::collection::vec(-10.0f64..10.0, len);
    (
        1usize..MAX_M + 1,
        1usize..MAX_K + 1,
        1usize..MAX_N + 1,
        entries(MAX_M * MAX_K),
        entries(MAX_K * MAX_N),
        prop::collection::vec(-3.0f64..3.0, MAX_M),
    )
        .prop_map(|(m, k, n, da, db, xt)| {
            let sprinkle = |mut data: Vec<f64>| {
                for (i, v) in data.iter_mut().enumerate() {
                    if i % 4 == 0 {
                        *v = 0.0;
                    }
                }
                data
            };
            (
                Mat::from_vec(m, k, sprinkle(da[..m * k].to_vec())),
                Mat::from_vec(k, n, sprinkle(db[..k * n].to_vec())),
                xt[..m].to_vec(),
            )
        })
}

proptest! {
    #[test]
    fn lu_solution_satisfies_system(a in well_conditioned(6), b in rhs(6)) {
        let lu = Lu::new(a.clone()).expect("well-conditioned matrix must factor");
        let x = lu.solve(&b).unwrap();
        let ax = a.matvec(&x);
        for (axi, bi) in ax.iter().zip(&b) {
            prop_assert!((axi - bi).abs() < 1e-8, "residual too large: {axi} vs {bi}");
        }
    }

    #[test]
    fn lu_inverse_roundtrip(a in well_conditioned(5)) {
        let inv = Lu::new(a.clone()).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv);
        let err = (&prod - &Mat::identity(5)).max_abs();
        prop_assert!(err < 1e-8, "A·A⁻¹ deviates from I by {err}");
    }

    #[test]
    fn det_of_product_is_product_of_dets(
        a in well_conditioned(4),
        b in well_conditioned(4),
    ) {
        let dab = Lu::new(a.matmul(&b)).unwrap().det();
        let da = Lu::new(a).unwrap().det();
        let db = Lu::new(b).unwrap().det();
        let rel = (dab - da * db).abs() / (da * db).abs().max(1.0);
        prop_assert!(rel < 1e-8, "det(AB) != det(A)det(B): {dab} vs {}", da * db);
    }

    #[test]
    fn cholesky_agrees_with_lu_on_spd(base in well_conditioned(5), b in rhs(5)) {
        // BᵀB + I is SPD.
        let mut a = base.transpose().matmul(&base);
        for i in 0..5 {
            a[(i, i)] += 1.0;
        }
        let x_ch = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        let x_lu = Lu::new(a).unwrap().solve(&b).unwrap();
        for (c, l) in x_ch.iter().zip(&x_lu) {
            prop_assert!((c - l).abs() < 1e-7);
        }
    }

    #[test]
    fn transpose_is_involution(data in prop::collection::vec(-5.0f64..5.0, 12)) {
        let m = Mat::from_vec(3, 4, data);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_is_associative(
        a in well_conditioned(3),
        b in well_conditioned(3),
        c in well_conditioned(3),
    ) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!((&left - &right).max_abs() < 1e-9);
    }

    #[test]
    fn complex_lu_solves_shifted_systems(
        a in well_conditioned(4),
        b in rhs(4),
        omega in 0.1f64..10.0,
    ) {
        // Factor A + jω·I, a shape that mirrors G + jωC in AC analysis.
        let n = 4;
        let mut cm = CMat::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                cm[(i, j)] = Complex::new(a[(i, j)], if i == j { omega } else { 0.0 });
            }
        }
        let bc: Vec<Complex> = b.iter().map(|&v| Complex::from_real(v)).collect();
        let x = CLu::new(cm.clone()).unwrap().solve(&bc).unwrap();
        let ax = cm.matvec(&x);
        for (axi, bi) in ax.iter().zip(&bc) {
            prop_assert!((*axi - *bi).abs() < 1e-8);
        }
    }

    /// The `_into` kernels (and the `Mat` methods now delegating to
    /// them) must be bitwise identical to the seed implementations —
    /// the determinism contract of the workspace-reuse layer.
    #[test]
    fn kernels_bitwise_match_seed_implementations(
        a in any_mat(5, 7),
        b in any_mat(7, 4),
        x in prop::collection::vec(-3.0f64..3.0, 7),
        xt in prop::collection::vec(-3.0f64..3.0, 5),
    ) {
        prop_assert_eq!(
            bits(a.matmul(&b).as_slice()),
            bits(reference_matmul(&a, &b).as_slice())
        );
        prop_assert_eq!(bits(&a.matvec(&x)), bits(&reference_matvec(&a, &x)));
        prop_assert_eq!(
            bits(&a.matvec_transposed(&xt)),
            bits(&reference_matvec_transposed(&a, &xt))
        );

        // Dirty, reused buffers must not leak into results.
        let mut out = Mat::from_rows(&[&[9.9; 3]]);
        maopt_linalg::kernels::matmul_into(&a, &b, &mut out);
        prop_assert_eq!(bits(out.as_slice()), bits(reference_matmul(&a, &b).as_slice()));
        let mut v = vec![4.2; 11];
        maopt_linalg::kernels::matvec_into(&a, &x, &mut v);
        prop_assert_eq!(bits(&v), bits(&reference_matvec(&a, &x)));
        let mut vt = vec![-1.0; 2];
        maopt_linalg::kernels::matvec_transposed_into(&a, &xt, &mut vt);
        prop_assert_eq!(bits(&vt), bits(&reference_matvec_transposed(&a, &xt)));
    }

    /// The register-tiled kernels must stay bitwise identical to the
    /// seed loops on ragged shapes — dimensions straddling the 4-row /
    /// 8-column tile boundaries, including exact multiples and the
    /// degenerate 1-sized edges where partial tiles do all the work.
    #[test]
    fn tiled_kernels_bitwise_match_seed_on_ragged_shapes(case in ragged_case()) {
        let (a, b, xt) = case;
        let mut out = Mat::zeros(0, 0);
        maopt_linalg::kernels::matmul_into(&a, &b, &mut out);
        prop_assert_eq!(
            bits(out.as_slice()),
            bits(reference_matmul(&a, &b).as_slice())
        );
        let mut vt = Vec::new();
        maopt_linalg::kernels::matvec_transposed_into(&a, &xt, &mut vt);
        prop_assert_eq!(bits(&vt), bits(&reference_matvec_transposed(&a, &xt)));
    }

    /// `dot` must fold exactly like `Iterator::sum` despite unrolling.
    #[test]
    fn dot_matches_iterator_sum(
        pairs in prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 0..40),
    ) {
        let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let reference: f64 = a.iter().zip(&b).map(|(p, q)| p * q).sum();
        prop_assert_eq!(
            maopt_linalg::kernels::dot(&a, &b).to_bits(),
            reference.to_bits()
        );
    }

    /// `resize_reset`/`copy_from` leave the matrix in the same state as
    /// a fresh construction.
    #[test]
    fn buffer_reuse_matches_fresh_construction(a in any_mat(4, 6), b in any_mat(2, 3)) {
        let mut m = a.clone();
        m.resize_reset(3, 5);
        prop_assert_eq!(&m, &Mat::zeros(3, 5));
        m.copy_from(&b);
        prop_assert_eq!(&m, &b);
    }

    #[test]
    fn complex_field_axioms(re1 in -5.0f64..5.0, im1 in -5.0f64..5.0,
                            re2 in -5.0f64..5.0, im2 in -5.0f64..5.0) {
        let a = Complex::new(re1, im1);
        let b = Complex::new(re2, im2);
        // Commutativity
        prop_assert!((a * b - b * a).abs() < 1e-12);
        prop_assert!((a + b - (b + a)).abs() < 1e-12);
        // |ab| = |a||b|
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-9);
        // Conjugate distributes over multiplication
        prop_assert!(((a * b).conj() - a.conj() * b.conj()).abs() < 1e-9);
    }
}
