//! Bayesian-optimization baseline for the MA-Opt comparison.
//!
//! The paper compares against BO in the style of Snoek et al. (NIPS 2012):
//! a Gaussian-process surrogate of the scalar figure of merit with an
//! expected-improvement acquisition. This crate implements that from
//! scratch on top of [`maopt_linalg`]:
//!
//! * [`GaussianProcess`] — RBF-kernel GP regression with Cholesky solves and
//!   a small marginal-likelihood grid search over the length-scale,
//! * [`BoOptimizer`] — the optimization loop, implementing
//!   [`maopt_core::runner::Optimizer`] so the experiment runner can compare
//!   it head-to-head with the RL-inspired methods.
//!
//! The paper's observation about BO — `O(N³)` training cost and poor
//! feasibility within 200 simulations on high-dimensional sizing problems —
//! falls out of exactly this construction.
//!
//! # Example
//!
//! ```
//! use maopt_bo::BoOptimizer;
//! use maopt_core::problems::Sphere;
//! use maopt_core::runner::{sample_initial_set, Optimizer};
//!
//! let problem = Sphere::new(3);
//! let init = sample_initial_set(&problem, 15, 1);
//! let bo = BoOptimizer::new();
//! let result = bo.optimize(&problem, &init, 10, 1);
//! assert_eq!(result.trace.num_sims(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gp;

pub use gp::GaussianProcess;

use std::time::Instant;

use maopt_exec::EvalEngine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use maopt_core::runner::Optimizer;
use maopt_core::trace::{SimKind, Trace};
use maopt_core::{EngineProblem, FomConfig, Population, RunResult, RunTimings, SizingProblem};

/// Expected-improvement Bayesian optimization over the FoM.
#[derive(Debug, Clone)]
pub struct BoOptimizer {
    /// Random candidates scored by the acquisition per iteration.
    pub n_candidates: usize,
    /// Exploration jitter ξ in the EI formula.
    pub xi: f64,
    /// FoM weights (should match the RL methods for fair comparison).
    pub fom: FomConfig,
}

impl Default for BoOptimizer {
    fn default() -> Self {
        BoOptimizer {
            n_candidates: 2000,
            xi: 0.01,
            fom: FomConfig::default(),
        }
    }
}

impl BoOptimizer {
    /// Creates the default configuration.
    pub fn new() -> Self {
        BoOptimizer::default()
    }
}

/// Standard normal PDF.
fn phi(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF via `erf` series (Abramowitz–Stegun 7.1.26, |ε|<1.5e-7).
fn big_phi(z: f64) -> f64 {
    let x = z / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.3275911 * x.abs());
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    let erf = if x >= 0.0 { y } else { -y };
    0.5 * (1.0 + erf)
}

/// Expected improvement for minimization.
fn expected_improvement(mean: f64, var: f64, best: f64, xi: f64) -> f64 {
    let sigma = var.max(1e-18).sqrt();
    let improve = best - mean - xi;
    let z = improve / sigma;
    (improve * big_phi(z) + sigma * phi(z)).max(0.0)
}

impl Optimizer for BoOptimizer {
    fn name(&self) -> String {
        "BO".into()
    }

    fn optimize(
        &self,
        problem: &dyn SizingProblem,
        init: &[(Vec<f64>, Vec<f64>)],
        budget: usize,
        seed: u64,
    ) -> RunResult {
        self.optimize_with(problem, init, budget, seed, &EvalEngine::serial())
    }

    fn optimize_with(
        &self,
        problem: &dyn SizingProblem,
        init: &[(Vec<f64>, Vec<f64>)],
        budget: usize,
        seed: u64,
        engine: &EvalEngine,
    ) -> RunResult {
        let t_start = Instant::now();
        let mut timings = RunTimings::default();
        let specs = problem.specs().to_vec();
        let d = problem.dim();
        let mut rng = StdRng::seed_from_u64(seed);
        let sim_target = EngineProblem(problem);

        let mut pop = Population::new();
        let mut trace = Trace::new();
        for (x, metrics) in init {
            let idx = pop.push(x.clone(), metrics.clone(), &specs, self.fom);
            trace.record_init(pop.fom(idx), pop.feasible(idx), pop.metrics(idx)[0]);
        }

        for _ in 0..budget {
            // Fit the GP to (designs, FoM) — the O(N³) step the paper
            // calls out.
            let t0 = Instant::now();
            let xs: Vec<Vec<f64>> = (0..pop.len()).map(|i| pop.design(i).to_vec()).collect();
            let ys: Vec<f64> = pop.foms().to_vec();
            let gp = GaussianProcess::fit(xs, ys);
            let best = pop.foms().iter().copied().fold(f64::INFINITY, f64::min);

            // Maximize EI over random candidates. All candidates come from
            // one serial RNG stream; the independent per-candidate EI
            // scores are computed on the engine's pool and reduced with a
            // first-index-wins scan, so the chosen candidate is identical
            // for any worker count.
            let candidates: Vec<Vec<f64>> = (0..self.n_candidates)
                .map(|_| (0..d).map(|_| rng.random_range(0.0..1.0)).collect())
                .collect();
            let eis: Vec<f64> = {
                let _span = engine.telemetry().span("bo_acquisition");
                engine.map((0..candidates.len()).collect(), |_, k: usize| {
                    let (mean, var) = gp.predict(&candidates[k]);
                    expected_improvement(mean, var, best, self.xi)
                })
            };
            let mut best_k = 0;
            for (k, &ei) in eis.iter().enumerate() {
                if ei > eis[best_k] {
                    best_k = k;
                }
            }
            let cand = candidates
                .into_iter()
                .nth(best_k)
                .expect("candidate set is non-empty");
            timings.training += t0.elapsed();

            let t0 = Instant::now();
            let metrics = {
                let _span = engine.telemetry().span("simulation");
                engine.evaluate_one(&sim_target, &cand)
            };
            timings.simulation += t0.elapsed();

            let idx = pop.push(cand, metrics, &specs, self.fom);
            trace.record(
                SimKind::Baseline,
                pop.fom(idx),
                pop.feasible(idx),
                pop.metrics(idx)[0],
            );
        }

        timings.total = t_start.elapsed();
        RunResult {
            label: self.name(),
            trace,
            population: pop,
            timings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maopt_core::problems::{ConstrainedToy, Sphere};
    use maopt_core::runner::sample_initial_set;

    #[test]
    fn normal_functions_sane() {
        assert!((big_phi(0.0) - 0.5).abs() < 1e-7);
        assert!(big_phi(5.0) > 0.9999);
        assert!(big_phi(-5.0) < 1e-4);
        assert!((phi(0.0) - 0.39894).abs() < 1e-4);
    }

    #[test]
    fn ei_prefers_low_mean_and_high_variance() {
        let best = 1.0;
        let low_mean = expected_improvement(0.5, 0.01, best, 0.0);
        let high_mean = expected_improvement(2.0, 0.01, best, 0.0);
        assert!(low_mean > high_mean);
        let low_var = expected_improvement(1.5, 1e-6, best, 0.0);
        let high_var = expected_improvement(1.5, 1.0, best, 0.0);
        assert!(high_var > low_var, "uncertainty should add EI");
        assert!(expected_improvement(5.0, 1e-12, best, 0.0) >= 0.0);
    }

    #[test]
    fn bo_improves_sphere_over_initial_set() {
        let problem = Sphere::new(3);
        let init = sample_initial_set(&problem, 15, 3);
        let bo = BoOptimizer {
            n_candidates: 500,
            ..BoOptimizer::new()
        };
        let result = bo.optimize(&problem, &init, 20, 3);
        assert!(result.best_fom() < result.trace.init_best_fom());
        assert_eq!(result.trace.num_sims(), 20);
    }

    #[test]
    fn bo_runs_on_constrained_problem() {
        let problem = ConstrainedToy::new(3);
        let init = sample_initial_set(&problem, 20, 4);
        let bo = BoOptimizer {
            n_candidates: 300,
            ..BoOptimizer::new()
        };
        let result = bo.optimize(&problem, &init, 10, 4);
        assert_eq!(result.trace.num_sims(), 10);
        assert!(result.best_fom().is_finite());
    }

    #[test]
    fn deterministic_given_seed() {
        let problem = Sphere::new(2);
        let init = sample_initial_set(&problem, 10, 5);
        let bo = BoOptimizer {
            n_candidates: 200,
            ..BoOptimizer::new()
        };
        let a = bo.optimize(&problem, &init, 5, 9);
        let b = bo.optimize(&problem, &init, 5, 9);
        assert_eq!(a.trace.best_fom_series(5), b.trace.best_fom_series(5));
    }

    #[test]
    fn parallel_acquisition_matches_serial_bitwise() {
        let problem = Sphere::new(3);
        let init = sample_initial_set(&problem, 12, 6);
        let bo = BoOptimizer {
            n_candidates: 300,
            ..BoOptimizer::new()
        };
        let serial = bo.optimize_with(&problem, &init, 8, 7, &EvalEngine::serial());
        let pooled = bo.optimize_with(&problem, &init, 8, 7, &EvalEngine::new(4));
        assert_eq!(serial.best_fom(), pooled.best_fom());
        assert_eq!(
            serial.trace.best_fom_series(8),
            pooled.trace.best_fom_series(8)
        );
    }
}
