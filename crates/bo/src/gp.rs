use maopt_linalg::{Cholesky, Mat};

/// Gaussian-process regression with an isotropic RBF kernel.
///
/// The length-scale is chosen by a small grid search on the log marginal
/// likelihood; outputs are standardized internally. Fitting is `O(N³)`
/// (one Cholesky per grid point) — the cost profile the paper attributes
/// to BO.
///
/// # Example
///
/// ```
/// use maopt_bo::GaussianProcess;
///
/// let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 20.0]).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| (6.0 * x[0]).sin()).collect();
/// let gp = GaussianProcess::fit(xs, ys);
/// let (mean, var) = gp.predict(&[0.52]);
/// assert!((mean - (6.0f64 * 0.52).sin()).abs() < 0.1);
/// assert!(var >= 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    x_train: Vec<Vec<f64>>,
    alpha: Vec<f64>,
    chol: Cholesky,
    lengthscale: f64,
    y_mean: f64,
    y_std: f64,
}

/// Relative noise added to the kernel diagonal for numerical stability.
const NOISE: f64 = 1e-6;

fn rbf(a: &[f64], b: &[f64], lengthscale: f64) -> f64 {
    let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (-0.5 * d2 / (lengthscale * lengthscale)).exp()
}

fn kernel_matrix(xs: &[Vec<f64>], lengthscale: f64) -> Mat {
    let n = xs.len();
    let mut k = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let v = rbf(&xs[i], &xs[j], lengthscale);
            k[(i, j)] = v;
            k[(j, i)] = v;
        }
        k[(i, i)] += NOISE;
    }
    k
}

impl GaussianProcess {
    /// Fits the GP to standardized targets, selecting the RBF length-scale
    /// from a small grid by log marginal likelihood.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or lengths disagree.
    pub fn fit(xs: Vec<Vec<f64>>, ys: Vec<f64>) -> Self {
        assert!(!xs.is_empty(), "GP needs at least one training point");
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");

        let y_mean = maopt_linalg::stats::mean(&ys);
        let mut y_std = maopt_linalg::stats::std_dev(&ys);
        if !y_std.is_finite() || y_std < 1e-12 {
            y_std = 1.0;
        }
        let y_norm: Vec<f64> = ys.iter().map(|y| (y - y_mean) / y_std).collect();

        let n = xs.len() as f64;
        let mut best: Option<(f64, f64, Cholesky, Vec<f64>)> = None;
        for &ls in &[0.1, 0.2, 0.4, 0.8] {
            let k = kernel_matrix(&xs, ls);
            let Ok(chol) = Cholesky::new(&k) else {
                continue;
            };
            let Ok(alpha) = chol.solve(&y_norm) else {
                continue;
            };
            // log p(y|X) = −½ yᵀα − ½ log|K| − (n/2) log 2π
            let fit_term: f64 = y_norm.iter().zip(&alpha).map(|(y, a)| y * a).sum();
            let lml = -0.5 * fit_term
                - 0.5 * chol.log_det()
                - 0.5 * n * (2.0 * std::f64::consts::PI).ln();
            match &best {
                Some((blml, ..)) if *blml >= lml => {}
                _ => best = Some((lml, ls, chol, alpha)),
            }
        }
        let (_, lengthscale, chol, alpha) =
            best.expect("at least one length-scale must factor (kernel is PD)");
        GaussianProcess {
            x_train: xs,
            alpha,
            chol,
            lengthscale,
            y_mean,
            y_std,
        }
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.x_train.len()
    }

    /// `true` when the GP has no training data (cannot occur after `fit`).
    pub fn is_empty(&self) -> bool {
        self.x_train.is_empty()
    }

    /// The selected RBF length-scale.
    pub fn lengthscale(&self) -> f64 {
        self.lengthscale
    }

    /// Posterior mean and variance at a query point (in original units).
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        let k_star: Vec<f64> = self
            .x_train
            .iter()
            .map(|xt| rbf(x, xt, self.lengthscale))
            .collect();
        let mean_norm: f64 = k_star.iter().zip(&self.alpha).map(|(k, a)| k * a).sum();
        let v = self.chol.solve(&k_star).expect("factored GP solves");
        let var_norm: f64 = 1.0 + NOISE - k_star.iter().zip(&v).map(|(k, vi)| k * vi).sum::<f64>();
        (
            mean_norm * self.y_std + self.y_mean,
            (var_norm.max(0.0)) * self.y_std * self.y_std,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_1d(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect()
    }

    #[test]
    fn interpolates_training_points() {
        let xs = grid_1d(10);
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x[0] + 1.0).collect();
        let gp = GaussianProcess::fit(xs.clone(), ys.clone());
        for (x, y) in xs.iter().zip(&ys) {
            let (mean, var) = gp.predict(x);
            assert!((mean - y).abs() < 1e-2, "at {x:?}: {mean} vs {y}");
            assert!(var < 1e-2, "training-point variance should be tiny: {var}");
        }
    }

    #[test]
    fn variance_grows_away_from_data() {
        let xs = grid_1d(8);
        let ys: Vec<f64> = xs.iter().map(|x| x[0]).collect();
        let gp = GaussianProcess::fit(xs, ys);
        let (_, v_near) = gp.predict(&[0.5]);
        let (_, v_far) = gp.predict(&[3.0]);
        assert!(v_far > v_near * 10.0, "far {v_far} vs near {v_near}");
    }

    #[test]
    fn fits_smooth_nonlinearity() {
        let xs = grid_1d(25);
        let ys: Vec<f64> = xs.iter().map(|x| (4.0 * x[0]).cos()).collect();
        let gp = GaussianProcess::fit(xs, ys);
        let (mean, _) = gp.predict(&[0.33]);
        assert!((mean - (4.0f64 * 0.33).cos()).abs() < 0.05);
    }

    #[test]
    fn constant_targets_do_not_blow_up() {
        let xs = grid_1d(5);
        let ys = vec![2.5; 5];
        let gp = GaussianProcess::fit(xs, ys);
        let (mean, var) = gp.predict(&[0.5]);
        assert!((mean - 2.5).abs() < 1e-6);
        assert!(var.is_finite());
    }

    #[test]
    fn lengthscale_selected_from_grid() {
        let xs = grid_1d(20);
        // Rapidly varying target prefers a short length-scale.
        let wiggly: Vec<f64> = xs.iter().map(|x| (40.0 * x[0]).sin()).collect();
        let gp_w = GaussianProcess::fit(xs.clone(), wiggly);
        // Slowly varying target prefers a long one.
        let smooth: Vec<f64> = xs.iter().map(|x| x[0]).collect();
        let gp_s = GaussianProcess::fit(xs, smooth);
        assert!(gp_w.lengthscale() <= gp_s.lengthscale());
    }

    #[test]
    #[should_panic(expected = "at least one training point")]
    fn empty_fit_panics() {
        let _ = GaussianProcess::fit(vec![], vec![]);
    }
}
