//! Per-simulation optimization traces — the raw material for the paper's
//! Fig. 5 (average best FoM versus simulation count).

/// What produced a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimKind {
    /// Part of the initial random sample set.
    Init,
    /// Proposed by an actor (Algorithm 1).
    Actor,
    /// Proposed by the near-sampling method (Algorithm 2).
    NearSample,
    /// Proposed by a baseline optimizer (e.g. BO acquisition).
    Baseline,
}

/// One simulated design's bookkeeping.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// 1-based index among *optimization* simulations (0 for init samples).
    pub sim: usize,
    /// FoM of this design.
    pub fom: f64,
    /// Best FoM seen so far (including init samples).
    pub best_fom: f64,
    /// Whether this design met every spec.
    pub feasible: bool,
    /// Target metric value of this design.
    pub target: f64,
    /// Provenance.
    pub kind: SimKind,
}

/// A whole run's trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
    best_so_far: f64,
    init_best: f64,
    sims: usize,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace {
            entries: Vec::new(),
            best_so_far: f64::INFINITY,
            init_best: f64::INFINITY,
            sims: 0,
        }
    }

    /// Records an initial sample (not counted against the simulation budget).
    pub fn record_init(&mut self, fom: f64, feasible: bool, target: f64) {
        self.best_so_far = self.best_so_far.min(fom);
        self.init_best = self.best_so_far;
        self.entries.push(TraceEntry {
            sim: 0,
            fom,
            best_fom: self.best_so_far,
            feasible,
            target,
            kind: SimKind::Init,
        });
    }

    /// Records an optimization simulation.
    pub fn record(&mut self, kind: SimKind, fom: f64, feasible: bool, target: f64) {
        self.sims += 1;
        self.best_so_far = self.best_so_far.min(fom);
        self.entries.push(TraceEntry {
            sim: self.sims,
            fom,
            best_fom: self.best_so_far,
            feasible,
            target,
            kind,
        });
    }

    /// All entries in simulation order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of optimization simulations recorded.
    pub fn num_sims(&self) -> usize {
        self.sims
    }

    /// Best FoM over everything recorded.
    pub fn best_fom(&self) -> f64 {
        self.best_so_far
    }

    /// Best FoM among the initial samples only.
    pub fn init_best_fom(&self) -> f64 {
        self.init_best
    }

    /// Best-so-far FoM at each optimization-simulation count `1..=budget`
    /// (Fig. 5's y-values for one run). Counts beyond the recorded sims hold
    /// the final value; an empty run repeats the init best.
    pub fn best_fom_series(&self, budget: usize) -> Vec<f64> {
        let mut series = Vec::with_capacity(budget);
        let mut current = self.init_best;
        let mut iter = self.entries.iter().filter(|e| e.kind != SimKind::Init);
        let mut next = iter.next();
        for sim in 1..=budget {
            while let Some(e) = next {
                if e.sim <= sim {
                    current = e.best_fom;
                    next = iter.next();
                } else {
                    break;
                }
            }
            series.push(current);
        }
        series
    }

    /// Count of near-sampling simulations (used by runtime ablations).
    pub fn near_sample_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.kind == SimKind::NearSample)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_fom_tracks_minimum() {
        let mut t = Trace::new();
        t.record_init(5.0, false, 1.0);
        t.record_init(3.0, false, 1.0);
        t.record(SimKind::Actor, 4.0, false, 1.0);
        t.record(SimKind::Actor, 2.0, true, 0.5);
        t.record(SimKind::NearSample, 2.5, true, 0.6);
        assert_eq!(t.best_fom(), 2.0);
        assert_eq!(t.init_best_fom(), 3.0);
        assert_eq!(t.num_sims(), 3);
        assert_eq!(t.near_sample_count(), 1);
    }

    #[test]
    fn series_holds_values_between_updates() {
        let mut t = Trace::new();
        t.record_init(10.0, false, 1.0);
        t.record(SimKind::Actor, 8.0, false, 1.0);
        t.record(SimKind::Actor, 9.0, false, 1.0);
        t.record(SimKind::Actor, 4.0, false, 1.0);
        let s = t.best_fom_series(5);
        assert_eq!(s, vec![8.0, 8.0, 4.0, 4.0, 4.0]);
    }

    #[test]
    fn empty_run_series_repeats_init_best() {
        let mut t = Trace::new();
        t.record_init(7.0, false, 1.0);
        assert_eq!(t.best_fom_series(3), vec![7.0, 7.0, 7.0]);
    }

    #[test]
    fn entries_keep_kind() {
        let mut t = Trace::new();
        t.record_init(1.0, true, 1.0);
        t.record(SimKind::Baseline, 0.5, true, 0.5);
        assert_eq!(t.entries()[0].kind, SimKind::Init);
        assert_eq!(t.entries()[1].kind, SimKind::Baseline);
        assert_eq!(t.entries()[1].sim, 1);
    }
}
