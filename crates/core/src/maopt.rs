//! The overall MA-Opt framework (Algorithms 1 and 3 of the paper), covering
//! all four experimental variants:
//!
//! | Variant  | Actors | Elite set  | Near-sampling |
//! |----------|--------|------------|---------------|
//! | DNN-Opt  | 1      | own        | no            |
//! | MA-Opt¹  | 3      | individual | no            |
//! | MA-Opt²  | 3      | shared     | no            |
//! | MA-Opt   | 3      | shared     | yes           |
//!
//! Actor training and proposal simulations run in parallel threads
//! (the paper uses multiprocessing over `N_act` CPU cores).

use std::time::{Duration, Instant};

use maopt_ckpt::RunSnapshot;
use maopt_exec::{quantize, CounterSnapshot, EvalEngine, OpState};
use maopt_obs::json::Json;
use maopt_obs::{
    ActorRound, EliteStats, Journal, Manifest, NearSamplingRecord, Record, RoundRecord, RunEnd,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::actor::Actor;
use crate::checkpoint::RunCheckpointer;
use crate::critic::{CriticEnsemble, PredictScratch, Surrogate};
use crate::elite::EliteSet;
use crate::fom::FomConfig;
use crate::near_sampling::NearSampler;
use crate::opstore::OpStore;
use crate::population::Population;
use crate::problem::{EngineProblem, SizingProblem};
use crate::trace::{SimKind, Trace};

/// How many recent simulated designs enter the critic-fidelity Spearman
/// correlation at near-sampling rounds.
const FIDELITY_WINDOW: usize = 64;

/// Full configuration of a MA-Opt run.
#[derive(Debug, Clone)]
pub struct MaOptConfig {
    /// Display label, e.g. `"MA-Opt"`.
    pub label: String,
    /// Number of actors `N_act`.
    pub n_actors: usize,
    /// Shared (`true`) vs individual (`false`) elite solution sets.
    pub shared_elite: bool,
    /// Whether the near-sampling method is enabled.
    pub near_sampling: bool,
    /// Elite set capacity `N_es`.
    pub n_es: usize,
    /// Pseudo-sample batch size `N_b`.
    pub batch_size: usize,
    /// Critic training steps per iteration.
    pub critic_steps: usize,
    /// Actor training steps per iteration.
    pub actor_steps: usize,
    /// Hidden layer widths (paper: two layers of 100).
    pub hidden: Vec<usize>,
    /// Critic learning rate.
    pub critic_lr: f64,
    /// Actor learning rate.
    pub actor_lr: f64,
    /// Maximum |Δx| per coordinate (tanh output scaling), normalized units.
    pub action_scale: f64,
    /// Near-sampling period `T_NS`.
    pub t_ns: usize,
    /// Near-sampling candidate count `N_samples`.
    pub n_samples: usize,
    /// Near-sampling radius `δ`, normalized units.
    pub delta: f64,
    /// Boundary-violation weight `λ` (Eq. 5).
    pub lambda: f64,
    /// Number of critics in the surrogate ensemble. The paper adopts 1
    /// (§II: multiple critics "improve optimization, but consume more
    /// memory"); values > 1 enable the evaluated-but-rejected variant.
    pub n_critics: usize,
    /// FoM weights.
    pub fom: FomConfig,
    /// RNG seed.
    pub seed: u64,
}

impl MaOptConfig {
    fn base(label: &str, seed: u64) -> Self {
        MaOptConfig {
            label: label.into(),
            n_actors: 3,
            shared_elite: true,
            near_sampling: true,
            n_es: 10,
            batch_size: 32,
            critic_steps: 50,
            actor_steps: 30,
            hidden: vec![100, 100],
            critic_lr: 3e-3,
            actor_lr: 3e-3,
            action_scale: 0.3,
            t_ns: 5,
            n_samples: 2000,
            delta: 0.05,
            lambda: 10.0,
            n_critics: 1,
            fom: FomConfig::default(),
            seed,
        }
    }

    /// The multi-critic variant the paper evaluated and rejected on memory
    /// grounds: MA-Opt with an `n`-member critic ensemble.
    pub fn ma_opt_multi_critic(seed: u64, n_critics: usize) -> Self {
        MaOptConfig {
            label: format!("MA-Opt(c{n_critics})"),
            n_critics,
            ..Self::base("MA-Opt", seed)
        }
    }

    /// The DNN-Opt baseline: one actor, own elite set, no near-sampling.
    pub fn dnn_opt(seed: u64) -> Self {
        MaOptConfig {
            n_actors: 1,
            shared_elite: false,
            near_sampling: false,
            ..Self::base("DNN-Opt", seed)
        }
    }

    /// MA-Opt¹: three actors with individual elite sets, no near-sampling.
    pub fn ma_opt1(seed: u64) -> Self {
        MaOptConfig {
            shared_elite: false,
            near_sampling: false,
            ..Self::base("MA-Opt1", seed)
        }
    }

    /// MA-Opt²: three actors with a shared elite set, no near-sampling.
    pub fn ma_opt2(seed: u64) -> Self {
        MaOptConfig {
            near_sampling: false,
            ..Self::base("MA-Opt2", seed)
        }
    }

    /// Full MA-Opt: three actors, shared elite set, near-sampling.
    pub fn ma_opt(seed: u64) -> Self {
        Self::base("MA-Opt", seed)
    }
}

/// Timing breakdown of a run, used by the runtime comparisons (§III-C).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunTimings {
    /// Wall-clock total.
    pub total: Duration,
    /// Time spent training networks.
    pub training: Duration,
    /// Time spent in circuit simulations.
    pub simulation: Duration,
    /// Time spent in near-sampling proposal generation.
    pub near_sampling: Duration,
}

/// Outcome of one optimization run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Method label.
    pub label: String,
    /// Per-simulation trace.
    pub trace: Trace,
    /// Every simulated design (init + optimization).
    pub population: Population,
    /// Timing breakdown.
    pub timings: RunTimings,
}

impl RunResult {
    /// Best FoM over the whole run.
    pub fn best_fom(&self) -> f64 {
        self.trace.best_fom()
    }

    /// Whether any simulated design met every spec.
    pub fn success(&self) -> bool {
        self.population.best_feasible().is_some()
    }

    /// Target metric of the best feasible design, if any.
    pub fn best_feasible_target(&self) -> Option<f64> {
        self.population
            .best_feasible()
            .map(|i| self.population.metrics(i)[0])
    }

    /// Normalized design vector of the best feasible design, if any.
    pub fn best_feasible_design(&self) -> Option<&[f64]> {
        self.population
            .best_feasible()
            .map(|i| self.population.design(i))
    }
}

/// The optimizer (Algorithms 1 & 3).
#[derive(Debug, Clone)]
pub struct MaOpt {
    config: MaOptConfig,
}

impl MaOpt {
    /// Creates an optimizer from a configuration.
    ///
    /// # Panics
    ///
    /// Panics on a zero actor count or elite capacity.
    pub fn new(config: MaOptConfig) -> Self {
        assert!(config.n_actors > 0, "need at least one actor");
        assert!(config.n_es > 0, "elite capacity must be positive");
        assert!(config.n_critics > 0, "need at least one critic");
        MaOpt { config }
    }

    /// The configuration.
    pub fn config(&self) -> &MaOptConfig {
        &self.config
    }

    /// Runs the optimization: `init` is the pre-simulated initial set
    /// `(x, f(x))` (shared across methods in the paper's protocol), `budget`
    /// the number of additional simulations allowed.
    ///
    /// # Panics
    ///
    /// Panics if `init` is empty.
    pub fn run(
        &self,
        problem: &dyn SizingProblem,
        init: Vec<(Vec<f64>, Vec<f64>)>,
        budget: usize,
    ) -> RunResult {
        self.run_with(problem, init, budget, &EvalEngine::default())
    }

    /// [`MaOpt::run`] with actor training, proposal simulations and
    /// near-sampling ranking dispatched through the given [`EvalEngine`].
    ///
    /// Every per-actor computation is seeded independently of scheduling
    /// (`iter_seed ^ (i << 17)`), so the result is bitwise identical for
    /// any engine worker count.
    ///
    /// # Panics
    ///
    /// Panics if `init` is empty.
    pub fn run_with(
        &self,
        problem: &dyn SizingProblem,
        init: Vec<(Vec<f64>, Vec<f64>)>,
        budget: usize,
        engine: &EvalEngine,
    ) -> RunResult {
        self.run_observed(problem, init, budget, engine, &Journal::disabled())
    }

    /// [`MaOpt::run_with`] that additionally streams optimizer internals —
    /// a run manifest, per-round critic/actor/elite records, near-sampling
    /// decisions and engine counter deltas — into the given run
    /// [`Journal`].
    ///
    /// With a disabled journal this *is* `run_with`: every journal-only
    /// computation (loss traces, elite geometry, Spearman fidelity) is
    /// gated on [`Journal::enabled`], none of it consumes RNG draws or
    /// perturbs optimization arithmetic, so results are bitwise identical
    /// whether or not journaling is on.
    ///
    /// # Panics
    ///
    /// Panics if `init` is empty.
    pub fn run_observed(
        &self,
        problem: &dyn SizingProblem,
        init: Vec<(Vec<f64>, Vec<f64>)>,
        budget: usize,
        engine: &EvalEngine,
        journal: &Journal,
    ) -> RunResult {
        self.run_resumable(problem, init, budget, engine, journal, None)
    }

    /// [`MaOpt::run_observed`] with crash-safe checkpointing: with a
    /// [`RunCheckpointer`], the full optimizer state — RNG stream
    /// position, simulated population with trace provenance, per-actor
    /// and critic weights plus Adam moments, the fitted output scaler,
    /// elite bookkeeping, the simulation cache, the operating-point store
    /// (so warm runs resume warm) and the journal lines written so far —
    /// is atomically persisted after every completed round. With resume enabled, a run killed at any instant continues
    /// from its last durable round and produces a journal byte-identical
    /// to an uninterrupted run on every non-timing field.
    ///
    /// # Panics
    ///
    /// Panics if `init` is empty, if a snapshot cannot be persisted or a
    /// corrupt one is resumed from, or if a resumed snapshot disagrees
    /// with this configuration (label, seed, budget, problem, actor or
    /// critic count, or the initial sample set).
    pub fn run_resumable(
        &self,
        problem: &dyn SizingProblem,
        init: Vec<(Vec<f64>, Vec<f64>)>,
        budget: usize,
        engine: &EvalEngine,
        journal: &Journal,
        ckpt: Option<&RunCheckpointer>,
    ) -> RunResult {
        assert!(
            !init.is_empty(),
            "MA-Opt needs a non-empty initial sample set"
        );
        let sim_target = EngineProblem(problem);
        let cfg = &self.config;
        let t_start = Instant::now();
        let mut timings = RunTimings::default();
        let specs = problem.specs().to_vec();
        let d = problem.dim();
        let m1 = problem.num_metrics();
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let init_len = init.len();
        let mut pop = Population::new();
        let mut trace = Trace::new();

        // Networks (freshly constructed; overwritten below on resume).
        let mut critic = CriticEnsemble::new(
            cfg.n_critics,
            d,
            m1,
            &cfg.hidden,
            cfg.critic_lr,
            cfg.seed ^ 0xC717,
        );
        let mut actors: Vec<Actor> = (0..cfg.n_actors)
            .map(|i| {
                Actor::new(
                    d,
                    &cfg.hidden,
                    cfg.action_scale,
                    cfg.actor_lr,
                    cfg.seed ^ (i as u64 + 1),
                )
            })
            .collect();

        // Individual-elite bookkeeping: which population indices each actor
        // has "seen" (init set + its own simulations).
        let mut visible: Vec<Vec<usize>> =
            vec![(0..init_len).collect(); if cfg.shared_elite { 0 } else { cfg.n_actors }];

        let mut sims_used = 0usize;
        let mut t = 0usize;
        let mut critic_ready = false;
        // Journal-only state: engine counters at run start and the previous
        // round's representative elite designs (for the refresh rate).
        let run_counters = engine.telemetry().snapshot();
        let mut prev_elite: Vec<Vec<f64>> = Vec::new();

        // Operating-point store for cross-design Newton warm-starting.
        // Lives on this thread; seeds are selected here and travel inside
        // each evaluation request, so worker scheduling cannot influence
        // which seed a design sees (journal byte-identity at any --jobs).
        let mut op_store = OpStore::new();

        // Checkpoint bookkeeping: every journal line written so far (the
        // snapshot carries them; resume replays them verbatim so the
        // resumed journal is byte-identical), plus counter/timing bases
        // accumulated by the run's previous life.
        let mut journal_lines: Vec<String> = Vec::new();
        let mut counters_base = CounterSnapshot::default();
        let mut total_base = Duration::ZERO;

        if let Some(snap) = ckpt.and_then(|c| c.load_for_resume()) {
            assert_eq!(snap.label, cfg.label, "checkpoint label mismatch");
            assert_eq!(snap.problem, problem.name(), "checkpoint problem mismatch");
            assert_eq!(snap.seed, cfg.seed, "checkpoint seed mismatch");
            assert_eq!(snap.budget as usize, budget, "checkpoint budget mismatch");
            assert_eq!(
                snap.init_len as usize, init_len,
                "checkpoint initial-set size mismatch"
            );
            assert_eq!(
                snap.sim_kinds.len(),
                snap.population.len() - init_len,
                "checkpoint provenance does not cover its population"
            );
            for (i, (x, _)) in init.iter().enumerate() {
                assert_eq!(
                    &snap.population[i].0, x,
                    "checkpoint initial design {i} disagrees with the provided initial set"
                );
            }
            // Replay the population through the normal push path so FoM
            // and feasibility are recomputed exactly as during the run.
            for (i, (x, metrics)) in snap.population.iter().enumerate() {
                let idx = pop.push(x.clone(), metrics.clone(), &specs, cfg.fom);
                if i < init_len {
                    trace.record_init(pop.fom(idx), pop.feasible(idx), pop.metrics(idx)[0]);
                } else {
                    let kind = match snap.sim_kinds[i - init_len] {
                        1 => SimKind::Actor,
                        2 => SimKind::NearSample,
                        k => panic!("checkpoint records unknown simulation kind {k}"),
                    };
                    trace.record(kind, pop.fom(idx), pop.feasible(idx), pop.metrics(idx)[0]);
                }
            }
            rng = StdRng::from_state(snap.rng);
            assert_eq!(
                snap.actors.len(),
                actors.len(),
                "checkpointed actor count does not match configuration"
            );
            for (actor, state) in actors.iter_mut().zip(&snap.actors) {
                actor.ckpt_restore(state);
            }
            critic.ckpt_restore(&snap.critics);
            assert_eq!(
                snap.visible.len(),
                visible.len(),
                "checkpointed elite visibility does not match configuration"
            );
            visible = snap
                .visible
                .iter()
                .map(|v| v.iter().map(|&i| i as usize).collect())
                .collect();
            t = snap.round as usize;
            sims_used = snap.sims_used as usize;
            critic_ready = snap.critic_ready;
            if let Some(cache) = engine.cache() {
                cache.restore(snap.cache);
            }
            counters_base = CounterSnapshot {
                sims: snap.counters[0],
                cache_hits: snap.counters[1],
                cache_misses: snap.counters[2],
                retries: snap.counters[3],
                panics: snap.counters[4],
                timeouts: snap.counters[5],
                non_finite: snap.counters[6],
                failures: snap.counters[7],
            };
            total_base = Duration::from_secs_f64(snap.timings[0]);
            timings.training = Duration::from_secs_f64(snap.timings[1]);
            timings.simulation = Duration::from_secs_f64(snap.timings[2]);
            timings.near_sampling = Duration::from_secs_f64(snap.timings[3]);
            prev_elite = snap.prev_elite;
            op_store = OpStore::restore(op_store.capacity(), snap.op_store);
            for line in &snap.journal_lines {
                journal.write_raw(line);
            }
            journal.flush();
            journal_lines = snap.journal_lines;
        } else {
            for (x, metrics) in init {
                let idx = pop.push(x, metrics, &specs, cfg.fom);
                trace.record_init(pop.fom(idx), pop.feasible(idx), pop.metrics(idx)[0]);
            }
            if journal.enabled() {
                let (version, build) = Manifest::build_info();
                emit(
                    journal,
                    &Record::Manifest(Manifest {
                        label: cfg.label.clone(),
                        problem: problem.name().to_string(),
                        dim: d,
                        num_metrics: m1,
                        seed: cfg.seed,
                        budget,
                        init_size: init_len,
                        jobs: engine.jobs(),
                        version,
                        build,
                        config: config_json(cfg),
                    }),
                    ckpt.and(Some(&mut journal_lines)),
                );
            }
        }

        while sims_used < budget {
            t += 1;
            let specs_met = pop.best_feasible().is_some();
            let do_ns =
                cfg.near_sampling && specs_met && critic_ready && t.is_multiple_of(cfg.t_ns);
            // A handful of atomic loads; cheap enough to take unconditionally.
            let round_counters = engine.telemetry().snapshot();

            if do_ns {
                // ---- Algorithm 2: near-sampling round (1 simulation). ----
                let ns = NearSampler::new(cfg.n_samples, cfg.delta);
                let best_idx = pop.best().expect("non-empty population");
                let incumbent_fom = pop.fom(best_idx);
                let x_opt = pop.design(best_idx).to_vec();
                let t0 = Instant::now();
                let (cand, predicted_fom) = {
                    let _span = engine.telemetry().span("near_sampling");
                    ns.propose_scored_with(&critic, &x_opt, &specs, cfg.fom, &mut rng, engine)
                };
                timings.near_sampling += t0.elapsed();

                let t0 = Instant::now();
                // Near-sampling candidates live within δ of the incumbent, so
                // the incumbent's stored operating point is the natural seed.
                let ns_seed = op_store.get(&x_opt).cloned();
                let (metrics, op_state) = {
                    let _span = engine.telemetry().span("simulation");
                    engine.evaluate_one_seeded(&sim_target, &cand, ns_seed.as_ref())
                };
                timings.simulation += t0.elapsed();

                if let Some(state) = op_state {
                    op_store.insert(&cand, state);
                }
                let idx = pop.push(cand, metrics, &specs, cfg.fom);
                let simulated_fom = pop.fom(idx);
                trace.record(
                    SimKind::NearSample,
                    simulated_fom,
                    pop.feasible(idx),
                    pop.metrics(idx)[0],
                );
                sims_used += 1;

                let tm = engine.telemetry();
                tm.metrics.inc("opt.ns_rounds", 1);
                if simulated_fom < incumbent_fom {
                    tm.metrics.inc("opt.ns_accepted", 1);
                }
                if journal.enabled() {
                    let (spearman, fidelity_n) = critic_fidelity(&critic, &pop, &specs, cfg.fom);
                    emit(
                        journal,
                        &Record::NearSampling(NearSamplingRecord {
                            round: t,
                            sims_used,
                            trigger: "period".to_string(),
                            n_candidates: cfg.n_samples,
                            predicted_fom,
                            simulated_fom,
                            incumbent_fom,
                            accepted: simulated_fom < incumbent_fom,
                            spearman,
                            fidelity_n,
                            engine: tm.snapshot().since(&round_counters),
                        }),
                        ckpt.and(Some(&mut journal_lines)),
                    );
                }
            } else {
                // ---- Algorithm 1: actor-critic round (N_act simulations). ----
                let t0 = Instant::now();
                critic.refit_scaler(&pop);
                let mut critic_trace: Option<Vec<f64>> = journal.enabled().then(Vec::new);
                let critic_loss = critic.train_traced(
                    &pop,
                    cfg.critic_steps,
                    cfg.batch_size,
                    &mut rng,
                    critic_trace.as_mut(),
                );
                critic_ready = true;

                // Elite sets (shared: one; individual: per actor).
                let shared_elite = if cfg.shared_elite {
                    let mut es = EliteSet::new(cfg.n_es);
                    es.rebuild(&pop, None);
                    Some(es)
                } else {
                    None
                };
                let individual_elites: Vec<EliteSet> = if cfg.shared_elite {
                    Vec::new()
                } else {
                    visible
                        .iter()
                        .map(|vis| {
                            let mut es = EliteSet::new(cfg.n_es);
                            es.rebuild(&pop, Some(vis));
                            es
                        })
                        .collect()
                };

                let n_props = cfg.n_actors.min(budget - sims_used);
                let iter_seed: u64 = rng.random();

                // Train actors and generate proposals on the engine's pool.
                // Each lane reads shared state immutably and owns its actor
                // mutably; results come back in actor order.
                let pop_ref = &pop;
                let specs_ref = &specs;
                let critic_ref = &critic;
                let shared_elite_ref = &shared_elite;
                let individual_elites_ref = &individual_elites;
                let actor_lanes: Vec<&mut Actor> = actors.iter_mut().collect();
                // Each lane returns (candidate, actor loss, predicted FoM,
                // the parent elite design the candidate stepped from).
                let lane_results: Vec<(Vec<f64>, f64, f64, Vec<f64>)> = {
                    let _span = engine.telemetry().span("actor_training");
                    engine.map(actor_lanes, |i, actor| {
                        let elite = if cfg.shared_elite {
                            shared_elite_ref.as_ref().expect("shared elite built")
                        } else {
                            &individual_elites_ref[i]
                        };
                        let fom_cfg = cfg.fom;
                        let (lambda, steps, batch) = (cfg.lambda, cfg.actor_steps, cfg.batch_size);
                        // Each actor trains through one ensemble member
                        // (round-robin); with one critic this is the
                        // paper's configuration.
                        let mut local_critic = critic_ref.member(i).clone();
                        let mut local_rng = StdRng::seed_from_u64(iter_seed ^ (i as u64) << 17);
                        let (lb, ub) = elite.bounds();
                        let loss = actor.train(
                            &mut local_critic,
                            pop_ref,
                            specs_ref,
                            fom_cfg,
                            (&lb, &ub),
                            lambda,
                            steps,
                            batch,
                            &mut local_rng,
                        );
                        // Line 8 of Algorithm 1: among elite states, pick
                        // the one whose actor-proposed successor has the
                        // best predicted FoM; simulate that successor.
                        let (cand, pred, parent) = actor.best_elite_proposal(
                            &local_critic,
                            elite.designs(),
                            specs_ref,
                            fom_cfg,
                        );
                        (cand, loss, pred, elite.designs()[parent].clone())
                    })
                };
                timings.training += t0.elapsed();

                // Simulate the first `n_props` proposals on the pool.
                let t0 = Instant::now();
                let to_run: Vec<Vec<f64>> = lane_results[..n_props]
                    .iter()
                    .map(|(cand, _, _, _)| cand.clone())
                    .collect();
                // Seed each proposal from its parent elite design's stored
                // operating point, chosen here on the main thread. Duplicate
                // designs within the batch share the first occurrence's seed:
                // the simulation cache is first-write-wins, and identical
                // inputs must compute identical results no matter which copy
                // races into the cache first (serial/parallel byte-identity).
                let mut seeds: Vec<Option<OpState>> = Vec::with_capacity(to_run.len());
                let mut seen: Vec<(Vec<i64>, usize)> = Vec::with_capacity(to_run.len());
                for (i, cand) in to_run.iter().enumerate() {
                    let key = quantize(cand);
                    if let Some(&(_, first)) = seen.iter().find(|(k, _)| *k == key) {
                        seeds.push(seeds[first].clone());
                    } else {
                        seen.push((key, i));
                        seeds.push(op_store.get(&lane_results[i].3).cloned());
                    }
                }
                let seed_refs: Vec<Option<&OpState>> = seeds.iter().map(Option::as_ref).collect();
                let results: Vec<(Vec<f64>, Option<OpState>)> = {
                    let _span = engine.telemetry().span("simulation");
                    engine.evaluate_batch_seeded(&sim_target, &to_run, &seed_refs)
                };
                timings.simulation += t0.elapsed();

                let mut pushed = Vec::with_capacity(n_props);
                for (i, (cand, (metrics, op_state))) in to_run.into_iter().zip(results).enumerate()
                {
                    if let Some(state) = op_state {
                        op_store.insert(&cand, state);
                    }
                    let idx = pop.push(cand, metrics, &specs, cfg.fom);
                    trace.record(
                        SimKind::Actor,
                        pop.fom(idx),
                        pop.feasible(idx),
                        pop.metrics(idx)[0],
                    );
                    if !cfg.shared_elite {
                        visible[i].push(idx);
                    }
                    sims_used += 1;
                    pushed.push(idx);
                }

                let tm = engine.telemetry();
                tm.metrics.inc("opt.rounds", 1);
                tm.metrics.observe("opt.critic_loss", critic_loss);
                for (_, loss, _, _) in &lane_results {
                    tm.metrics.observe("opt.actor_loss", *loss);
                }
                if journal.enabled() {
                    // Representative elite set: the shared one, or actor 0's
                    // (exact for DNN-Opt, which has a single actor).
                    let elite_set = shared_elite
                        .as_ref()
                        .unwrap_or_else(|| &individual_elites[0]);
                    let refreshed = elite_set
                        .designs()
                        .iter()
                        .filter(|x| !prev_elite.contains(x))
                        .count();
                    prev_elite = elite_set.designs().to_vec();
                    let actors_obs = lane_results
                        .iter()
                        .enumerate()
                        .map(|(i, (_, loss, pred, _))| ActorRound {
                            id: i,
                            loss: *loss,
                            predicted_fom: *pred,
                            // Lanes beyond the budget cut never get simulated.
                            simulated_fom: pushed.get(i).map_or(f64::NAN, |&idx| pop.fom(idx)),
                            feasible: pushed.get(i).is_some_and(|&idx| pop.feasible(idx)),
                        })
                        .collect();
                    emit(
                        journal,
                        &Record::Round(RoundRecord {
                            round: t,
                            sims_used,
                            best_fom: pop.best().map(|i| pop.fom(i)).expect("non-empty"),
                            critic_loss: critic_trace.unwrap_or_default(),
                            actors: actors_obs,
                            elite: EliteStats {
                                size: elite_set.len(),
                                refreshed,
                                volume: elite_set.bbox_volume(),
                                diameter: elite_set.bbox_diameter(),
                                fom_spread: elite_set.fom_spread(),
                            },
                            engine: tm.snapshot().since(&round_counters),
                        }),
                        ckpt.and(Some(&mut journal_lines)),
                    );
                }
            }

            engine
                .telemetry()
                .metrics
                .set_gauge("opt.best_fom", trace.best_fom());

            if let Some(c) = ckpt {
                let counters =
                    counters_base.plus(&engine.telemetry().snapshot().since(&run_counters));
                let snap = RunSnapshot {
                    label: cfg.label.clone(),
                    problem: problem.name().to_string(),
                    seed: cfg.seed,
                    budget: budget as u64,
                    init_len: init_len as u64,
                    round: t as u64,
                    sims_used: sims_used as u64,
                    critic_ready,
                    rng: rng.state(),
                    population: (0..pop.len())
                        .map(|i| (pop.design(i).to_vec(), pop.metrics(i).to_vec()))
                        .collect(),
                    sim_kinds: trace.entries()[init_len..]
                        .iter()
                        .map(|e| match e.kind {
                            SimKind::Actor => 1u8,
                            SimKind::NearSample => 2u8,
                            k => panic!("unexpected {k:?} entry after the initial set"),
                        })
                        .collect(),
                    visible: visible
                        .iter()
                        .map(|v| v.iter().map(|&i| i as u64).collect())
                        .collect(),
                    prev_elite: prev_elite.clone(),
                    actors: actors.iter().map(Actor::ckpt_dump).collect(),
                    critics: critic.ckpt_dump(),
                    cache: engine.cache().map_or_else(Vec::new, |c| c.entries()),
                    counters: [
                        counters.sims,
                        counters.cache_hits,
                        counters.cache_misses,
                        counters.retries,
                        counters.panics,
                        counters.timeouts,
                        counters.non_finite,
                        counters.failures,
                    ],
                    timings: [
                        (total_base + t_start.elapsed()).as_secs_f64(),
                        timings.training.as_secs_f64(),
                        timings.simulation.as_secs_f64(),
                        timings.near_sampling.as_secs_f64(),
                    ],
                    journal_lines: journal_lines.clone(),
                    op_store: op_store
                        .entries()
                        .map(|(k, s)| (k.to_vec(), s.slots.clone()))
                        .collect(),
                };
                // Journal durability before snapshot durability: a crash
                // between the two leaves a snapshot no newer than the file.
                journal.flush();
                c.save(&snap);
                // Both exits leave the same on-disk state a SIGKILL
                // between rounds would: a durable snapshot of round `t`
                // and a journal without a run-end record, resumable
                // bitwise-identically.
                if c.halt_after_round() == Some(t) || c.stop_requested() {
                    timings.total = total_base + t_start.elapsed();
                    return RunResult {
                        label: cfg.label.clone(),
                        trace,
                        population: pop,
                        timings,
                    };
                }
            }
        }

        timings.total = total_base + t_start.elapsed();

        if journal.enabled() {
            emit(
                journal,
                &Record::RunEnd(RunEnd {
                    rounds: t,
                    sims: sims_used,
                    best_fom: trace.best_fom(),
                    success: pop.best_feasible().is_some(),
                    total_s: timings.total.as_secs_f64(),
                    training_s: timings.training.as_secs_f64(),
                    simulation_s: timings.simulation.as_secs_f64(),
                    near_sampling_s: timings.near_sampling.as_secs_f64(),
                    engine: counters_base.plus(&engine.telemetry().snapshot().since(&run_counters)),
                }),
                ckpt.and(Some(&mut journal_lines)),
            );
            journal.flush();
        }

        RunResult {
            label: cfg.label.clone(),
            trace,
            population: pop,
            timings,
        }
    }
}

/// Writes `record` to the journal and, when checkpointing, remembers the
/// exact line so a resumed run can replay the journal byte-for-byte.
fn emit(journal: &Journal, record: &Record, lines: Option<&mut Vec<String>>) {
    let line = record.to_json_line();
    journal.write_raw(&line);
    if let Some(lines) = lines {
        lines.push(line);
    }
}

/// The optimizer hyperparameters as a free-form JSON object for the run
/// manifest.
fn config_json(cfg: &MaOptConfig) -> Json {
    Json::obj(vec![
        ("n_actors", Json::num_u(cfg.n_actors as u64)),
        ("shared_elite", Json::Bool(cfg.shared_elite)),
        ("near_sampling", Json::Bool(cfg.near_sampling)),
        ("n_es", Json::num_u(cfg.n_es as u64)),
        ("batch_size", Json::num_u(cfg.batch_size as u64)),
        ("critic_steps", Json::num_u(cfg.critic_steps as u64)),
        ("actor_steps", Json::num_u(cfg.actor_steps as u64)),
        (
            "hidden",
            Json::Arr(cfg.hidden.iter().map(|&w| Json::num_u(w as u64)).collect()),
        ),
        ("critic_lr", Json::Num(cfg.critic_lr)),
        ("actor_lr", Json::Num(cfg.actor_lr)),
        ("action_scale", Json::Num(cfg.action_scale)),
        ("t_ns", Json::num_u(cfg.t_ns as u64)),
        ("n_samples", Json::num_u(cfg.n_samples as u64)),
        ("delta", Json::Num(cfg.delta)),
        ("lambda", Json::Num(cfg.lambda)),
        ("n_critics", Json::num_u(cfg.n_critics as u64)),
    ])
}

/// Critic-rank → simulated-FoM Spearman correlation over the (up to)
/// [`FIDELITY_WINDOW`] most recent simulated designs: the critic predicts
/// each design's metrics as the zero-action destination `(x, Δx = 0)`,
/// those predictions are FoM-scored, and the ranks are correlated with the
/// already-known simulated FoMs. Returns `(NaN, n)` when the correlation
/// is undefined (fewer than two clean pairs, or a constant side).
fn critic_fidelity(
    critic: &CriticEnsemble,
    pop: &Population,
    specs: &[crate::problem::Spec],
    fom_cfg: FomConfig,
) -> (f64, usize) {
    let n = pop.len().min(FIDELITY_WINDOW);
    let start = pop.len() - n;
    let zeros = vec![0.0; critic.dim()];
    let mut scratch = PredictScratch::default();
    let mut predicted = Vec::with_capacity(n);
    let mut simulated = Vec::with_capacity(n);
    for i in start..pop.len() {
        let pred = critic.predict_raw_with(pop.design(i), &zeros, &mut scratch);
        predicted.push(crate::fom::fom(pred, specs, fom_cfg));
        simulated.push(pop.fom(i));
    }
    let rho = maopt_obs::stats::spearman(&predicted, &simulated).unwrap_or(f64::NAN);
    (rho, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::{ConstrainedToy, Sphere};
    use crate::runner::sample_initial_set;

    fn small(cfg: MaOptConfig) -> MaOptConfig {
        MaOptConfig {
            hidden: vec![32, 32],
            critic_steps: 30,
            actor_steps: 15,
            n_samples: 200,
            ..cfg
        }
    }

    #[test]
    fn config_variants_match_paper_table() {
        let dnn = MaOptConfig::dnn_opt(0);
        assert_eq!(dnn.n_actors, 1);
        assert!(!dnn.near_sampling);
        let m1 = MaOptConfig::ma_opt1(0);
        assert_eq!(m1.n_actors, 3);
        assert!(!m1.shared_elite);
        assert!(!m1.near_sampling);
        let m2 = MaOptConfig::ma_opt2(0);
        assert!(m2.shared_elite);
        assert!(!m2.near_sampling);
        let ma = MaOptConfig::ma_opt(0);
        assert!(ma.shared_elite);
        assert!(ma.near_sampling);
        assert_eq!(ma.hidden, vec![100, 100]);
        assert_eq!(ma.t_ns, 5);
        assert_eq!(ma.n_samples, 2000);
    }

    #[test]
    fn sphere_improves_over_initial_set() {
        let problem = Sphere::new(4);
        let init = sample_initial_set(&problem, 20, 42);
        let result = MaOpt::new(small(MaOptConfig::ma_opt(42))).run(&problem, init, 24);
        assert_eq!(result.trace.num_sims(), 24);
        assert!(
            result.best_fom() < result.trace.init_best_fom(),
            "optimization must beat random init: {} vs {}",
            result.best_fom(),
            result.trace.init_best_fom()
        );
    }

    #[test]
    fn dnn_opt_uses_one_sim_per_iteration() {
        let problem = Sphere::new(3);
        let init = sample_initial_set(&problem, 10, 7);
        let result = MaOpt::new(small(MaOptConfig::dnn_opt(7))).run(&problem, init, 5);
        assert_eq!(result.trace.num_sims(), 5);
        assert_eq!(result.trace.near_sample_count(), 0);
    }

    #[test]
    fn budget_is_respected_exactly_with_multiple_actors() {
        let problem = Sphere::new(3);
        let init = sample_initial_set(&problem, 10, 8);
        // 3 actors, budget 7: 3 + 3 + 1 — must not overshoot.
        let result = MaOpt::new(small(MaOptConfig::ma_opt2(8))).run(&problem, init, 7);
        assert_eq!(result.trace.num_sims(), 7);
    }

    #[test]
    fn near_sampling_rounds_appear_once_feasible() {
        let problem = ConstrainedToy::new(3);
        let init = sample_initial_set(&problem, 30, 3);
        let result = MaOpt::new(small(MaOptConfig::ma_opt(3))).run(&problem, init, 40);
        // The toy problem is easy enough that specs get met and NS kicks in.
        assert!(result.success(), "toy problem should reach feasibility");
        assert!(
            result.trace.near_sample_count() > 0,
            "near-sampling rounds expected after feasibility"
        );
    }

    #[test]
    fn ma_opt2_never_near_samples() {
        let problem = ConstrainedToy::new(3);
        let init = sample_initial_set(&problem, 30, 4);
        let result = MaOpt::new(small(MaOptConfig::ma_opt2(4))).run(&problem, init, 20);
        assert_eq!(result.trace.near_sample_count(), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let problem = Sphere::new(3);
        let init = sample_initial_set(&problem, 10, 11);
        let a = MaOpt::new(small(MaOptConfig::ma_opt2(11))).run(&problem, init.clone(), 6);
        let b = MaOpt::new(small(MaOptConfig::ma_opt2(11))).run(&problem, init, 6);
        assert_eq!(a.best_fom(), b.best_fom());
        let sa = a.trace.best_fom_series(6);
        let sb = b.trace.best_fom_series(6);
        assert_eq!(sa, sb);
    }

    #[test]
    fn result_reports_feasible_design() {
        let problem = ConstrainedToy::new(2);
        let init = sample_initial_set(&problem, 30, 5);
        let result = MaOpt::new(small(MaOptConfig::ma_opt(5))).run(&problem, init, 20);
        if result.success() {
            let x = result.best_feasible_design().unwrap();
            assert_eq!(x.len(), 2);
            assert!(result.best_feasible_target().unwrap().is_finite());
        }
    }

    #[test]
    fn multi_critic_variant_runs_and_improves() {
        let problem = Sphere::new(3);
        let init = sample_initial_set(&problem, 15, 13);
        let cfg = small(MaOptConfig::ma_opt_multi_critic(13, 3));
        assert_eq!(cfg.n_critics, 3);
        let result = MaOpt::new(cfg).run(&problem, init, 12);
        assert_eq!(result.trace.num_sims(), 12);
        assert!(result.best_fom() <= result.trace.init_best_fom());
        assert!(result.label.contains("c3"));
    }

    #[test]
    fn single_critic_ensemble_matches_paper_configuration() {
        // n_critics = 1 must reproduce exactly the plain MA-Opt² run.
        let problem = Sphere::new(3);
        let init = sample_initial_set(&problem, 12, 14);
        let a = MaOpt::new(small(MaOptConfig::ma_opt2(14))).run(&problem, init.clone(), 6);
        let b = MaOpt::new(small(MaOptConfig {
            n_critics: 1,
            ..MaOptConfig::ma_opt2(14)
        }))
        .run(&problem, init, 6);
        assert_eq!(a.trace.best_fom_series(6), b.trace.best_fom_series(6));
    }

    #[test]
    fn timings_are_recorded() {
        let problem = Sphere::new(2);
        let init = sample_initial_set(&problem, 10, 6);
        let result = MaOpt::new(small(MaOptConfig::ma_opt2(6))).run(&problem, init, 4);
        assert!(result.timings.total > Duration::ZERO);
        assert!(result.timings.training > Duration::ZERO);
    }
}
