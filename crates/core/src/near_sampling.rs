//! The near-sampling method (Algorithm 2): dense sampling around the
//! incumbent best design, ranked by the critic, one simulation spent on the
//! predicted winner.

use std::cell::RefCell;

use maopt_exec::EvalEngine;
use maopt_linalg::Mat;
use maopt_nn::Workspace;
use rand::rngs::StdRng;
use rand::Rng;

use crate::critic::Surrogate;
use crate::fom::{fom, FomConfig};
use crate::problem::Spec;

thread_local! {
    /// Per-worker scoring scratch: the chunk's input slice, the surrogate
    /// forward workspace, and the prediction buffer. Thread-local so every
    /// engine worker reuses its own buffers across chunks and across
    /// `propose` calls instead of allocating per chunk.
    static SCORE_SCRATCH: RefCell<(Mat, Workspace, Mat)> = RefCell::new(Default::default());
}

/// Near-sampling configuration and proposal logic.
#[derive(Debug, Clone)]
pub struct NearSampler {
    /// Number of candidates drawn around `x_opt` (paper: 2000).
    pub n_samples: usize,
    /// Per-coordinate sampling radius `δ` in normalized design-space units.
    pub delta: f64,
}

impl NearSampler {
    /// Creates a sampler.
    ///
    /// # Panics
    ///
    /// Panics unless `n_samples > 0` and `delta > 0`.
    pub fn new(n_samples: usize, delta: f64) -> Self {
        assert!(n_samples > 0, "need at least one sample");
        assert!(delta > 0.0, "sampling radius must be positive");
        NearSampler { n_samples, delta }
    }

    /// Proposes the candidate with the best critic-predicted FoM among
    /// `n_samples` uniform draws from `[x_opt − δ, x_opt + δ] ∩ [0,1]^d`
    /// (Algorithm 2, lines 2–7).
    ///
    /// The returned design still needs a real simulation; the caller accepts
    /// it only if the simulated FoM beats the incumbent (lines 8–11).
    pub fn propose<S: Surrogate + Sync>(
        &self,
        critic: &S,
        x_opt: &[f64],
        specs: &[Spec],
        fom_cfg: FomConfig,
        rng: &mut StdRng,
    ) -> Vec<f64> {
        self.propose_with(critic, x_opt, specs, fom_cfg, rng, &EvalEngine::serial())
    }

    /// [`NearSampler::propose`] with the candidate ranking split into
    /// per-worker batches on the given engine.
    ///
    /// Candidates come from a serial RNG stream and the critic's MLP
    /// computes each input row independently, so a chunked prediction is
    /// bitwise identical to the full batch: the proposal does not depend on
    /// the worker count.
    pub fn propose_with<S: Surrogate + Sync>(
        &self,
        critic: &S,
        x_opt: &[f64],
        specs: &[Spec],
        fom_cfg: FomConfig,
        rng: &mut StdRng,
        engine: &EvalEngine,
    ) -> Vec<f64> {
        self.propose_scored_with(critic, x_opt, specs, fom_cfg, rng, engine)
            .0
    }

    /// [`NearSampler::propose_with`] that also returns the winning
    /// candidate's critic-predicted FoM — the prediction side of the run
    /// journal's predicted-vs-simulated fidelity signal. The proposal
    /// itself is bitwise identical to [`NearSampler::propose_with`].
    pub fn propose_scored_with<S: Surrogate + Sync>(
        &self,
        critic: &S,
        x_opt: &[f64],
        specs: &[Spec],
        fom_cfg: FomConfig,
        rng: &mut StdRng,
        engine: &EvalEngine,
    ) -> (Vec<f64>, f64) {
        let d = x_opt.len();
        // Draw the candidates from the serial RNG stream. The critic input
        // rows (x_opt, x_ns − x_opt) are NOT materialized here: each worker
        // builds its chunk's rows directly into its thread-local scratch
        // below, skipping the full n_samples × 2d intermediate matrix and
        // the per-chunk row copies out of it.
        let mut candidates = Vec::with_capacity(self.n_samples);
        for _ in 0..self.n_samples {
            let mut x_ns = Vec::with_capacity(d);
            for &xo in x_opt {
                let lo = (xo - self.delta).max(0.0);
                let hi = (xo + self.delta).min(1.0);
                x_ns.push(if hi > lo {
                    rng.random_range(lo..hi)
                } else {
                    lo
                });
            }
            candidates.push(x_ns);
        }

        let n = self.n_samples;
        let chunk = n.div_ceil(engine.jobs()).max(1);
        let ranges: Vec<(usize, usize)> = (0..n)
            .step_by(chunk)
            .map(|s| (s, (s + chunk).min(n)))
            .collect();
        let cands_ref = &candidates;
        let scored: Vec<Vec<f64>> = engine.map(ranges, |_, (start, end)| {
            SCORE_SCRATCH.with(|cell| {
                let (sub, ws, predictions) = &mut *cell.borrow_mut();
                sub.resize_reset(end - start, 2 * d);
                for r in 0..end - start {
                    let row = sub.row_mut(r);
                    row[..d].copy_from_slice(x_opt);
                    for t in 0..d {
                        row[d + t] = cands_ref[start + r][t] - x_opt[t];
                    }
                }
                critic.predict_batch_raw_into(sub, ws, predictions);
                (0..end - start)
                    .map(|k| fom(predictions.row(k), specs, fom_cfg))
                    .collect()
            })
        });

        // First-index-wins argmin over the concatenated scores.
        let mut best_k = 0;
        let mut best_fom = f64::INFINITY;
        for (k, g) in scored.into_iter().flatten().enumerate() {
            if g < best_fom {
                best_fom = g;
                best_k = k;
            }
        }
        (candidates.swap_remove(best_k), best_fom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fom::FomConfig;
    use crate::population::Population;
    use crate::problem::Spec;
    use rand::SeedableRng;

    /// Critic trained on metrics = [(x₀+Δx₀−0.5)², 5] so the predicted-best
    /// near sample should move toward x₀ = 0.5.
    fn trained_critic() -> (crate::Critic, Vec<Spec>) {
        let specs = vec![Spec::at_least("m", 1, 1.0)];
        let cfg = FomConfig::default();
        let mut pop = Population::new();
        let mut s = 7u64;
        let mut next = move || {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ((s >> 33) % 1000) as f64 / 1000.0
        };
        for _ in 0..100 {
            let x = vec![next()];
            pop.push(x.clone(), vec![(x[0] - 0.5f64).powi(2), 5.0], &specs, cfg);
        }
        let mut critic = crate::Critic::new(1, 2, &[32, 32], 3e-3, 21);
        critic.refit_scaler(&pop);
        let mut rng = StdRng::seed_from_u64(22);
        critic.train(&pop, 600, 32, &mut rng);
        (critic, specs)
    }

    #[test]
    fn proposal_stays_within_radius_and_box() {
        let (critic, specs) = trained_critic();
        let ns = NearSampler::new(500, 0.1);
        let mut rng = StdRng::seed_from_u64(23);
        let x_opt = [0.95];
        let prop = ns.propose(&critic, &x_opt, &specs, FomConfig::default(), &mut rng);
        assert!(prop[0] <= 1.0, "clipped to the design box");
        assert!((prop[0] - x_opt[0]).abs() <= 0.1 + 1e-12, "within δ");
    }

    #[test]
    fn proposal_moves_toward_predicted_optimum() {
        let (critic, specs) = trained_critic();
        let ns = NearSampler::new(2000, 0.1);
        let mut rng = StdRng::seed_from_u64(24);
        let x_opt = [0.7];
        let prop = ns.propose(&critic, &x_opt, &specs, FomConfig::default(), &mut rng);
        // True optimum is at 0.5; the best sample in [0.6, 0.8] should sit
        // near the lower edge.
        assert!(
            prop[0] < x_opt[0] - 0.05,
            "near-sampling should exploit downhill: {prop:?}"
        );
    }

    #[test]
    fn single_sample_is_returned_verbatim_shape() {
        let (critic, specs) = trained_critic();
        let ns = NearSampler::new(1, 0.05);
        let mut rng = StdRng::seed_from_u64(25);
        let prop = ns.propose(&critic, &[0.5], &specs, FomConfig::default(), &mut rng);
        assert_eq!(prop.len(), 1);
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn zero_delta_rejected() {
        let _ = NearSampler::new(10, 0.0);
    }
}
