//! Operating-point store for cross-design Newton warm-starting.
//!
//! Maps a quantized design vector to the converged operating points
//! ([`OpState`]) its evaluation produced, so later evaluations of *nearby*
//! designs can seed Newton from a known-good solution instead of the cold
//! gmin/source-stepping ladder.
//!
//! Determinism contract: the store lives on the optimizer's main thread and
//! is only read/written between evaluation batches. Seeds are selected here
//! — by the algorithm, deterministically — and travel *inside* each
//! evaluation request; worker threads never consult shared state. That keeps
//! journals byte-identical at any `--jobs` count (PR 4's invariance
//! contract). Eviction is FIFO and [`OpStore::entries`] yields insertion
//! order, so a checkpoint/resume round-trip reproduces the exact eviction
//! sequence of an uninterrupted run.

use std::collections::VecDeque;

use maopt_exec::{quantize, OpState};

/// Default maximum number of retained operating points.
///
/// The optimizer only ever seeds from the incumbent and the elite set
/// (a handful of designs), but retaining a few hundred entries lets
/// resumed runs and multi-actor configs keep every parent they might
/// reference without the store growing with the simulation budget.
const DEFAULT_CAPACITY: usize = 256;

/// Bounded FIFO store of converged operating points keyed by quantized
/// design vector.
///
/// Lookups are linear scans — the store is small (≤ a few hundred entries)
/// and hit on the optimizer's main thread only, so a hash map would buy
/// nothing and cost iteration-order determinism.
#[derive(Debug, Clone)]
pub struct OpStore {
    cap: usize,
    entries: VecDeque<(Vec<i64>, OpState)>,
}

impl Default for OpStore {
    fn default() -> Self {
        Self::new()
    }
}

impl OpStore {
    /// Store with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// Store retaining at most `cap` entries (oldest evicted first).
    /// A capacity of zero stores nothing and returns no seeds.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            cap,
            entries: VecDeque::new(),
        }
    }

    /// Number of stored operating points.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no operating point is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up the operating point stored for design `x`, if any.
    pub fn get(&self, x: &[f64]) -> Option<&OpState> {
        let key = quantize(x);
        self.entries
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, state)| state)
    }

    /// Insert the operating point for design `x`.
    ///
    /// First write wins: re-inserting an existing key is a no-op, mirroring
    /// `SimCache` semantics so a design's stored OP never changes under it
    /// mid-run. Evicts the oldest entry when at capacity.
    pub fn insert(&mut self, x: &[f64], state: OpState) {
        if self.cap == 0 {
            return;
        }
        let key = quantize(x);
        if self.entries.iter().any(|(k, _)| *k == key) {
            return;
        }
        if self.entries.len() == self.cap {
            self.entries.pop_front();
        }
        self.entries.push_back((key, state));
    }

    /// All entries in insertion (= eviction) order, for checkpointing.
    pub fn entries(&self) -> impl Iterator<Item = (&[i64], &OpState)> {
        self.entries.iter().map(|(k, s)| (k.as_slice(), s))
    }

    /// Rebuild a store from checkpointed `(key, slots)` pairs, preserving
    /// insertion order. Entries beyond `cap` evict from the front exactly as
    /// live inserts would.
    pub fn restore(cap: usize, entries: Vec<(Vec<i64>, Vec<Vec<f64>>)>) -> Self {
        let mut store = Self::with_capacity(cap);
        for (key, slots) in entries {
            if store.cap == 0 {
                break;
            }
            if store.entries.iter().any(|(k, _)| *k == key) {
                continue;
            }
            if store.entries.len() == store.cap {
                store.entries.pop_front();
            }
            store.entries.push_back((key, OpState { slots }));
        }
        store
    }

    /// Capacity this store was built with.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(v: f64) -> OpState {
        OpState {
            slots: vec![vec![v, v + 1.0]],
        }
    }

    #[test]
    fn get_hits_on_quantized_key() {
        let mut s = OpStore::new();
        s.insert(&[1.0, 2.0], state(9.0));
        // Perturbation below the 1e-12 quantization step maps to the same key.
        assert_eq!(s.get(&[1.0 + 1e-14, 2.0]), Some(&state(9.0)));
        assert_eq!(s.get(&[1.0 + 1e-9, 2.0]), None);
    }

    #[test]
    fn first_insert_wins() {
        let mut s = OpStore::new();
        s.insert(&[1.0], state(1.0));
        s.insert(&[1.0], state(2.0));
        assert_eq!(s.get(&[1.0]), Some(&state(1.0)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn evicts_oldest_at_capacity() {
        let mut s = OpStore::with_capacity(2);
        s.insert(&[1.0], state(1.0));
        s.insert(&[2.0], state(2.0));
        s.insert(&[3.0], state(3.0));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(&[1.0]), None);
        assert_eq!(s.get(&[2.0]), Some(&state(2.0)));
        assert_eq!(s.get(&[3.0]), Some(&state(3.0)));
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let mut s = OpStore::with_capacity(0);
        s.insert(&[1.0], state(1.0));
        assert!(s.is_empty());
        assert_eq!(s.get(&[1.0]), None);
    }

    #[test]
    fn restore_round_trips_entries_in_order() {
        let mut s = OpStore::with_capacity(8);
        s.insert(&[1.0], state(1.0));
        s.insert(&[2.0], state(2.0));
        let dumped: Vec<(Vec<i64>, Vec<Vec<f64>>)> = s
            .entries()
            .map(|(k, st)| (k.to_vec(), st.slots.clone()))
            .collect();
        let restored = OpStore::restore(8, dumped);
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.get(&[1.0]), Some(&state(1.0)));
        assert_eq!(restored.get(&[2.0]), Some(&state(2.0)));
        let orig: Vec<_> = s.entries().map(|(k, _)| k.to_vec()).collect();
        let back: Vec<_> = restored.entries().map(|(k, _)| k.to_vec()).collect();
        assert_eq!(orig, back);
    }

    #[test]
    fn restore_respects_capacity_via_fifo() {
        let entries = vec![
            (quantize(&[1.0]), vec![vec![1.0]]),
            (quantize(&[2.0]), vec![vec![2.0]]),
            (quantize(&[3.0]), vec![vec![3.0]]),
        ];
        let s = OpStore::restore(2, entries);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(&[1.0]), None);
        assert!(s.get(&[3.0]).is_some());
    }
}
