//! The constrained circuit-sizing problem abstraction (Eq. 1 of the paper).
//!
//! A [`SizingProblem`] maps a normalized design vector `x ∈ [0,1]^d` to a
//! metric vector `f(x) ∈ R^{m+1}` whose first entry is the target metric to
//! minimize and whose remaining entries are checked against [`Spec`]s.
//! Optimizers work exclusively in the normalized space; [`ParamSpec`]
//! handles the mapping to physical units (linear, logarithmic, or integer).

/// How a parameter maps from the normalized unit interval to physical units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamScale {
    /// Straight-line interpolation between `lo` and `hi`.
    Linear,
    /// Log-uniform interpolation — appropriate for values spanning decades
    /// (resistors, capacitors).
    Log,
    /// Linear interpolation rounded to the nearest integer (device
    /// multipliers).
    Integer,
}

/// One sizable parameter: name, physical range and scaling.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpec {
    /// Human-readable name, e.g. `"W1"`.
    pub name: String,
    /// Unit label for reports, e.g. `"um"`.
    pub unit: &'static str,
    /// Lower physical bound.
    pub lo: f64,
    /// Upper physical bound.
    pub hi: f64,
    /// Normalized → physical mapping.
    pub scale: ParamScale,
}

impl ParamSpec {
    /// Creates a linear parameter.
    pub fn linear(name: &str, unit: &'static str, lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "parameter {name} needs lo < hi");
        ParamSpec {
            name: name.into(),
            unit,
            lo,
            hi,
            scale: ParamScale::Linear,
        }
    }

    /// Creates a log-scaled parameter.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lo < hi`.
    pub fn log(name: &str, unit: &'static str, lo: f64, hi: f64) -> Self {
        assert!(
            lo > 0.0 && lo < hi,
            "log parameter {name} needs 0 < lo < hi"
        );
        ParamSpec {
            name: name.into(),
            unit,
            lo,
            hi,
            scale: ParamScale::Log,
        }
    }

    /// Creates an integer parameter.
    pub fn integer(name: &str, lo: usize, hi: usize) -> Self {
        assert!(lo < hi, "integer parameter {name} needs lo < hi");
        ParamSpec {
            name: name.into(),
            unit: "",
            lo: lo as f64,
            hi: hi as f64,
            scale: ParamScale::Integer,
        }
    }

    /// Maps a normalized value `u ∈ [0,1]` to physical units (clamping `u`).
    pub fn denormalize(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        match self.scale {
            ParamScale::Linear => self.lo + u * (self.hi - self.lo),
            ParamScale::Log => (self.lo.ln() + u * (self.hi.ln() - self.lo.ln())).exp(),
            ParamScale::Integer => (self.lo + u * (self.hi - self.lo)).round(),
        }
    }

    /// Maps a physical value back into the normalized interval.
    pub fn normalize(&self, x: f64) -> f64 {
        let u = match self.scale {
            ParamScale::Linear | ParamScale::Integer => (x - self.lo) / (self.hi - self.lo),
            ParamScale::Log => (x.ln() - self.lo.ln()) / (self.hi.ln() - self.lo.ln()),
        };
        u.clamp(0.0, 1.0)
    }
}

/// Direction of a specification bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecKind {
    /// The metric must be at least the bound (e.g. DC gain > 60 dB).
    AtLeast,
    /// The metric must be at most the bound (e.g. settling time < 100 ns).
    AtMost,
}

/// One performance constraint, referencing an entry of the metric vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Spec {
    /// Display name, e.g. `"DC gain"`.
    pub name: String,
    /// Index into the metric vector returned by
    /// [`SizingProblem::evaluate`] (0 is the target metric; constraints
    /// normally reference indices ≥ 1).
    pub metric_index: usize,
    /// Bound direction.
    pub kind: SpecKind,
    /// Bound value, in the metric's units.
    pub bound: f64,
    /// Weight `w_i` in the FoM (Eq. 2); the paper uses 1.
    pub weight: f64,
}

impl Spec {
    /// An `AtLeast` constraint with unit weight.
    pub fn at_least(name: &str, metric_index: usize, bound: f64) -> Self {
        Spec {
            name: name.into(),
            metric_index,
            kind: SpecKind::AtLeast,
            bound,
            weight: 1.0,
        }
    }

    /// An `AtMost` constraint with unit weight.
    pub fn at_most(name: &str, metric_index: usize, bound: f64) -> Self {
        Spec {
            name: name.into(),
            metric_index,
            kind: SpecKind::AtMost,
            bound,
            weight: 1.0,
        }
    }

    /// Relative violation of this spec by a metric value: 0 when satisfied,
    /// `|f − c| / |c|` when violated.
    pub fn violation(&self, value: f64) -> f64 {
        if !value.is_finite() {
            return 1.0; // a failed simulation violates everything maximally
        }
        let denom = self.bound.abs().max(1e-30);
        match self.kind {
            SpecKind::AtLeast => ((self.bound - value) / denom).max(0.0),
            SpecKind::AtMost => ((value - self.bound) / denom).max(0.0),
        }
    }

    /// Whether a metric value satisfies this spec.
    pub fn is_met(&self, value: f64) -> bool {
        self.violation(value) == 0.0
    }

    /// Derivative of [`Spec::violation`] with respect to the metric value
    /// (sub-gradient: 0 when the spec is satisfied).
    pub fn violation_grad(&self, value: f64) -> f64 {
        if !value.is_finite() || self.is_met(value) {
            return 0.0;
        }
        let denom = self.bound.abs().max(1e-30);
        match self.kind {
            SpecKind::AtLeast => -1.0 / denom,
            SpecKind::AtMost => 1.0 / denom,
        }
    }
}

/// A constrained sizing problem (Eq. 1): minimize metric 0 subject to specs.
///
/// Implementations must be thread-safe: MA-Opt evaluates proposals from
/// multiple actors in parallel.
pub trait SizingProblem: Send + Sync {
    /// Short identifier, e.g. `"two_stage_ota"`.
    fn name(&self) -> &str;

    /// Number of design variables `d`.
    fn dim(&self) -> usize {
        self.params().len()
    }

    /// Parameter definitions, length `d`.
    fn params(&self) -> &[ParamSpec];

    /// Names of the metric vector entries (index 0 is the target metric).
    fn metric_names(&self) -> Vec<String>;

    /// Number of metrics `m + 1` returned by [`SizingProblem::evaluate`].
    fn num_metrics(&self) -> usize {
        self.metric_names().len()
    }

    /// The performance constraints.
    fn specs(&self) -> &[Spec];

    /// Evaluates the design `x ∈ [0,1]^d` (normalized), returning the metric
    /// vector. A simulation failure is reported as a well-defined
    /// "everything terrible" vector rather than an error, mirroring how
    /// sizing flows treat non-convergent corners.
    fn evaluate(&self, x: &[f64]) -> Vec<f64>;

    /// [`SizingProblem::evaluate`] with an optional operating-point seed
    /// from a reference design of the same topology, returning this
    /// evaluation's own converged [`maopt_exec::OpState`] for reuse.
    ///
    /// The seed is advisory — it warm-starts the simulator's Newton
    /// solves but must never change which designs converge (the cold
    /// continuation path remains the automatic rescue). The default
    /// ignores it, so non-simulator problems need no changes.
    fn evaluate_seeded(
        &self,
        x: &[f64],
        seed: Option<&maopt_exec::OpState>,
    ) -> (Vec<f64>, Option<maopt_exec::OpState>) {
        let _ = seed;
        (self.evaluate(x), None)
    }

    /// Converts a normalized design to physical units (for reports).
    fn denormalize(&self, x: &[f64]) -> Vec<f64> {
        self.params()
            .iter()
            .zip(x)
            .map(|(p, &u)| p.denormalize(u))
            .collect()
    }

    /// Penalty metric vector the evaluation engine emits when a simulation
    /// keeps faulting (panic, timeout, or [`SizingProblem::is_failure`]).
    /// Circuits override this with their finite, maximally-spec-violating
    /// vector; the default is all-infinite, which the FoM and spec code
    /// already treat as maximally infeasible.
    fn failure_metrics(&self) -> Vec<f64> {
        vec![f64::INFINITY; self.num_metrics()]
    }

    /// Whether a metric vector should be treated as a failed simulation
    /// (and retried by the evaluation engine). The default flags any
    /// non-finite entry.
    fn is_failure(&self, metrics: &[f64]) -> bool {
        metrics.iter().any(|m| !m.is_finite())
    }
}

/// Adapter exposing a [`SizingProblem`] to the evaluation engine.
///
/// `maopt-core` depends on `maopt-exec` (not the other way around), so the
/// engine's [`maopt_exec::Evaluate`] trait cannot be implemented for
/// `dyn SizingProblem` directly without this newtype.
pub struct EngineProblem<'a>(pub &'a dyn SizingProblem);

impl maopt_exec::Evaluate for EngineProblem<'_> {
    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        self.0.evaluate(x)
    }

    fn evaluate_seeded(
        &self,
        x: &[f64],
        seed: Option<&maopt_exec::OpState>,
    ) -> (Vec<f64>, Option<maopt_exec::OpState>) {
        self.0.evaluate_seeded(x, seed)
    }

    fn num_metrics(&self) -> usize {
        self.0.num_metrics()
    }

    fn failure_metrics(&self) -> Vec<f64> {
        self.0.failure_metrics()
    }

    fn is_failure(&self, metrics: &[f64]) -> bool {
        self.0.is_failure(metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_param_roundtrip() {
        let p = ParamSpec::linear("W1", "um", 0.22, 150.0);
        assert_eq!(p.denormalize(0.0), 0.22);
        assert_eq!(p.denormalize(1.0), 150.0);
        let mid = p.denormalize(0.5);
        assert!((p.normalize(mid) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn log_param_is_decade_uniform() {
        let p = ParamSpec::log("R", "kohm", 0.1, 100.0);
        // Three decades: halfway is sqrt(0.1·100) ≈ 3.162.
        assert!((p.denormalize(0.5) - 10f64.powf(0.5)).abs() < 1e-9);
        assert!((p.normalize(p.denormalize(0.3)) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn integer_param_rounds() {
        let p = ParamSpec::integer("N1", 1, 20);
        assert_eq!(p.denormalize(0.0), 1.0);
        assert_eq!(p.denormalize(1.0), 20.0);
        let v = p.denormalize(0.5);
        assert_eq!(v, v.round());
    }

    #[test]
    fn denormalize_clamps_out_of_box() {
        let p = ParamSpec::linear("L", "um", 0.18, 2.0);
        assert_eq!(p.denormalize(-0.5), 0.18);
        assert_eq!(p.denormalize(1.5), 2.0);
    }

    #[test]
    fn at_least_violation() {
        let s = Spec::at_least("gain", 1, 60.0);
        assert_eq!(s.violation(70.0), 0.0);
        assert!(s.is_met(60.0));
        assert!((s.violation(30.0) - 0.5).abs() < 1e-12);
        assert!(s.violation_grad(30.0) < 0.0);
        assert_eq!(s.violation_grad(70.0), 0.0);
    }

    #[test]
    fn at_most_violation() {
        let s = Spec::at_most("settling", 2, 100e-9);
        assert_eq!(s.violation(50e-9), 0.0);
        assert!((s.violation(200e-9) - 1.0).abs() < 1e-9);
        assert!(s.violation_grad(200e-9) > 0.0);
    }

    #[test]
    fn non_finite_metric_is_max_violation() {
        let s = Spec::at_least("gain", 1, 60.0);
        assert_eq!(s.violation(f64::NAN), 1.0);
        assert_eq!(s.violation(f64::NEG_INFINITY), 1.0);
        assert_eq!(s.violation_grad(f64::NAN), 0.0);
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn bad_range_rejected() {
        let _ = ParamSpec::linear("X", "", 2.0, 1.0);
    }
}
