//! Fast synthetic sizing problems for tests, examples and ablation benches.
//!
//! These stand in for the circuit testbenches when the full simulator would
//! be overkill: they exercise the identical optimizer code paths at
//! microsecond evaluation cost.

use crate::problem::{ParamSpec, SizingProblem, Spec};

/// Unconstrained sphere: minimize `Σ (xᵢ − 0.7)²` with one always-satisfied
/// constraint (so the FoM machinery still has a spec to check).
#[derive(Debug, Clone)]
pub struct Sphere {
    params: Vec<ParamSpec>,
    specs: Vec<Spec>,
}

impl Sphere {
    /// Creates a `dim`-dimensional sphere problem.
    pub fn new(dim: usize) -> Self {
        let params = (0..dim)
            .map(|i| ParamSpec::linear(&format!("x{i}"), "", 0.0, 1.0))
            .collect();
        // Metric 1 is the constant 1.0 with bound ≥ 0.5: always feasible.
        let specs = vec![Spec::at_least("always_ok", 1, 0.5)];
        Sphere { params, specs }
    }
}

impl SizingProblem for Sphere {
    fn name(&self) -> &str {
        "sphere"
    }

    fn params(&self) -> &[ParamSpec] {
        &self.params
    }

    fn metric_names(&self) -> Vec<String> {
        vec!["objective".into(), "constant".into()]
    }

    fn specs(&self) -> &[Spec] {
        &self.specs
    }

    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        let obj: f64 = x.iter().map(|&v| (v - 0.7) * (v - 0.7)).sum();
        vec![obj, 1.0]
    }
}

/// A constrained toy with analog-sizing structure: minimize a "power"-like
/// objective subject to a "gain"-like floor and a "bandwidth"-like floor
/// that pull in opposite directions.
///
/// * power  = `Σ xᵢ²` (want small → x small)
/// * gain   = `20·mean(x)` must be ≥ 8 (wants x large)
/// * bw     = `30·x₀·(1 − x₁/2)` must be ≥ 6
///
/// The feasible region is a band; the optimum sits on the gain constraint.
#[derive(Debug, Clone)]
pub struct ConstrainedToy {
    params: Vec<ParamSpec>,
    specs: Vec<Spec>,
}

impl ConstrainedToy {
    /// Creates a `dim`-dimensional toy (`dim ≥ 2`).
    ///
    /// # Panics
    ///
    /// Panics if `dim < 2`.
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 2, "ConstrainedToy needs at least two dimensions");
        let params = (0..dim)
            .map(|i| ParamSpec::linear(&format!("x{i}"), "", 0.0, 1.0))
            .collect();
        let specs = vec![
            Spec::at_least("gain", 1, 8.0),
            Spec::at_least("bandwidth", 2, 6.0),
        ];
        ConstrainedToy { params, specs }
    }
}

impl SizingProblem for ConstrainedToy {
    fn name(&self) -> &str {
        "constrained_toy"
    }

    fn params(&self) -> &[ParamSpec] {
        &self.params
    }

    fn metric_names(&self) -> Vec<String> {
        vec!["power".into(), "gain".into(), "bandwidth".into()]
    }

    fn specs(&self) -> &[Spec] {
        &self.specs
    }

    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        let power: f64 = x.iter().map(|&v| v * v).sum();
        let gain = 20.0 * x.iter().sum::<f64>() / x.len() as f64;
        let bw = 30.0 * x[0] * (1.0 - x[1] / 2.0);
        vec![power, gain, bw]
    }
}

/// The classic constrained Rosenbrock valley, rescaled into the unit box —
/// a harder landscape used by ablation benchmarks.
///
/// Decision variables map to `z = 4x − 2 ∈ [−2, 2]`; the objective is the
/// Rosenbrock function and the constraint keeps `Σ z² ≤ dim` (a disk).
#[derive(Debug, Clone)]
pub struct RosenbrockDisk {
    params: Vec<ParamSpec>,
    specs: Vec<Spec>,
}

impl RosenbrockDisk {
    /// Creates a `dim`-dimensional problem (`dim ≥ 2`).
    ///
    /// # Panics
    ///
    /// Panics if `dim < 2`.
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 2, "Rosenbrock needs at least two dimensions");
        let params = (0..dim)
            .map(|i| ParamSpec::linear(&format!("x{i}"), "", 0.0, 1.0))
            .collect();
        let specs = vec![Spec::at_most("disk", 1, dim as f64)];
        RosenbrockDisk { params, specs }
    }
}

impl SizingProblem for RosenbrockDisk {
    fn name(&self) -> &str {
        "rosenbrock_disk"
    }

    fn params(&self) -> &[ParamSpec] {
        &self.params
    }

    fn metric_names(&self) -> Vec<String> {
        vec!["rosenbrock".into(), "radius_sq".into()]
    }

    fn specs(&self) -> &[Spec] {
        &self.specs
    }

    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        let z: Vec<f64> = x.iter().map(|&v| 4.0 * v - 2.0).collect();
        let mut obj = 0.0;
        for w in z.windows(2) {
            obj += 100.0 * (w[1] - w[0] * w[0]).powi(2) + (1.0 - w[0]).powi(2);
        }
        let radius: f64 = z.iter().map(|v| v * v).sum();
        vec![obj, radius]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fom::{fom, is_feasible, FomConfig};

    #[test]
    fn sphere_optimum_at_point_seven() {
        let p = Sphere::new(3);
        let at_opt = p.evaluate(&[0.7, 0.7, 0.7]);
        assert!(at_opt[0] < 1e-12);
        assert!(is_feasible(&at_opt, p.specs()));
        let off = p.evaluate(&[0.0, 0.0, 0.0]);
        assert!(off[0] > 1.0);
    }

    #[test]
    fn toy_constraints_conflict_with_objective() {
        let p = ConstrainedToy::new(2);
        // All-zero has minimal power but violates both constraints.
        let zero = p.evaluate(&[0.0, 0.0]);
        assert!(!is_feasible(&zero, p.specs()));
        // A reasonable point is feasible.
        let good = p.evaluate(&[0.6, 0.4]);
        assert!(is_feasible(&good, p.specs()), "metrics {good:?}");
        // FoM of the infeasible point is dominated by penalties.
        let g_zero = fom(&zero, p.specs(), FomConfig::default());
        let g_good = fom(&good, p.specs(), FomConfig::default());
        assert!(g_zero > g_good);
    }

    #[test]
    fn rosenbrock_global_minimum_inside_disk() {
        let p = RosenbrockDisk::new(2);
        // z = (1, 1) → x = (0.75, 0.75)
        let at_opt = p.evaluate(&[0.75, 0.75]);
        assert!(at_opt[0] < 1e-12);
        assert!(is_feasible(&at_opt, p.specs()));
    }

    #[test]
    fn names_and_dims_consistent() {
        for (p, d) in [
            (&Sphere::new(5) as &dyn SizingProblem, 5),
            (&ConstrainedToy::new(4), 4),
            (&RosenbrockDisk::new(3), 3),
        ] {
            assert_eq!(p.dim(), d);
            assert_eq!(p.params().len(), d);
            assert_eq!(p.evaluate(&vec![0.5; d]).len(), p.num_metrics());
            assert!(!p.name().is_empty());
        }
    }
}
