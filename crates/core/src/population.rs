//! The total design set `X_tot` and pseudo-sample generation (Eq. 3).

use maopt_linalg::Mat;
use rand::rngs::StdRng;
use rand::Rng;

use crate::fom::{fom, is_feasible, FomConfig};
use crate::problem::Spec;

/// The total design set: every simulated design with its metric vector and
/// cached FoM.
#[derive(Debug, Clone, Default)]
pub struct Population {
    xs: Vec<Vec<f64>>,
    metrics: Vec<Vec<f64>>,
    foms: Vec<f64>,
    feasible: Vec<bool>,
}

impl Population {
    /// Creates an empty population.
    pub fn new() -> Self {
        Population::default()
    }

    /// Number of designs.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// `true` when no designs have been recorded.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Records a simulated design; returns its index.
    pub fn push(
        &mut self,
        x: Vec<f64>,
        metrics: Vec<f64>,
        specs: &[Spec],
        config: FomConfig,
    ) -> usize {
        debug_assert!(!x.is_empty());
        self.foms.push(fom(&metrics, specs, config));
        self.feasible.push(is_feasible(&metrics, specs));
        self.xs.push(x);
        self.metrics.push(metrics);
        self.xs.len() - 1
    }

    /// Design vector at `i`.
    pub fn design(&self, i: usize) -> &[f64] {
        &self.xs[i]
    }

    /// Metric vector at `i`.
    pub fn metrics(&self, i: usize) -> &[f64] {
        &self.metrics[i]
    }

    /// FoM at `i`.
    pub fn fom(&self, i: usize) -> f64 {
        self.foms[i]
    }

    /// Whether design `i` met all specs.
    pub fn feasible(&self, i: usize) -> bool {
        self.feasible[i]
    }

    /// All FoM values.
    pub fn foms(&self) -> &[f64] {
        &self.foms
    }

    /// Index of the best (lowest-FoM) design.
    pub fn best(&self) -> Option<usize> {
        maopt_linalg::stats::argmin(&self.foms)
    }

    /// Index of the best *feasible* design, if any.
    pub fn best_feasible(&self) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..self.len() {
            if !self.feasible[i] {
                continue;
            }
            match best {
                Some((_, bf)) if bf <= self.foms[i] => {}
                _ => best = Some((i, self.foms[i])),
            }
        }
        best.map(|(i, _)| i)
    }

    /// Indices of the `n` lowest-FoM designs (fewer if the population is
    /// smaller), best first.
    pub fn elite_indices(&self, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.sort_by(|&a, &b| self.foms[a].partial_cmp(&self.foms[b]).expect("finite FoM"));
        idx.truncate(n);
        idx
    }

    /// Builds the metric matrix over all designs (rows = designs), used to
    /// fit the critic's output scaler.
    pub fn metric_matrix(&self) -> Mat {
        let rows = self.len();
        let cols = self.metrics.first().map_or(0, Vec::len);
        Mat::from_fn(rows, cols, |i, j| {
            let v = self.metrics[i][j];
            if v.is_finite() {
                v
            } else {
                0.0
            }
        })
    }
}

/// Draws a batch of `n` pseudo-samples (Eq. 3) from the population.
///
/// Each pseudo-sample pairs two simulated designs `(xᵢ, xⱼ)`:
/// the critic input is `(xᵢ, xⱼ − xᵢ)` and the target is `f(xⱼ)`.
/// Returns `(inputs [n × 2d], raw targets [n × (m+1)])`.
///
/// # Panics
///
/// Panics if the population is empty or `n == 0`.
pub fn pseudo_batch(pop: &Population, n: usize, rng: &mut StdRng) -> (Mat, Mat) {
    let mut inputs = Mat::default();
    let mut targets = Mat::default();
    pseudo_batch_into(pop, n, rng, &mut inputs, &mut targets);
    (inputs, targets)
}

/// [`pseudo_batch`] writing into caller-owned buffers.
///
/// `inputs` and `targets` are resized reusing their capacity, so a
/// training loop drawing same-sized batches allocates nothing here.
/// Draws and results are bitwise identical to [`pseudo_batch`].
///
/// # Panics
///
/// Panics if the population is empty or `n == 0`.
pub fn pseudo_batch_into(
    pop: &Population,
    n: usize,
    rng: &mut StdRng,
    inputs: &mut Mat,
    targets: &mut Mat,
) {
    assert!(
        !pop.is_empty(),
        "cannot draw pseudo-samples from an empty population"
    );
    assert!(n > 0, "batch size must be positive");
    let d = pop.design(0).len();
    let m1 = pop.metrics(0).len();
    inputs.resize_reset(n, 2 * d);
    targets.resize_reset(n, m1);
    for k in 0..n {
        let i = rng.random_range(0..pop.len());
        let j = rng.random_range(0..pop.len());
        let xi = pop.design(i);
        let xj = pop.design(j);
        for t in 0..d {
            inputs[(k, t)] = xi[t];
            inputs[(k, d + t)] = xj[t] - xi[t];
        }
        for (t, &v) in pop.metrics(j).iter().enumerate() {
            targets[(k, t)] = if v.is_finite() { v } else { 0.0 };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Spec;
    use rand::SeedableRng;

    fn spec() -> Vec<Spec> {
        vec![Spec::at_least("m1", 1, 1.0)]
    }

    fn pop3() -> Population {
        let mut pop = Population::new();
        let specs = spec();
        let cfg = FomConfig::default();
        pop.push(vec![0.1, 0.2], vec![5.0, 2.0], &specs, cfg); // feasible, fom 5
        pop.push(vec![0.3, 0.4], vec![1.0, 0.5], &specs, cfg); // infeasible, fom 1.5
        pop.push(vec![0.5, 0.6], vec![2.0, 3.0], &specs, cfg); // feasible, fom 2
        pop
    }

    #[test]
    fn push_computes_fom_and_feasibility() {
        let pop = pop3();
        assert_eq!(pop.len(), 3);
        assert!(pop.feasible(0));
        assert!(!pop.feasible(1));
        assert!((pop.fom(1) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn best_vs_best_feasible() {
        let pop = pop3();
        assert_eq!(pop.best(), Some(1)); // lowest FoM overall
        assert_eq!(pop.best_feasible(), Some(2)); // lowest feasible FoM
    }

    #[test]
    fn elite_indices_sorted_by_fom() {
        let pop = pop3();
        assert_eq!(pop.elite_indices(2), vec![1, 2]);
        assert_eq!(pop.elite_indices(10).len(), 3);
    }

    #[test]
    fn pseudo_batch_shapes_and_identity_pairs() {
        let pop = pop3();
        let mut rng = StdRng::seed_from_u64(1);
        let (x, y) = pseudo_batch(&pop, 32, &mut rng);
        assert_eq!(x.rows(), 32);
        assert_eq!(x.cols(), 4); // 2d
        assert_eq!(y.cols(), 2); // m+1
                                 // Invariant: x_i + Δx must be one of the population designs, and the
                                 // target must be that design's metrics.
        for k in 0..32 {
            let xi = [x[(k, 0)], x[(k, 1)]];
            let dst = [xi[0] + x[(k, 2)], xi[1] + x[(k, 3)]];
            let found = (0..pop.len()).find(|&i| {
                (pop.design(i)[0] - dst[0]).abs() < 1e-12
                    && (pop.design(i)[1] - dst[1]).abs() < 1e-12
            });
            let j = found.expect("destination must be a population design");
            assert_eq!(y.row(k), pop.metrics(j));
        }
    }

    #[test]
    fn metric_matrix_replaces_non_finite() {
        let mut pop = Population::new();
        let specs = spec();
        pop.push(vec![0.0], vec![f64::NAN, 1.0], &specs, FomConfig::default());
        let m = pop.metric_matrix();
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(0, 1)], 1.0);
    }

    #[test]
    fn empty_population_best_is_none() {
        let pop = Population::new();
        assert_eq!(pop.best(), None);
        assert_eq!(pop.best_feasible(), None);
    }
}
