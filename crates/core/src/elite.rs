//! The elite solution set (Fig. 2 of the paper): the `N_es` best designs by
//! FoM, whose bounding box restricts actor actions via Eq. 6.

use crate::population::Population;

/// The elite solution set `X^ES` (or shared `X^SES`).
///
/// Rebuilt each iteration from the designs *visible* to its owner: the whole
/// total design set for the shared variant, or the initial set plus one
/// actor's own simulations for the individual variant.
#[derive(Debug, Clone)]
pub struct EliteSet {
    capacity: usize,
    designs: Vec<Vec<f64>>,
    foms: Vec<f64>,
}

impl EliteSet {
    /// Creates an empty elite set holding at most `capacity` designs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "elite set capacity must be positive");
        EliteSet {
            capacity,
            designs: Vec::new(),
            foms: Vec::new(),
        }
    }

    /// Maximum number of designs retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of designs currently held.
    pub fn len(&self) -> usize {
        self.designs.len()
    }

    /// `true` before the first rebuild.
    pub fn is_empty(&self) -> bool {
        self.designs.is_empty()
    }

    /// Rebuilds the set from a population. When `visible` is provided, only
    /// those population indices are eligible (individual elite sets);
    /// otherwise the whole population is used (shared elite set).
    pub fn rebuild(&mut self, pop: &Population, visible: Option<&[usize]>) {
        self.designs.clear();
        self.foms.clear();
        match visible {
            None => {
                for i in pop.elite_indices(self.capacity) {
                    self.designs.push(pop.design(i).to_vec());
                    self.foms.push(pop.fom(i));
                }
            }
            Some(idx) => {
                let mut sorted: Vec<usize> = idx.to_vec();
                sorted.sort_by(|&a, &b| pop.fom(a).partial_cmp(&pop.fom(b)).expect("finite FoM"));
                for &i in sorted.iter().take(self.capacity) {
                    self.designs.push(pop.design(i).to_vec());
                    self.foms.push(pop.fom(i));
                }
            }
        }
    }

    /// The elite designs, best first.
    pub fn designs(&self) -> &[Vec<f64>] {
        &self.designs
    }

    /// FoM values aligned with [`EliteSet::designs`].
    pub fn foms(&self) -> &[f64] {
        &self.foms
    }

    /// The best design and its FoM.
    ///
    /// # Panics
    ///
    /// Panics on an empty set.
    pub fn best(&self) -> (&[f64], f64) {
        (&self.designs[0], self.foms[0])
    }

    /// Per-coordinate bounding box `(lb_rest, ub_rest)` of the elite designs
    /// (Eq. 6).
    ///
    /// # Panics
    ///
    /// Panics on an empty set.
    pub fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
        assert!(!self.is_empty(), "elite bounds need at least one design");
        let d = self.designs[0].len();
        let mut lb = vec![f64::INFINITY; d];
        let mut ub = vec![f64::NEG_INFINITY; d];
        for x in &self.designs {
            for (t, &v) in x.iter().enumerate() {
                lb[t] = lb[t].min(v);
                ub[t] = ub[t].max(v);
            }
        }
        (lb, ub)
    }

    /// Worst-minus-best elite FoM — how selective the set currently is.
    ///
    /// # Panics
    ///
    /// Panics on an empty set.
    pub fn fom_spread(&self) -> f64 {
        assert!(!self.is_empty(), "elite spread needs at least one design");
        self.foms[self.foms.len() - 1] - self.foms[0]
    }

    /// Volume of the elite bounding box (product of per-coordinate
    /// extents) — the region Eq. 6 confines actors to. Shrinks toward 0
    /// as the set concentrates.
    ///
    /// # Panics
    ///
    /// Panics on an empty set.
    pub fn bbox_volume(&self) -> f64 {
        let (lb, ub) = self.bounds();
        lb.iter().zip(&ub).map(|(&l, &u)| u - l).product()
    }

    /// Diagonal length of the elite bounding box, a volume-free scale of
    /// its extent (volume underflows quickly in high dimension).
    ///
    /// # Panics
    ///
    /// Panics on an empty set.
    pub fn bbox_diameter(&self) -> f64 {
        let (lb, ub) = self.bounds();
        lb.iter()
            .zip(&ub)
            .map(|(&l, &u)| (u - l) * (u - l))
            .sum::<f64>()
            .sqrt()
    }
}

/// Boundary violation of a candidate `y = x + Δx` against elite bounds
/// (Eq. 6): per-coordinate distance outside `[lb, ub]`.
#[cfg(test)]
pub(crate) fn boundary_violation(y: &[f64], lb: &[f64], ub: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    boundary_violation_into(y, lb, ub, &mut out);
    out
}

/// [`boundary_violation`] writing into a caller-owned buffer (cleared and
/// refilled, reusing its capacity).
pub(crate) fn boundary_violation_into(y: &[f64], lb: &[f64], ub: &[f64], out: &mut Vec<f64>) {
    out.clear();
    out.extend(
        y.iter()
            .zip(lb.iter().zip(ub))
            .map(|(&yi, (&l, &u))| (l - yi).max(0.0) + (yi - u).max(0.0)),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fom::FomConfig;
    use crate::problem::Spec;

    fn pop() -> Population {
        let specs = vec![Spec::at_least("m", 1, 1.0)];
        let cfg = FomConfig::default();
        let mut pop = Population::new();
        pop.push(vec![0.9, 0.9], vec![9.0, 2.0], &specs, cfg); // fom 9
        pop.push(vec![0.1, 0.5], vec![1.0, 2.0], &specs, cfg); // fom 1
        pop.push(vec![0.5, 0.1], vec![3.0, 2.0], &specs, cfg); // fom 3
        pop.push(vec![0.3, 0.3], vec![2.0, 2.0], &specs, cfg); // fom 2
        pop
    }

    #[test]
    fn rebuild_keeps_best_by_fom() {
        let mut es = EliteSet::new(2);
        es.rebuild(&pop(), None);
        assert_eq!(es.len(), 2);
        assert_eq!(es.best().1, 1.0);
        assert_eq!(es.designs()[1], vec![0.3, 0.3]);
    }

    #[test]
    fn visible_filter_restricts_eligibility() {
        let mut es = EliteSet::new(2);
        es.rebuild(&pop(), Some(&[0, 2]));
        assert_eq!(es.best().1, 3.0); // index 1 (fom 1) is not visible
        assert_eq!(es.len(), 2);
    }

    #[test]
    fn bounds_cover_elite_box() {
        let mut es = EliteSet::new(3);
        es.rebuild(&pop(), None);
        let (lb, ub) = es.bounds();
        assert_eq!(lb, vec![0.1, 0.1]);
        assert_eq!(ub, vec![0.5, 0.5]);
    }

    #[test]
    fn boundary_violation_measures_outside_distance() {
        let lb = vec![0.2, 0.2];
        let ub = vec![0.8, 0.8];
        assert_eq!(boundary_violation(&[0.5, 0.5], &lb, &ub), vec![0.0, 0.0]);
        let v = boundary_violation(&[0.1, 0.9], &lb, &ub);
        assert!((v[0] - 0.1).abs() < 1e-12);
        assert!((v[1] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn geometry_stats_measure_the_elite_box() {
        let mut es = EliteSet::new(3);
        es.rebuild(&pop(), None);
        // Members: foms 1, 2, 3; designs span [0.1, 0.5] per coordinate.
        assert!((es.fom_spread() - 2.0).abs() < 1e-12);
        assert!((es.bbox_volume() - 0.16).abs() < 1e-12);
        assert!((es.bbox_diameter() - (2.0f64 * 0.16).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn singleton_set_has_degenerate_geometry() {
        let mut es = EliteSet::new(1);
        es.rebuild(&pop(), None);
        assert_eq!(es.fom_spread(), 0.0);
        assert_eq!(es.bbox_volume(), 0.0);
        assert_eq!(es.bbox_diameter(), 0.0);
    }

    #[test]
    fn capacity_larger_than_population_is_fine() {
        let mut es = EliteSet::new(50);
        es.rebuild(&pop(), None);
        assert_eq!(es.len(), 4);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = EliteSet::new(0);
    }
}
