//! CSV exporters for runs, traces and populations — so results can be
//! analyzed outside Rust (pandas, gnuplot, …) without any serialization
//! dependency.

use std::fmt::Write as _;

use crate::maopt::RunResult;
use crate::problem::SizingProblem;
use crate::trace::SimKind;

fn kind_str(kind: SimKind) -> &'static str {
    match kind {
        SimKind::Init => "init",
        SimKind::Actor => "actor",
        SimKind::NearSample => "near_sample",
        SimKind::Baseline => "baseline",
    }
}

/// Renders a run's trace as CSV: one row per simulation with FoM,
/// best-so-far, feasibility, target metric and provenance.
pub fn trace_csv(result: &RunResult) -> String {
    let mut out = String::from("sim,kind,fom,best_fom,feasible,target\n");
    for e in result.trace.entries() {
        let _ = writeln!(
            out,
            "{},{},{:.9e},{:.9e},{},{:.9e}",
            e.sim,
            kind_str(e.kind),
            e.fom,
            e.best_fom,
            e.feasible,
            e.target
        );
    }
    out
}

/// Renders the full population as CSV: normalized design variables, then
/// physical values, then the metric vector.
pub fn population_csv(result: &RunResult, problem: &dyn SizingProblem) -> String {
    let pop = &result.population;
    let mut out = String::from("index,fom,feasible");
    for p in problem.params() {
        let _ = write!(out, ",{}_norm", p.name);
    }
    for p in problem.params() {
        let _ = write!(
            out,
            ",{}_{}",
            p.name,
            if p.unit.is_empty() { "phys" } else { p.unit }
        );
    }
    for m in problem.metric_names() {
        let _ = write!(out, ",{m}");
    }
    out.push('\n');
    for i in 0..pop.len() {
        let _ = write!(out, "{},{:.9e},{}", i, pop.fom(i), pop.feasible(i));
        for v in pop.design(i) {
            let _ = write!(out, ",{v:.6}");
        }
        for v in problem.denormalize(pop.design(i)) {
            let _ = write!(out, ",{v:.6e}");
        }
        for v in pop.metrics(i) {
            let _ = write!(out, ",{v:.6e}");
        }
        out.push('\n');
    }
    out
}

/// Renders the best feasible design as a human-readable sizing report.
pub fn sizing_report(result: &RunResult, problem: &dyn SizingProblem) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "method: {}", result.label);
    match result.population.best_feasible() {
        None => {
            let _ = writeln!(out, "no fully feasible design found");
        }
        Some(idx) => {
            let pop = &result.population;
            let _ = writeln!(out, "best feasible design (FoM {:.4e}):", pop.fom(idx));
            let phys = problem.denormalize(pop.design(idx));
            for (p, v) in problem.params().iter().zip(phys) {
                let _ = writeln!(out, "  {:>6} = {:>12.4} {}", p.name, v, p.unit);
            }
            let _ = writeln!(out, "metrics:");
            for (name, v) in problem.metric_names().iter().zip(pop.metrics(idx)) {
                let _ = writeln!(out, "  {name:>22} = {v:.6e}");
            }
            let _ = writeln!(out, "spec check:");
            for s in problem.specs() {
                let v = pop.metrics(idx)[s.metric_index];
                let _ = writeln!(
                    out,
                    "  {:>22} : {} (value {v:.4e}, bound {:.4e})",
                    s.name,
                    if s.is_met(v) { "met" } else { "VIOLATED" },
                    s.bound
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::ConstrainedToy;
    use crate::runner::{sample_initial_set, Optimizer};
    use crate::MaOptConfig;

    fn small_result() -> (ConstrainedToy, RunResult) {
        let p = ConstrainedToy::new(3);
        let init = sample_initial_set(&p, 15, 3);
        let cfg = MaOptConfig {
            hidden: vec![16, 16],
            critic_steps: 10,
            actor_steps: 5,
            n_samples: 50,
            ..MaOptConfig::ma_opt(3)
        };
        let r = cfg.optimize(&p, &init, 9, 3);
        (p, r)
    }

    #[test]
    fn trace_csv_has_one_row_per_entry() {
        let (_, r) = small_result();
        let csv = trace_csv(&r);
        assert!(csv.starts_with("sim,kind,"));
        assert_eq!(csv.lines().count(), 1 + r.trace.entries().len());
        assert!(csv.contains("init"));
        assert!(csv.contains("actor"));
    }

    #[test]
    fn population_csv_columns_are_complete() {
        let (p, r) = small_result();
        let csv = population_csv(&r, &p);
        let header = csv.lines().next().unwrap();
        // 3 fixed + d norm + d phys + metrics
        let expected = 3 + 3 + 3 + p.metric_names().len();
        assert_eq!(header.split(',').count(), expected);
        assert_eq!(csv.lines().count(), 1 + r.population.len());
    }

    #[test]
    fn sizing_report_mentions_every_spec() {
        let (p, r) = small_result();
        let report = sizing_report(&r, &p);
        if r.success() {
            for s in p.specs() {
                assert!(
                    report.contains(&s.name),
                    "missing spec {} in:\n{report}",
                    s.name
                );
            }
            assert!(report.contains("best feasible design"));
        } else {
            assert!(report.contains("no fully feasible design"));
        }
    }
}
