//! The figure-of-merit function `g[f(x)]` (Eq. 2 of the paper).
//!
//! ```text
//! g[f(x)] = w₀·f₀(x) + Σᵢ min(1, max(0, wᵢ·|fᵢ(x) − cᵢ| / cᵢ))
//! ```
//!
//! As written in the paper the absolute value would also penalize metrics
//! that *over-satisfy* their constraint; consistent with DNN-Opt (which
//! MA-Opt extends) and with the paper's own success-rate semantics, the
//! penalty term is taken to be the **violation** only — zero when the spec
//! is met. This is the interpretation implemented here and documented in
//! `DESIGN.md`.

use crate::problem::Spec;

/// Weights for the FoM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FomConfig {
    /// Weight `w₀` applied to the target metric (the paper uses metric
    /// values in SI units with `w₀ = 1`).
    pub w0: f64,
}

impl Default for FomConfig {
    fn default() -> Self {
        FomConfig { w0: 1.0 }
    }
}

/// Per-spec clipped penalty terms `min(1, wᵢ·violationᵢ)`.
pub fn spec_violations(metrics: &[f64], specs: &[Spec]) -> Vec<f64> {
    specs
        .iter()
        .map(|s| (s.weight * s.violation(metrics[s.metric_index])).min(1.0))
        .collect()
}

/// Evaluates the FoM (Eq. 2). Lower is better; a fully feasible design's
/// FoM equals `w₀ · f₀`.
///
/// A non-finite target metric (failed simulation) is replaced by a large
/// finite penalty so FoM ordering stays total.
pub fn fom(metrics: &[f64], specs: &[Spec], config: FomConfig) -> f64 {
    let target = if metrics[0].is_finite() {
        metrics[0]
    } else {
        1e3
    };
    let penalty: f64 = spec_violations(metrics, specs).iter().sum();
    config.w0 * target + penalty
}

/// `true` when every spec is satisfied.
pub fn is_feasible(metrics: &[f64], specs: &[Spec]) -> bool {
    specs.iter().all(|s| s.is_met(metrics[s.metric_index]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Spec;

    fn specs() -> Vec<Spec> {
        vec![
            Spec::at_least("gain", 1, 60.0),
            Spec::at_most("noise", 2, 30e-3),
        ]
    }

    #[test]
    fn feasible_design_fom_is_target() {
        let metrics = [0.7e-3, 75.0, 10e-3];
        let specs = specs();
        assert!(is_feasible(&metrics, &specs));
        assert!((fom(&metrics, &specs, FomConfig::default()) - 0.7e-3).abs() < 1e-15);
    }

    #[test]
    fn violations_add_penalties() {
        let metrics = [0.7e-3, 30.0, 60e-3]; // gain 50% low, noise 100% high
        let specs = specs();
        assert!(!is_feasible(&metrics, &specs));
        let g = fom(&metrics, &specs, FomConfig::default());
        assert!((g - (0.7e-3 + 0.5 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn penalties_clip_at_one() {
        let metrics = [0.0, -1e9, 1e9]; // absurdly violated
        let specs = specs();
        let g = fom(&metrics, &specs, FomConfig::default());
        assert!((g - 2.0).abs() < 1e-12, "each penalty clips at 1: {g}");
    }

    #[test]
    fn w0_scales_target_only() {
        let metrics = [2.0, 30.0, 10e-3];
        let specs = specs();
        let g1 = fom(&metrics, &specs, FomConfig { w0: 1.0 });
        let g2 = fom(&metrics, &specs, FomConfig { w0: 10.0 });
        assert!((g2 - g1 - 18.0).abs() < 1e-12);
    }

    #[test]
    fn failed_sim_is_heavily_penalized() {
        let metrics = [f64::NAN, f64::NAN, f64::NAN];
        let specs = specs();
        let g = fom(&metrics, &specs, FomConfig::default());
        assert!(g >= 1e3, "failed sim FoM {g}");
        assert!(g.is_finite());
    }

    #[test]
    fn over_satisfaction_is_not_penalized() {
        // This encodes the documented Eq. 2 interpretation.
        let metrics = [1.0, 1000.0, 1e-9];
        let specs = specs();
        assert_eq!(spec_violations(&metrics, &specs), vec![0.0, 0.0]);
    }

    #[test]
    fn fom_orders_by_violation_size() {
        let specs = specs();
        let bad = fom(&[0.5e-3, 40.0, 10e-3], &specs, FomConfig::default());
        let worse = fom(&[0.5e-3, 20.0, 10e-3], &specs, FomConfig::default());
        assert!(worse > bad);
    }
}
