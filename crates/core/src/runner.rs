//! Experiment runner: the paper's protocol of 10 independent runs per
//! method with a shared initial sample set per run, producing the
//! statistics reported in Tables II/IV/VI and the FoM-vs-simulations curves
//! of Fig. 5.

use std::sync::Arc;
use std::time::Duration;

use maopt_exec::{CounterSnapshot, EvalEngine, SimCache};
use maopt_obs::{Journal, Manifest, Record, RunEnd};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::checkpoint::RunCheckpointer;
use crate::maopt::{MaOpt, MaOptConfig, RunResult};
use crate::problem::{EngineProblem, SizingProblem};

/// Anything that can run the paper's optimization protocol — MA-Opt and its
/// ablations implement this here; the BO baseline implements it in
/// `maopt-bo`.
pub trait Optimizer: Send + Sync {
    /// Display name for reports.
    fn name(&self) -> String;

    /// Runs one optimization with the given pre-simulated initial set,
    /// simulation budget and RNG seed.
    fn optimize(
        &self,
        problem: &dyn SizingProblem,
        init: &[(Vec<f64>, Vec<f64>)],
        budget: usize,
        seed: u64,
    ) -> RunResult;

    /// Like [`Optimizer::optimize`], but running every simulation and
    /// internal fan-out through the given [`EvalEngine`]. Implementations
    /// must keep the result bitwise identical for any worker count; the
    /// default ignores the engine and runs the plain serial path.
    fn optimize_with(
        &self,
        problem: &dyn SizingProblem,
        init: &[(Vec<f64>, Vec<f64>)],
        budget: usize,
        seed: u64,
        engine: &EvalEngine,
    ) -> RunResult {
        let _ = engine;
        self.optimize(problem, init, budget, seed)
    }

    /// Like [`Optimizer::optimize_with`], additionally streaming run
    /// internals into the given [`Journal`]. The default wraps
    /// [`Optimizer::optimize_with`] between a [`Manifest`] and a
    /// [`RunEnd`] record — optimizers without internal instrumentation
    /// (e.g. the BO baseline) still produce a valid, if shallow, journal.
    /// Implementations must keep results bitwise identical to
    /// [`Optimizer::optimize_with`] whether or not the journal is enabled.
    fn optimize_observed(
        &self,
        problem: &dyn SizingProblem,
        init: &[(Vec<f64>, Vec<f64>)],
        budget: usize,
        seed: u64,
        engine: &EvalEngine,
        journal: &Journal,
    ) -> RunResult {
        if !journal.enabled() {
            return self.optimize_with(problem, init, budget, seed, engine);
        }
        let (version, build) = Manifest::build_info();
        journal.write(&Record::Manifest(Manifest {
            label: self.name(),
            problem: problem.name().to_string(),
            dim: problem.dim(),
            num_metrics: problem.num_metrics(),
            seed,
            budget,
            init_size: init.len(),
            jobs: engine.jobs(),
            version,
            build,
            config: maopt_obs::json::Json::obj(vec![]),
        }));
        let before = engine.telemetry().snapshot();
        let result = self.optimize_with(problem, init, budget, seed, engine);
        journal.write(&Record::RunEnd(RunEnd {
            rounds: 0, // unknown for un-instrumented optimizers
            sims: result.trace.num_sims(),
            best_fom: result.best_fom(),
            success: result.success(),
            total_s: result.timings.total.as_secs_f64(),
            training_s: result.timings.training.as_secs_f64(),
            simulation_s: result.timings.simulation.as_secs_f64(),
            near_sampling_s: result.timings.near_sampling.as_secs_f64(),
            engine: engine.telemetry().snapshot().since(&before),
        }));
        journal.flush();
        result
    }

    /// Like [`Optimizer::optimize_observed`], additionally persisting
    /// crash-recovery checkpoints through the given [`RunCheckpointer`]
    /// (see [`crate::MaOpt::run_resumable`]). The default ignores the
    /// checkpointer — optimizers without checkpoint support (e.g. the BO
    /// baseline) simply run un-checkpointed rather than failing.
    #[allow(clippy::too_many_arguments)]
    fn optimize_resumable(
        &self,
        problem: &dyn SizingProblem,
        init: &[(Vec<f64>, Vec<f64>)],
        budget: usize,
        seed: u64,
        engine: &EvalEngine,
        journal: &Journal,
        ckpt: Option<&RunCheckpointer>,
    ) -> RunResult {
        let _ = ckpt;
        self.optimize_observed(problem, init, budget, seed, engine, journal)
    }
}

impl Optimizer for MaOptConfig {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn optimize(
        &self,
        problem: &dyn SizingProblem,
        init: &[(Vec<f64>, Vec<f64>)],
        budget: usize,
        seed: u64,
    ) -> RunResult {
        let config = MaOptConfig {
            seed,
            ..self.clone()
        };
        MaOpt::new(config).run(problem, init.to_vec(), budget)
    }

    fn optimize_with(
        &self,
        problem: &dyn SizingProblem,
        init: &[(Vec<f64>, Vec<f64>)],
        budget: usize,
        seed: u64,
        engine: &EvalEngine,
    ) -> RunResult {
        let config = MaOptConfig {
            seed,
            ..self.clone()
        };
        MaOpt::new(config).run_with(problem, init.to_vec(), budget, engine)
    }

    fn optimize_observed(
        &self,
        problem: &dyn SizingProblem,
        init: &[(Vec<f64>, Vec<f64>)],
        budget: usize,
        seed: u64,
        engine: &EvalEngine,
        journal: &Journal,
    ) -> RunResult {
        let config = MaOptConfig {
            seed,
            ..self.clone()
        };
        MaOpt::new(config).run_observed(problem, init.to_vec(), budget, engine, journal)
    }

    fn optimize_resumable(
        &self,
        problem: &dyn SizingProblem,
        init: &[(Vec<f64>, Vec<f64>)],
        budget: usize,
        seed: u64,
        engine: &EvalEngine,
        journal: &Journal,
        ckpt: Option<&RunCheckpointer>,
    ) -> RunResult {
        let config = MaOptConfig {
            seed,
            ..self.clone()
        };
        MaOpt::new(config).run_resumable(problem, init.to_vec(), budget, engine, journal, ckpt)
    }
}

/// Samples and simulates `n` uniform random designs — the paper's `X_init`.
pub fn sample_initial_set(
    problem: &dyn SizingProblem,
    n: usize,
    seed: u64,
) -> Vec<(Vec<f64>, Vec<f64>)> {
    sample_initial_set_with(problem, n, seed, &EvalEngine::default())
}

/// [`sample_initial_set`] running its simulations on the given engine's
/// worker pool. The designs come from a serial RNG stream, so the result
/// is identical for any worker count.
pub fn sample_initial_set_with(
    problem: &dyn SizingProblem,
    n: usize,
    seed: u64,
    engine: &EvalEngine,
) -> Vec<(Vec<f64>, Vec<f64>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let d = problem.dim();
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.random_range(0.0..1.0)).collect())
        .collect();
    let _span = engine.telemetry().span("init_sampling");
    let metrics = engine.evaluate_batch(&EngineProblem(problem), &xs);
    xs.into_iter().zip(metrics).collect()
}

/// Aggregate statistics of one method over repeated runs — one row of the
/// paper's comparison tables.
#[derive(Debug, Clone)]
pub struct MethodStats {
    /// Method label.
    pub name: String,
    /// Runs that found a fully feasible design.
    pub successes: usize,
    /// Total runs.
    pub runs: usize,
    /// Best (minimum) target metric among feasible designs over all runs.
    pub min_target: Option<f64>,
    /// Mean of each run's final best FoM.
    pub avg_fom: f64,
    /// `log10` of the average FoM (the paper's reporting scale), or `None`
    /// when the average is non-positive and the logarithm is undefined
    /// (instead of a silent `NaN`/`-inf` poisoning downstream comparisons).
    pub log10_avg_fom: Option<f64>,
    /// Summed wall-clock runtime across runs.
    pub total_runtime: Duration,
    /// Mean best-FoM-so-far at each simulation count (Fig. 5 series).
    pub fom_curve: Vec<f64>,
    /// Evaluation-engine counters (simulations, cache hits/misses, retries,
    /// faults) accumulated while this method ran.
    pub exec: CounterSnapshot,
    /// The per-run results, for deeper inspection.
    pub results: Vec<RunResult>,
}

impl MethodStats {
    /// Success rate as a `"s/r"` string (paper notation).
    pub fn success_rate(&self) -> String {
        format!("{}/{}", self.successes, self.runs)
    }

    /// `log10(avg_fom)` with the undefined case mapped to `-inf` — the
    /// sentinel the report CSVs print (and `f64::from_str` round-trips).
    pub fn log10_avg_fom_or_neg_inf(&self) -> f64 {
        self.log10_avg_fom.unwrap_or(f64::NEG_INFINITY)
    }
}

/// Runs `runs` independent repetitions of one optimizer on a problem.
///
/// Run `r` uses the initial set `inits[r]` and seed `base_seed + r`, so that
/// different methods given the same `inits` see identical starting data —
/// the paper's protocol.
///
/// # Panics
///
/// Panics if `inits.len() < runs`.
pub fn run_method(
    optimizer: &dyn Optimizer,
    problem: &dyn SizingProblem,
    inits: &[Vec<(Vec<f64>, Vec<f64>)>],
    runs: usize,
    budget: usize,
    base_seed: u64,
) -> MethodStats {
    run_method_with(
        optimizer,
        problem,
        inits,
        runs,
        budget,
        base_seed,
        &EvalEngine::serial(),
    )
}

/// [`run_method`] with run-level parallelism and engine-backed simulations.
///
/// Runs are mutually independent (run `r` is fully determined by `inits[r]`
/// and `base_seed + r`), so executing them concurrently on the engine's
/// pool yields bitwise-identical per-run results to the serial loop; only
/// wall-clock changes. The returned [`MethodStats::exec`] holds the engine
/// counters accumulated by this method.
///
/// # Panics
///
/// Panics if `inits.len() < runs`.
pub fn run_method_with(
    optimizer: &dyn Optimizer,
    problem: &dyn SizingProblem,
    inits: &[Vec<(Vec<f64>, Vec<f64>)>],
    runs: usize,
    budget: usize,
    base_seed: u64,
    engine: &EvalEngine,
) -> MethodStats {
    run_method_observed(
        optimizer,
        problem,
        inits,
        runs,
        budget,
        base_seed,
        engine,
        &[],
    )
}

/// [`run_method_with`] with one run [`Journal`] per run: run `r` streams
/// its internals into `journals[r]`; runs beyond `journals.len()` (and all
/// runs, when `journals` is empty) get the disabled no-op journal.
/// Per-run results are bitwise identical to [`run_method_with`].
///
/// # Panics
///
/// Panics if `inits.len() < runs`.
#[allow(clippy::too_many_arguments)]
pub fn run_method_observed(
    optimizer: &dyn Optimizer,
    problem: &dyn SizingProblem,
    inits: &[Vec<(Vec<f64>, Vec<f64>)>],
    runs: usize,
    budget: usize,
    base_seed: u64,
    engine: &EvalEngine,
    journals: &[Journal],
) -> MethodStats {
    run_method_nested(
        optimizer, problem, inits, runs, budget, base_seed, engine, engine, journals,
    )
}

/// [`run_method_observed`] with hierarchical job budgeting: repetitions
/// fan out over `run_engine`'s pool while each repetition's simulations
/// and training lanes fan out over `engine`'s pool, so up to
/// `run_engine.jobs() * engine.jobs()` simulations are in flight at once.
/// Passing the same engine for both levels collapses to the single-pool
/// behaviour (run-level fan-out with inline per-run simulation, since a
/// pool never re-enters itself).
///
/// Run `r` is fully determined by `inits[r]` and the per-run seed stream
/// `base_seed + r`, so per-run results — and every non-timing field of
/// the per-run journals — are bitwise identical for any worker count at
/// either level. To keep that true for the journals' engine counter
/// deltas, every run executes on a clone of `engine` carrying an
/// *isolated* [`maopt_exec::Telemetry`] — fresh counters and metrics,
/// but the same flight recorder when one is attached, so tracing never
/// perturbs journal bytes — and a fresh [`SimCache`] when `engine` has
/// one, at the cost of cross-run cache sharing. The per-run telemetry is
/// merged back into `engine`'s sink after each run, so aggregate
/// accounting is preserved.
///
/// # Panics
///
/// Panics if `inits.len() < runs`.
#[allow(clippy::too_many_arguments)]
pub fn run_method_nested(
    optimizer: &dyn Optimizer,
    problem: &dyn SizingProblem,
    inits: &[Vec<(Vec<f64>, Vec<f64>)>],
    runs: usize,
    budget: usize,
    base_seed: u64,
    run_engine: &EvalEngine,
    engine: &EvalEngine,
    journals: &[Journal],
) -> MethodStats {
    run_method_resumable(
        optimizer,
        problem,
        inits,
        runs,
        budget,
        base_seed,
        run_engine,
        engine,
        journals,
        &[],
    )
}

/// [`run_method_nested`] with crash-safe checkpointing: run `r` persists
/// its state through `ckpts[r]` after every round and — when that
/// checkpointer has resume enabled — continues from an existing snapshot.
/// Runs beyond `ckpts.len()` (and all runs, when `ckpts` is empty) are
/// un-checkpointed. Per-run results and journals are bitwise identical
/// (non-timing fields) to an un-checkpointed, uninterrupted run.
///
/// # Panics
///
/// Panics if `inits.len() < runs`.
#[allow(clippy::too_many_arguments)]
pub fn run_method_resumable(
    optimizer: &dyn Optimizer,
    problem: &dyn SizingProblem,
    inits: &[Vec<(Vec<f64>, Vec<f64>)>],
    runs: usize,
    budget: usize,
    base_seed: u64,
    run_engine: &EvalEngine,
    engine: &EvalEngine,
    journals: &[Journal],
    ckpts: &[RunCheckpointer],
) -> MethodStats {
    assert!(inits.len() >= runs, "need one initial set per run");
    let disabled = Journal::disabled();
    let before = engine.telemetry().snapshot();
    let results: Vec<RunResult> = {
        let _span = engine
            .telemetry()
            .span(&format!("method:{}", optimizer.name()));
        run_engine.map((0..runs).collect(), |_, r| {
            let journal = journals.get(r).unwrap_or(&disabled);
            // Isolated telemetry: fresh counters per run (journal counter
            // deltas stay independent of sibling runs) while the flight
            // recorder, when attached, keeps one global timeline.
            let mut run_eng = engine
                .clone()
                .with_telemetry(Arc::new(engine.telemetry().isolated()));
            if engine.cache().is_some() {
                run_eng = run_eng.with_cache(Arc::new(SimCache::new()));
            }
            let result = optimizer.optimize_resumable(
                problem,
                &inits[r],
                budget,
                base_seed + r as u64,
                &run_eng,
                journal,
                ckpts.get(r),
            );
            engine.telemetry().merge_from(run_eng.telemetry());
            result
        })
    };
    let exec = engine.telemetry().snapshot().since(&before);
    summarize(optimizer.name(), results, budget, exec)
}

/// Builds the aggregate statistics from raw run results.
pub fn summarize(
    name: String,
    results: Vec<RunResult>,
    budget: usize,
    exec: CounterSnapshot,
) -> MethodStats {
    let runs = results.len();
    let successes = results.iter().filter(|r| r.success()).count();
    let min_target = results
        .iter()
        .filter_map(RunResult::best_feasible_target)
        .fold(None, |acc: Option<f64>, t| {
            Some(acc.map_or(t, |a| a.min(t)))
        });
    let final_foms: Vec<f64> = results.iter().map(RunResult::best_fom).collect();
    let avg_fom = maopt_linalg::stats::mean(&final_foms);
    let total_runtime = results.iter().map(|r| r.timings.total).sum();

    let mut fom_curve = vec![0.0; budget];
    for r in &results {
        let series = r.trace.best_fom_series(budget);
        for (acc, v) in fom_curve.iter_mut().zip(series) {
            *acc += v;
        }
    }
    for v in &mut fom_curve {
        *v /= runs.max(1) as f64;
    }

    MethodStats {
        name,
        successes,
        runs,
        min_target,
        avg_fom,
        // log10 of a non-positive average is NaN (or -inf at exactly zero);
        // report that case as an explicit None instead.
        log10_avg_fom: (avg_fom > 0.0).then(|| avg_fom.log10()),
        total_runtime,
        fom_curve,
        exec,
        results,
    }
}

/// Pre-simulates one initial set per run (shared across methods).
pub fn make_initial_sets(
    problem: &dyn SizingProblem,
    runs: usize,
    init_size: usize,
    base_seed: u64,
) -> Vec<Vec<(Vec<f64>, Vec<f64>)>> {
    make_initial_sets_with(problem, runs, init_size, base_seed, &EvalEngine::default())
}

/// [`make_initial_sets`] running its simulations on the given engine.
pub fn make_initial_sets_with(
    problem: &dyn SizingProblem,
    runs: usize,
    init_size: usize,
    base_seed: u64,
    engine: &EvalEngine,
) -> Vec<Vec<(Vec<f64>, Vec<f64>)>> {
    (0..runs)
        .map(|r| {
            sample_initial_set_with(
                problem,
                init_size,
                base_seed.wrapping_add(1000 * r as u64),
                engine,
            )
        })
        .collect()
}

/// [`make_initial_sets_with`] fanning the per-run sets over `run_engine`'s
/// pool while each set's simulations run on `engine` — the same
/// hierarchical budgeting as [`run_method_nested`]. Set `r` draws from the
/// serial seed stream `base_seed + 1000 * r` regardless of scheduling, so
/// the result is bitwise identical to the serial loop.
pub fn make_initial_sets_nested(
    problem: &dyn SizingProblem,
    runs: usize,
    init_size: usize,
    base_seed: u64,
    run_engine: &EvalEngine,
    engine: &EvalEngine,
) -> Vec<Vec<(Vec<f64>, Vec<f64>)>> {
    run_engine.map((0..runs).collect(), |_, r: usize| {
        sample_initial_set_with(
            problem,
            init_size,
            base_seed.wrapping_add(1000 * r as u64),
            engine,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::{ConstrainedToy, Sphere};

    fn tiny(cfg: MaOptConfig) -> MaOptConfig {
        MaOptConfig {
            hidden: vec![16, 16],
            critic_steps: 15,
            actor_steps: 8,
            n_samples: 100,
            ..cfg
        }
    }

    #[test]
    fn initial_set_shapes_and_determinism() {
        let p = Sphere::new(3);
        let a = sample_initial_set(&p, 12, 5);
        let b = sample_initial_set(&p, 12, 5);
        assert_eq!(a.len(), 12);
        assert_eq!(a[0].0.len(), 3);
        assert_eq!(a[0].1.len(), 2);
        assert_eq!(a[3].0, b[3].0, "same seed, same designs");
        let c = sample_initial_set(&p, 12, 6);
        assert_ne!(a[0].0, c[0].0, "different seed, different designs");
    }

    #[test]
    fn run_method_aggregates_over_runs() {
        let p = ConstrainedToy::new(2);
        let inits = make_initial_sets(&p, 3, 15, 1);
        let stats = run_method(&tiny(MaOptConfig::ma_opt2(0)), &p, &inits, 3, 8, 100);
        assert_eq!(stats.runs, 3);
        assert_eq!(stats.results.len(), 3);
        assert_eq!(stats.fom_curve.len(), 8);
        assert!(stats.avg_fom.is_finite());
        assert!(stats.success_rate().ends_with("/3"));
        // Best-so-far curves are monotone non-increasing.
        for w in stats.fom_curve.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn min_target_only_counts_feasible_runs() {
        let p = ConstrainedToy::new(2);
        let inits = make_initial_sets(&p, 2, 25, 2);
        let stats = run_method(&tiny(MaOptConfig::ma_opt(1)), &p, &inits, 2, 16, 50);
        if stats.successes > 0 {
            let t = stats.min_target.unwrap();
            assert!(t.is_finite() && t > 0.0);
        } else {
            assert!(stats.min_target.is_none());
        }
    }

    #[test]
    fn optimizer_trait_respects_seed_override() {
        let p = Sphere::new(2);
        let init = sample_initial_set(&p, 10, 9);
        let cfg = tiny(MaOptConfig::ma_opt2(999));
        let a = cfg.optimize(&p, &init, 4, 1);
        let b = cfg.optimize(&p, &init, 4, 1);
        let c = cfg.optimize(&p, &init, 4, 2);
        assert_eq!(a.best_fom(), b.best_fom());
        // Different seeds usually explore differently; allow rare collision
        // by checking trace-level difference instead of strict inequality.
        let same = a.trace.best_fom_series(4) == c.trace.best_fom_series(4);
        assert!(!same || a.best_fom() == c.best_fom());
    }
}
