//! Per-run checkpoint policy: where snapshots go, whether to resume from
//! one, and (for crash testing) when to halt.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use maopt_ckpt::{load_if_exists, save_snapshot, RunSnapshot};

/// Checkpoint configuration for one optimization run.
///
/// Passed to [`crate::MaOpt::run_resumable`]; the optimizer saves an
/// atomic [`RunSnapshot`] to [`RunCheckpointer::path`] after every
/// completed round, and — when [`RunCheckpointer::with_resume`] is set —
/// restores from an existing snapshot before the first round, continuing
/// bitwise identically to an uninterrupted run.
#[derive(Debug, Clone)]
pub struct RunCheckpointer {
    path: PathBuf,
    resume: bool,
    halt_after_round: Option<usize>,
    stop_flag: Option<Arc<AtomicBool>>,
}

impl RunCheckpointer {
    /// Checkpoints to `path` (one file per run, atomically overwritten
    /// each round), without resuming.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        RunCheckpointer {
            path: path.into(),
            resume: false,
            halt_after_round: None,
            stop_flag: None,
        }
    }

    /// Whether to restore from an existing snapshot at `path` before the
    /// first round. With no snapshot on disk the run starts fresh.
    #[must_use]
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Deterministic in-process crash simulation: return from the run
    /// right after durably saving the checkpoint of round `round`,
    /// without writing the run-end record — exactly the state a `SIGKILL`
    /// between rounds leaves behind.
    #[must_use]
    pub fn with_halt_after_round(mut self, round: usize) -> Self {
        self.halt_after_round = Some(round);
        self
    }

    /// The snapshot file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether resume was requested.
    pub fn resume(&self) -> bool {
        self.resume
    }

    pub(crate) fn halt_after_round(&self) -> Option<usize> {
        self.halt_after_round
    }

    /// Cooperative shutdown: when `flag` becomes `true`, the run returns
    /// early at the next round boundary, *after* durably checkpointing
    /// that round and without writing the run-end record — the same
    /// resumable state [`RunCheckpointer::with_halt_after_round`]
    /// produces, but triggered externally (SIGTERM handlers, a daemon's
    /// cancel path) instead of at a predetermined round.
    #[must_use]
    pub fn with_stop_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.stop_flag = Some(flag);
        self
    }

    /// Whether an attached stop flag has been raised.
    pub fn stop_requested(&self) -> bool {
        self.stop_flag
            .as_ref()
            .is_some_and(|f| f.load(Ordering::SeqCst))
    }

    /// The snapshot to resume from, if resuming was requested and one
    /// exists.
    ///
    /// # Panics
    ///
    /// Panics when the snapshot exists but fails checksum or schema
    /// validation — resuming from corrupt state would silently diverge,
    /// so it is refused loudly. (The atomic save protocol makes this
    /// unreachable short of external file damage.)
    pub(crate) fn load_for_resume(&self) -> Option<RunSnapshot> {
        if !self.resume {
            return None;
        }
        load_if_exists(&self.path)
            .unwrap_or_else(|e| panic!("cannot resume from {}: {e}", self.path.display()))
    }

    /// Durably saves `snap`.
    ///
    /// # Panics
    ///
    /// Panics when the snapshot cannot be persisted: continuing would let
    /// the run silently outpace its last durable state, breaking the
    /// crash-recovery contract the caller asked for.
    pub(crate) fn save(&self, snap: &RunSnapshot) {
        save_snapshot(&self.path, snap)
            .unwrap_or_else(|e| panic!("cannot checkpoint to {}: {e}", self.path.display()));
    }
}
