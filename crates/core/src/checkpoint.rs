//! Per-run checkpoint policy: where snapshots go, whether to resume from
//! one, and (for crash testing) when to halt.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use maopt_ckpt::{load_snapshot_gen, save_snapshot_gen, snapshot_store, GenStore, RunSnapshot};

/// Checkpoint configuration for one optimization run.
///
/// Passed to [`crate::MaOpt::run_resumable`]; the optimizer saves an
/// atomic [`RunSnapshot`] generation (`<path>.0001.bin`,
/// `<path>.0002.bin`, …, newest [`RunCheckpointer::keep`] retained)
/// after every completed round, and — when
/// [`RunCheckpointer::with_resume`] is set — restores from the newest
/// *good* generation before the first round, continuing bitwise
/// identically to an uninterrupted run from that generation. A corrupt
/// newest generation (torn write, bit rot) is rolled past, counted in
/// [`RunCheckpointer::rollbacks`]; a failed save is tolerated (counted
/// in [`RunCheckpointer::write_failures`]) because the previous good
/// generation remains the durable resume point.
#[derive(Debug, Clone)]
pub struct RunCheckpointer {
    path: PathBuf,
    resume: bool,
    keep: usize,
    halt_after_round: Option<usize>,
    stop_flag: Option<Arc<AtomicBool>>,
    progress: Option<Arc<AtomicU64>>,
    rollbacks: Arc<AtomicU64>,
    write_failures: Arc<AtomicU64>,
}

impl RunCheckpointer {
    /// Checkpoints generations rotated beside `path` (the logical base
    /// name; actual files are `<path>.NNNN.bin`), without resuming.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        RunCheckpointer {
            path: path.into(),
            resume: false,
            keep: maopt_ckpt::DEFAULT_KEEP,
            halt_after_round: None,
            stop_flag: None,
            progress: None,
            rollbacks: Arc::new(AtomicU64::new(0)),
            write_failures: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Whether to restore from an existing snapshot generation before
    /// the first round. With no snapshot on disk the run starts fresh.
    #[must_use]
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// How many snapshot generations to retain (at least 1; default
    /// [`maopt_ckpt::DEFAULT_KEEP`]). More generations widen the
    /// rollback window at the cost of disk.
    #[must_use]
    pub fn with_keep(mut self, keep: usize) -> Self {
        self.keep = keep.max(1);
        self
    }

    /// Deterministic in-process crash simulation: return from the run
    /// right after durably saving the checkpoint of round `round`,
    /// without writing the run-end record — exactly the state a `SIGKILL`
    /// between rounds leaves behind.
    #[must_use]
    pub fn with_halt_after_round(mut self, round: usize) -> Self {
        self.halt_after_round = Some(round);
        self
    }

    /// The logical snapshot base path (generations rotate beside it).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether resume was requested.
    pub fn resume(&self) -> bool {
        self.resume
    }

    /// Snapshot generations retained after each save.
    pub fn keep(&self) -> usize {
        self.keep
    }

    pub(crate) fn halt_after_round(&self) -> Option<usize> {
        self.halt_after_round
    }

    /// Cooperative shutdown: when `flag` becomes `true`, the run returns
    /// early at the next round boundary, *after* durably checkpointing
    /// that round and without writing the run-end record — the same
    /// resumable state [`RunCheckpointer::with_halt_after_round`]
    /// produces, but triggered externally (SIGTERM handlers, a daemon's
    /// cancel path) instead of at a predetermined round.
    #[must_use]
    pub fn with_stop_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.stop_flag = Some(flag);
        self
    }

    /// Liveness beacon for external watchdogs: after every durable save
    /// (and on resume), `1 + round` is stored here — so a supervisor can
    /// detect a run whose checkpoint round has stopped advancing without
    /// touching the filesystem. Zero means "no checkpoint yet".
    #[must_use]
    pub fn with_progress(mut self, progress: Arc<AtomicU64>) -> Self {
        self.progress = Some(progress);
        self
    }

    /// Whether an attached stop flag has been raised.
    pub fn stop_requested(&self) -> bool {
        self.stop_flag
            .as_ref()
            .is_some_and(|f| f.load(Ordering::SeqCst))
    }

    /// Corrupt newer generations rolled past when resuming.
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks.load(Ordering::SeqCst)
    }

    /// Snapshot saves that failed and were tolerated (the previous good
    /// generation remained the durable resume point).
    pub fn write_failures(&self) -> u64 {
        self.write_failures.load(Ordering::SeqCst)
    }

    fn store(&self) -> GenStore {
        snapshot_store(&self.path).with_keep(self.keep)
    }

    fn beat(&self, round: u64) {
        if let Some(p) = &self.progress {
            p.store(1 + round, Ordering::SeqCst);
        }
    }

    /// The snapshot to resume from, if resuming was requested and a good
    /// generation (or legacy un-rotated snapshot) exists. Corrupt newer
    /// generations are rolled past and counted in
    /// [`RunCheckpointer::rollbacks`].
    ///
    /// # Panics
    ///
    /// Panics when snapshots exist but *none* validates — resuming from
    /// nothing would silently restart the run from scratch, so the
    /// unrecoverable store is refused loudly.
    pub(crate) fn load_for_resume(&self) -> Option<RunSnapshot> {
        if !self.resume {
            return None;
        }
        let load = load_snapshot_gen(&self.store())
            .unwrap_or_else(|e| panic!("cannot resume from {}: {e}", self.path.display()))?;
        if load.rolled_back > 0 {
            self.rollbacks.fetch_add(load.rolled_back, Ordering::SeqCst);
            eprintln!(
                "maopt: rolled back {} corrupt snapshot generation(s) of {}; resuming from generation {} (round {})",
                load.rolled_back,
                self.path.display(),
                load.generation,
                load.value.round,
            );
        }
        self.beat(load.value.round);
        Some(load.value)
    }

    /// Durably saves `snap` as the next snapshot generation. A failed
    /// save is tolerated — counted in
    /// [`RunCheckpointer::write_failures`] and logged — because the
    /// previous good generation still satisfies the crash-recovery
    /// contract: a crash now resumes from one round earlier, which is a
    /// state an uninterrupted run also passed through deterministically.
    pub(crate) fn save(&self, snap: &RunSnapshot) {
        match save_snapshot_gen(&self.store(), snap) {
            Ok(_) => self.beat(snap.round),
            Err(e) => {
                self.write_failures.fetch_add(1, Ordering::SeqCst);
                eprintln!(
                    "maopt: checkpoint of round {} to {} failed ({e}); previous generation remains the resume point",
                    snap.round,
                    self.path.display(),
                );
            }
        }
    }
}
