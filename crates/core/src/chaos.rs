//! Core-side face of the engine's fault-injection (chaos) layer: a
//! [`SizingProblem`] wrapper whose evaluations panic, return non-finite
//! metrics or stall past the engine deadline on the deterministic
//! per-design schedule of [`maopt_exec::chaos::ChaosProblem`].
//!
//! The schedule is a pure function of the chaos seed and the design
//! vector, so a reference run, an interrupted run and its resumed
//! continuation — each with its own fresh [`ChaoticProblem`] instance —
//! all inject identical faults. Only the per-design attempt state is
//! in-memory; pair the wrapper with an engine [`maopt_exec::SimCache`] so
//! designs simulated before a crash never re-enter the injector.

use maopt_exec::chaos::{ChaosConfig, ChaosProblem, ChaosStats};
use maopt_exec::Evaluate;

use crate::problem::{ParamSpec, SizingProblem, Spec};

/// Adapter exposing an owned [`SizingProblem`] to the engine's
/// [`Evaluate`] trait (the borrowing [`crate::EngineProblem`] cannot sit
/// inside an owning wrapper).
#[derive(Debug)]
pub struct ProblemEval<P>(pub P);

impl<P: SizingProblem> Evaluate for ProblemEval<P> {
    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        self.0.evaluate(x)
    }

    fn num_metrics(&self) -> usize {
        self.0.num_metrics()
    }

    fn failure_metrics(&self) -> Vec<f64> {
        self.0.failure_metrics()
    }

    fn is_failure(&self, metrics: &[f64]) -> bool {
        self.0.is_failure(metrics)
    }
}

/// A [`SizingProblem`] with seeded fault injection on every evaluation.
///
/// All problem metadata (name, parameters, specs, failure handling)
/// passes straight through to the wrapped problem; only
/// [`SizingProblem::evaluate`] goes through the injector, which may panic,
/// return all-NaN metrics, or sleep past the engine's deadline for the
/// first [`ChaosConfig::faults_per_design`] attempts of each scheduled
/// design. Run it on an engine whose
/// [`maopt_exec::FaultPolicy::max_retries`] covers that budget (and whose
/// deadline is shorter than [`ChaosConfig::stall`]) and every run
/// completes with exact, reproducible fault counters.
#[derive(Debug)]
pub struct ChaoticProblem<P> {
    chaos: ChaosProblem<ProblemEval<P>>,
}

impl<P: SizingProblem> ChaoticProblem<P> {
    /// Wraps `problem` with the given fault schedule.
    ///
    /// # Panics
    ///
    /// Panics when a rate is outside `[0, 1]` or the rates sum past 1.
    pub fn new(problem: P, config: ChaosConfig) -> Self {
        ChaoticProblem {
            chaos: ChaosProblem::new(ProblemEval(problem), config),
        }
    }

    /// Counts of faults injected so far.
    pub fn stats(&self) -> ChaosStats {
        self.chaos.stats()
    }

    /// The schedule in effect.
    pub fn config(&self) -> ChaosConfig {
        self.chaos.config()
    }

    /// The wrapped problem.
    pub fn inner(&self) -> &P {
        &self.chaos.inner().0
    }
}

impl<P: SizingProblem> SizingProblem for ChaoticProblem<P> {
    fn name(&self) -> &str {
        self.inner().name()
    }

    fn params(&self) -> &[ParamSpec] {
        self.inner().params()
    }

    fn metric_names(&self) -> Vec<String> {
        self.inner().metric_names()
    }

    fn specs(&self) -> &[Spec] {
        self.inner().specs()
    }

    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        Evaluate::evaluate(&self.chaos, x)
    }

    fn failure_metrics(&self) -> Vec<f64> {
        self.inner().failure_metrics()
    }

    fn is_failure(&self, metrics: &[f64]) -> bool {
        self.inner().is_failure(metrics)
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use maopt_exec::{EvalEngine, FaultPolicy};

    use super::*;
    use crate::problems::Sphere;

    #[test]
    fn metadata_passes_through_and_faults_are_injected() {
        let chaotic = ChaoticProblem::new(
            Sphere::new(3),
            ChaosConfig {
                seed: 4,
                panic_rate: 0.5,
                non_finite_rate: 0.3,
                stall_rate: 0.0,
                stall: Duration::ZERO,
                faults_per_design: 1,
            },
        );
        assert_eq!(chaotic.name(), Sphere::new(3).name());
        assert_eq!(chaotic.dim(), 3);
        assert_eq!(
            SizingProblem::num_metrics(&chaotic),
            SizingProblem::num_metrics(&Sphere::new(3))
        );

        let engine = EvalEngine::serial().with_policy(FaultPolicy {
            max_retries: 1,
            ..FaultPolicy::default()
        });
        let target = crate::EngineProblem(&chaotic);
        let clean = Sphere::new(3);
        for i in 0..40 {
            let x = vec![i as f64 / 40.0; 3];
            assert_eq!(
                engine.evaluate_one(&target, &x),
                SizingProblem::evaluate(&clean, &x),
                "retries must recover the clean metrics"
            );
        }
        let stats = chaotic.stats();
        assert!(stats.total() > 0, "rates 0.8 over 40 designs must fire");
        let snap = engine.telemetry().snapshot();
        assert_eq!(snap.panics, stats.panics);
        assert_eq!(snap.non_finite, stats.non_finite);
        assert_eq!(snap.failures, 0);
    }
}
