//! Actor networks (Eqs. 5–6): each actor maps a design `x` to a proposed
//! change `Δx` and is trained to minimize the FoM of the critic's
//! prediction, plus a large penalty for stepping outside the elite set's
//! bounding box.

use maopt_linalg::Mat;
use maopt_nn::{Activation, Adam, Mlp, Workspace};
use rand::rngs::StdRng;
use rand::Rng;

use crate::critic::{Critic, PredictScratch, Surrogate};
use crate::elite::boundary_violation_into;
use crate::fom::FomConfig;
use crate::population::Population;
use crate::problem::Spec;

/// One actor network `θ^{μᵢ}`.
#[derive(Debug, Clone)]
pub struct Actor {
    mlp: Mlp,
    adam: Adam,
    dim: usize,
    action_scale: f64,
}

impl Actor {
    /// Creates an actor for `dim` design variables; hidden widths as in the
    /// paper (`[100, 100]`). The tanh output is scaled by `action_scale`
    /// (in normalized design-space units).
    pub fn new(dim: usize, hidden: &[usize], action_scale: f64, lr: f64, seed: u64) -> Self {
        assert!(action_scale > 0.0, "action scale must be positive");
        let mut widths = Vec::with_capacity(hidden.len() + 2);
        widths.push(dim);
        widths.extend_from_slice(hidden);
        widths.push(dim);
        let mlp = Mlp::with_output_activation(&widths, Activation::Relu, Activation::Tanh, seed);
        let adam = Adam::new(&mlp, lr);
        Actor {
            mlp,
            adam,
            dim,
            action_scale,
        }
    }

    /// Design-space dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Captures network weights and optimizer moments for checkpointing.
    pub(crate) fn ckpt_dump(&self) -> maopt_ckpt::ActorCkpt {
        maopt_ckpt::ActorCkpt {
            mlp: self.mlp.state(),
            adam: self.adam.state(),
        }
    }

    /// Restores state captured by [`Actor::ckpt_dump`] into an actor of
    /// the same architecture.
    pub(crate) fn ckpt_restore(&mut self, state: &maopt_ckpt::ActorCkpt) {
        self.mlp.restore(&state.mlp);
        self.adam.restore(&state.adam);
    }

    /// Proposes an action `Δx` for a single state.
    pub fn act(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim, "state length mismatch");
        self.mlp
            .predict(x)
            .iter()
            .map(|a| a * self.action_scale)
            .collect()
    }

    /// Line 8 of Algorithm 1: among the elite designs, picks the one whose
    /// actor-proposed successor has the best critic-predicted FoM, and
    /// returns that successor (clipped to the design box) with its
    /// predicted FoM and the index of the winning parent in
    /// `elite_designs` — the parent identifies whose operating point can
    /// warm-start the proposal's simulation. Ties keep the first winner,
    /// so the parent choice is deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `elite_designs` is empty.
    pub fn best_elite_proposal(
        &self,
        critic: &Critic,
        elite_designs: &[Vec<f64>],
        specs: &[Spec],
        fom_cfg: FomConfig,
    ) -> (Vec<f64>, f64, usize) {
        let mut scratch = PredictScratch::default();
        let mut best: Option<(f64, Vec<f64>, usize)> = None;
        for (i, x) in elite_designs.iter().enumerate() {
            let a = self.act(x);
            let pred = Surrogate::predict_raw_with(critic, x, &a, &mut scratch);
            let g = crate::fom::fom(pred, specs, fom_cfg);
            let cand: Vec<f64> = x
                .iter()
                .zip(&a)
                .map(|(xi, ai)| (xi + ai).clamp(0.0, 1.0))
                .collect();
            match &best {
                Some((bg, _, _)) if *bg <= g => {}
                _ => best = Some((g, cand, i)),
            }
        }
        let (g, cand, parent) = best.expect("elite set is non-empty");
        (cand, g, parent)
    }

    /// Trains the actor through the *frozen* critic for `steps` batches of
    /// `batch` states drawn from the population (Eq. 5), with the elite
    /// bounding-box penalty of Eq. 6 weighted by `lambda`.
    ///
    /// Returns the final batch loss.
    #[allow(clippy::too_many_arguments)]
    pub fn train(
        &mut self,
        critic: &mut Critic,
        pop: &Population,
        specs: &[Spec],
        fom_cfg: FomConfig,
        elite_bounds: (&[f64], &[f64]),
        lambda: f64,
        steps: usize,
        batch: usize,
        rng: &mut StdRng,
    ) -> f64 {
        assert_eq!(critic.dim(), self.dim, "actor/critic dimension mismatch");
        let (lb, ub) = elite_bounds;
        let m1 = critic.num_metrics();
        let d = self.dim;
        let mut last = f64::NAN;

        // All step-loop buffers are hoisted and reused: after the first
        // step warms them up, the loop body performs no heap allocations.
        let scaler = critic.scaler().clone();
        let mut actor_ws = Workspace::new();
        let mut critic_ws = Workspace::new();
        let mut states = Mat::default();
        let mut actions = Mat::default();
        let mut critic_in = Mat::default();
        let mut grad_q = Mat::default();
        let mut grad_actions = Mat::default();
        let mut q_raw = Vec::new();
        let mut y = Vec::new();
        let mut viol = Vec::new();

        for _ in 0..steps {
            // Sample a batch of states from the total design set.
            states.resize_reset(batch, d);
            for b in 0..batch {
                let i = rng.random_range(0..pop.len());
                states.row_mut(b).copy_from_slice(pop.design(i));
            }

            // Forward: actions, then critic prediction (activations cached
            // in the workspaces for the backward passes).
            let raw_actions = self.mlp.forward_ws(&states, &mut actor_ws);
            actions.copy_from(raw_actions);
            actions.scale_mut(self.action_scale);

            critic_in.resize_reset(batch, 2 * d);
            for b in 0..batch {
                critic_in.row_mut(b)[..d].copy_from_slice(states.row(b));
                critic_in.row_mut(b)[d..].copy_from_slice(actions.row(b));
            }
            let q_scaled = critic.forward_scaled_ws(&critic_in, &mut critic_ws);

            // Loss 1: mean FoM of the de-scaled predictions.
            // dL/dq_scaled[b][j] = (1/B)·dg/dq_raw[j] · d(q_raw)/d(q_scaled)
            let mut gfom = 0.0;
            grad_q.resize_reset(batch, m1);
            for b in 0..batch {
                q_raw.clear();
                q_raw.extend(
                    q_scaled
                        .row(b)
                        .iter()
                        .enumerate()
                        .map(|(j, &v)| scaler.inverse_value(v, j)),
                );
                gfom += crate::fom::fom(&q_raw, specs, fom_cfg);
                // Target metric term.
                let range0 = inv_scale(&scaler, 0);
                grad_q[(b, 0)] += fom_cfg.w0 * range0 / batch as f64;
                // Constraint penalty terms (clipped at 1).
                for s in specs {
                    let v = s.weight * s.violation(q_raw[s.metric_index]);
                    if v > 0.0 && v < 1.0 {
                        let j = s.metric_index;
                        grad_q[(b, j)] +=
                            s.weight * s.violation_grad(q_raw[j]) * inv_scale(&scaler, j)
                                / batch as f64;
                    }
                }
            }
            gfom /= batch as f64;

            // Backprop through the frozen critic; keep the action half.
            let grad_critic_in = critic.input_gradient_ws(&grad_q, &mut critic_ws);
            grad_actions.resize_reset(batch, d);
            for b in 0..batch {
                grad_actions
                    .row_mut(b)
                    .copy_from_slice(&grad_critic_in.row(b)[d..]);
            }

            // Loss 2: mean ‖λ·viol‖₂ over the batch (Eq. 6).
            let mut gbound = 0.0;
            for b in 0..batch {
                y.clear();
                y.extend(states.row(b).iter().zip(actions.row(b)).map(|(x, a)| x + a));
                boundary_violation_into(&y, lb, ub, &mut viol);
                let norm: f64 = viol
                    .iter()
                    .map(|v| (lambda * v) * (lambda * v))
                    .sum::<f64>()
                    .sqrt();
                gbound += norm;
                if norm > 1e-12 {
                    for (t, &v) in viol.iter().enumerate() {
                        if v > 0.0 {
                            let yt = y[t];
                            // dv/dy = −1 below lb, +1 above ub.
                            let sign = if yt < lb[t] { -1.0 } else { 1.0 };
                            grad_actions[(b, t)] +=
                                lambda * lambda * v * sign / (norm * batch as f64);
                        }
                    }
                }
            }
            gbound /= batch as f64;

            // Chain through the action scaling into the actor network.
            grad_actions.scale_mut(self.action_scale);
            self.mlp.zero_grad();
            self.mlp.backward_ws(&grad_actions, &mut actor_ws, true);
            self.adam.step(&mut self.mlp);
            last = gfom + gbound;
        }
        last
    }
}

/// `d(raw)/d(scaled)` for output column `j` (0 for degenerate columns).
fn inv_scale(scaler: &maopt_nn::MinMaxScaler, j: usize) -> f64 {
    let s = scaler.scale_factor(j);
    if s == 0.0 {
        0.0
    } else {
        1.0 / s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elite::boundary_violation;
    use rand::SeedableRng;

    /// Analytic toy: metrics = [ (x₀+Δx₀−0.7)² + (x₁+Δx₁−0.3)², 5 ].
    /// The constraint (metric 1 ≥ 1) is always met, so the optimal action
    /// moves any state toward (0.7, 0.3).
    fn toy_setup() -> (Population, Critic, Vec<Spec>) {
        let specs = vec![Spec::at_least("m", 1, 1.0)];
        let cfg = FomConfig::default();
        let mut pop = Population::new();
        let mut seed = 99u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) % 1000) as f64 / 1000.0
        };
        for _ in 0..120 {
            let x = vec![next(), next()];
            let m0 = (x[0] - 0.7f64).powi(2) + (x[1] - 0.3f64).powi(2);
            pop.push(x, vec![m0, 5.0], &specs, cfg);
        }
        let mut critic = Critic::new(2, 2, &[32, 32], 3e-3, 11);
        critic.refit_scaler(&pop);
        let mut rng = StdRng::seed_from_u64(12);
        critic.train(&pop, 800, 32, &mut rng);
        (pop, critic, specs)
    }

    #[test]
    fn act_is_bounded_by_scale() {
        let actor = Actor::new(3, &[8], 0.25, 1e-3, 0);
        let a = actor.act(&[0.5, 0.5, 0.5]);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|v| v.abs() <= 0.25));
    }

    #[test]
    fn training_reduces_actor_loss_and_improves_proposals() {
        let (pop, mut critic, specs) = toy_setup();
        let mut actor = Actor::new(2, &[32, 32], 0.3, 1e-3, 13);
        let mut rng = StdRng::seed_from_u64(14);
        let lb = vec![0.0, 0.0];
        let ub = vec![1.0, 1.0];

        // True FoM improvement of the proposal from a probe state.
        let probe = [0.2, 0.8];
        let true_fom = |x: &[f64]| (x[0] - 0.7f64).powi(2) + (x[1] - 0.3f64).powi(2);
        let before = {
            let a = actor.act(&probe);
            true_fom(&[probe[0] + a[0], probe[1] + a[1]])
        };
        actor.train(
            &mut critic,
            &pop,
            &specs,
            FomConfig::default(),
            (&lb, &ub),
            10.0,
            400,
            32,
            &mut rng,
        );
        let after = {
            let a = actor.act(&probe);
            true_fom(&[probe[0] + a[0], probe[1] + a[1]])
        };
        assert!(
            after < before,
            "trained actor should move toward the optimum: {before} -> {after}"
        );
        assert!(after < true_fom(&probe), "proposal should beat staying put");
    }

    #[test]
    fn boundary_penalty_keeps_actions_inside_tight_box() {
        let (pop, mut critic, specs) = toy_setup();
        let mut actor = Actor::new(2, &[32, 32], 0.5, 1e-3, 15);
        let mut rng = StdRng::seed_from_u64(16);
        // Tight elite box far from the unconstrained optimum.
        let lb = vec![0.0, 0.6];
        let ub = vec![0.2, 0.9];
        actor.train(
            &mut critic,
            &pop,
            &specs,
            FomConfig::default(),
            (&lb, &ub),
            50.0,
            500,
            32,
            &mut rng,
        );
        // Proposals from states inside the box must stay near the box.
        let probe = [0.1, 0.75];
        let a = actor.act(&probe);
        let y = [probe[0] + a[0], probe[1] + a[1]];
        let viol = boundary_violation(&y, &lb, &ub);
        assert!(
            viol.iter().all(|&v| v < 0.15),
            "boundary penalty should restrain actions: y = {y:?}"
        );
    }

    #[test]
    fn dimension_mismatch_panics() {
        let (_, mut critic, specs) = toy_setup();
        let mut actor = Actor::new(3, &[8], 0.3, 1e-3, 17);
        let mut rng = StdRng::seed_from_u64(18);
        let pop3 = {
            let mut p = Population::new();
            p.push(
                vec![0.1, 0.2, 0.3],
                vec![1.0, 5.0],
                &specs,
                FomConfig::default(),
            );
            p
        };
        let lb = vec![0.0; 3];
        let ub = vec![1.0; 3];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            actor.train(
                &mut critic,
                &pop3,
                &specs,
                FomConfig::default(),
                (&lb, &ub),
                10.0,
                1,
                4,
                &mut rng,
            );
        }));
        assert!(result.is_err());
    }
}
