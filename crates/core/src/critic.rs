//! The critic network (Eq. 4): a regression surrogate of the circuit
//! simulator.
//!
//! Input is the concatenated `(x, Δx) ∈ R^{2d}`; output is the scaled metric
//! vector of the destination design `x + Δx`. Targets are min–max scaled per
//! metric column over the current population so that volts, hertz and amps
//! contribute comparably to the MSE loss; predictions are de-scaled back to
//! raw units for FoM evaluation.

use maopt_linalg::Mat;
use maopt_nn::{mse_loss_grad_into, Activation, Adam, MinMaxScaler, Mlp, Workspace};
use rand::rngs::StdRng;

use crate::population::{pseudo_batch_into, Population};

/// Reusable buffers for repeated single-row [`Surrogate::predict_raw_with`]
/// calls: the `1 × 2d` input matrix, the output row and the MLP workspace.
/// Warm after the first call; every subsequent same-shaped call allocates
/// nothing.
#[derive(Debug, Clone, Default)]
pub struct PredictScratch {
    input: Mat,
    out: Mat,
    ws: Workspace,
}

/// Anything that predicts raw metric vectors from `(x, Δx)` inputs — the
/// single [`Critic`] and the [`CriticEnsemble`] both qualify, so the
/// near-sampling method and proposal ranking work with either.
pub trait Surrogate {
    /// Design-space dimensionality `d`.
    fn dim(&self) -> usize;
    /// Output metric count `m + 1`.
    fn num_metrics(&self) -> usize;
    /// Batch prediction: `inputs` is `[n × 2d]`, result is raw metrics.
    fn predict_batch_raw(&self, inputs: &Mat) -> Mat;
    /// [`Surrogate::predict_batch_raw`] writing into a caller-owned
    /// buffer, routing the forward pass through `ws` where the
    /// implementation supports it. The default delegates to the
    /// allocating path; [`Critic`] overrides it with an allocation-free
    /// pass. Results are bitwise identical either way.
    fn predict_batch_raw_into(&self, inputs: &Mat, _ws: &mut Workspace, out: &mut Mat) {
        out.copy_from(&self.predict_batch_raw(inputs));
    }
    /// Single prediction of the raw metric vector of `x + Δx`.
    fn predict_raw(&self, x: &[f64], dx: &[f64]) -> Vec<f64> {
        let mut input = Vec::with_capacity(2 * self.dim());
        input.extend_from_slice(x);
        input.extend_from_slice(dx);
        let out = self.predict_batch_raw(&Mat::from_rows(&[&input]));
        out.into_vec()
    }
    /// [`Surrogate::predict_raw`] through caller-owned [`PredictScratch`]
    /// buffers — allocation-free once warm, for tight loops that predict
    /// one `(x, Δx)` pair at a time. The returned slice borrows the
    /// scratch and is valid until the next call.
    fn predict_raw_with<'s>(
        &self,
        x: &[f64],
        dx: &[f64],
        scratch: &'s mut PredictScratch,
    ) -> &'s [f64] {
        let d = self.dim();
        assert_eq!(x.len(), d, "state length mismatch");
        assert_eq!(dx.len(), d, "action length mismatch");
        scratch.input.resize_reset(1, 2 * d);
        scratch.input.row_mut(0)[..d].copy_from_slice(x);
        scratch.input.row_mut(0)[d..].copy_from_slice(dx);
        self.predict_batch_raw_into(&scratch.input, &mut scratch.ws, &mut scratch.out);
        scratch.out.row(0)
    }
}

/// Reusable buffers for an allocation-free [`Critic::train_traced`] loop:
/// the pseudo-sample batch, its scaled targets, the loss gradient, and the
/// MLP workspace. Owned by the critic and warmed up on the first training
/// step; every subsequent same-shaped step allocates nothing.
#[derive(Debug, Clone, Default)]
struct TrainScratch {
    inputs: Mat,
    targets_raw: Mat,
    targets: Mat,
    grad: Mat,
    ws: Workspace,
}

/// The critic: an MLP surrogate of the SPICE simulator.
#[derive(Debug, Clone)]
pub struct Critic {
    mlp: Mlp,
    adam: Adam,
    scaler: Option<MinMaxScaler>,
    dim: usize,
    num_metrics: usize,
    scratch: TrainScratch,
}

impl Critic {
    /// Creates a critic for `dim` design variables and `num_metrics`
    /// outputs, with the given hidden widths (the paper uses `[100, 100]`).
    pub fn new(dim: usize, num_metrics: usize, hidden: &[usize], lr: f64, seed: u64) -> Self {
        let mut widths = Vec::with_capacity(hidden.len() + 2);
        widths.push(2 * dim);
        widths.extend_from_slice(hidden);
        widths.push(num_metrics);
        let mlp = Mlp::new(&widths, Activation::Relu, seed);
        let adam = Adam::new(&mlp, lr);
        Critic {
            mlp,
            adam,
            scaler: None,
            dim,
            num_metrics,
            scratch: TrainScratch::default(),
        }
    }

    /// Design-space dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Output metric count `m + 1`.
    pub fn num_metrics(&self) -> usize {
        self.num_metrics
    }

    /// The fitted output scaler.
    ///
    /// # Panics
    ///
    /// Panics before the first [`Critic::refit_scaler`].
    pub fn scaler(&self) -> &MinMaxScaler {
        self.scaler.as_ref().expect("critic scaler not fitted yet")
    }

    /// Captures weights, optimizer moments and the fitted scaler for
    /// checkpointing. The scaler travels with the network because
    /// near-sampling rounds predict through the scaler fitted in the
    /// *previous* actor round — refitting on resume would diverge.
    pub(crate) fn ckpt_dump(&self) -> maopt_ckpt::CriticCkpt {
        maopt_ckpt::CriticCkpt {
            net: self.mlp.state(),
            adam: self.adam.state(),
            scaler: self.scaler.as_ref().map(MinMaxScaler::state),
        }
    }

    /// Restores state captured by [`Critic::ckpt_dump`] into a critic of
    /// the same architecture.
    pub(crate) fn ckpt_restore(&mut self, state: &maopt_ckpt::CriticCkpt) {
        self.mlp.restore(&state.net);
        self.adam.restore(&state.adam);
        self.scaler = state.scaler.as_ref().map(MinMaxScaler::from_state);
    }

    /// Refits the output scaler to the population's metric ranges. Call once
    /// per optimization iteration before training.
    pub fn refit_scaler(&mut self, pop: &Population) {
        self.scaler = Some(MinMaxScaler::fit(&pop.metric_matrix()));
    }

    /// Trains on `steps` random pseudo-sample batches of size `batch`
    /// (Eq. 3 + Eq. 4); returns the final batch MSE (in scaled units).
    ///
    /// # Panics
    ///
    /// Panics if the scaler has not been fitted or the population is empty.
    pub fn train(&mut self, pop: &Population, steps: usize, batch: usize, rng: &mut StdRng) -> f64 {
        self.train_traced(pop, steps, batch, rng, None)
    }

    /// [`Critic::train`] that additionally appends every batch loss to
    /// `trace` when one is given — the run journal's critic-loss
    /// trajectory. The training computation is identical either way.
    ///
    /// # Panics
    ///
    /// Panics if the scaler has not been fitted or the population is empty.
    pub fn train_traced(
        &mut self,
        pop: &Population,
        steps: usize,
        batch: usize,
        rng: &mut StdRng,
        mut trace: Option<&mut Vec<f64>>,
    ) -> f64 {
        // Disaggregate so the scaler borrow coexists with the mutable
        // mlp/adam/scratch borrows — no per-call scaler clone.
        let Critic {
            mlp,
            adam,
            scaler,
            scratch,
            ..
        } = self;
        let scaler = scaler.as_ref().expect("fit the scaler before training");
        let mut last = f64::NAN;
        for _ in 0..steps {
            pseudo_batch_into(
                pop,
                batch,
                rng,
                &mut scratch.inputs,
                &mut scratch.targets_raw,
            );
            scaler.transform_into(&scratch.targets_raw, &mut scratch.targets);
            let pred = mlp.forward_ws(&scratch.inputs, &mut scratch.ws);
            let loss = mse_loss_grad_into(pred, &scratch.targets, &mut scratch.grad);
            mlp.zero_grad();
            mlp.backward_ws(&scratch.grad, &mut scratch.ws, true);
            adam.step(mlp);
            last = loss;
            if let Some(t) = trace.as_deref_mut() {
                t.push(loss);
            }
        }
        last
    }

    /// Predicts the raw (de-scaled) metric vector of `x + Δx`.
    ///
    /// # Panics
    ///
    /// Panics if the scaler has not been fitted or input lengths are wrong.
    pub fn predict_raw(&self, x: &[f64], dx: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim, "state length mismatch");
        assert_eq!(dx.len(), self.dim, "action length mismatch");
        let mut input = Vec::with_capacity(2 * self.dim);
        input.extend_from_slice(x);
        input.extend_from_slice(dx);
        let scaled = self.mlp.predict(&input);
        self.scaler().inverse_row(&scaled)
    }

    /// Batch prediction: `inputs` is `[n × 2d]`, the result is raw metrics
    /// `[n × (m+1)]`.
    pub fn predict_batch_raw(&self, inputs: &Mat) -> Mat {
        assert_eq!(inputs.cols(), 2 * self.dim, "batch input width mismatch");
        let scaled = self.mlp.forward_inference(inputs);
        self.scaler().inverse_transform(&scaled)
    }

    /// Forward pass in scaled space with caches retained, enabling a
    /// subsequent [`Critic::input_gradient`] — used to train actors through
    /// the (frozen) critic.
    pub fn forward_scaled(&mut self, inputs: &Mat) -> Mat {
        self.mlp.forward(inputs)
    }

    /// Gradient of a scalar loss with respect to the critic *inputs*, given
    /// the loss gradient at the critic's scaled outputs. Critic parameters
    /// are left untouched (frozen).
    pub fn input_gradient(&mut self, grad_out_scaled: &Mat) -> Mat {
        self.mlp.backward_input_only(grad_out_scaled)
    }

    /// [`Critic::forward_scaled`] through a caller-owned [`Workspace`]:
    /// activations land in `ws` (the critic itself stays untouched) for a
    /// subsequent [`Critic::input_gradient_ws`]. Allocation-free once the
    /// workspace is warm; bitwise identical to the allocating path.
    pub fn forward_scaled_ws<'w>(&self, inputs: &Mat, ws: &'w mut Workspace) -> &'w Mat {
        self.mlp.forward_ws(inputs, ws)
    }

    /// [`Critic::input_gradient`] over the activations of a preceding
    /// [`Critic::forward_scaled_ws`] on the same workspace. Critic
    /// parameters are left untouched (frozen).
    pub fn input_gradient_ws<'w>(
        &mut self,
        grad_out_scaled: &Mat,
        ws: &'w mut Workspace,
    ) -> &'w Mat {
        self.mlp.backward_ws(grad_out_scaled, ws, false)
    }
}

impl Surrogate for Critic {
    fn dim(&self) -> usize {
        self.dim
    }

    fn num_metrics(&self) -> usize {
        self.num_metrics
    }

    fn predict_batch_raw(&self, inputs: &Mat) -> Mat {
        Critic::predict_batch_raw(self, inputs)
    }

    fn predict_batch_raw_into(&self, inputs: &Mat, ws: &mut Workspace, out: &mut Mat) {
        assert_eq!(inputs.cols(), 2 * self.dim, "batch input width mismatch");
        let scaled = self.mlp.forward_ws(inputs, ws);
        out.copy_from(scaled);
        self.scaler().inverse_transform_inplace(out);
    }
}

/// An ensemble of independently initialized and independently batched
/// critics whose raw predictions are averaged.
///
/// §II of the paper remarks that "using multiple regression models for
/// circuit simulation does improve optimization, but consumes more memory
/// resources than using one critic network" — this type implements that
/// evaluated-but-not-adopted variant so the trade-off can be measured
/// (see the `ablation_multi_critic` bench). With `n = 1` it degenerates to
/// the paper's single critic at zero overhead.
#[derive(Debug, Clone)]
pub struct CriticEnsemble {
    members: Vec<Critic>,
}

impl CriticEnsemble {
    /// Creates `n` critics with distinct initializations.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(
        n: usize,
        dim: usize,
        num_metrics: usize,
        hidden: &[usize],
        lr: f64,
        seed: u64,
    ) -> Self {
        assert!(n > 0, "ensemble needs at least one critic");
        let members = (0..n)
            .map(|i| Critic::new(dim, num_metrics, hidden, lr, seed ^ ((i as u64 + 1) << 32)))
            .collect();
        CriticEnsemble { members }
    }

    /// Number of member critics.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` is impossible after construction; provided for API symmetry.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Immutable access to a member.
    pub fn member(&self, i: usize) -> &Critic {
        &self.members[i % self.members.len()]
    }

    /// Mutable access to a member (actors train through one member each).
    pub fn member_mut(&mut self, i: usize) -> &mut Critic {
        let n = self.members.len();
        &mut self.members[i % n]
    }

    /// Total trainable parameter count — the memory cost the paper cites.
    pub fn param_count(&self) -> usize {
        self.members.iter().map(|c| c.mlp.param_count()).sum()
    }

    /// Captures every member's checkpoint state, in member order.
    pub(crate) fn ckpt_dump(&self) -> Vec<maopt_ckpt::CriticCkpt> {
        self.members.iter().map(Critic::ckpt_dump).collect()
    }

    /// Restores state captured by [`CriticEnsemble::ckpt_dump`].
    ///
    /// # Panics
    ///
    /// Panics when the member count disagrees with this ensemble.
    pub(crate) fn ckpt_restore(&mut self, states: &[maopt_ckpt::CriticCkpt]) {
        assert_eq!(
            states.len(),
            self.members.len(),
            "checkpointed critic count does not match ensemble"
        );
        for (member, state) in self.members.iter_mut().zip(states) {
            member.ckpt_restore(state);
        }
    }

    /// Refits every member's output scaler.
    pub fn refit_scaler(&mut self, pop: &Population) {
        for m in &mut self.members {
            m.refit_scaler(pop);
        }
    }

    /// Trains every member for `steps` batches each; the shared RNG hands
    /// different pseudo-sample batches to each member, decorrelating them.
    /// Returns the mean of the members' final losses.
    pub fn train(&mut self, pop: &Population, steps: usize, batch: usize, rng: &mut StdRng) -> f64 {
        self.train_traced(pop, steps, batch, rng, None)
    }

    /// [`CriticEnsemble::train`] with the members' per-step losses
    /// concatenated onto `trace` when one is given (member 0's `steps`
    /// losses first, then member 1's, …).
    pub fn train_traced(
        &mut self,
        pop: &Population,
        steps: usize,
        batch: usize,
        rng: &mut StdRng,
        mut trace: Option<&mut Vec<f64>>,
    ) -> f64 {
        let mut total = 0.0;
        for m in &mut self.members {
            total += m.train_traced(pop, steps, batch, rng, trace.as_deref_mut());
        }
        total / self.members.len() as f64
    }
}

impl Surrogate for CriticEnsemble {
    fn dim(&self) -> usize {
        self.members[0].dim()
    }

    fn num_metrics(&self) -> usize {
        self.members[0].num_metrics()
    }

    fn predict_batch_raw(&self, inputs: &Mat) -> Mat {
        let mut acc = self.members[0].predict_batch_raw(inputs);
        for m in &self.members[1..] {
            acc.axpy_mut(1.0, &m.predict_batch_raw(inputs));
        }
        acc.scale_mut(1.0 / self.members.len() as f64);
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fom::FomConfig;
    use crate::problem::Spec;
    use rand::SeedableRng;

    /// A tiny analytic "simulator": metrics = [Σx², 10·x₀].
    fn make_population(n: usize) -> Population {
        let specs = vec![Spec::at_least("m", 1, 1.0)];
        let cfg = FomConfig::default();
        let mut pop = Population::new();
        let mut seed = 0x12345u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 1000) as f64 / 1000.0
        };
        for _ in 0..n {
            let x = vec![next(), next()];
            let metrics = vec![x[0] * x[0] + x[1] * x[1], 10.0 * x[0]];
            pop.push(x, metrics, &specs, cfg);
        }
        pop
    }

    #[test]
    fn shapes_and_accessors() {
        let c = Critic::new(3, 4, &[16, 16], 1e-3, 0);
        assert_eq!(c.dim(), 3);
        assert_eq!(c.num_metrics(), 4);
    }

    #[test]
    fn training_reduces_loss() {
        let pop = make_population(60);
        let mut c = Critic::new(2, 2, &[32, 32], 3e-3, 1);
        c.refit_scaler(&pop);
        let mut rng = StdRng::seed_from_u64(2);
        let first = c.train(&pop, 1, 32, &mut rng);
        let last = c.train(&pop, 400, 32, &mut rng);
        assert!(last < first, "loss should fall: {first} -> {last}");
        assert!(last < 0.01, "final loss {last}");
    }

    #[test]
    fn predictions_approximate_simulator() {
        let pop = make_population(80);
        let mut c = Critic::new(2, 2, &[32, 32], 3e-3, 3);
        c.refit_scaler(&pop);
        let mut rng = StdRng::seed_from_u64(4);
        c.train(&pop, 600, 32, &mut rng);
        // Predict the metrics of a known destination via (x, Δx).
        let x = [0.2, 0.3];
        let dst = [0.5, 0.4];
        let dx = [dst[0] - x[0], dst[1] - x[1]];
        let pred = c.predict_raw(&x, &dx);
        let truth = [dst[0] * dst[0] + dst[1] * dst[1], 10.0 * dst[0]];
        assert!(
            (pred[0] - truth[0]).abs() < 0.15,
            "m0 {} vs {}",
            pred[0],
            truth[0]
        );
        assert!(
            (pred[1] - truth[1]).abs() < 1.5,
            "m1 {} vs {}",
            pred[1],
            truth[1]
        );
    }

    #[test]
    fn batch_prediction_matches_single() {
        let pop = make_population(40);
        let mut c = Critic::new(2, 2, &[16], 1e-3, 5);
        c.refit_scaler(&pop);
        let mut rng = StdRng::seed_from_u64(6);
        c.train(&pop, 50, 16, &mut rng);
        let x = [0.1, 0.9];
        let dx = [0.3, -0.2];
        let single = c.predict_raw(&x, &dx);
        let batch = Mat::from_rows(&[&[0.1, 0.9, 0.3, -0.2]]);
        let out = c.predict_batch_raw(&batch);
        assert!((single[0] - out[(0, 0)]).abs() < 1e-12);
        assert!((single[1] - out[(0, 1)]).abs() < 1e-12);
    }

    #[test]
    fn scratch_prediction_matches_allocating_path() {
        let pop = make_population(40);
        let mut c = Critic::new(2, 2, &[16], 1e-3, 5);
        c.refit_scaler(&pop);
        let mut rng = StdRng::seed_from_u64(6);
        c.train(&pop, 50, 16, &mut rng);
        let mut scratch = PredictScratch::default();
        for (x, dx) in [([0.1, 0.9], [0.3, -0.2]), ([0.7, 0.2], [0.0, 0.05])] {
            let alloc = Surrogate::predict_raw(&c, &x, &dx);
            assert_eq!(alloc, c.predict_raw_with(&x, &dx, &mut scratch).to_vec());
        }
        // The ensemble relies on the default batch-into path — identical too.
        let mut ens = CriticEnsemble::new(2, 2, 2, &[16], 1e-3, 7);
        ens.refit_scaler(&pop);
        ens.train(&pop, 20, 16, &mut rng);
        let alloc = Surrogate::predict_raw(&ens, &[0.4, 0.5], &[0.1, 0.1]);
        assert_eq!(
            alloc,
            ens.predict_raw_with(&[0.4, 0.5], &[0.1, 0.1], &mut scratch)
                .to_vec()
        );
    }

    #[test]
    #[should_panic(expected = "scaler not fitted")]
    fn predict_before_fit_panics() {
        let c = Critic::new(2, 2, &[8], 1e-3, 0);
        let _ = c.predict_raw(&[0.0, 0.0], &[0.0, 0.0]);
    }

    #[test]
    fn ensemble_of_one_matches_single_critic() {
        let pop = make_population(40);
        let mut single = Critic::new(2, 2, &[16], 1e-3, 7 ^ (1u64 << 32));
        let mut ens = CriticEnsemble::new(1, 2, 2, &[16], 1e-3, 7);
        single.refit_scaler(&pop);
        ens.refit_scaler(&pop);
        let mut r1 = StdRng::seed_from_u64(8);
        let mut r2 = StdRng::seed_from_u64(8);
        single.train(&pop, 40, 16, &mut r1);
        ens.train(&pop, 40, 16, &mut r2);
        let x = [0.3, 0.4];
        let dx = [0.1, -0.1];
        assert_eq!(
            single.predict_raw(&x, &dx),
            Surrogate::predict_raw(&ens, &x, &dx)
        );
    }

    #[test]
    fn ensemble_prediction_is_member_mean() {
        let pop = make_population(40);
        let mut ens = CriticEnsemble::new(3, 2, 2, &[16], 1e-3, 9);
        ens.refit_scaler(&pop);
        let mut rng = StdRng::seed_from_u64(10);
        ens.train(&pop, 30, 16, &mut rng);
        let input = Mat::from_rows(&[&[0.2, 0.6, 0.05, 0.1]]);
        let mean = ens.predict_batch_raw(&input);
        let mut acc = [0.0; 2];
        for i in 0..3 {
            let p = ens.member(i).predict_batch_raw(&input);
            acc[0] += p[(0, 0)];
            acc[1] += p[(0, 1)];
        }
        assert!((mean[(0, 0)] - acc[0] / 3.0).abs() < 1e-12);
        assert!((mean[(0, 1)] - acc[1] / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ensemble_members_are_decorrelated() {
        let ens = CriticEnsemble::new(3, 2, 2, &[16], 1e-3, 11);
        let input = Mat::from_rows(&[&[0.2, 0.6, 0.05, 0.1]]);
        let a = ens.member(0).mlp.forward_inference(&input);
        let b = ens.member(1).mlp.forward_inference(&input);
        assert_ne!(a, b, "members must be independently initialized");
        assert_eq!(ens.param_count(), 3 * ens.member(0).mlp.param_count());
    }

    #[test]
    #[should_panic(expected = "at least one critic")]
    fn empty_ensemble_rejected() {
        let _ = CriticEnsemble::new(0, 2, 2, &[8], 1e-3, 0);
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let pop = make_population(30);
        let mut c = Critic::new(2, 2, &[16], 1e-3, 9);
        c.refit_scaler(&pop);
        let mut rng = StdRng::seed_from_u64(10);
        c.train(&pop, 30, 16, &mut rng);

        // Scalar loss L = sum of scaled outputs; dL/dout = 1.
        let input = Mat::from_rows(&[&[0.4, 0.6, 0.1, -0.1]]);
        let out = c.forward_scaled(&input);
        let ones = Mat::filled(out.rows(), out.cols(), 1.0);
        let gi = c.input_gradient(&ones);

        let loss =
            |c: &Critic, inp: &Mat| -> f64 { c.mlp.forward_inference(inp).as_slice().iter().sum() };
        let h = 1e-6;
        for j in 0..4 {
            let mut ip = input.clone();
            ip[(0, j)] += h;
            let mut im = input.clone();
            im[(0, j)] -= h;
            let fd = (loss(&c, &ip) - loss(&c, &im)) / (2.0 * h);
            assert!(
                (fd - gi[(0, j)]).abs() < 1e-5 * (1.0 + fd.abs()),
                "input grad {j}: fd {fd} vs {}",
                gi[(0, j)]
            );
        }
    }
}
