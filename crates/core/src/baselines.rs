//! Classic simulation-based baselines from the paper's related work:
//! particle swarm optimization (ref. [7]), differential evolution
//! (ref. [8]) and plain random search. All three implement
//! [`crate::runner::Optimizer`], so they slot into the experiment harness
//! next to BO and the RL-inspired methods.
//!
//! The paper's §I argument against these population methods is their *low
//! convergence rate* at small simulation budgets — easily verified here by
//! adding them to a comparison (see the `compare_methods` example).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fom::FomConfig;
use crate::maopt::{RunResult, RunTimings};
use crate::population::Population;
use crate::problem::SizingProblem;
use crate::runner::Optimizer;
use crate::trace::{SimKind, Trace};

/// Uniform random search over the design box — the floor any optimizer
/// must beat.
#[derive(Debug, Clone, Default)]
pub struct RandomSearch;

impl RandomSearch {
    /// Creates the baseline.
    pub fn new() -> Self {
        RandomSearch
    }
}

impl Optimizer for RandomSearch {
    fn name(&self) -> String {
        "Random".into()
    }

    fn optimize(
        &self,
        problem: &dyn SizingProblem,
        init: &[(Vec<f64>, Vec<f64>)],
        budget: usize,
        seed: u64,
    ) -> RunResult {
        let t0 = Instant::now();
        let specs = problem.specs().to_vec();
        let fom_cfg = FomConfig::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pop = Population::new();
        let mut trace = Trace::new();
        for (x, m) in init {
            let idx = pop.push(x.clone(), m.clone(), &specs, fom_cfg);
            trace.record_init(pop.fom(idx), pop.feasible(idx), pop.metrics(idx)[0]);
        }
        let d = problem.dim();
        let mut timings = RunTimings::default();
        for _ in 0..budget {
            let x: Vec<f64> = (0..d).map(|_| rng.random_range(0.0..1.0)).collect();
            let s0 = Instant::now();
            let m = problem.evaluate(&x);
            timings.simulation += s0.elapsed();
            let idx = pop.push(x, m, &specs, fom_cfg);
            trace.record(
                SimKind::Baseline,
                pop.fom(idx),
                pop.feasible(idx),
                pop.metrics(idx)[0],
            );
        }
        timings.total = t0.elapsed();
        RunResult {
            label: self.name(),
            trace,
            population: pop,
            timings,
        }
    }
}

/// Particle swarm optimization over the FoM (Kennedy–Eberhart velocities
/// with inertia and cognitive/social pulls, clamped to the unit box).
#[derive(Debug, Clone)]
pub struct ParticleSwarm {
    /// Swarm size (particles per generation).
    pub swarm: usize,
    /// Inertia weight `w`.
    pub inertia: f64,
    /// Cognitive coefficient `c1` (pull toward each particle's best).
    pub cognitive: f64,
    /// Social coefficient `c2` (pull toward the global best).
    pub social: f64,
}

impl Default for ParticleSwarm {
    fn default() -> Self {
        ParticleSwarm {
            swarm: 20,
            inertia: 0.72,
            cognitive: 1.49,
            social: 1.49,
        }
    }
}

impl ParticleSwarm {
    /// Creates the default configuration.
    pub fn new() -> Self {
        ParticleSwarm::default()
    }
}

impl Optimizer for ParticleSwarm {
    fn name(&self) -> String {
        "PSO".into()
    }

    fn optimize(
        &self,
        problem: &dyn SizingProblem,
        init: &[(Vec<f64>, Vec<f64>)],
        budget: usize,
        seed: u64,
    ) -> RunResult {
        let t0 = Instant::now();
        let specs = problem.specs().to_vec();
        let fom_cfg = FomConfig::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let d = problem.dim();

        let mut pop = Population::new();
        let mut trace = Trace::new();
        for (x, m) in init {
            let idx = pop.push(x.clone(), m.clone(), &specs, fom_cfg);
            trace.record_init(pop.fom(idx), pop.feasible(idx), pop.metrics(idx)[0]);
        }

        // Seed the swarm from the best initial designs.
        let elite = pop.elite_indices(self.swarm);
        let mut xs: Vec<Vec<f64>> = elite.iter().map(|&i| pop.design(i).to_vec()).collect();
        while xs.len() < self.swarm {
            xs.push((0..d).map(|_| rng.random_range(0.0..1.0)).collect());
        }
        let mut vel: Vec<Vec<f64>> = (0..self.swarm)
            .map(|_| (0..d).map(|_| rng.random_range(-0.1..0.1)).collect())
            .collect();
        let mut pbest = xs.clone();
        let mut pbest_fom: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(k, _)| elite.get(k).map(|&i| pop.fom(i)).unwrap_or(f64::INFINITY))
            .collect();
        let (mut gbest, mut gbest_fom) = {
            let b = pop.best().expect("non-empty init");
            (pop.design(b).to_vec(), pop.fom(b))
        };

        let mut timings = RunTimings::default();
        let mut sims = 0usize;
        'outer: loop {
            for k in 0..self.swarm {
                if sims >= budget {
                    break 'outer;
                }
                // Velocity and position update.
                for t in 0..d {
                    let r1: f64 = rng.random_range(0.0..1.0);
                    let r2: f64 = rng.random_range(0.0..1.0);
                    vel[k][t] = self.inertia * vel[k][t]
                        + self.cognitive * r1 * (pbest[k][t] - xs[k][t])
                        + self.social * r2 * (gbest[t] - xs[k][t]);
                    vel[k][t] = vel[k][t].clamp(-0.25, 0.25);
                    xs[k][t] = (xs[k][t] + vel[k][t]).clamp(0.0, 1.0);
                }
                let s0 = Instant::now();
                let m = problem.evaluate(&xs[k]);
                timings.simulation += s0.elapsed();
                let idx = pop.push(xs[k].clone(), m, &specs, fom_cfg);
                trace.record(
                    SimKind::Baseline,
                    pop.fom(idx),
                    pop.feasible(idx),
                    pop.metrics(idx)[0],
                );
                sims += 1;
                let f = pop.fom(idx);
                if f < pbest_fom[k] {
                    pbest_fom[k] = f;
                    pbest[k] = xs[k].clone();
                }
                if f < gbest_fom {
                    gbest_fom = f;
                    gbest = xs[k].clone();
                }
            }
        }
        timings.total = t0.elapsed();
        RunResult {
            label: self.name(),
            trace,
            population: pop,
            timings,
        }
    }
}

/// Differential evolution (`DE/rand/1/bin`) over the FoM.
#[derive(Debug, Clone)]
pub struct DifferentialEvolution {
    /// Population size.
    pub np: usize,
    /// Differential weight `F`.
    pub f: f64,
    /// Crossover probability `CR`.
    pub cr: f64,
}

impl Default for DifferentialEvolution {
    fn default() -> Self {
        DifferentialEvolution {
            np: 20,
            f: 0.6,
            cr: 0.9,
        }
    }
}

impl DifferentialEvolution {
    /// Creates the default configuration.
    pub fn new() -> Self {
        DifferentialEvolution::default()
    }
}

impl Optimizer for DifferentialEvolution {
    fn name(&self) -> String {
        "DE".into()
    }

    fn optimize(
        &self,
        problem: &dyn SizingProblem,
        init: &[(Vec<f64>, Vec<f64>)],
        budget: usize,
        seed: u64,
    ) -> RunResult {
        let t0 = Instant::now();
        let specs = problem.specs().to_vec();
        let fom_cfg = FomConfig::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let d = problem.dim();

        let mut pop = Population::new();
        let mut trace = Trace::new();
        for (x, m) in init {
            let idx = pop.push(x.clone(), m.clone(), &specs, fom_cfg);
            trace.record_init(pop.fom(idx), pop.feasible(idx), pop.metrics(idx)[0]);
        }

        // DE population = best-of-init designs.
        let elite = pop.elite_indices(self.np);
        let mut xs: Vec<Vec<f64>> = elite.iter().map(|&i| pop.design(i).to_vec()).collect();
        let mut fs: Vec<f64> = elite.iter().map(|&i| pop.fom(i)).collect();
        while xs.len() < self.np {
            let x: Vec<f64> = (0..d).map(|_| rng.random_range(0.0..1.0)).collect();
            xs.push(x);
            fs.push(f64::INFINITY);
        }

        let mut timings = RunTimings::default();
        let mut sims = 0usize;
        'outer: loop {
            for k in 0..self.np {
                if sims >= budget {
                    break 'outer;
                }
                // Mutation: pick three distinct partners.
                let mut pick = || loop {
                    let c = rng.random_range(0..self.np);
                    if c != k {
                        return c;
                    }
                };
                let (a, b, c) = (pick(), pick(), pick());
                let j_rand = rng.random_range(0..d);
                let mut trial = xs[k].clone();
                for t in 0..d {
                    if t == j_rand || rng.random_range(0.0..1.0) < self.cr {
                        trial[t] = (xs[a][t] + self.f * (xs[b][t] - xs[c][t])).clamp(0.0, 1.0);
                    }
                }
                let s0 = Instant::now();
                let m = problem.evaluate(&trial);
                timings.simulation += s0.elapsed();
                let idx = pop.push(trial.clone(), m, &specs, fom_cfg);
                trace.record(
                    SimKind::Baseline,
                    pop.fom(idx),
                    pop.feasible(idx),
                    pop.metrics(idx)[0],
                );
                sims += 1;
                let f = pop.fom(idx);
                if f < fs[k] {
                    fs[k] = f;
                    xs[k] = trial;
                }
            }
        }
        timings.total = t0.elapsed();
        RunResult {
            label: self.name(),
            trace,
            population: pop,
            timings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::{ConstrainedToy, Sphere};
    use crate::runner::sample_initial_set;

    fn improves(opt: &dyn Optimizer, seed: u64) -> (f64, f64) {
        let p = Sphere::new(4);
        let init = sample_initial_set(&p, 20, seed);
        let r = opt.optimize(&p, &init, 60, seed);
        assert_eq!(r.trace.num_sims(), 60, "{} budget accounting", r.label);
        (r.trace.init_best_fom(), r.best_fom())
    }

    #[test]
    fn random_search_eventually_improves() {
        let (init, best) = improves(&RandomSearch::new(), 1);
        assert!(best <= init);
    }

    #[test]
    fn pso_improves_sphere() {
        let (init, best) = improves(&ParticleSwarm::new(), 2);
        assert!(best < init, "PSO should improve: {init} -> {best}");
        assert!(
            best < 0.05,
            "PSO on a smooth sphere should get close: {best}"
        );
    }

    #[test]
    fn de_improves_sphere() {
        let (init, best) = improves(&DifferentialEvolution::new(), 3);
        assert!(best < init, "DE should improve: {init} -> {best}");
        assert!(
            best < 0.05,
            "DE on a smooth sphere should get close: {best}"
        );
    }

    #[test]
    fn pso_beats_random_on_average() {
        let p = ConstrainedToy::new(6);
        let mut pso_wins = 0;
        for seed in 0..5 {
            let init = sample_initial_set(&p, 20, seed);
            let pso = ParticleSwarm::new().optimize(&p, &init, 60, seed);
            let rnd = RandomSearch::new().optimize(&p, &init, 60, seed);
            if pso.best_fom() <= rnd.best_fom() {
                pso_wins += 1;
            }
        }
        assert!(pso_wins >= 3, "PSO won only {pso_wins}/5 against random");
    }

    #[test]
    fn deterministic_given_seed() {
        let p = Sphere::new(3);
        let init = sample_initial_set(&p, 10, 4);
        for opt in [
            &ParticleSwarm::new() as &dyn Optimizer,
            &DifferentialEvolution::new(),
        ] {
            let a = opt.optimize(&p, &init, 20, 9);
            let b = opt.optimize(&p, &init, 20, 9);
            assert_eq!(a.trace.best_fom_series(20), b.trace.best_fom_series(20));
        }
    }

    #[test]
    fn traces_mark_baseline_kind() {
        let p = Sphere::new(2);
        let init = sample_initial_set(&p, 8, 5);
        let r = DifferentialEvolution::new().optimize(&p, &init, 5, 5);
        assert!(r
            .trace
            .entries()
            .iter()
            .filter(|e| e.sim > 0)
            .all(|e| e.kind == SimKind::Baseline));
    }
}
