//! MA-Opt: an RL-inspired multi-actor analog circuit sizing optimizer.
//!
//! This crate is the paper's primary contribution, reproduced in full:
//!
//! * the constrained sizing problem abstraction ([`SizingProblem`], Eq. 1),
//! * the figure-of-merit function ([`fom`], Eq. 2),
//! * pseudo-sample generation from the total design set (Eq. 3),
//! * the critic network trained as a SPICE regression ([`Critic`], Eq. 4),
//! * actor networks trained through the frozen critic with elite-set
//!   boundary penalties ([`Actor`], Eqs. 5–6),
//! * shared vs. individual elite solution sets ([`EliteSet`], Fig. 2),
//! * the near-sampling exploitation step ([`NearSampler`], Algorithm 2),
//! * the overall optimization loop ([`MaOpt`], Algorithms 1 & 3) with the
//!   paper's ablations ([`MaOptConfig::dnn_opt`], [`MaOptConfig::ma_opt1`],
//!   [`MaOptConfig::ma_opt2`], [`MaOptConfig::ma_opt`]),
//! * a statistics-collecting experiment [`runner`] reproducing the paper's
//!   tables and figures,
//! * the classic population baselines the paper's related work cites —
//!   PSO, differential evolution and random search ([`baselines`]).
//!
//! # Example: optimize a synthetic quadratic sizing problem
//!
//! ```
//! use maopt_core::{MaOpt, MaOptConfig, problems::Sphere, runner::sample_initial_set};
//!
//! let problem = Sphere::new(4);
//! let config = MaOptConfig::ma_opt(7);
//! let init = sample_initial_set(&problem, 20, 7);
//! let result = MaOpt::new(config).run(&problem, init, 30);
//! assert!(result.best_fom() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actor;
pub mod baselines;
pub mod chaos;
mod checkpoint;
mod critic;
mod elite;
pub mod export;
mod fom;
mod maopt;
mod near_sampling;
mod opstore;
mod population;
pub mod problem;
pub mod problems;
pub mod runner;
pub mod trace;

pub use actor::Actor;
pub use checkpoint::RunCheckpointer;
pub use critic::{Critic, CriticEnsemble, PredictScratch, Surrogate};
pub use elite::EliteSet;
pub use fom::{fom, is_feasible, spec_violations, FomConfig};
pub use maopt::{MaOpt, MaOptConfig, RunResult, RunTimings};
pub use maopt_exec::OpState;
pub use near_sampling::NearSampler;
pub use opstore::OpStore;
pub use population::{pseudo_batch, pseudo_batch_into, Population};
pub use problem::{EngineProblem, ParamScale, ParamSpec, SizingProblem, Spec, SpecKind};
