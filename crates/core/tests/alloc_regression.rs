//! Allocation-count regression gate for the critic training hot path.
//!
//! A counting global allocator wraps the system allocator; after a
//! warm-up call sizes every reused buffer, further same-shaped critic
//! training steps must perform **zero** heap allocations. This is the
//! enforcement side of the workspace/kernel layer — if someone
//! reintroduces a per-step `clone` or a temporary `Mat`, this test
//! fails with the allocation count instead of a silent slowdown.
//!
//! The counting allocator lives in this integration-test crate (the
//! library crates themselves stay `#![forbid(unsafe_code)]`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use maopt_core::{Critic, FomConfig, Population, Spec};
use rand::rngs::StdRng;
use rand::SeedableRng;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn make_population(n: usize) -> Population {
    let specs = vec![Spec::at_least("m", 1, 1.0)];
    let cfg = FomConfig::default();
    let mut pop = Population::new();
    let mut seed = 0x5eed_cafeu64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed % 1000) as f64 / 1000.0
    };
    for _ in 0..n {
        let x = vec![next(), next()];
        let metrics = vec![x[0] * x[0] + x[1] * x[1], 10.0 * x[0]];
        pop.push(x, metrics, &specs, cfg);
    }
    pop
}

#[test]
fn critic_training_step_is_allocation_free_after_warmup() {
    let pop = make_population(40);
    let mut critic = Critic::new(2, 2, &[32, 32], 1e-3, 3);
    critic.refit_scaler(&pop);
    let mut rng = StdRng::seed_from_u64(4);

    // Warm-up: sizes the pseudo-batch buffers, the MLP workspace, and the
    // gradient buffer for this (batch, widths) shape.
    critic.train(&pop, 2, 16, &mut rng);

    let before = allocation_count();
    critic.train(&pop, 25, 16, &mut rng);
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "critic training steps must not allocate after warm-up \
         ({} allocations in 25 steps)",
        after - before
    );
}

#[test]
fn warmup_resizes_only_on_shape_change() {
    let pop = make_population(40);
    let mut critic = Critic::new(2, 2, &[16], 1e-3, 5);
    critic.refit_scaler(&pop);
    let mut rng = StdRng::seed_from_u64(6);

    critic.train(&pop, 2, 8, &mut rng);
    // A larger batch re-warms the buffers once…
    critic.train(&pop, 2, 24, &mut rng);
    // …after which steps are allocation-free again.
    let before = allocation_count();
    critic.train(&pop, 10, 24, &mut rng);
    assert_eq!(allocation_count() - before, 0);
}
