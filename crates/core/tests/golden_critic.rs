//! Golden end-to-end determinism test: the workspace-based critic
//! training loop must reproduce the seed (allocating) implementation's
//! loss trace **bit-for-bit**.
//!
//! The reference below is the pre-optimization training loop, spelled out
//! over the public `maopt-nn` API exactly as `Critic::train_traced`
//! originally composed it: `pseudo_batch` → `transform` → `forward` →
//! `mse_loss_grad` → `zero_grad` → `backward` → `adam.step`. If any
//! kernel, buffer-reuse path, or reduction order drifts, this test fails
//! on the first diverging bit.

use maopt_core::{pseudo_batch, Critic, FomConfig, Population, Spec};
use maopt_nn::{mse_loss_grad, Activation, Adam, MinMaxScaler, Mlp};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A tiny analytic "simulator": metrics = [Σx², 10·x₀].
fn make_population(n: usize) -> Population {
    let specs = vec![Spec::at_least("m", 1, 1.0)];
    let cfg = FomConfig::default();
    let mut pop = Population::new();
    let mut seed = 0xdead_beefu64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed % 1000) as f64 / 1000.0
    };
    for _ in 0..n {
        let x = vec![next(), next()];
        let metrics = vec![x[0] * x[0] + x[1] * x[1], 10.0 * x[0]];
        pop.push(x, metrics, &specs, cfg);
    }
    pop
}

#[test]
fn optimized_critic_loss_trace_matches_seed_bitwise() {
    let pop = make_population(50);
    let (steps, batch, lr, net_seed, rng_seed) = (60, 16, 1e-3, 42u64, 7u64);

    // Optimized path: the critic's zero-allocation training loop.
    let mut critic = Critic::new(2, 2, &[16, 16], lr, net_seed);
    critic.refit_scaler(&pop);
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let mut trace = Vec::new();
    critic.train_traced(&pop, steps, batch, &mut rng, Some(&mut trace));
    assert_eq!(trace.len(), steps);

    // Seed reference: the original allocating loop, same construction.
    let mut mlp = Mlp::new(&[4, 16, 16, 2], Activation::Relu, net_seed);
    let mut adam = Adam::new(&mlp, lr);
    let scaler = MinMaxScaler::fit(&pop.metric_matrix());
    let mut rng_ref = StdRng::seed_from_u64(rng_seed);
    let mut ref_trace = Vec::new();
    for _ in 0..steps {
        let (inputs, targets_raw) = pseudo_batch(&pop, batch, &mut rng_ref);
        let targets = scaler.transform(&targets_raw);
        let pred = mlp.forward(&inputs);
        let (loss, grad) = mse_loss_grad(&pred, &targets);
        mlp.zero_grad();
        mlp.backward(&grad);
        adam.step(&mut mlp);
        ref_trace.push(loss);
    }

    for (k, (opt, reference)) in trace.iter().zip(&ref_trace).enumerate() {
        assert_eq!(
            opt.to_bits(),
            reference.to_bits(),
            "loss trace diverges at step {k}: {opt} vs {reference}"
        );
    }

    // The trained networks themselves must agree: compare a prediction.
    let x = [0.2, 0.7];
    let dx = [0.3, -0.4];
    let opt_pred = critic.predict_raw(&x, &dx);
    let ref_pred = scaler.inverse_row(&mlp.predict(&[x[0], x[1], dx[0], dx[1]]));
    for (a, b) in opt_pred.iter().zip(&ref_pred) {
        assert_eq!(a.to_bits(), b.to_bits(), "trained predictions diverge");
    }
}
