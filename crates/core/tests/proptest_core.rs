//! Property-based tests for the optimizer core's invariants.

use maopt_core::{
    fom, is_feasible, pseudo_batch, spec_violations, EliteSet, FomConfig, ParamSpec, Population,
    Spec,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn specs2() -> Vec<Spec> {
    vec![Spec::at_least("a", 1, 10.0), Spec::at_most("b", 2, 1.0)]
}

fn metric_vec() -> impl Strategy<Value = Vec<f64>> {
    (0.0f64..10.0, -100.0f64..100.0, -10.0f64..10.0).prop_map(|(t, a, b)| vec![t, a, b])
}

fn population(n: usize) -> impl Strategy<Value = Population> {
    prop::collection::vec(
        (prop::collection::vec(0.0f64..1.0, 3), metric_vec()),
        n..n + 1,
    )
    .prop_map(|entries| {
        let specs = specs2();
        let mut pop = Population::new();
        for (x, m) in entries {
            pop.push(x, m, &specs, FomConfig::default());
        }
        pop
    })
}

proptest! {
    /// Eq. 2 invariants: FoM ≥ w₀·f₀ always, with equality iff feasible;
    /// the penalty sum never exceeds the spec count (clipping).
    #[test]
    fn fom_bounds(m in metric_vec()) {
        let specs = specs2();
        let g = fom(&m, &specs, FomConfig::default());
        prop_assert!(g >= m[0] - 1e-12);
        prop_assert!(g <= m[0] + specs.len() as f64 + 1e-12);
        if is_feasible(&m, &specs) {
            prop_assert!((g - m[0]).abs() < 1e-12);
        } else {
            prop_assert!(g > m[0]);
        }
    }

    /// Worsening a violated metric never decreases the FoM (monotonicity of
    /// the penalty in the violation direction).
    #[test]
    fn fom_monotone_in_violation(m in metric_vec(), delta in 0.0f64..50.0) {
        let specs = specs2();
        let mut worse = m.clone();
        worse[1] -= delta; // metric 1 is AtLeast: lower is worse
        let g0 = fom(&m, &specs, FomConfig::default());
        let g1 = fom(&worse, &specs, FomConfig::default());
        prop_assert!(g1 + 1e-12 >= g0, "worse metrics must not improve FoM");
    }

    /// Violations are clipped into [0, 1] per spec.
    #[test]
    fn violations_clipped(m in metric_vec()) {
        for v in spec_violations(&m, &specs2()) {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    /// The elite set is exactly the `N_es` smallest-FoM designs and its
    /// bounding box contains every elite design.
    #[test]
    fn elite_set_invariants(pop in population(12), cap in 1usize..8) {
        let mut es = EliteSet::new(cap);
        es.rebuild(&pop, None);
        prop_assert_eq!(es.len(), cap.min(pop.len()));
        // FoMs sorted ascending and no worse than any non-elite FoM.
        let worst_elite = *es.foms().last().unwrap();
        for w in es.foms().windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        let better_count = pop.foms().iter().filter(|&&f| f < worst_elite).count();
        prop_assert!(better_count <= es.len());
        // Bounds contain all elite designs.
        let (lb, ub) = es.bounds();
        for x in es.designs() {
            for (t, &v) in x.iter().enumerate() {
                prop_assert!(lb[t] <= v && v <= ub[t]);
            }
        }
    }

    /// Pseudo-samples (Eq. 3) always target an existing population design
    /// and carry its metric vector.
    #[test]
    fn pseudo_batch_destination_invariant(pop in population(8), seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (inputs, targets) = pseudo_batch(&pop, 16, &mut rng);
        let d = 3;
        for k in 0..16 {
            let dst: Vec<f64> = (0..d)
                .map(|t| inputs[(k, t)] + inputs[(k, d + t)])
                .collect();
            let j = (0..pop.len()).find(|&i| {
                pop.design(i)
                    .iter()
                    .zip(&dst)
                    .all(|(a, b)| (a - b).abs() < 1e-9)
            });
            prop_assert!(j.is_some(), "pseudo-sample must land on a real design");
            let j = j.unwrap();
            for (t, &v) in pop.metrics(j).iter().enumerate() {
                let expected = if v.is_finite() { v } else { 0.0 };
                prop_assert!((targets[(k, t)] - expected).abs() < 1e-12);
            }
        }
    }

    /// Parameter mappings are monotone and land inside the physical range.
    #[test]
    fn param_mapping_monotone(u1 in 0.0f64..1.0, u2 in 0.0f64..1.0) {
        for p in [
            ParamSpec::linear("w", "um", 0.22, 150.0),
            ParamSpec::log("r", "kohm", 0.1, 100.0),
        ] {
            let (a, b) = (p.denormalize(u1.min(u2)), p.denormalize(u1.max(u2)));
            prop_assert!(a <= b + 1e-12, "{}: not monotone", p.name);
            prop_assert!(a >= p.lo - 1e-12 && b <= p.hi + 1e-9);
            // Roundtrip within tolerance.
            prop_assert!((p.normalize(a) - u1.min(u2)).abs() < 1e-9);
        }
    }

    /// Integer parameters always produce integral physical values.
    #[test]
    fn integer_params_integral(u in 0.0f64..1.0) {
        let p = ParamSpec::integer("n", 1, 20);
        let v = p.denormalize(u);
        prop_assert_eq!(v, v.round());
        prop_assert!((1.0..=20.0).contains(&v));
    }

    /// Population best-feasible is never better than the unconstrained best
    /// and always satisfies the specs.
    #[test]
    fn best_feasible_consistency(pop in population(10)) {
        let specs = specs2();
        if let Some(bf) = pop.best_feasible() {
            prop_assert!(is_feasible(pop.metrics(bf), &specs));
            let best = pop.best().unwrap();
            prop_assert!(pop.fom(best) <= pop.fom(bf) + 1e-12);
        } else {
            for i in 0..pop.len() {
                prop_assert!(!is_feasible(pop.metrics(i), &specs));
            }
        }
    }
}
