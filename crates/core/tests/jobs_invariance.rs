//! Jobs-invariance: the full nested-parallel protocol — run-level fan-out
//! over one pool, per-run simulations over another — must produce run
//! journals bitwise identical to the serial protocol on every non-timing
//! field, and identical method statistics.
//!
//! The parallel worker counts default to 4 run-jobs × 2 jobs and can be
//! overridden through `MAOPT_INVARIANCE_RUN_JOBS` / `MAOPT_INVARIANCE_JOBS`
//! so CI can sweep several configurations with one test.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use maopt_core::problem::{ParamSpec, SizingProblem, Spec};
use maopt_core::problems::ConstrainedToy;
use maopt_core::runner::{make_initial_sets_nested, run_method_nested, MethodStats};
use maopt_core::{MaOptConfig, OpState};
use maopt_exec::{EvalEngine, SimCache, Telemetry};
use maopt_obs::{read_journal, Journal, Record};

const RUNS: usize = 3;
const BUDGET: usize = 10;
const INIT_SIZE: usize = 20;
const SEED: u64 = 77;

fn tiny(cfg: MaOptConfig) -> MaOptConfig {
    MaOptConfig {
        hidden: vec![16, 16],
        critic_steps: 15,
        actor_steps: 8,
        n_samples: 100,
        t_ns: 2,
        ..cfg
    }
}

fn env_jobs(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// [`ConstrainedToy`] with a simulator-shaped warm-start surface: every
/// evaluation returns an operating-point state (its own design vector), and
/// a supplied seed nudges metric 0 at the last-ulp scale — the same way a
/// warm-started Newton solve lands within tolerance of, but not bitwise on,
/// the cold solution. If seed selection ever depended on scheduling (a racy
/// shared cache instead of the main thread's deterministic choice), the
/// nudge would differ between worker counts and the journal diff below
/// would catch it.
struct SeedSensitiveToy {
    inner: ConstrainedToy,
    seeded_calls: AtomicUsize,
}

impl SeedSensitiveToy {
    fn new(dim: usize) -> Self {
        SeedSensitiveToy {
            inner: ConstrainedToy::new(dim),
            seeded_calls: AtomicUsize::new(0),
        }
    }
}

impl SizingProblem for SeedSensitiveToy {
    fn name(&self) -> &str {
        "seed_sensitive_toy"
    }

    fn params(&self) -> &[ParamSpec] {
        self.inner.params()
    }

    fn metric_names(&self) -> Vec<String> {
        self.inner.metric_names()
    }

    fn specs(&self) -> &[Spec] {
        self.inner.specs()
    }

    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        self.inner.evaluate(x)
    }

    fn evaluate_seeded(&self, x: &[f64], seed: Option<&OpState>) -> (Vec<f64>, Option<OpState>) {
        let mut metrics = self.inner.evaluate(x);
        if let Some(s) = seed {
            self.seeded_calls.fetch_add(1, Ordering::Relaxed);
            let nudge: f64 = s.slots.iter().flatten().sum();
            metrics[0] += 1e-12 * nudge;
        }
        let state = OpState {
            slots: vec![x.to_vec()],
        };
        (metrics, Some(state))
    }
}

/// Runs the full journaled protocol at the given worker counts and returns
/// the method statistics plus every run's parsed journal.
fn run_protocol(run_jobs: usize, jobs: usize, tag: &str) -> (MethodStats, Vec<Vec<Record>>) {
    run_protocol_on(&ConstrainedToy::new(2), run_jobs, jobs, tag)
}

fn run_protocol_on(
    problem: &dyn SizingProblem,
    run_jobs: usize,
    jobs: usize,
    tag: &str,
) -> (MethodStats, Vec<Vec<Record>>) {
    let engine = EvalEngine::new(jobs)
        .with_telemetry(Arc::new(Telemetry::new()))
        .with_cache(Arc::new(SimCache::new()));
    let run_engine = EvalEngine::new(run_jobs);
    let inits = make_initial_sets_nested(problem, RUNS, INIT_SIZE, SEED, &run_engine, &engine);

    let dir = std::env::temp_dir().join(format!("maopt-invariance-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let journals: Vec<Journal> = (0..RUNS)
        .map(|r| Journal::create(dir.join(format!("run{r}.jsonl"))).unwrap())
        .collect();
    let opt = tiny(MaOptConfig::ma_opt(SEED));
    let stats = run_method_nested(
        &opt,
        problem,
        &inits,
        RUNS,
        BUDGET,
        SEED + 7,
        &run_engine,
        &engine,
        &journals,
    );
    drop(journals);

    let records = (0..RUNS)
        .map(|r| read_journal(dir.join(format!("run{r}.jsonl"))).unwrap())
        .collect();
    let _ = std::fs::remove_dir_all(&dir);
    (stats, records)
}

/// Zeroes the fields that legitimately vary with scheduling: the
/// manifest's worker count and the run summary's wall-clock timings.
/// Everything else — round records, actor losses, engine counter deltas,
/// near-sampling decisions — must match bitwise.
fn normalize(records: &mut [Record]) {
    for rec in records {
        match rec {
            Record::Manifest(m) => m.jobs = 0,
            Record::RunEnd(e) => {
                e.total_s = 0.0;
                e.training_s = 0.0;
                e.simulation_s = 0.0;
                e.near_sampling_s = 0.0;
            }
            _ => {}
        }
    }
}

#[test]
fn nested_parallel_journals_match_serial_bitwise() {
    let run_jobs = env_jobs("MAOPT_INVARIANCE_RUN_JOBS", 4);
    let jobs = env_jobs("MAOPT_INVARIANCE_JOBS", 2);

    let (serial_stats, mut serial_journals) = run_protocol(1, 1, "serial");
    let (par_stats, mut par_journals) =
        run_protocol(run_jobs, jobs, &format!("par{run_jobs}x{jobs}"));

    for (r, (s, p)) in serial_journals
        .iter_mut()
        .zip(par_journals.iter_mut())
        .enumerate()
    {
        assert!(s.len() > 2, "run {r}: journal has rounds, not just ends");
        normalize(s);
        normalize(p);
        // Compare re-serialized lines rather than parsed records: a run
        // whose budget expires mid-round legitimately journals NaN fields
        // (e.g. an unsimulated proposal), and `NaN != NaN` under
        // `PartialEq` would fail the comparison even on identical bits.
        let lines = |recs: &[Record]| recs.iter().map(Record::to_json_line).collect::<Vec<_>>();
        assert_eq!(
            lines(s),
            lines(p),
            "run {r}: journals diverge between 1x1 and {run_jobs}x{jobs} workers"
        );
    }

    // The aggregate statistics must agree bitwise as well.
    assert_eq!(serial_stats.successes, par_stats.successes);
    assert_eq!(
        serial_stats
            .fom_curve
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        par_stats
            .fom_curve
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>()
    );
    assert_eq!(serial_stats.exec.sims, par_stats.exec.sims);
    assert_eq!(serial_stats.exec.cache_hits, par_stats.exec.cache_hits);
    for (a, b) in serial_stats.results.iter().zip(&par_stats.results) {
        assert_eq!(a.best_fom().to_bits(), b.best_fom().to_bits());
    }
}

/// Same contract with operating-point warm-starting active: the problem
/// returns OP state, the optimizer's `OpStore` feeds seeds back into later
/// evaluations, and a seed perceptibly (if minutely) shifts the metrics —
/// yet journals must still match the serial run bitwise at any worker
/// count, because seeds are chosen deterministically on the main thread
/// and travel inside the evaluation requests.
#[test]
fn warm_started_journals_match_serial_bitwise() {
    let run_jobs = env_jobs("MAOPT_INVARIANCE_RUN_JOBS", 4);
    let jobs = env_jobs("MAOPT_INVARIANCE_JOBS", 2);

    let serial_problem = SeedSensitiveToy::new(2);
    let par_problem = SeedSensitiveToy::new(2);
    let (serial_stats, mut serial_journals) = run_protocol_on(&serial_problem, 1, 1, "warm-serial");
    let (par_stats, mut par_journals) = run_protocol_on(
        &par_problem,
        run_jobs,
        jobs,
        &format!("warm-par{run_jobs}x{jobs}"),
    );

    // The warm path must actually have been exercised, in both protocols:
    // a test where no seed ever arrives would vacuously pass.
    assert!(
        serial_problem.seeded_calls.load(Ordering::Relaxed) > 0,
        "serial protocol never received a warm-start seed"
    );
    assert!(
        par_problem.seeded_calls.load(Ordering::Relaxed) > 0,
        "parallel protocol never received a warm-start seed"
    );

    for (r, (s, p)) in serial_journals
        .iter_mut()
        .zip(par_journals.iter_mut())
        .enumerate()
    {
        assert!(s.len() > 2, "run {r}: journal has rounds, not just ends");
        normalize(s);
        normalize(p);
        let lines = |recs: &[Record]| recs.iter().map(Record::to_json_line).collect::<Vec<_>>();
        assert_eq!(
            lines(s),
            lines(p),
            "run {r}: warm-started journals diverge between 1x1 and {run_jobs}x{jobs} workers"
        );
    }

    assert_eq!(serial_stats.exec.sims, par_stats.exec.sims);
    for (a, b) in serial_stats.results.iter().zip(&par_stats.results) {
        assert_eq!(a.best_fom().to_bits(), b.best_fom().to_bits());
    }
}
