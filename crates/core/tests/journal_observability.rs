//! End-to-end observability tests: a real (tiny) optimization run must
//! produce a schema-valid journal, and journaling must not perturb the
//! optimization itself.

use std::sync::Arc;

use maopt_core::problems::ConstrainedToy;
use maopt_core::runner::{
    make_initial_sets, run_method_observed, run_method_resumable, sample_initial_set,
};
use maopt_core::{MaOpt, MaOptConfig};
use maopt_exec::{EvalEngine, Telemetry, TraceRecorder};
use maopt_obs::{read_journal, Journal, Record};

fn tiny(cfg: MaOptConfig) -> MaOptConfig {
    MaOptConfig {
        hidden: vec![16, 16],
        critic_steps: 15,
        actor_steps: 8,
        n_samples: 100,
        t_ns: 2,
        ..cfg
    }
}

fn tmp_dir(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("maopt-journal-{}-{name}", std::process::id()))
}

#[test]
fn journaled_run_is_bitwise_identical_to_plain_run() {
    let problem = ConstrainedToy::new(3);
    let init = sample_initial_set(&problem, 25, 31);
    let opt = MaOpt::new(tiny(MaOptConfig::ma_opt(31)));
    let engine = EvalEngine::serial();

    let path = tmp_dir("identity.jsonl");
    let journal = Journal::create(&path).unwrap();
    let observed = opt.run_observed(&problem, init.clone(), 20, &engine, &journal);
    drop(journal);
    let plain = opt.run_with(&problem, init, 20, &engine);

    assert_eq!(
        observed.trace.best_fom_series(20),
        plain.trace.best_fom_series(20),
        "journaling must not change the optimization trajectory"
    );
    assert_eq!(observed.best_fom(), plain.best_fom());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn journal_from_real_run_is_schema_valid_and_complete() {
    let problem = ConstrainedToy::new(3);
    let init = sample_initial_set(&problem, 25, 32);
    let opt = MaOpt::new(tiny(MaOptConfig::ma_opt(32)));
    let engine = EvalEngine::serial();

    let path = tmp_dir("complete.jsonl");
    let journal = Journal::create(&path).unwrap();
    let result = opt.run_observed(&problem, init, 24, &engine, &journal);
    drop(journal);

    let records = read_journal(&path).unwrap();
    let Record::Manifest(m) = &records[0] else {
        panic!("first record must be the manifest");
    };
    assert_eq!(m.label, "MA-Opt");
    assert_eq!(m.dim, 3);
    assert_eq!(m.seed, 32);
    assert_eq!(m.budget, 24);
    assert_eq!(m.init_size, 25);
    assert!(m.config.get("n_actors").is_some(), "config in manifest");

    let Record::RunEnd(end) = records.last().unwrap() else {
        panic!("last record must be the run end");
    };
    assert_eq!(end.sims, 24);
    assert_eq!(end.best_fom, result.best_fom());
    assert_eq!(end.success, result.success());
    assert_eq!(end.engine.sims as usize, 24, "engine delta covers the run");

    let mut sims_seen = 0;
    let mut rounds = 0;
    let mut ns_rounds = 0;
    for r in &records[1..records.len() - 1] {
        match r {
            Record::Round(r) => {
                rounds += 1;
                sims_seen = r.sims_used;
                assert!(!r.critic_loss.is_empty(), "critic loss trajectory");
                assert!(!r.actors.is_empty());
                assert!(r.elite.size > 0);
                assert!(r.elite.diameter >= 0.0);
            }
            Record::NearSampling(r) => {
                ns_rounds += 1;
                sims_seen = r.sims_used;
                assert_eq!(r.trigger, "period");
                assert_eq!(r.n_candidates, 100);
                assert_eq!(r.accepted, r.simulated_fom < r.incumbent_fom);
                assert!(r.fidelity_n >= 2);
            }
            other => panic!("unexpected mid-run record {:?}", other.kind()),
        }
    }
    assert_eq!(sims_seen, 24, "round records account for the whole budget");
    assert_eq!(rounds + ns_rounds, end.rounds);
    assert!(
        ns_rounds > 0,
        "the toy problem reaches feasibility, so near-sampling rounds must appear"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn run_method_observed_writes_one_journal_per_run_and_matches_plain() {
    let problem = ConstrainedToy::new(2);
    let inits = make_initial_sets(&problem, 2, 15, 41);
    let opt = tiny(MaOptConfig::ma_opt2(41));
    let engine = EvalEngine::serial();

    let dir = tmp_dir("per-run");
    let journals: Vec<Journal> = (0..2)
        .map(|r| Journal::create(dir.join(format!("run{r}.jsonl"))).unwrap())
        .collect();
    let observed = run_method_observed(&opt, &problem, &inits, 2, 8, 500, &engine, &journals);
    drop(journals);
    let plain = maopt_core::runner::run_method_with(&opt, &problem, &inits, 2, 8, 500, &engine);

    assert_eq!(observed.fom_curve, plain.fom_curve);
    for r in 0..2 {
        let records = read_journal(dir.join(format!("run{r}.jsonl"))).unwrap();
        assert!(matches!(records[0], Record::Manifest(_)));
        assert!(matches!(records.last(), Some(Record::RunEnd(_))));
        let Record::Manifest(m) = &records[0] else {
            unreachable!()
        };
        assert_eq!(m.seed, 500 + r as u64, "run r gets seed base + r");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Journal lines with the `run_end` timing fields (explicitly outside the
/// byte-identity contract) zeroed; every other line is kept verbatim.
fn normalized_lines(path: &std::path::Path) -> Vec<String> {
    std::fs::read_to_string(path)
        .unwrap()
        .lines()
        .map(|line| match Record::parse(line) {
            Ok(Record::RunEnd(mut end)) => {
                end.total_s = 0.0;
                end.training_s = 0.0;
                end.simulation_s = 0.0;
                end.near_sampling_s = 0.0;
                Record::RunEnd(end).to_json_line()
            }
            _ => line.to_string(),
        })
        .collect()
}

#[test]
fn traced_run_journals_are_byte_identical_to_untraced() {
    // The flight recorder must stay entirely outside the journal
    // contract: attaching a tracer to the engine changes not a single
    // non-timing journal byte, even with pool workers recording spans.
    let problem = ConstrainedToy::new(2);
    let inits = make_initial_sets(&problem, 2, 15, 77);
    let opt = tiny(MaOptConfig::ma_opt2(77));

    let run = |tracer: Option<Arc<TraceRecorder>>, tag: &str| -> Vec<Vec<String>> {
        let mut telemetry = Telemetry::new();
        if let Some(tr) = tracer {
            telemetry = telemetry.with_tracer(tr);
        }
        let engine = EvalEngine::new(2).with_telemetry(Arc::new(telemetry));
        let run_engine = EvalEngine::serial();
        let dir = tmp_dir(&format!("traced-{tag}"));
        let journals: Vec<Journal> = (0..2)
            .map(|r| Journal::create(dir.join(format!("run{r}.jsonl"))).unwrap())
            .collect();
        run_method_resumable(
            &opt,
            &problem,
            &inits,
            2,
            8,
            600,
            &run_engine,
            &engine,
            &journals,
            &[],
        );
        drop(journals);
        let lines = (0..2)
            .map(|r| normalized_lines(&dir.join(format!("run{r}.jsonl"))))
            .collect();
        let _ = std::fs::remove_dir_all(&dir);
        lines
    };

    let tracer = TraceRecorder::new();
    let traced = run(Some(Arc::clone(&tracer)), "on");
    let untraced = run(None, "off");
    assert_eq!(
        traced, untraced,
        "tracing must not perturb journal bytes (non-timing fields)"
    );

    // And the recorder did actually see the run: spans from the method
    // phases and per-simulation spans from the workers.
    let snapshot = tracer.snapshot();
    let names: Vec<&str> = snapshot
        .threads
        .iter()
        .flat_map(|t| t.events.iter().map(|e| e.name.as_str()))
        .collect();
    assert!(
        names.contains(&"sim"),
        "worker simulation spans recorded: {names:?}"
    );
    assert!(
        names.iter().any(|n| n.starts_with("method:")),
        "method phase span recorded: {names:?}"
    );
}
