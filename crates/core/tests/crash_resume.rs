//! Crash/resume integration: a run interrupted after round `K` and resumed
//! from its checkpoint must produce a journal byte-identical (non-timing
//! fields) to an uninterrupted run — with and without fault injection.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use maopt_core::problems::{ConstrainedToy, Sphere};
use maopt_core::runner::sample_initial_set;
use maopt_core::{MaOpt, MaOptConfig, ParamSpec, RunCheckpointer, RunResult, SizingProblem, Spec};
use maopt_exec::chaos::{ChaosConfig, ChaosProblem};
use maopt_exec::{EvalEngine, Evaluate, FaultPolicy, SimCache};
use maopt_obs::{Journal, Record};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "maopt-crash-resume-{}-{}-{}",
        tag,
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small(cfg: MaOptConfig) -> MaOptConfig {
    MaOptConfig {
        hidden: vec![24, 24],
        critic_steps: 20,
        actor_steps: 10,
        n_samples: 100,
        ..cfg
    }
}

/// Journal lines with run-end timing fields (the only fields outside the
/// byte-identity contract) zeroed through a parse → normalize → re-serialize
/// round trip. Every other line is kept verbatim.
fn normalized_lines(path: &std::path::Path) -> Vec<String> {
    std::fs::read_to_string(path)
        .unwrap()
        .lines()
        .map(|line| match Record::parse(line) {
            Ok(Record::RunEnd(mut end)) => {
                end.total_s = 0.0;
                end.training_s = 0.0;
                end.simulation_s = 0.0;
                end.near_sampling_s = 0.0;
                Record::RunEnd(end).to_json_line()
            }
            _ => line.to_string(),
        })
        .collect()
}

fn run_end(path: &std::path::Path) -> maopt_obs::RunEnd {
    let records = maopt_obs::read_journal(path).unwrap();
    match records.last() {
        Some(Record::RunEnd(end)) => end.clone(),
        other => panic!("journal must end with a run_end record, got {other:?}"),
    }
}

/// Reference run, interrupted run (in-process halt right after the round-`k`
/// checkpoint — the state a SIGKILL between rounds leaves behind), and the
/// resumed continuation, all on fresh engines built by `mk_engine`.
fn reference_and_resumed(
    dir: &std::path::Path,
    cfg: &MaOptConfig,
    problems: [&dyn SizingProblem; 3],
    init: Vec<(Vec<f64>, Vec<f64>)>,
    budget: usize,
    k: usize,
    mk_engine: &dyn Fn() -> EvalEngine,
) -> (RunResult, RunResult) {
    let ref_path = dir.join("reference.jsonl");
    let res_path = dir.join("resumed.jsonl");
    let ckpt_path = dir.join("run.ckpt");

    let journal = Journal::create(&ref_path).unwrap();
    let reference = MaOpt::new(cfg.clone()).run_observed(
        problems[0],
        init.clone(),
        budget,
        &mk_engine(),
        &journal,
    );
    drop(journal);

    let ckpt = RunCheckpointer::new(&ckpt_path).with_halt_after_round(k);
    let journal = Journal::create(&res_path).unwrap();
    let halted = MaOpt::new(cfg.clone()).run_resumable(
        problems[1],
        init.clone(),
        budget,
        &mk_engine(),
        &journal,
        Some(&ckpt),
    );
    drop(journal);
    assert!(
        halted.trace.num_sims() < budget,
        "halt at round {k} must interrupt the run mid-flight"
    );
    let store = maopt_ckpt::snapshot_store(&ckpt_path);
    assert!(
        !store.generations().unwrap().is_empty(),
        "halted run must leave a checkpoint generation"
    );

    // "Restart the process": fresh journal (truncating the torn one), fresh
    // engine, fresh problem instance, resume from the snapshot.
    let ckpt = RunCheckpointer::new(&ckpt_path).with_resume(true);
    let journal = Journal::create(&res_path).unwrap();
    let resumed = MaOpt::new(cfg.clone()).run_resumable(
        problems[2],
        init,
        budget,
        &mk_engine(),
        &journal,
        Some(&ckpt),
    );
    drop(journal);

    assert_eq!(
        normalized_lines(&ref_path),
        normalized_lines(&res_path),
        "resumed journal must be byte-identical to the uninterrupted run on non-timing fields"
    );
    (reference, resumed)
}

#[test]
fn resumed_run_is_byte_identical_to_uninterrupted() {
    let dir = tmp_dir("clean");
    let problem = ConstrainedToy::new(3);
    let cfg = small(MaOptConfig::ma_opt(9));
    let init = sample_initial_set(&problem, 30, 9);
    let (reference, resumed) = reference_and_resumed(
        &dir,
        &cfg,
        [&problem, &problem, &problem],
        init,
        40,
        4,
        &EvalEngine::serial,
    );
    assert_eq!(reference.best_fom(), resumed.best_fom());
    assert_eq!(
        reference.trace.best_fom_series(40),
        resumed.trace.best_fom_series(40)
    );
    assert_eq!(reference.population.len(), resumed.population.len());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_newest_generation_rolls_back_and_stays_byte_identical() {
    // Corrupt the newest snapshot generation after a mid-run kill: resume
    // must fall back to the previous good generation (one round earlier),
    // count the rollback, and still converge on a journal byte-identical
    // to the uninterrupted run — an earlier round is just an earlier
    // point on the same deterministic trajectory.
    let dir = tmp_dir("torn");
    let problem = ConstrainedToy::new(3);
    let cfg = small(MaOptConfig::ma_opt(9));
    let init = sample_initial_set(&problem, 30, 9);
    let budget = 40;
    let ckpt_path = dir.join("run.ckpt");

    let ref_path = dir.join("reference.jsonl");
    let journal = Journal::create(&ref_path).unwrap();
    let reference = MaOpt::new(cfg.clone()).run_observed(
        &problem,
        init.clone(),
        budget,
        &EvalEngine::serial(),
        &journal,
    );
    drop(journal);

    let res_path = dir.join("resumed.jsonl");
    let ckpt = RunCheckpointer::new(&ckpt_path).with_halt_after_round(4);
    let journal = Journal::create(&res_path).unwrap();
    MaOpt::new(cfg.clone()).run_resumable(
        &problem,
        init.clone(),
        budget,
        &EvalEngine::serial(),
        &journal,
        Some(&ckpt),
    );
    drop(journal);

    // Tear the newest generation mid-payload, as an interrupted write on
    // less well-behaved storage would.
    let store = maopt_ckpt::snapshot_store(&ckpt_path);
    let gens = store.generations().unwrap();
    assert!(gens.len() >= 2, "need an older generation to roll back to");
    let (_, newest) = gens.last().unwrap();
    let bytes = std::fs::read(newest).unwrap();
    std::fs::write(newest, &bytes[..bytes.len() / 2]).unwrap();

    let ckpt = RunCheckpointer::new(&ckpt_path).with_resume(true);
    let journal = Journal::create(&res_path).unwrap();
    let resumed = MaOpt::new(cfg).run_resumable(
        &problem,
        init,
        budget,
        &EvalEngine::serial(),
        &journal,
        Some(&ckpt),
    );
    drop(journal);

    assert_eq!(ckpt.rollbacks(), 1, "the torn generation must be counted");
    assert_eq!(
        normalized_lines(&ref_path),
        normalized_lines(&res_path),
        "rollback resume must stay byte-identical on non-timing fields"
    );
    assert_eq!(reference.best_fom(), resumed.best_fom());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_after_completion_rewrites_an_identical_run_end() {
    // The final checkpoint is written before the run-end record, so
    // resuming a run that actually finished must skip the loop and emit a
    // run-end identical (non-timing fields) to the original.
    let dir = tmp_dir("done");
    let problem = Sphere::new(3);
    let cfg = small(MaOptConfig::ma_opt2(5));
    let init = sample_initial_set(&problem, 10, 5);
    let budget = 9;

    let ref_path = dir.join("reference.jsonl");
    let journal = Journal::create(&ref_path).unwrap();
    let ckpt = RunCheckpointer::new(dir.join("run.ckpt"));
    MaOpt::new(cfg.clone()).run_resumable(
        &problem,
        init.clone(),
        budget,
        &EvalEngine::serial(),
        &journal,
        Some(&ckpt),
    );
    drop(journal);

    let res_path = dir.join("resumed.jsonl");
    let ckpt = RunCheckpointer::new(dir.join("run.ckpt")).with_resume(true);
    let journal = Journal::create(&res_path).unwrap();
    MaOpt::new(cfg).run_resumable(
        &problem,
        init,
        budget,
        &EvalEngine::serial(),
        &journal,
        Some(&ckpt),
    );
    drop(journal);

    assert_eq!(normalized_lines(&ref_path), normalized_lines(&res_path));
    std::fs::remove_dir_all(&dir).ok();
}

/// A sizing problem whose evaluations fault on [`ChaosProblem`]'s seeded
/// schedule — the core-level face of the exec chaos layer. Fresh instances
/// share the schedule (a pure function of seed and design) but not the
/// per-design attempt state, exactly like a restarted process.
struct ChaoticSphere {
    inner: Sphere,
    chaos: ChaosProblem<SphereEval>,
}

impl ChaoticSphere {
    fn new(dim: usize, chaos: ChaosConfig) -> Self {
        ChaoticSphere {
            inner: Sphere::new(dim),
            chaos: ChaosProblem::new(SphereEval(Sphere::new(dim)), chaos),
        }
    }
}

/// Newtype bridging [`Sphere`] to the engine's [`Evaluate`] trait (both are
/// foreign to this test crate, so the impl needs a local type).
struct SphereEval(Sphere);

impl Evaluate for SphereEval {
    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        SizingProblem::evaluate(&self.0, x)
    }
    fn num_metrics(&self) -> usize {
        SizingProblem::num_metrics(&self.0)
    }
    fn failure_metrics(&self) -> Vec<f64> {
        SizingProblem::failure_metrics(&self.0)
    }
    fn is_failure(&self, metrics: &[f64]) -> bool {
        SizingProblem::is_failure(&self.0, metrics)
    }
}

impl SizingProblem for ChaoticSphere {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn params(&self) -> &[ParamSpec] {
        self.inner.params()
    }
    fn metric_names(&self) -> Vec<String> {
        self.inner.metric_names()
    }
    fn specs(&self) -> &[Spec] {
        self.inner.specs()
    }
    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        Evaluate::evaluate(&self.chaos, x)
    }
}

#[test]
fn resumed_run_is_byte_identical_under_fault_injection() {
    let dir = tmp_dir("chaos");
    let chaos_cfg = ChaosConfig {
        seed: 77,
        panic_rate: 0.15,
        non_finite_rate: 0.15,
        stall_rate: 0.1,
        stall: Duration::from_millis(20),
        faults_per_design: 1,
    };
    // Each run gets its own problem instance: the resumed one starts with
    // empty attempt state, like a restarted process. The restored SimCache
    // keeps already-simulated designs from re-entering the injector, which
    // is what makes the fault counters line up.
    let p_ref = ChaoticSphere::new(3, chaos_cfg);
    let p_halt = ChaoticSphere::new(3, chaos_cfg);
    let p_res = ChaoticSphere::new(3, chaos_cfg);
    let cfg = small(MaOptConfig::ma_opt2(21));
    let init = sample_initial_set(&p_ref.inner, 12, 21);
    let mk_engine = || {
        EvalEngine::new(2)
            .with_cache(Arc::new(SimCache::new()))
            .with_policy(FaultPolicy {
                max_retries: 2,
                deadline: Some(Duration::from_millis(10)),
                ..FaultPolicy::default()
            })
    };
    let (reference, resumed) = reference_and_resumed(
        &dir,
        &cfg,
        [&p_ref, &p_halt, &p_res],
        init,
        18,
        3,
        &mk_engine,
    );
    assert_eq!(reference.best_fom(), resumed.best_fom());

    // The journals agree on the engine counters; sanity-check that chaos
    // actually injected something and nothing exhausted its retry budget.
    let end = run_end(&dir.join("reference.jsonl"));
    let ref_stats = p_ref.chaos.stats();
    assert!(ref_stats.total() > 0, "chaos must have injected faults");
    assert_eq!(end.engine.panics, ref_stats.panics);
    assert_eq!(end.engine.non_finite, ref_stats.non_finite);
    assert_eq!(end.engine.timeouts, ref_stats.stalls);
    assert_eq!(end.engine.retries, ref_stats.total());
    assert_eq!(end.engine.failures, 0, "faults_per_design is within budget");

    // The split runs inject the same schedule between them.
    let split = p_halt.chaos.stats().total() + p_res.chaos.stats().total();
    assert_eq!(split, ref_stats.total());
    std::fs::remove_dir_all(&dir).ok();
}
