//! Integration tests of the evaluation engine wired through `maopt-core`:
//! parallel-vs-serial bitwise equivalence, simulation-cache transparency,
//! and fault handling exercised through a fault-injecting synthetic
//! [`SizingProblem`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use maopt_core::problems::{ConstrainedToy, Sphere};
use maopt_core::runner::{
    make_initial_sets, run_method, run_method_with, sample_initial_set, sample_initial_set_with,
};
use maopt_core::{
    EngineProblem, FomConfig, MaOptConfig, NearSampler, ParamSpec, SizingProblem, Spec,
};
use maopt_exec::{EvalEngine, FaultPolicy, SimCache, Telemetry};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny(cfg: MaOptConfig) -> MaOptConfig {
    MaOptConfig {
        hidden: vec![16, 16],
        critic_steps: 10,
        actor_steps: 5,
        n_samples: 64,
        ..cfg
    }
}

/// A 2-parameter problem whose evaluation faults on demand: calls 1..=`bad`
/// (per process-wide counter) either panic or return NaN metrics, later
/// calls succeed. Lets tests drive the engine's retry path through the real
/// `SizingProblem` → `EngineProblem` route.
struct FaultyProblem {
    params: Vec<ParamSpec>,
    specs: Vec<Spec>,
    calls: AtomicU64,
    faults_before_success: u64,
    panic_mode: bool,
}

impl FaultyProblem {
    fn new(faults_before_success: u64, panic_mode: bool) -> Self {
        FaultyProblem {
            params: vec![
                ParamSpec::linear("x0", "", 0.0, 1.0),
                ParamSpec::linear("x1", "", 0.0, 1.0),
            ],
            specs: vec![Spec::at_most("m", 1, 1.0)],
            calls: AtomicU64::new(0),
            faults_before_success,
            panic_mode,
        }
    }
}

impl SizingProblem for FaultyProblem {
    fn name(&self) -> &str {
        "faulty"
    }

    fn params(&self) -> &[ParamSpec] {
        &self.params
    }

    fn metric_names(&self) -> Vec<String> {
        vec!["target".into(), "m".into()]
    }

    fn specs(&self) -> &[Spec] {
        &self.specs
    }

    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        let call = self.calls.fetch_add(1, Ordering::SeqCst);
        if call < self.faults_before_success {
            assert!(!self.panic_mode, "injected simulator crash");
            return vec![f64::NAN, f64::NAN];
        }
        vec![x[0] + x[1], x[0]]
    }

    fn failure_metrics(&self) -> Vec<f64> {
        vec![1e6, 1e6]
    }
}

fn assert_stats_identical(
    a: &maopt_core::runner::MethodStats,
    b: &maopt_core::runner::MethodStats,
    budget: usize,
) {
    assert_eq!(a.successes, b.successes);
    assert_eq!(a.min_target, b.min_target);
    assert_eq!(a.avg_fom, b.avg_fom, "bitwise, not approximately");
    assert_eq!(a.fom_curve, b.fom_curve);
    for (ra, rb) in a.results.iter().zip(&b.results) {
        assert_eq!(ra.best_fom(), rb.best_fom());
        assert_eq!(
            ra.trace.best_fom_series(budget),
            rb.trace.best_fom_series(budget)
        );
    }
}

#[test]
fn run_method_parallel_matches_serial_bitwise() {
    let p = ConstrainedToy::new(2);
    let (runs, budget) = (3, 8);
    let inits = make_initial_sets(&p, runs, 12, 1);
    let cfg = tiny(MaOptConfig::ma_opt(0));

    let serial = run_method(&cfg, &p, &inits, runs, budget, 100);
    let parallel = run_method_with(&cfg, &p, &inits, runs, budget, 100, &EvalEngine::new(4));

    assert_stats_identical(&serial, &parallel, budget);
    assert_eq!(
        parallel.exec.sims,
        (runs * budget) as u64,
        "one sim per budget unit per run"
    );
}

#[test]
fn run_method_with_cache_is_transparent() {
    let p = Sphere::new(3);
    let (runs, budget) = (2, 6);
    let inits = make_initial_sets(&p, runs, 10, 2);
    let cfg = tiny(MaOptConfig::ma_opt2(0));

    let plain = run_method(&cfg, &p, &inits, runs, budget, 50);
    let engine = EvalEngine::new(3).with_cache(Arc::new(SimCache::new()));
    let cached = run_method_with(&cfg, &p, &inits, runs, budget, 50, &engine);

    assert_stats_identical(&plain, &cached, budget);
    let exec = &cached.exec;
    assert_eq!(
        exec.sims + exec.cache_hits,
        (runs * budget) as u64,
        "every evaluation is either simulated or served from the cache"
    );
}

#[test]
fn sample_initial_set_parallel_matches_serial() {
    let p = Sphere::new(4);
    let serial = sample_initial_set_with(&p, 25, 9, &EvalEngine::serial());
    let parallel = sample_initial_set_with(&p, 25, 9, &EvalEngine::new(5));
    assert_eq!(serial, parallel);
    // And the engine-less wrapper agrees too.
    assert_eq!(serial, sample_initial_set(&p, 25, 9));
}

#[test]
fn near_sampling_chunked_ranking_matches_serial() {
    // Train a small critic so predictions are non-trivial, then check the
    // pooled chunked ranking proposes the bitwise-identical candidate.
    let p = Sphere::new(2);
    let init = sample_initial_set(&p, 40, 17);
    let specs = p.specs().to_vec();
    let fom_cfg = FomConfig::default();
    let mut pop = maopt_core::Population::new();
    for (x, m) in init {
        pop.push(x, m, &specs, fom_cfg);
    }
    let mut critic = maopt_core::Critic::new(2, 2, &[16, 16], 3e-3, 5);
    critic.refit_scaler(&pop);
    let mut rng = StdRng::seed_from_u64(6);
    critic.train(&pop, 100, 16, &mut rng);

    let ns = NearSampler::new(333, 0.1);
    let x_opt = [0.4, 0.6];
    let mut rng_a = StdRng::seed_from_u64(77);
    let mut rng_b = StdRng::seed_from_u64(77);
    let serial = ns.propose(&critic, &x_opt, &specs, fom_cfg, &mut rng_a);
    let pooled = ns.propose_with(
        &critic,
        &x_opt,
        &specs,
        fom_cfg,
        &mut rng_b,
        &EvalEngine::new(4),
    );
    assert_eq!(serial, pooled);
}

#[test]
fn transient_faults_are_retried_through_sizing_problem() {
    let p = FaultyProblem::new(2, false);
    let engine = EvalEngine::new(1).with_policy(FaultPolicy {
        max_retries: 2,
        deadline: None,
        ..FaultPolicy::default()
    });
    let out = engine.evaluate_one(&EngineProblem(&p), &[0.25, 0.5]);
    assert_eq!(out, vec![0.75, 0.25], "third attempt succeeds");
    let snap = engine.telemetry().snapshot();
    assert_eq!(snap.sims, 3);
    assert_eq!(snap.retries, 2);
    assert_eq!(snap.failures, 0);
}

#[test]
fn exhausted_retries_emit_the_problem_penalty_vector() {
    let p = FaultyProblem::new(u64::MAX, false);
    let engine = EvalEngine::new(1).with_policy(FaultPolicy {
        max_retries: 1,
        deadline: None,
        ..FaultPolicy::default()
    });
    let out = engine.evaluate_one(&EngineProblem(&p), &[0.1, 0.2]);
    assert_eq!(
        out,
        p.failure_metrics(),
        "the circuit's own penalty vector, not all-inf"
    );
    let snap = engine.telemetry().snapshot();
    assert_eq!(snap.sims, 2, "initial attempt + one retry");
    assert_eq!(snap.failures, 1);
}

#[test]
fn evaluation_timeout_is_a_counted_fault() {
    struct SlowProblem(FaultyProblem);
    impl SizingProblem for SlowProblem {
        fn name(&self) -> &str {
            "slow"
        }
        fn params(&self) -> &[ParamSpec] {
            self.0.params()
        }
        fn metric_names(&self) -> Vec<String> {
            self.0.metric_names()
        }
        fn specs(&self) -> &[Spec] {
            self.0.specs()
        }
        fn evaluate(&self, x: &[f64]) -> Vec<f64> {
            std::thread::sleep(Duration::from_millis(5));
            vec![x[0], x[1]]
        }
    }
    let p = SlowProblem(FaultyProblem::new(0, false));
    let engine = EvalEngine::new(1).with_policy(FaultPolicy {
        max_retries: 0,
        deadline: Some(Duration::from_millis(1)),
        ..FaultPolicy::default()
    });
    let out = engine.evaluate_one(&EngineProblem(&p), &[0.3, 0.4]);
    assert_eq!(
        out,
        vec![f64::INFINITY, f64::INFINITY],
        "default penalty when not overridden"
    );
    assert_eq!(engine.telemetry().snapshot().timeouts, 1);
}

#[test]
fn engine_problem_panic_is_isolated_and_penalized() {
    let p = FaultyProblem::new(1, true);
    let engine = EvalEngine::new(1).with_policy(FaultPolicy {
        max_retries: 0,
        deadline: None,
        ..FaultPolicy::default()
    });
    let out = engine.evaluate_one(&EngineProblem(&p), &[0.0, 0.0]);
    assert_eq!(out, p.failure_metrics());
    let snap = engine.telemetry().snapshot();
    assert_eq!(snap.panics, 1);
    assert_eq!(snap.failures, 1);
}

#[test]
fn telemetry_spans_cover_engine_phases() {
    let p = Sphere::new(2);
    let inits = make_initial_sets(&p, 1, 8, 3);
    let engine = EvalEngine::new(2).with_telemetry(Arc::new(Telemetry::new()));
    let _ = run_method_with(&tiny(MaOptConfig::ma_opt2(0)), &p, &inits, 1, 4, 9, &engine);
    let spans = engine.telemetry().spans();
    let names: Vec<&str> = spans.iter().map(|(n, _)| n.as_str()).collect();
    assert!(names.contains(&"actor_training"), "{names:?}");
    assert!(names.contains(&"simulation"), "{names:?}");
    assert!(names.iter().any(|n| n.starts_with("method:")), "{names:?}");
}
