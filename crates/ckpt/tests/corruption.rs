//! Property tests: no single-byte corruption of a tagged container can
//! slip past validation, panic the loader, or defeat generation
//! fallback.
//!
//! The tagged format's safety argument is byte-local — magic bytes catch
//! prefix damage, the length field catches truncation, FNV-1a catches
//! payload damage — so the property is quantified over arbitrary
//! payload shapes and corruption sites: proptest drives both, and each
//! case asserts the loader returns `Corrupt` (never `Ok`, never a panic
//! or hang) and that a rotated store still serves the previous good
//! generation afterwards.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use maopt_ckpt::{load_tagged, save_tagged, CkptError, GenStore};
use proptest::prelude::*;

const MAGIC: &[u8; 8] = b"MAOPTTST";
const VERSION: u32 = 1;

static SEQ: AtomicUsize = AtomicUsize::new(0);

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "maopt-ckpt-prop-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn bytes_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u64..256, 0..256).prop_map(|v| v.into_iter().map(|x| x as u8).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flipping any single bit of any byte of the container is detected
    /// as `Corrupt` — and a generation store holding a prior good copy
    /// rolls back to it.
    #[test]
    fn any_single_byte_flip_is_corrupt_and_fallback_recovers(
        payload in bytes_strategy(),
        byte_frac in 0.0f64..1.0,
        bit in 0u64..8,
    ) {
        let dir = scratch_dir();
        let store = GenStore::new(dir.join("state.bin"), MAGIC, VERSION);
        store.save_next(b"previous-good").unwrap();
        let g = store.save_next(&payload).unwrap();
        let path = store.generation_path(g).unwrap();

        let mut bytes = fs::read(&path).unwrap();
        let idx = ((byte_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        bytes[idx] ^= 1 << bit;
        fs::write(&path, &bytes).unwrap();

        let loaded = load_tagged(&path, MAGIC, VERSION);
        prop_assert!(
            matches!(loaded, Err(CkptError::Corrupt(_))),
            "flip at byte {idx} bit {bit} not detected: {loaded:?}"
        );

        let fallback = store.load_latest_good().unwrap().unwrap();
        prop_assert_eq!(fallback.value, b"previous-good".to_vec());
        prop_assert_eq!(fallback.rolled_back, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Truncating the container at any length short of the full file is
    /// detected as `Corrupt` (or, for the zero-length ENOSPC residue,
    /// read as missing) — never `Ok`, a panic, or a length-prefix-driven
    /// oversized allocation.
    #[test]
    fn any_truncation_is_corrupt_and_fallback_recovers(
        payload in bytes_strategy(),
        keep_frac in 0.0f64..1.0,
    ) {
        let dir = scratch_dir();
        let store = GenStore::new(dir.join("state.bin"), MAGIC, VERSION);
        store.save_next(b"previous-good").unwrap();
        let g = store.save_next(&payload).unwrap();
        let path = store.generation_path(g).unwrap();

        let bytes = fs::read(&path).unwrap();
        let keep = ((keep_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        fs::write(&path, &bytes[..keep]).unwrap();

        let loaded = load_tagged(&path, MAGIC, VERSION);
        prop_assert!(
            matches!(loaded, Err(CkptError::Corrupt(_))),
            "truncation to {keep} bytes not detected: {loaded:?}"
        );

        let fallback = store.load_latest_good().unwrap().unwrap();
        prop_assert_eq!(fallback.value, b"previous-good".to_vec());
        // A zero-length file reads as missing (interrupted create), any
        // other truncation as a corrupt rollback.
        prop_assert_eq!(fallback.rolled_back, u64::from(keep > 0));
        let _ = fs::remove_dir_all(&dir);
    }

    /// A hostile length prefix never causes an allocation proportional
    /// to the claimed length — validation is bounded by the actual file
    /// size.
    #[test]
    fn hostile_length_prefix_never_overallocates(claimed in 0u64..u64::MAX) {
        let dir = scratch_dir();
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hostile.bin");
        save_tagged(&path, MAGIC, VERSION, b"tiny").unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[12..20].copy_from_slice(&claimed.to_le_bytes());
        fs::write(&path, &bytes).unwrap();

        let loaded = load_tagged(&path, MAGIC, VERSION);
        if claimed == 4 {
            prop_assert!(loaded.is_ok(), "true length must still load: {loaded:?}");
        } else {
            prop_assert!(
                matches!(loaded, Err(CkptError::Corrupt(_))),
                "hostile length {claimed} produced {loaded:?}"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
