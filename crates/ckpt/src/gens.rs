//! Generation-rotated container files with last-good fallback.
//!
//! A [`GenStore`] maps a logical path like `run.ckpt` onto a rotated
//! family of sibling files — `run.ckpt.0001.bin`, `run.ckpt.0002.bin`,
//! … — each a complete [`crate::save_tagged`] container. Writes always
//! create a *new* generation and then garbage-collect all but the
//! newest `keep`; loads walk generations newest-first and fall back to
//! the last good one when the newest is corrupt, reporting how many
//! generations were skipped so callers can record the rollback.
//!
//! Rotation is what turns detection into recovery: a single-file store
//! that suffers a torn write has lost its only copy, while a rotated
//! store still holds the previous round's snapshot — and because every
//! write targets a fresh path, a deterministic per-path fault schedule
//! ([`crate::FaultFs`]) cannot pin the store in a permanent failure.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::faults::{active_faults, FaultFs};
use crate::{load_tagged, save_tagged_with, CkptError};

/// Generations retained after a successful save (the new one included).
pub const DEFAULT_KEEP: usize = 3;

/// Fresh generation numbers tried per [`GenStore::save_next`] before
/// giving up: each attempt targets a new path, so a per-path fault
/// (injected or a genuinely bad block) cannot wedge the store.
const SAVE_ATTEMPTS: u64 = 4;

/// A successfully loaded generation plus its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct GenLoad<T> {
    /// The decoded payload.
    pub value: T,
    /// Which generation supplied it (0 = the legacy un-rotated base
    /// file).
    pub generation: u64,
    /// Newer generations that existed but failed validation and were
    /// skipped — each one a rollback the caller should record.
    pub rolled_back: u64,
}

/// A rotated family of tagged container files; see the module docs.
#[derive(Debug, Clone)]
pub struct GenStore {
    base: PathBuf,
    magic: [u8; 8],
    version: u32,
    keep: usize,
    faults: Option<Arc<FaultFs>>,
}

impl GenStore {
    /// A store rotating `<base>.NNNN.bin` siblings of `base`, writing
    /// and validating `magic`/`version` containers, keeping
    /// [`DEFAULT_KEEP`] generations.
    pub fn new(base: impl Into<PathBuf>, magic: &[u8; 8], version: u32) -> Self {
        GenStore {
            base: base.into(),
            magic: *magic,
            version,
            keep: DEFAULT_KEEP,
            faults: None,
        }
    }

    /// How many generations survive a save (at least 1).
    #[must_use]
    pub fn with_keep(mut self, keep: usize) -> Self {
        self.keep = keep.max(1);
        self
    }

    /// Routes this store's writes through an explicit fault injector
    /// instead of the process-global one ([`crate::active_faults`]).
    #[must_use]
    pub fn with_faults(mut self, faults: Arc<FaultFs>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// The logical base path generations are derived from.
    pub fn base(&self) -> &Path {
        &self.base
    }

    fn file_name(&self) -> Result<&std::ffi::OsStr, CkptError> {
        self.base
            .file_name()
            .ok_or_else(|| CkptError::Corrupt("checkpoint path has no file name".into()))
    }

    /// The on-disk path of generation `g`.
    ///
    /// # Errors
    ///
    /// [`CkptError::Corrupt`] when the base path has no file name.
    pub fn generation_path(&self, g: u64) -> Result<PathBuf, CkptError> {
        let mut name = self.file_name()?.to_os_string();
        name.push(format!(".{g:04}.bin"));
        Ok(self.base.with_file_name(name))
    }

    /// Every on-disk generation, ascending by number. A missing parent
    /// directory is an empty store, not an error.
    ///
    /// # Errors
    ///
    /// Propagates directory-scan failures other than `NotFound`.
    pub fn generations(&self) -> Result<Vec<(u64, PathBuf)>, CkptError> {
        let prefix = format!("{}.", self.file_name()?.to_string_lossy());
        let parent = match self.base.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        let entries = match fs::read_dir(parent) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let mut out = Vec::new();
        for entry in entries {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let Some(digits) = name
                .strip_prefix(&prefix)
                .and_then(|rest| rest.strip_suffix(".bin"))
            else {
                continue;
            };
            // Only all-digit middles of plausible width are generations;
            // anything else (foreign files, `.tmp` residue) is ignored.
            if digits.is_empty() || digits.len() > 19 || !digits.bytes().all(|b| b.is_ascii_digit())
            {
                continue;
            }
            if let Ok(g) = digits.parse::<u64>() {
                out.push((g, entry.path()));
            }
        }
        out.sort_unstable_by_key(|(g, _)| *g);
        Ok(out)
    }

    /// Durably writes `payload` as the next generation, then removes
    /// generations older than the newest `keep` (best-effort). A failed
    /// write retries on the *next* generation number — a fresh path —
    /// up to a small bound, so one bad path cannot wedge the store.
    ///
    /// Returns the generation number written.
    ///
    /// # Errors
    ///
    /// The last write error once every attempt fails.
    pub fn save_next(&self, payload: &[u8]) -> Result<u64, CkptError> {
        let next = self.generations()?.last().map_or(1, |(g, _)| g + 1);
        let faults = self.faults.clone().or_else(active_faults);
        let mut last_err = None;
        for attempt in 0..SAVE_ATTEMPTS {
            let g = next + attempt;
            let path = self.generation_path(g)?;
            match save_tagged_with(&path, &self.magic, self.version, payload, faults.as_deref()) {
                Ok(()) => {
                    self.collect_garbage(g);
                    return Ok(g);
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.expect("SAVE_ATTEMPTS > 0"))
    }

    /// Removes every generation older than the newest `keep`, plus any
    /// write-attempt residue (zero-length destinations, `.tmp`
    /// siblings) belonging to them. Failures are ignored: GC is an
    /// optimization, never a correctness requirement.
    fn collect_garbage(&self, newest: u64) {
        let keep_from = newest.saturating_sub(self.keep as u64 - 1);
        let Ok(gens) = self.generations() else {
            return;
        };
        for (g, path) in gens {
            if g >= keep_from {
                continue;
            }
            let _ = fs::remove_file(&path);
            if let Some(name) = path.file_name() {
                let mut tmp = name.to_os_string();
                tmp.push(".tmp");
                let _ = fs::remove_file(path.with_file_name(tmp));
            }
        }
    }

    /// Loads the newest generation that validates, decoding through
    /// `decode`. Zero-length generations (an interrupted create) are
    /// treated as missing; corrupt ones are skipped and counted in
    /// [`GenLoad::rolled_back`]. When no generation exists, the bare
    /// base path is tried as generation 0 (pre-rotation state dirs).
    ///
    /// # Errors
    ///
    /// Real I/O failures propagate; a store whose every present
    /// generation is corrupt is [`CkptError::Corrupt`] (falling back to
    /// *nothing* would silently restart the caller from scratch).
    pub fn load_latest_good_with<T>(
        &self,
        mut decode: impl FnMut(&[u8]) -> Result<T, CkptError>,
    ) -> Result<Option<GenLoad<T>>, CkptError> {
        let mut rolled_back = 0u64;
        let gens = self.generations()?;
        let legacy = std::iter::once((0u64, self.base.clone()));
        for (g, path) in gens.into_iter().rev().chain(legacy) {
            match fs::metadata(&path) {
                Ok(m) if m.len() == 0 => continue, // interrupted create = missing
                Ok(_) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e.into()),
            }
            match load_tagged(&path, &self.magic, self.version).and_then(|b| decode(&b)) {
                Ok(value) => {
                    return Ok(Some(GenLoad {
                        value,
                        generation: g,
                        rolled_back,
                    }))
                }
                Err(CkptError::Corrupt(_)) => rolled_back += 1,
                Err(CkptError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        if rolled_back > 0 {
            return Err(CkptError::Corrupt(format!(
                "no good generation of {} ({rolled_back} corrupt)",
                self.base.display()
            )));
        }
        Ok(None)
    }

    /// [`GenStore::load_latest_good_with`] returning the raw payload.
    ///
    /// # Errors
    ///
    /// As [`GenStore::load_latest_good_with`].
    pub fn load_latest_good(&self) -> Result<Option<GenLoad<Vec<u8>>>, CkptError> {
        self.load_latest_good_with(|b| Ok(b.to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultConfig, WriteFault};
    use crate::save_tagged;
    use std::sync::atomic::{AtomicUsize, Ordering};

    const MAGIC: &[u8; 8] = b"MAOPTTST";

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    fn tmp_store(tag: &str) -> GenStore {
        let dir = std::env::temp_dir().join(format!(
            "maopt-gens-{tag}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        GenStore::new(dir.join("state.bin"), MAGIC, 1)
    }

    fn cleanup(store: &GenStore) {
        if let Some(dir) = store.base().parent() {
            let _ = fs::remove_dir_all(dir);
        }
    }

    #[test]
    fn save_next_rotates_and_gc_keeps_k() {
        let store = tmp_store("rotate").with_keep(3);
        for i in 1..=6u64 {
            let g = store.save_next(format!("payload-{i}").as_bytes()).unwrap();
            assert_eq!(g, i, "generations count up");
        }
        let gens: Vec<u64> = store
            .generations()
            .unwrap()
            .iter()
            .map(|(g, _)| *g)
            .collect();
        assert_eq!(gens, vec![4, 5, 6], "only the newest 3 survive GC");
        let load = store.load_latest_good().unwrap().unwrap();
        assert_eq!(load.value, b"payload-6");
        assert_eq!(load.generation, 6);
        assert_eq!(load.rolled_back, 0);
        cleanup(&store);
    }

    #[test]
    fn corrupt_newest_rolls_back_to_last_good() {
        let store = tmp_store("rollback");
        store.save_next(b"good-1").unwrap();
        store.save_next(b"good-2").unwrap();
        let g3 = store
            .generation_path(store.save_next(b"bad-3").unwrap())
            .unwrap();
        let mut bytes = fs::read(&g3).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xA5;
        fs::write(&g3, &bytes).unwrap();

        let load = store.load_latest_good().unwrap().unwrap();
        assert_eq!(load.value, b"good-2");
        assert_eq!(load.generation, 2);
        assert_eq!(load.rolled_back, 1, "one corrupt generation skipped");

        // The next save continues past the corrupt generation.
        assert_eq!(store.save_next(b"good-4").unwrap(), 4);
        let load = store.load_latest_good().unwrap().unwrap();
        assert_eq!(load.value, b"good-4");
        assert_eq!(load.rolled_back, 0);
        cleanup(&store);
    }

    #[test]
    fn zero_length_generation_reads_as_missing_not_corrupt() {
        let store = tmp_store("zerolen");
        store.save_next(b"good").unwrap();
        fs::write(store.generation_path(2).unwrap(), b"").unwrap();
        let load = store.load_latest_good().unwrap().unwrap();
        assert_eq!(load.value, b"good");
        assert_eq!(
            load.rolled_back, 0,
            "an interrupted create is not a rollback"
        );
        cleanup(&store);
    }

    #[test]
    fn all_generations_corrupt_is_an_error_not_a_fresh_start() {
        let store = tmp_store("allbad");
        for payload in [b"a".as_slice(), b"b"] {
            let g = store.save_next(payload).unwrap();
            let p = store.generation_path(g).unwrap();
            let mut bytes = fs::read(&p).unwrap();
            let last = bytes.len() - 1;
            bytes[last] ^= 0xFF;
            fs::write(&p, &bytes).unwrap();
        }
        assert!(matches!(
            store.load_latest_good(),
            Err(CkptError::Corrupt(msg)) if msg.contains("2 corrupt")
        ));
        cleanup(&store);
    }

    #[test]
    fn empty_store_is_none_and_legacy_base_file_is_generation_zero() {
        let store = tmp_store("legacy");
        assert!(store.load_latest_good().unwrap().is_none());
        save_tagged(store.base(), MAGIC, 1, b"pre-rotation").unwrap();
        let load = store.load_latest_good().unwrap().unwrap();
        assert_eq!(load.value, b"pre-rotation");
        assert_eq!(load.generation, 0);
        // A rotated save then shadows the legacy file.
        store.save_next(b"rotated").unwrap();
        assert_eq!(store.load_latest_good().unwrap().unwrap().value, b"rotated");
        cleanup(&store);
    }

    #[test]
    fn decode_failure_counts_as_corrupt_and_falls_back() {
        let store = tmp_store("decode");
        store.save_next(b"ok").unwrap();
        store.save_next(b"undecodable").unwrap();
        let load = store
            .load_latest_good_with(|b| {
                if b == b"undecodable" {
                    Err(CkptError::Corrupt("schema mismatch".into()))
                } else {
                    Ok(b.to_vec())
                }
            })
            .unwrap()
            .unwrap();
        assert_eq!(load.value, b"ok");
        assert_eq!(load.rolled_back, 1);
        cleanup(&store);
    }

    /// Drives the store under every fault kind at full probability: the
    /// hard kinds (ENOSPC, fsync) error but a later attempt on a fresh
    /// generation number succeeds; the silent kinds (torn, flip) report
    /// success but load as corrupt and roll back.
    #[test]
    fn faults_inject_per_kind_and_rotation_recovers() {
        for (kind, rate_of) in [
            (WriteFault::Enospc, 0usize),
            (WriteFault::Torn, 1),
            (WriteFault::FsyncFail, 2),
            (WriteFault::BitFlip, 3),
        ] {
            let mut cfg = FaultConfig::quiet(11);
            match kind {
                WriteFault::Enospc => cfg.enospc = 1.0,
                WriteFault::Torn => cfg.torn = 1.0,
                WriteFault::FsyncFail => cfg.fsync_fail = 1.0,
                WriteFault::BitFlip => cfg.bit_flip = 1.0,
            }
            let faults = Arc::new(FaultFs::new(cfg));
            let store = tmp_store(kind.name()).with_faults(Arc::clone(&faults));
            match kind {
                // Hard faults: every attempt errors (rate 1.0 on every
                // path), so save_next reports the failure.
                WriteFault::Enospc | WriteFault::FsyncFail => {
                    assert!(store.save_next(b"doomed").is_err());
                    assert!(faults.injected()[rate_of] >= 1);
                    // Nothing good landed; an ENOSPC-created zero-length
                    // file must read as missing.
                    assert!(store.load_latest_good().unwrap().is_none());
                }
                // Silent faults: the save "succeeds" but the container
                // is corrupt; a prior good generation wins at load.
                WriteFault::Torn | WriteFault::BitFlip => {
                    // First write a good generation without faults.
                    let quiet = Arc::new(FaultFs::new(FaultConfig::quiet(11)));
                    let good_store = GenStore::new(store.base(), MAGIC, 1).with_faults(quiet);
                    good_store.save_next(b"good").unwrap();
                    store.save_next(b"silently-bad").unwrap();
                    assert_eq!(faults.injected()[rate_of], 1);
                    let load = store.load_latest_good().unwrap().unwrap();
                    assert_eq!(load.value, b"good");
                    assert_eq!(load.rolled_back, 1);
                }
            }
            cleanup(&store);
        }
    }
}
