//! Deterministic storage-fault injection for the atomic write path.
//!
//! [`FaultFs`] decides, purely from a seed and the destination path,
//! whether a [`crate::save_tagged`] call should suffer a disk fault and
//! which one:
//!
//! * **ENOSPC** — the temp-file write fails halfway (device full). When
//!   the destination did not exist yet, a zero-length file is left
//!   behind, exactly the state a crashed `create(2)` produces; loaders
//!   treat zero-length as missing, not corrupt.
//! * **Torn write** — the file is silently truncated at a
//!   schedule-chosen byte *k* before the rename, modeling storage that
//!   acknowledged a write it never completed. The call reports success;
//!   the checksum catches it at load time.
//! * **Fsync failure** — the data is written but `fsync` reports an
//!   error, so the rename is refused and the caller sees an I/O error
//!   with the previous destination intact.
//! * **Bit flip** — one schedule-chosen bit is flipped after the
//!   rename, modeling silent media corruption. The call reports
//!   success; the checksum catches it at load time.
//!
//! The schedule is a pure function of `(seed, path)` — the same path
//! always draws the same fault, across retries and process restarts —
//! which is what makes chaos runs reproducible. Generation-rotated
//! stores ([`crate::GenStore`]) give every write attempt a fresh path,
//! so a hard fault on one generation does not pin the store forever:
//! the retry draws independently.
//!
//! Tests pass a [`FaultFs`] explicitly ([`crate::save_tagged_with`],
//! [`crate::GenStore::with_faults`]); whole-process chaos (subprocess
//! daemons, CI smoke jobs) activates a global injector through the
//! [`FAULTS_ENV`] environment variable instead.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once, PoisonError};

/// Environment variable holding a [`FaultConfig::parse`] spec; when set,
/// every [`crate::save_tagged`] in the process runs under that injector.
pub const FAULTS_ENV: &str = "MAOPT_CKPT_FAULTS";

/// The fault kinds [`FaultFs`] can inject into one write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Device-full mid-write: the call errors, no rename happens, and a
    /// zero-length destination may be left behind when none existed.
    Enospc,
    /// Silent truncation at a schedule-chosen byte; the call succeeds.
    Torn,
    /// `fsync` fails after a complete write; the call errors and the
    /// previous destination survives untouched.
    FsyncFail,
    /// One schedule-chosen bit flips after the rename; the call
    /// succeeds.
    BitFlip,
}

impl WriteFault {
    fn index(self) -> usize {
        match self {
            WriteFault::Enospc => 0,
            WriteFault::Torn => 1,
            WriteFault::FsyncFail => 2,
            WriteFault::BitFlip => 3,
        }
    }

    /// Human-readable kind name (stats, log lines).
    pub fn name(self) -> &'static str {
        match self {
            WriteFault::Enospc => "enospc",
            WriteFault::Torn => "torn",
            WriteFault::FsyncFail => "fsync",
            WriteFault::BitFlip => "flip",
        }
    }
}

/// Per-kind fault probabilities plus the schedule seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Schedule seed; the fault drawn for a path is a pure function of
    /// this and the path.
    pub seed: u64,
    /// Probability of [`WriteFault::Enospc`] per write.
    pub enospc: f64,
    /// Probability of [`WriteFault::Torn`] per write.
    pub torn: f64,
    /// Probability of [`WriteFault::FsyncFail`] per write.
    pub fsync_fail: f64,
    /// Probability of [`WriteFault::BitFlip`] per write.
    pub bit_flip: f64,
}

impl FaultConfig {
    /// A config injecting nothing (all rates zero).
    pub fn quiet(seed: u64) -> Self {
        FaultConfig {
            seed,
            enospc: 0.0,
            torn: 0.0,
            fsync_fail: 0.0,
            bit_flip: 0.0,
        }
    }

    /// Parses the `key=value` comma list the [`FAULTS_ENV`] variable
    /// carries, e.g. `"seed=7,enospc=0.05,torn=0.05,fsync=0.02,flip=0.02"`.
    /// Unmentioned rates default to zero; `seed` defaults to zero.
    ///
    /// # Errors
    ///
    /// A descriptive message on an unknown key, a malformed number, or a
    /// rate outside `[0, 1]`.
    pub fn parse(spec: &str) -> Result<FaultConfig, String> {
        let mut cfg = FaultConfig::quiet(0);
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part.split_once('=').ok_or_else(|| {
                format!("malformed fault spec entry {part:?} (expected key=value)")
            })?;
            let rate = |slot: &mut f64| -> Result<(), String> {
                let v: f64 = value
                    .parse()
                    .map_err(|_| format!("invalid rate {value:?} for {key:?}"))?;
                if !(0.0..=1.0).contains(&v) {
                    return Err(format!("rate {key}={v} outside [0, 1]"));
                }
                *slot = v;
                Ok(())
            };
            match key.trim() {
                "seed" => {
                    cfg.seed = value
                        .parse()
                        .map_err(|_| format!("invalid seed {value:?}"))?;
                }
                "enospc" => rate(&mut cfg.enospc)?,
                "torn" => rate(&mut cfg.torn)?,
                "fsync" => rate(&mut cfg.fsync_fail)?,
                "flip" => rate(&mut cfg.bit_flip)?,
                other => {
                    return Err(format!(
                        "unknown fault spec key {other:?} (expected seed, enospc, torn, fsync, or flip)"
                    ))
                }
            }
        }
        let total = cfg.enospc + cfg.torn + cfg.fsync_fail + cfg.bit_flip;
        if total > 1.0 {
            return Err(format!("fault rates sum to {total} (> 1)"));
        }
        Ok(cfg)
    }
}

/// FNV-1a over a seed, a domain tag, and a path, mapped to `[0, 1)`.
/// Pure in its inputs: the same `(seed, tag, path)` always draws the
/// same unit, across retries and restarts.
fn unit_hash(seed: u64, tag: &str, path: &Path) -> f64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(&seed.to_le_bytes());
    eat(tag.as_bytes());
    eat(path.to_string_lossy().as_bytes());
    // Top 53 bits → an exactly representable double in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A deterministic storage-fault injector; see the module docs.
#[derive(Debug)]
pub struct FaultFs {
    cfg: FaultConfig,
    injected: [AtomicU64; 4],
}

impl FaultFs {
    /// An injector drawing from `cfg`'s schedule.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultFs {
            cfg,
            injected: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
        }
    }

    /// The config this injector draws from.
    pub fn config(&self) -> FaultConfig {
        self.cfg
    }

    /// The fault (if any) a write to `path` draws — a pure function of
    /// the seed and the path, so retries of the same path refail
    /// identically while a rotated path draws independently.
    pub fn decide(&self, path: &Path) -> Option<WriteFault> {
        let u = unit_hash(self.cfg.seed, "kind", path);
        let mut edge = self.cfg.enospc;
        if u < edge {
            return Some(WriteFault::Enospc);
        }
        edge += self.cfg.torn;
        if u < edge {
            return Some(WriteFault::Torn);
        }
        edge += self.cfg.fsync_fail;
        if u < edge {
            return Some(WriteFault::FsyncFail);
        }
        edge += self.cfg.bit_flip;
        if u < edge {
            return Some(WriteFault::BitFlip);
        }
        None
    }

    /// [`FaultFs::decide`] plus bookkeeping: counts the injection.
    pub(crate) fn draw(&self, path: &Path) -> Option<WriteFault> {
        let fault = self.decide(path)?;
        self.injected[fault.index()].fetch_add(1, Ordering::Relaxed);
        Some(fault)
    }

    /// Where a torn write to `path` cuts a `len`-byte file: a
    /// schedule-chosen offset in `1..len`, so the remnant is non-empty
    /// (an empty file would read as missing, not torn) and strictly
    /// short.
    pub fn cut_point(&self, path: &Path, len: usize) -> usize {
        if len <= 2 {
            return 1;
        }
        1 + (unit_hash(self.cfg.seed, "cut", path) * (len - 1) as f64) as usize
    }

    /// Which bit a post-rename flip corrupts in a `len`-byte file.
    pub fn flip_bit(&self, path: &Path, len: usize) -> usize {
        let bits = (len * 8).max(1);
        ((unit_hash(self.cfg.seed, "bit", path) * bits as f64) as usize).min(bits - 1)
    }

    /// Lifetime injection counts, in [`WriteFault`] declaration order:
    /// `[enospc, torn, fsync, flip]`.
    pub fn injected(&self) -> [u64; 4] {
        [
            self.injected[0].load(Ordering::Relaxed),
            self.injected[1].load(Ordering::Relaxed),
            self.injected[2].load(Ordering::Relaxed),
            self.injected[3].load(Ordering::Relaxed),
        ]
    }

    /// Total faults injected so far.
    pub fn injected_total(&self) -> u64 {
        self.injected().iter().sum()
    }
}

fn global() -> &'static Mutex<Option<Arc<FaultFs>>> {
    static GLOBAL: Mutex<Option<Arc<FaultFs>>> = Mutex::new(None);
    &GLOBAL
}

/// Installs (or, with `None`, removes) the process-global injector every
/// [`crate::save_tagged`] consults, returning what is now installed.
/// Unit tests should prefer passing an injector explicitly
/// ([`crate::save_tagged_with`], [`crate::GenStore::with_faults`]);
/// the global exists for whole-process chaos.
pub fn install_faults(faults: Option<FaultFs>) -> Option<Arc<FaultFs>> {
    let installed = faults.map(Arc::new);
    *global().lock().unwrap_or_else(PoisonError::into_inner) = installed.clone();
    installed
}

/// The process-global injector, if any. On first call, a set
/// [`FAULTS_ENV`] variable installs one from its spec; a malformed spec
/// is reported to stderr and ignored (chaos must never break a
/// production daemon that merely inherited a stray variable).
pub fn active_faults() -> Option<Arc<FaultFs>> {
    static FROM_ENV: Once = Once::new();
    FROM_ENV.call_once(|| {
        if let Ok(spec) = std::env::var(FAULTS_ENV) {
            if spec.trim().is_empty() {
                return;
            }
            match FaultConfig::parse(&spec) {
                Ok(cfg) => {
                    *global().lock().unwrap_or_else(PoisonError::into_inner) =
                        Some(Arc::new(FaultFs::new(cfg)));
                }
                Err(e) => eprintln!("warning: ignoring {FAULTS_ENV}={spec:?}: {e}"),
            }
        }
    });
    global()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn schedule_is_pure_in_seed_and_path() {
        let f = FaultFs::new(FaultConfig {
            seed: 7,
            enospc: 0.25,
            torn: 0.25,
            fsync_fail: 0.25,
            bit_flip: 0.25,
        });
        for i in 0..64 {
            let p = PathBuf::from(format!("/state/jobs/job-1/run.ckpt.{i:04}.bin"));
            assert_eq!(f.decide(&p), f.decide(&p), "same path, same draw");
            assert_eq!(f.cut_point(&p, 100), f.cut_point(&p, 100));
            let g = FaultFs::new(f.config());
            assert_eq!(f.decide(&p), g.decide(&p), "fresh injector, same draw");
        }
    }

    #[test]
    fn all_kinds_are_reachable_and_rotation_redraws() {
        let f = FaultFs::new(FaultConfig {
            seed: 3,
            enospc: 0.25,
            torn: 0.25,
            fsync_fail: 0.25,
            bit_flip: 0.25,
        });
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..256 {
            if let Some(k) = f.decide(&PathBuf::from(format!("/d/gen.{i:04}.bin"))) {
                seen.insert(k.name());
            }
        }
        assert_eq!(
            seen.len(),
            4,
            "every kind drawn across rotated paths: {seen:?}"
        );
    }

    #[test]
    fn cut_point_is_nonempty_and_short() {
        let f = FaultFs::new(FaultConfig::quiet(1));
        for len in [2usize, 3, 28, 1000] {
            for i in 0..32 {
                let k = f.cut_point(&PathBuf::from(format!("/x/{i}")), len);
                assert!(k >= 1 && k < len, "cut {k} of {len}");
            }
        }
    }

    #[test]
    fn env_spec_parses_and_rejects() {
        let cfg =
            FaultConfig::parse("seed=9, enospc=0.1, torn=0.2, fsync=0.05, flip=0.01").unwrap();
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.enospc, 0.1);
        assert_eq!(cfg.torn, 0.2);
        assert_eq!(cfg.fsync_fail, 0.05);
        assert_eq!(cfg.bit_flip, 0.01);
        assert_eq!(FaultConfig::parse("").unwrap(), FaultConfig::quiet(0));
        assert!(FaultConfig::parse("bogus=1")
            .unwrap_err()
            .contains("unknown"));
        assert!(FaultConfig::parse("enospc=2")
            .unwrap_err()
            .contains("outside"));
        assert!(FaultConfig::parse("enospc=0.9,torn=0.9")
            .unwrap_err()
            .contains("sum"));
        assert!(FaultConfig::parse("seed")
            .unwrap_err()
            .contains("key=value"));
    }

    #[test]
    fn quiet_config_never_injects() {
        let f = FaultFs::new(FaultConfig::quiet(42));
        for i in 0..128 {
            assert_eq!(f.decide(&PathBuf::from(format!("/q/{i}"))), None);
        }
        assert_eq!(f.injected_total(), 0);
    }
}
