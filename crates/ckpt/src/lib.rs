//! `maopt-ckpt`: crash-safe checkpointing for MA-Opt runs.
//!
//! A [`RunSnapshot`] captures everything an interrupted optimization needs
//! to continue *bitwise identically* to an uninterrupted run: the RNG
//! stream position, the simulated population with per-design provenance,
//! per-actor and critic network weights plus Adam moments, the fitted
//! output scaler, individual-elite visibility sets, the quantized-key
//! simulation cache, accumulated engine counters and timings, and the
//! journal lines written so far (replayed verbatim on resume).
//!
//! # On-disk format
//!
//! ```text
//! magic "MAOPTCKP" (8) | version u32 LE | payload_len u64 LE
//! payload (payload_len bytes) | fnv1a64(payload) u64 LE
//! ```
//!
//! All integers are little-endian `u64`s (or a single `u8` for enums);
//! floats are stored as `f64::to_bits` so round-trips are exact. Vectors
//! and strings are length-prefixed. The payload layout is private to this
//! crate and only promised to round-trip through
//! [`save_snapshot`]/[`load_snapshot`] at the same [`FORMAT_VERSION`].
//!
//! # Durability
//!
//! [`save_snapshot`] writes to a sibling temp file, `fsync`s it, renames
//! over the destination, then `fsync`s the parent directory — so at any
//! kill point the destination holds either the previous complete snapshot
//! or the new one, never a torn mix. The checksum catches torn or
//! bit-flipped files from less well-behaved storage at load time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs::{self, File};
use std::io::{Read, Write};
use std::path::Path;

use maopt_nn::{AdamState, LayerState, MlpState, ScalerState};

mod faults;
mod gens;

pub use faults::{active_faults, install_faults, FaultConfig, FaultFs, WriteFault, FAULTS_ENV};
pub use gens::{GenLoad, GenStore, DEFAULT_KEEP};

/// Current snapshot format version; bumped on any payload layout change.
/// Version 2 appended the operating-point store (warm-start seeds).
pub const FORMAT_VERSION: u32 = 2;

const MAGIC: &[u8; 8] = b"MAOPTCKP";

/// One actor network's checkpointed state.
#[derive(Debug, Clone, PartialEq)]
pub struct ActorCkpt {
    /// Policy network weights.
    pub mlp: MlpState,
    /// Its Adam optimizer moments.
    pub adam: AdamState,
}

/// One critic's checkpointed state.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticCkpt {
    /// Surrogate network weights.
    pub net: MlpState,
    /// Its Adam optimizer moments.
    pub adam: AdamState,
    /// The fitted output scaler; `None` before the first fit. Serialized
    /// rather than refit on resume: near-sampling rounds use the scaler
    /// fitted in the *previous* actor round, which a refit over the
    /// restored population would not reproduce.
    pub scaler: Option<ScalerState>,
}

/// Full optimizer state at a round boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSnapshot {
    /// Method label, validated on resume.
    pub label: String,
    /// Problem name, validated on resume.
    pub problem: String,
    /// Run seed, validated on resume.
    pub seed: u64,
    /// Simulation budget, validated on resume.
    pub budget: u64,
    /// Initial sample count, validated on resume.
    pub init_len: u64,
    /// Rounds completed.
    pub round: u64,
    /// Simulations consumed.
    pub sims_used: u64,
    /// Whether the critic has been trained at least once.
    pub critic_ready: bool,
    /// RNG stream position for the next round.
    pub rng: [u64; 4],
    /// Every simulated `(design, metrics)` pair, in population order.
    pub population: Vec<(Vec<f64>, Vec<f64>)>,
    /// Provenance of each post-init population entry (1 = actor round,
    /// 2 = near-sampling round), for trace replay.
    pub sim_kinds: Vec<u8>,
    /// Individual-elite visibility sets (empty under a shared elite set).
    pub visible: Vec<Vec<u64>>,
    /// The previous round's representative elite designs (journal-only
    /// refresh-rate state).
    pub prev_elite: Vec<Vec<f64>>,
    /// Per-actor network + optimizer state.
    pub actors: Vec<ActorCkpt>,
    /// Per-critic network + optimizer + scaler state.
    pub critics: Vec<CriticCkpt>,
    /// Simulation cache entries (quantized key → metrics).
    pub cache: Vec<(Vec<i64>, Vec<f64>)>,
    /// Engine counters accumulated since run start, in telemetry order:
    /// sims, cache hits, cache misses, retries, panics, timeouts,
    /// non-finite, failures.
    pub counters: [u64; 8],
    /// Accumulated timings in seconds: total, training, simulation,
    /// near-sampling.
    pub timings: [f64; 4],
    /// Journal lines written so far, replayed verbatim on resume.
    pub journal_lines: Vec<String>,
    /// Operating-point store entries (quantized design key → converged
    /// solution vectors, one per solve slot), **in insertion order** — the
    /// store's FIFO eviction order must survive resume so a resumed run
    /// evicts identically to an uninterrupted one.
    pub op_store: Vec<(Vec<i64>, Vec<Vec<f64>>)>,
}

/// Why a snapshot failed to save or load.
#[derive(Debug)]
pub enum CkptError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file is not a valid snapshot (bad magic, wrong version, short
    /// read, checksum mismatch, or malformed payload).
    Corrupt(String),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CkptError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}

/// FNV-1a 64-bit over a byte slice.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------- codec

#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn vec_f64(&mut self, v: &[f64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.f64(x);
        }
    }
    fn vec_i64(&mut self, v: &[i64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.i64(x);
        }
    }
    fn vec_u64(&mut self, v: &[u64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.u64(x);
        }
    }
}

struct Dec<'a> {
    b: &'a [u8],
    pos: usize,
}

type DecResult<T> = Result<T, CkptError>;

impl<'a> Dec<'a> {
    fn new(b: &'a [u8]) -> Self {
        Dec { b, pos: 0 }
    }
    fn take(&mut self, n: usize) -> DecResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.b.len())
            .ok_or_else(|| CkptError::Corrupt(format!("payload truncated at byte {}", self.pos)))?;
        let s = &self.b[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> DecResult<u8> {
        Ok(self.take(1)?[0])
    }
    fn u64(&mut self) -> DecResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    fn i64(&mut self) -> DecResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    fn f64(&mut self) -> DecResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn bool(&mut self) -> DecResult<bool> {
        Ok(self.u8()? != 0)
    }
    /// Bounds a claimed element count by the bytes actually remaining, so
    /// a corrupt length prefix errors instead of attempting a huge
    /// allocation.
    fn len(&mut self, elem_bytes: usize) -> DecResult<usize> {
        let n = self.u64()?;
        let remaining = (self.b.len() - self.pos) as u64;
        if n.saturating_mul(elem_bytes.max(1) as u64) > remaining {
            return Err(CkptError::Corrupt(format!(
                "length prefix {n} exceeds remaining payload"
            )));
        }
        Ok(n as usize)
    }
    fn str(&mut self) -> DecResult<String> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CkptError::Corrupt("non-UTF-8 string".into()))
    }
    fn vec_f64(&mut self) -> DecResult<Vec<f64>> {
        let n = self.len(8)?;
        (0..n).map(|_| self.f64()).collect()
    }
    fn vec_i64(&mut self) -> DecResult<Vec<i64>> {
        let n = self.len(8)?;
        (0..n).map(|_| self.i64()).collect()
    }
    fn vec_u64(&mut self) -> DecResult<Vec<u64>> {
        let n = self.len(8)?;
        (0..n).map(|_| self.u64()).collect()
    }
    fn done(&self) -> DecResult<()> {
        if self.pos == self.b.len() {
            Ok(())
        } else {
            Err(CkptError::Corrupt(format!(
                "{} trailing payload bytes",
                self.b.len() - self.pos
            )))
        }
    }
}

fn enc_mlp(e: &mut Enc, m: &MlpState) {
    e.u64(m.layers.len() as u64);
    for l in &m.layers {
        e.u64(l.inputs as u64);
        e.u64(l.outputs as u64);
        e.vec_f64(&l.weights);
        e.vec_f64(&l.bias);
    }
}

fn dec_mlp(d: &mut Dec<'_>) -> DecResult<MlpState> {
    let n = d.len(24)?;
    let mut layers = Vec::with_capacity(n);
    for _ in 0..n {
        let inputs = d.u64()? as usize;
        let outputs = d.u64()? as usize;
        let weights = d.vec_f64()?;
        let bias = d.vec_f64()?;
        if weights.len() != inputs * outputs || bias.len() != outputs {
            return Err(CkptError::Corrupt("layer shape/parameter mismatch".into()));
        }
        layers.push(LayerState {
            inputs,
            outputs,
            weights,
            bias,
        });
    }
    Ok(MlpState { layers })
}

fn enc_adam(e: &mut Enc, a: &AdamState) {
    e.u64(a.t);
    e.vec_f64(&a.m);
    e.vec_f64(&a.v);
}

fn dec_adam(d: &mut Dec<'_>) -> DecResult<AdamState> {
    Ok(AdamState {
        t: d.u64()?,
        m: d.vec_f64()?,
        v: d.vec_f64()?,
    })
}

fn encode(s: &RunSnapshot) -> Vec<u8> {
    let mut e = Enc::default();
    e.str(&s.label);
    e.str(&s.problem);
    e.u64(s.seed);
    e.u64(s.budget);
    e.u64(s.init_len);
    e.u64(s.round);
    e.u64(s.sims_used);
    e.bool(s.critic_ready);
    for w in s.rng {
        e.u64(w);
    }
    e.u64(s.population.len() as u64);
    for (x, m) in &s.population {
        e.vec_f64(x);
        e.vec_f64(m);
    }
    e.u64(s.sim_kinds.len() as u64);
    for &k in &s.sim_kinds {
        e.u8(k);
    }
    e.u64(s.visible.len() as u64);
    for v in &s.visible {
        e.vec_u64(v);
    }
    e.u64(s.prev_elite.len() as u64);
    for x in &s.prev_elite {
        e.vec_f64(x);
    }
    e.u64(s.actors.len() as u64);
    for a in &s.actors {
        enc_mlp(&mut e, &a.mlp);
        enc_adam(&mut e, &a.adam);
    }
    e.u64(s.critics.len() as u64);
    for c in &s.critics {
        enc_mlp(&mut e, &c.net);
        enc_adam(&mut e, &c.adam);
        match &c.scaler {
            None => e.bool(false),
            Some(sc) => {
                e.bool(true);
                e.vec_f64(&sc.mins);
                e.vec_f64(&sc.ranges);
            }
        }
    }
    e.u64(s.cache.len() as u64);
    for (k, v) in &s.cache {
        e.vec_i64(k);
        e.vec_f64(v);
    }
    for c in s.counters {
        e.u64(c);
    }
    for t in s.timings {
        e.f64(t);
    }
    e.u64(s.journal_lines.len() as u64);
    for line in &s.journal_lines {
        e.str(line);
    }
    e.u64(s.op_store.len() as u64);
    for (k, slots) in &s.op_store {
        e.vec_i64(k);
        e.u64(slots.len() as u64);
        for slot in slots {
            e.vec_f64(slot);
        }
    }
    e.buf
}

fn decode(payload: &[u8]) -> DecResult<RunSnapshot> {
    let mut d = Dec::new(payload);
    let label = d.str()?;
    let problem = d.str()?;
    let seed = d.u64()?;
    let budget = d.u64()?;
    let init_len = d.u64()?;
    let round = d.u64()?;
    let sims_used = d.u64()?;
    let critic_ready = d.bool()?;
    let mut rng = [0u64; 4];
    for w in &mut rng {
        *w = d.u64()?;
    }
    let n = d.len(16)?;
    let mut population = Vec::with_capacity(n);
    for _ in 0..n {
        let x = d.vec_f64()?;
        let m = d.vec_f64()?;
        population.push((x, m));
    }
    let n = d.len(1)?;
    let mut sim_kinds = Vec::with_capacity(n);
    for _ in 0..n {
        sim_kinds.push(d.u8()?);
    }
    let n = d.len(8)?;
    let mut visible = Vec::with_capacity(n);
    for _ in 0..n {
        visible.push(d.vec_u64()?);
    }
    let n = d.len(8)?;
    let mut prev_elite = Vec::with_capacity(n);
    for _ in 0..n {
        prev_elite.push(d.vec_f64()?);
    }
    let n = d.len(8)?;
    let mut actors = Vec::with_capacity(n);
    for _ in 0..n {
        actors.push(ActorCkpt {
            mlp: dec_mlp(&mut d)?,
            adam: dec_adam(&mut d)?,
        });
    }
    let n = d.len(8)?;
    let mut critics = Vec::with_capacity(n);
    for _ in 0..n {
        let net = dec_mlp(&mut d)?;
        let adam = dec_adam(&mut d)?;
        let scaler = if d.bool()? {
            Some(ScalerState {
                mins: d.vec_f64()?,
                ranges: d.vec_f64()?,
            })
        } else {
            None
        };
        critics.push(CriticCkpt { net, adam, scaler });
    }
    let n = d.len(16)?;
    let mut cache = Vec::with_capacity(n);
    for _ in 0..n {
        let k = d.vec_i64()?;
        let v = d.vec_f64()?;
        cache.push((k, v));
    }
    let mut counters = [0u64; 8];
    for c in &mut counters {
        *c = d.u64()?;
    }
    let mut timings = [0f64; 4];
    for t in &mut timings {
        *t = d.f64()?;
    }
    let n = d.len(8)?;
    let mut journal_lines = Vec::with_capacity(n);
    for _ in 0..n {
        journal_lines.push(d.str()?);
    }
    let n = d.len(16)?;
    let mut op_store = Vec::with_capacity(n);
    for _ in 0..n {
        let k = d.vec_i64()?;
        let m = d.len(8)?;
        let mut slots = Vec::with_capacity(m);
        for _ in 0..m {
            slots.push(d.vec_f64()?);
        }
        op_store.push((k, slots));
    }
    d.done()?;
    Ok(RunSnapshot {
        label,
        problem,
        seed,
        budget,
        init_len,
        round,
        sims_used,
        critic_ready,
        rng,
        population,
        sim_kinds,
        visible,
        prev_elite,
        actors,
        critics,
        cache,
        counters,
        timings,
        journal_lines,
        op_store,
    })
}

// ------------------------------------------------------------ file I/O

/// `create_dir_all` followed by a best-effort fsync of every directory
/// that had to be created (plus the pre-existing ancestor the chain
/// hangs off), so a freshly made state directory survives power loss as
/// reliably as the files renamed into it.
fn create_dir_all_durable(dir: &Path) -> std::io::Result<()> {
    let mut missing: Vec<&Path> = Vec::new();
    let mut probe = Some(dir);
    while let Some(d) = probe {
        if d.as_os_str().is_empty() || d.exists() {
            break;
        }
        missing.push(d);
        probe = d.parent();
    }
    fs::create_dir_all(dir)?;
    // Sync parents-first (the Vec is child-first), ending with the
    // surviving ancestor that now records the first new entry. Directory
    // fsync is unsupported on some filesystems; errors are ignored just
    // like the post-rename parent fsync below.
    if let Some(anchor) = missing.last().and_then(|d| d.parent()) {
        if !anchor.as_os_str().is_empty() {
            if let Ok(f) = File::open(anchor) {
                let _ = f.sync_all();
            }
        }
    }
    for d in missing.iter().rev() {
        if let Ok(f) = File::open(d) {
            let _ = f.sync_all();
        }
    }
    Ok(())
}

/// Atomically persists a tagged payload: `magic` (8 bytes) + `version`
/// (u32 LE) + payload length (u64 LE) + payload + FNV-1a-64 checksum,
/// written to a sibling temp file, `fsync`ed, renamed over `path`, then
/// the parent directory is `fsync`ed so the rename itself survives power
/// loss. After any kill point `path` holds either the previous complete
/// file or this one, never a torn mix.
///
/// [`save_snapshot`] is this with the `MAOPTCKP` tag and the binary
/// snapshot codec; other subsystems (the serve daemon's job-queue
/// manifest) reuse the same durable path with their own magic.
///
/// # Errors
///
/// Propagates filesystem failures as [`CkptError::Io`]; a `path` without
/// a file name is [`CkptError::Corrupt`].
pub fn save_tagged(
    path: &Path,
    magic: &[u8; 8],
    version: u32,
    payload: &[u8],
) -> Result<(), CkptError> {
    save_tagged_with(path, magic, version, payload, active_faults().as_deref())
}

/// [`save_tagged`] with an explicit fault injector, the single seam every
/// checkpoint byte passes through. With `faults: None` (or a quiet
/// injector) this *is* the production write path; with an injector it
/// deterministically exercises the four storage failure modes:
///
/// - **ENOSPC** — a partial temp file is written then removed, the
///   destination is left as a zero-length file when it did not already
///   exist (what an interrupted `create` leaves behind), and the error
///   surfaces to the caller.
/// - **Torn write** — the file is silently truncated at a seeded byte
///   and the rename *succeeds*: the checksum must catch it at load.
/// - **Fsync failure** — the temp file is discarded before rename and
///   the error surfaces; the previous destination stays intact.
/// - **Bit flip** — one seeded bit is flipped post-checksum and the
///   write reports success: again the checksum's job at load.
///
/// # Errors
///
/// As [`save_tagged`], plus injected ENOSPC / fsync failures.
pub fn save_tagged_with(
    path: &Path,
    magic: &[u8; 8],
    version: u32,
    payload: &[u8],
    faults: Option<&FaultFs>,
) -> Result<(), CkptError> {
    let mut bytes = Vec::with_capacity(28 + payload.len());
    bytes.extend_from_slice(magic);
    bytes.extend_from_slice(&version.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(payload);
    bytes.extend_from_slice(&fnv1a(payload).to_le_bytes());

    let fault = faults.and_then(|f| f.draw(path));
    if let (Some(WriteFault::BitFlip), Some(f)) = (fault, faults) {
        let bit = f.flip_bit(path, bytes.len());
        bytes[bit / 8] ^= 1 << (bit % 8);
    }

    let parent = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = parent {
        create_dir_all_durable(dir)?;
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| CkptError::Corrupt("checkpoint path has no file name".into()))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);

    match fault {
        Some(WriteFault::Enospc) => {
            // Disk filled mid-write: a partial temp file, then the
            // zero-length destination an interrupted `create` leaves.
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes[..bytes.len() / 2])?;
            drop(f);
            let _ = fs::remove_file(&tmp);
            if !path.exists() {
                drop(File::create(path)?);
            }
            return Err(CkptError::Io(std::io::Error::other(
                "injected fault: ENOSPC during write",
            )));
        }
        Some(WriteFault::FsyncFail) => {
            // The data may never have reached the platter; discard the
            // temp file so the previous destination stays authoritative.
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            drop(f);
            let _ = fs::remove_file(&tmp);
            return Err(CkptError::Io(std::io::Error::other(
                "injected fault: fsync failed",
            )));
        }
        Some(WriteFault::Torn) => {
            // Silent: the truncated file completes the rename and the
            // caller sees success — only the load-time checksum objects.
            let cut = faults
                .expect("fault implies injector")
                .cut_point(path, bytes.len());
            bytes.truncate(cut);
        }
        Some(WriteFault::BitFlip) | None => {}
    }

    let mut f = File::create(&tmp)?;
    f.write_all(&bytes)?;
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp, path)?;
    if let Some(dir) = parent {
        // Make the rename itself durable. Directory fsync is unsupported
        // on some filesystems; the file then still lands atomically,
        // just with slightly weaker crash-ordering, so errors are ignored.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Loads and checksum-verifies a payload written by [`save_tagged`] with
/// the same `magic` and `version`.
///
/// # Errors
///
/// [`CkptError::Io`] on filesystem failure; [`CkptError::Corrupt`] on bad
/// magic, unsupported version, truncation, or checksum mismatch.
pub fn load_tagged(path: &Path, magic: &[u8; 8], version: u32) -> Result<Vec<u8>, CkptError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < 28 {
        return Err(CkptError::Corrupt(format!(
            "file too short ({} bytes)",
            bytes.len()
        )));
    }
    if &bytes[..8] != magic {
        return Err(CkptError::Corrupt("bad magic".into()));
    }
    let stored_version = u32::from_le_bytes(bytes[8..12].try_into().expect("4"));
    if stored_version != version {
        return Err(CkptError::Corrupt(format!(
            "format version {stored_version} (this build reads {version})"
        )));
    }
    let payload_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8")) as usize;
    let expected_total = 28usize
        .checked_add(payload_len)
        .ok_or_else(|| CkptError::Corrupt("payload length overflow".into()))?;
    if bytes.len() != expected_total {
        return Err(CkptError::Corrupt(format!(
            "payload length {payload_len} disagrees with file size {}",
            bytes.len()
        )));
    }
    let stored = u64::from_le_bytes(bytes[20 + payload_len..].try_into().expect("8"));
    bytes.truncate(20 + payload_len);
    bytes.drain(..20);
    let actual = fnv1a(&bytes);
    if stored != actual {
        return Err(CkptError::Corrupt(format!(
            "checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"
        )));
    }
    Ok(bytes)
}

/// Whether `path` is a zero-length file — the state an ENOSPC- or
/// kill-interrupted `create` leaves behind. Such a file never held data,
/// so the `*_if_exists` loaders treat it as missing rather than corrupt.
fn is_zero_length(path: &Path) -> bool {
    fs::metadata(path).map(|m| m.len() == 0).unwrap_or(false)
}

/// [`load_tagged`] that maps a missing file to `Ok(None)`. A zero-length
/// file — what an interrupted `create` leaves behind — also reads as
/// missing: it never contained a payload to lose.
///
/// # Errors
///
/// As [`load_tagged`], except `NotFound` and zero-length files which
/// become `Ok(None)`.
pub fn load_tagged_if_exists(
    path: &Path,
    magic: &[u8; 8],
    version: u32,
) -> Result<Option<Vec<u8>>, CkptError> {
    match load_tagged(path, magic, version) {
        Ok(b) => Ok(Some(b)),
        Err(CkptError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(CkptError::Corrupt(_)) if is_zero_length(path) => Ok(None),
        Err(e) => Err(e),
    }
}

/// Atomically persists a snapshot via [`save_tagged`]: write a sibling
/// temp file, `fsync` it, rename over `path`, `fsync` the parent
/// directory. After any kill point `path` holds either the previous
/// complete snapshot or this one.
///
/// # Errors
///
/// Propagates filesystem failures as [`CkptError::Io`].
pub fn save_snapshot(path: &Path, snap: &RunSnapshot) -> Result<(), CkptError> {
    save_tagged(path, MAGIC, FORMAT_VERSION, &encode(snap))
}

/// Loads and checksum-verifies a snapshot written by [`save_snapshot`].
///
/// # Errors
///
/// [`CkptError::Io`] on filesystem failure; [`CkptError::Corrupt`] on bad
/// magic, unsupported version, truncation, checksum mismatch, or a
/// malformed payload.
pub fn load_snapshot(path: &Path) -> Result<RunSnapshot, CkptError> {
    decode(&load_tagged(path, MAGIC, FORMAT_VERSION)?)
}

/// [`load_snapshot`] that maps a missing file to `Ok(None)` — the normal
/// "first run, nothing to resume" case. A zero-length file (an
/// interrupted `create`) also reads as missing.
///
/// # Errors
///
/// As [`load_snapshot`], except `NotFound` and zero-length files which
/// become `Ok(None)`.
pub fn load_if_exists(path: &Path) -> Result<Option<RunSnapshot>, CkptError> {
    match load_snapshot(path) {
        Ok(s) => Ok(Some(s)),
        Err(CkptError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(CkptError::Corrupt(_)) if is_zero_length(path) => Ok(None),
        Err(e) => Err(e),
    }
}

// ------------------------------------------------- rotated snapshots

/// A [`GenStore`] rotating snapshot generations (`<base>.0001.bin`, …)
/// under the standard snapshot magic and format version, keeping
/// [`DEFAULT_KEEP`] generations.
pub fn snapshot_store(base: &Path) -> GenStore {
    GenStore::new(base, MAGIC, FORMAT_VERSION)
}

/// Writes `snap` as the next snapshot generation of `store`, returning
/// the generation number.
///
/// # Errors
///
/// As [`GenStore::save_next`].
pub fn save_snapshot_gen(store: &GenStore, snap: &RunSnapshot) -> Result<u64, CkptError> {
    store.save_next(&encode(snap))
}

/// Loads the newest good snapshot generation of `store` (legacy
/// un-rotated base file included), reporting how many corrupt newer
/// generations were rolled past.
///
/// # Errors
///
/// As [`GenStore::load_latest_good_with`].
pub fn load_snapshot_gen(store: &GenStore) -> Result<Option<GenLoad<RunSnapshot>>, CkptError> {
    store.load_latest_good_with(decode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("maopt-ckpt-{}-{name}", std::process::id()))
    }

    fn sample() -> RunSnapshot {
        let mlp = MlpState {
            layers: vec![
                LayerState {
                    inputs: 2,
                    outputs: 3,
                    weights: vec![0.1, -0.2, 0.3, 0.4, -0.5, 0.6],
                    bias: vec![0.0, 0.25, -0.125],
                },
                LayerState {
                    inputs: 3,
                    outputs: 1,
                    weights: vec![1.0, -1.0, 2.0],
                    bias: vec![f64::MIN_POSITIVE],
                },
            ],
        };
        let adam = AdamState {
            t: 42,
            m: vec![0.5; 10],
            v: vec![0.25; 10],
        };
        RunSnapshot {
            label: "MA-Opt".into(),
            problem: "ota-τ".into(), // non-ASCII exercises UTF-8 strings
            seed: 7,
            budget: 100,
            init_len: 20,
            round: 5,
            sims_used: 35,
            critic_ready: true,
            rng: [1, u64::MAX, 3, 0],
            population: vec![
                (vec![0.5, 0.25], vec![1.0, f64::INFINITY, f64::NAN]),
                (vec![0.1, 0.9], vec![-3.5, 0.0, 2.0]),
            ],
            sim_kinds: vec![1, 1, 2],
            visible: vec![vec![0, 1, 2], vec![0, 7]],
            prev_elite: vec![vec![0.5, 0.25]],
            actors: vec![ActorCkpt {
                mlp: mlp.clone(),
                adam: adam.clone(),
            }],
            critics: vec![
                CriticCkpt {
                    net: mlp.clone(),
                    adam: adam.clone(),
                    scaler: Some(ScalerState {
                        mins: vec![-1.0, 0.0],
                        ranges: vec![2.0, 0.0],
                    }),
                },
                CriticCkpt {
                    net: mlp,
                    adam,
                    scaler: None,
                },
            ],
            cache: vec![(vec![500_000_000_000, i64::MIN], vec![1.5, 2.5])],
            counters: [35, 3, 32, 2, 1, 0, 1, 0],
            timings: [1.5, 0.75, 0.5, 0.125],
            journal_lines: vec!["{\"kind\":\"manifest\"}".into(), "{\"round\":1}".into()],
            op_store: vec![
                (
                    vec![500_000_000_000, 250_000_000_000],
                    vec![vec![0.9, 1.8, -1e-5], vec![0.45]],
                ),
                (vec![0, i64::MAX], vec![]),
            ],
        }
    }

    #[test]
    fn roundtrip_is_exact_including_nonfinite_floats() {
        let path = tmp_path("roundtrip.ckpt");
        let snap = sample();
        save_snapshot(&path, &snap).unwrap();
        let back = load_snapshot(&path).unwrap();
        // NaN breaks PartialEq; compare via bit-exact debug formatting
        // field by field around it, then the rest structurally.
        assert_eq!(back.population[0].1[2].to_bits(), f64::NAN.to_bits());
        let mut a = snap.clone();
        let mut b = back.clone();
        a.population[0].1[2] = 0.0;
        b.population[0].1[2] = 0.0;
        assert_eq!(a, b);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn save_is_atomic_over_an_existing_snapshot() {
        let path = tmp_path("atomic.ckpt");
        let first = sample();
        save_snapshot(&path, &first).unwrap();
        let mut second = sample();
        second.round = 6;
        second.journal_lines.push("{\"round\":6}".into());
        save_snapshot(&path, &second).unwrap();
        assert_eq!(load_snapshot(&path).unwrap().round, 6);
        // No temp residue.
        let tmp = path.with_file_name(format!(
            "{}.tmp",
            path.file_name().unwrap().to_string_lossy()
        ));
        assert!(!tmp.exists(), "temp file must be renamed away");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn every_truncation_is_detected_never_panics() {
        let path = tmp_path("trunc.ckpt");
        save_snapshot(&path, &sample()).unwrap();
        let bytes = fs::read(&path).unwrap();
        for cut in 0..bytes.len() {
            let p = tmp_path("trunc-cut.ckpt");
            fs::write(&p, &bytes[..cut]).unwrap();
            match load_snapshot(&p) {
                Err(CkptError::Corrupt(_)) => {}
                Ok(_) => panic!("truncation to {cut} bytes must not verify"),
                Err(CkptError::Io(e)) => panic!("unexpected io error: {e}"),
            }
            let _ = fs::remove_file(&p);
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn every_single_byte_flip_in_payload_is_detected() {
        let path = tmp_path("flip.ckpt");
        save_snapshot(&path, &sample()).unwrap();
        let bytes = fs::read(&path).unwrap();
        // Flip one byte in the payload region; checksum must catch all.
        for pos in (20..bytes.len() - 8).step_by(7) {
            let mut mangled = bytes.clone();
            mangled[pos] ^= 0xA5;
            let p = tmp_path("flip-one.ckpt");
            fs::write(&p, &mangled).unwrap();
            assert!(
                matches!(load_snapshot(&p), Err(CkptError::Corrupt(_))),
                "flip at byte {pos} must fail the checksum"
            );
            let _ = fs::remove_file(&p);
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let path = tmp_path("magic.ckpt");
        save_snapshot(&path, &sample()).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[0] = b'X';
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_snapshot(&path),
            Err(CkptError::Corrupt(msg)) if msg.contains("magic")
        ));
        bytes[0] = b'M';
        bytes[8] = 99;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_snapshot(&path),
            Err(CkptError::Corrupt(msg)) if msg.contains("version")
        ));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn load_if_exists_maps_missing_to_none() {
        assert!(load_if_exists(&tmp_path("nonexistent.ckpt"))
            .unwrap()
            .is_none());
        let path = tmp_path("exists.ckpt");
        save_snapshot(&path, &sample()).unwrap();
        assert!(load_if_exists(&path).unwrap().is_some());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn corrupt_length_prefix_errors_without_huge_allocation() {
        // A payload whose first vector claims u64::MAX elements.
        let mut e = Enc::default();
        e.u64(u64::MAX); // label "length"
        let payload = e.buf;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        let path = tmp_path("hugelen.ckpt");
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_snapshot(&path),
            Err(CkptError::Corrupt(msg)) if msg.contains("length prefix")
        ));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn tagged_payload_roundtrip_rejects_foreign_magic() {
        let path = tmp_path("tagged.bin");
        let payload = br#"{"jobs":[],"next_id":1}"#;
        save_tagged(&path, b"MAOPTJBQ", 2, payload).unwrap();
        assert_eq!(
            load_tagged(&path, b"MAOPTJBQ", 2).unwrap(),
            payload.to_vec()
        );
        // A snapshot reader must not accept a job-queue manifest and
        // vice versa, even though both share the container format.
        assert!(matches!(
            load_tagged(&path, MAGIC, FORMAT_VERSION),
            Err(CkptError::Corrupt(msg)) if msg.contains("magic")
        ));
        assert!(matches!(
            load_tagged(&path, b"MAOPTJBQ", 3),
            Err(CkptError::Corrupt(msg)) if msg.contains("version")
        ));
        assert!(
            load_tagged_if_exists(&tmp_path("no-such.bin"), b"MAOPTJBQ", 2)
                .unwrap()
                .is_none()
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn tagged_save_creates_nested_state_dirs() {
        let root = tmp_path("nested-state");
        let path = root.join("a/b/queue.bin");
        save_tagged(&path, b"MAOPTJBQ", 1, b"x").unwrap();
        assert_eq!(load_tagged(&path, b"MAOPTJBQ", 1).unwrap(), b"x".to_vec());
        let _ = fs::remove_dir_all(&root);
    }
}
