//! The `maopt-serve` daemon binary.
//!
//! ```text
//! maopt-serve --state-dir DIR [--addr HOST:PORT] [--slots N]
//!             [--max-pending N] [--tenant-quota N] [--jobs N]
//!             [--max-attempts N] [--stall-budget-ms MS]
//! ```
//!
//! The listen address defaults to `127.0.0.1:0` (ephemeral; the bound
//! address is printed and written to `<state-dir>/addr`) and can be
//! overridden by `--addr` or the `MAOPT_SERVE_ADDR` environment
//! variable — a malformed value is a startup error, never a silent
//! fallback. SIGTERM/SIGINT drain gracefully: running jobs checkpoint
//! at their next round boundary, the queue manifest is persisted, and
//! the process exits 0.
//!
//! `--max-attempts N` bounds how often one job may crash or stall the
//! runner before it is quarantined instead of retried (default 3;
//! 0 = retry forever). `--stall-budget-ms MS` arms the watchdog: a job
//! whose checkpoint round has not advanced within MS is cancelled, and
//! after another MS without progress demoted off its slot.

use std::path::PathBuf;
use std::process::ExitCode;

use maopt_exec::EvalEngine;
use maopt_serve::{addr_from_env, install_signal_flag, QueueLimits, ServeConfig, Server};

struct Args {
    state_dir: PathBuf,
    addr: Option<String>,
    slots: usize,
    max_pending: usize,
    tenant_quota: usize,
    max_attempts: usize,
    stall_budget_ms: Option<u64>,
    jobs: Option<usize>,
}

fn usage() -> ! {
    eprintln!(
        "usage: maopt-serve --state-dir DIR [--addr HOST:PORT] [--slots N] \
         [--max-pending N] [--tenant-quota N] [--jobs N] \
         [--max-attempts N] [--stall-budget-ms MS]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        state_dir: PathBuf::new(),
        addr: None,
        slots: 2,
        max_pending: 64,
        tenant_quota: 2,
        max_attempts: 3,
        stall_budget_ms: None,
        jobs: None,
    };
    let mut it = std::env::args().skip(1);
    let mut have_state_dir = false;
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--state-dir" => {
                args.state_dir = PathBuf::from(value("--state-dir"));
                have_state_dir = true;
            }
            "--addr" => args.addr = Some(value("--addr")),
            "--slots" => args.slots = parse_num(&value("--slots"), "--slots"),
            "--max-pending" => {
                args.max_pending = parse_num(&value("--max-pending"), "--max-pending")
            }
            "--tenant-quota" => {
                args.tenant_quota = parse_num(&value("--tenant-quota"), "--tenant-quota");
            }
            "--max-attempts" => {
                args.max_attempts = parse_num(&value("--max-attempts"), "--max-attempts");
            }
            "--stall-budget-ms" => {
                args.stall_budget_ms =
                    Some(parse_num(&value("--stall-budget-ms"), "--stall-budget-ms") as u64);
            }
            "--jobs" => args.jobs = Some(parse_num(&value("--jobs"), "--jobs")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument {other:?}");
                usage()
            }
        }
    }
    if !have_state_dir {
        eprintln!("error: --state-dir is required");
        usage()
    }
    args
}

fn parse_num(v: &str, name: &str) -> usize {
    v.parse().unwrap_or_else(|_| {
        eprintln!("error: {name} expects a non-negative integer, got {v:?}");
        std::process::exit(2);
    })
}

fn main() -> ExitCode {
    let args = parse_args();

    let env_addr = match addr_from_env() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let addr = args
        .addr
        .or(env_addr)
        .unwrap_or_else(|| "127.0.0.1:0".into());

    // Engine sizing mirrors `reproduce`: --jobs beats MAOPT_JOBS beats
    // auto-detection; a malformed MAOPT_JOBS is a startup error (the
    // EvalEngine::default panic), not a silent fallback.
    let engine = match args.jobs {
        Some(j) => EvalEngine::new(j),
        None => EvalEngine::default(),
    };

    let stop = install_signal_flag();
    let cfg = ServeConfig {
        addr,
        state_dir: args.state_dir,
        slots: args.slots,
        limits: QueueLimits {
            max_pending: args.max_pending,
            tenant_quota: args.tenant_quota,
            max_attempts: args.max_attempts,
        },
        poll_ms: 20,
        stall_budget_ms: args.stall_budget_ms,
    };
    let server = match Server::bind(cfg, engine, stop) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot start daemon: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => println!("maopt-serve listening on {addr}"),
        Err(e) => eprintln!("warning: cannot query listen address: {e}"),
    }
    if let Err(e) = server.run() {
        eprintln!("error: daemon failed: {e}");
        return ExitCode::FAILURE;
    }
    println!("maopt-serve drained and stopped");
    ExitCode::SUCCESS
}
