//! Name → problem / method resolution for submitted jobs.
//!
//! Problems: `sphere:<d>`, `toy:<d>`, `rosenbrock:<d>` (synthetic, for
//! smoke jobs and tests), the paper's circuits `ota`, `tia`, `ldo`, and
//! two supervision-test probes: `slow:<ms>` (a 2-D sphere sleeping
//! `<ms>` per evaluation, for watchdog/stall coverage) and `poison` (a
//! problem that panics the runner thread on every attempt, for
//! quarantine coverage). Methods: `ma-opt`, `ma-opt1`, `ma-opt2`,
//! `dnn-opt`; the `quick` flag shrinks networks and training loops for
//! sub-second smoke jobs.

use maopt_circuits::{LdoRegulator, ThreeStageTia, TwoStageOta};
use maopt_core::problems::{ConstrainedToy, RosenbrockDisk, Sphere};
use maopt_core::{MaOptConfig, ParamSpec, SizingProblem, Spec};

/// Resolves a problem name.
///
/// # Errors
///
/// A descriptive message listing the accepted grammar on an unknown
/// name or malformed dimension suffix.
pub fn build_problem(name: &str) -> Result<Box<dyn SizingProblem>, String> {
    let (base, dim) = match name.split_once(':') {
        Some((base, d)) => {
            let dim = d.parse::<usize>().map_err(|_| {
                format!("invalid dimension {d:?} in problem {name:?} (expected e.g. \"sphere:3\")")
            })?;
            if dim == 0 {
                return Err(format!("problem {name:?} needs a dimension >= 1"));
            }
            (base, Some(dim))
        }
        None => (name, None),
    };
    match (base, dim) {
        ("sphere", Some(d)) => Ok(Box::new(Sphere::new(d))),
        ("toy", Some(d)) => Ok(Box::new(ConstrainedToy::new(d))),
        ("rosenbrock", Some(d)) => Ok(Box::new(RosenbrockDisk::new(d))),
        ("ota", None) => Ok(Box::new(TwoStageOta::new())),
        ("tia", None) => Ok(Box::new(ThreeStageTia::new())),
        ("ldo", None) => Ok(Box::new(LdoRegulator::new())),
        ("slow", Some(ms)) => Ok(Box::new(SlowSphere::new(ms as u64))),
        ("poison", None) => Ok(Box::new(PoisonProblem::new())),
        _ => Err(format!(
            "unknown problem {name:?} (expected sphere:<d>, toy:<d>, rosenbrock:<d>, ota, tia, ldo, slow:<ms>, or poison)"
        )),
    }
}

/// A 2-D sphere that sleeps a fixed number of milliseconds per
/// evaluation: a deterministic stand-in for a simulator stuck in a slow
/// corner, used to exercise the serve watchdog's cancel → demote
/// escalation without wall-clock flakiness from real workloads.
struct SlowSphere {
    inner: Sphere,
    delay: std::time::Duration,
}

impl SlowSphere {
    fn new(ms: u64) -> Self {
        SlowSphere {
            inner: Sphere::new(2),
            delay: std::time::Duration::from_millis(ms),
        }
    }
}

impl SizingProblem for SlowSphere {
    fn name(&self) -> &str {
        "slow-sphere"
    }
    fn params(&self) -> &[ParamSpec] {
        self.inner.params()
    }
    fn metric_names(&self) -> Vec<String> {
        self.inner.metric_names()
    }
    fn specs(&self) -> &[Spec] {
        self.inner.specs()
    }
    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        std::thread::sleep(self.delay);
        self.inner.evaluate(x)
    }
}

/// A problem whose spec references a metric index the evaluation vector
/// does not have, so scoring — *outside* the engine's per-evaluation
/// fault isolation — panics the runner thread on every attempt. This is
/// the deterministic daemon-killer the quarantine path exists for:
/// admission-time validation passes (the spec is well-formed), every
/// dispatch crashes, and only the attempt budget stops the loop.
struct PoisonProblem {
    inner: Sphere,
    specs: Vec<Spec>,
}

impl PoisonProblem {
    fn new() -> Self {
        PoisonProblem {
            inner: Sphere::new(2),
            // Sphere's metric vector has 1 entry; index 9 is out of
            // bounds at scoring time.
            specs: vec![Spec::at_most("poison", 9, 0.0)],
        }
    }
}

impl SizingProblem for PoisonProblem {
    fn name(&self) -> &str {
        "poison"
    }
    fn params(&self) -> &[ParamSpec] {
        self.inner.params()
    }
    fn metric_names(&self) -> Vec<String> {
        self.inner.metric_names()
    }
    fn specs(&self) -> &[Spec] {
        &self.specs
    }
    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        self.inner.evaluate(x)
    }
}

/// Resolves a method name into a seeded [`MaOptConfig`].
///
/// # Errors
///
/// A descriptive message listing the accepted names on an unknown one.
pub fn build_method(name: &str, seed: u64, quick: bool) -> Result<MaOptConfig, String> {
    let cfg = match name {
        "ma-opt" => MaOptConfig::ma_opt(seed),
        "ma-opt1" => MaOptConfig::ma_opt1(seed),
        "ma-opt2" => MaOptConfig::ma_opt2(seed),
        "dnn-opt" => MaOptConfig::dnn_opt(seed),
        other => {
            return Err(format!(
                "unknown method {other:?} (expected ma-opt, ma-opt1, ma-opt2, or dnn-opt)"
            ))
        }
    };
    Ok(if quick {
        MaOptConfig {
            hidden: vec![16, 16],
            critic_steps: 15,
            actor_steps: 8,
            n_samples: 100,
            ..cfg
        }
    } else {
        cfg
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn problem_names_resolve_with_dims() {
        assert_eq!(build_problem("sphere:3").unwrap().dim(), 3);
        assert_eq!(build_problem("toy:2").unwrap().dim(), 2);
        assert_eq!(build_problem("rosenbrock:4").unwrap().dim(), 4);
        assert!(build_problem("ota").is_ok());
        assert!(build_problem("tia").is_ok());
        assert!(build_problem("ldo").is_ok());
    }

    #[test]
    fn supervision_probes_resolve() {
        let slow = build_problem("slow:5").unwrap();
        assert_eq!(slow.dim(), 2);
        let t0 = std::time::Instant::now();
        let m = slow.evaluate(&[0.5, 0.5]);
        assert!(t0.elapsed() >= std::time::Duration::from_millis(5));
        assert_eq!(m, Sphere::new(2).evaluate(&[0.5, 0.5]));

        let poison = build_problem("poison").unwrap();
        assert_eq!(poison.dim(), 2);
        let m = poison.evaluate(&[0.5, 0.5]);
        assert!(
            poison.specs().iter().any(|s| s.metric_index >= m.len()),
            "the poison spec must reference a metric the vector lacks"
        );
        assert!(build_problem("slow").is_err(), "slow needs a delay suffix");
        assert!(build_problem("poison:2").is_err());
    }

    #[test]
    fn bad_problem_names_are_descriptive() {
        for (name, needle) in [
            ("sphere", "unknown problem"),
            ("sphere:x", "invalid dimension"),
            ("sphere:0", "dimension >= 1"),
            ("ota:3", "unknown problem"),
            ("warp", "unknown problem"),
        ] {
            let err = build_problem(name).map(|_| ()).unwrap_err();
            assert!(err.contains(needle), "{name}: {err}");
        }
    }

    #[test]
    fn methods_resolve_and_quick_shrinks() {
        let full = build_method("ma-opt", 7, false).unwrap();
        assert_eq!(full.seed, 7);
        assert_eq!(full.hidden, vec![100, 100]);
        let quick = build_method("ma-opt", 7, true).unwrap();
        assert_eq!(quick.hidden, vec![16, 16]);
        assert!(build_method("sgd", 0, false)
            .unwrap_err()
            .contains("unknown method"));
    }
}
