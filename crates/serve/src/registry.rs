//! Name → problem / method resolution for submitted jobs.
//!
//! Problems: `sphere:<d>`, `toy:<d>`, `rosenbrock:<d>` (synthetic, for
//! smoke jobs and tests) and the paper's circuits `ota`, `tia`, `ldo`.
//! Methods: `ma-opt`, `ma-opt1`, `ma-opt2`, `dnn-opt`; the `quick` flag
//! shrinks networks and training loops for sub-second smoke jobs.

use maopt_circuits::{LdoRegulator, ThreeStageTia, TwoStageOta};
use maopt_core::problems::{ConstrainedToy, RosenbrockDisk, Sphere};
use maopt_core::{MaOptConfig, SizingProblem};

/// Resolves a problem name.
///
/// # Errors
///
/// A descriptive message listing the accepted grammar on an unknown
/// name or malformed dimension suffix.
pub fn build_problem(name: &str) -> Result<Box<dyn SizingProblem>, String> {
    let (base, dim) = match name.split_once(':') {
        Some((base, d)) => {
            let dim = d.parse::<usize>().map_err(|_| {
                format!("invalid dimension {d:?} in problem {name:?} (expected e.g. \"sphere:3\")")
            })?;
            if dim == 0 {
                return Err(format!("problem {name:?} needs a dimension >= 1"));
            }
            (base, Some(dim))
        }
        None => (name, None),
    };
    match (base, dim) {
        ("sphere", Some(d)) => Ok(Box::new(Sphere::new(d))),
        ("toy", Some(d)) => Ok(Box::new(ConstrainedToy::new(d))),
        ("rosenbrock", Some(d)) => Ok(Box::new(RosenbrockDisk::new(d))),
        ("ota", None) => Ok(Box::new(TwoStageOta::new())),
        ("tia", None) => Ok(Box::new(ThreeStageTia::new())),
        ("ldo", None) => Ok(Box::new(LdoRegulator::new())),
        _ => Err(format!(
            "unknown problem {name:?} (expected sphere:<d>, toy:<d>, rosenbrock:<d>, ota, tia, or ldo)"
        )),
    }
}

/// Resolves a method name into a seeded [`MaOptConfig`].
///
/// # Errors
///
/// A descriptive message listing the accepted names on an unknown one.
pub fn build_method(name: &str, seed: u64, quick: bool) -> Result<MaOptConfig, String> {
    let cfg = match name {
        "ma-opt" => MaOptConfig::ma_opt(seed),
        "ma-opt1" => MaOptConfig::ma_opt1(seed),
        "ma-opt2" => MaOptConfig::ma_opt2(seed),
        "dnn-opt" => MaOptConfig::dnn_opt(seed),
        other => {
            return Err(format!(
                "unknown method {other:?} (expected ma-opt, ma-opt1, ma-opt2, or dnn-opt)"
            ))
        }
    };
    Ok(if quick {
        MaOptConfig {
            hidden: vec![16, 16],
            critic_steps: 15,
            actor_steps: 8,
            n_samples: 100,
            ..cfg
        }
    } else {
        cfg
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn problem_names_resolve_with_dims() {
        assert_eq!(build_problem("sphere:3").unwrap().dim(), 3);
        assert_eq!(build_problem("toy:2").unwrap().dim(), 2);
        assert_eq!(build_problem("rosenbrock:4").unwrap().dim(), 4);
        assert!(build_problem("ota").is_ok());
        assert!(build_problem("tia").is_ok());
        assert!(build_problem("ldo").is_ok());
    }

    #[test]
    fn bad_problem_names_are_descriptive() {
        for (name, needle) in [
            ("sphere", "unknown problem"),
            ("sphere:x", "invalid dimension"),
            ("sphere:0", "dimension >= 1"),
            ("ota:3", "unknown problem"),
            ("warp", "unknown problem"),
        ] {
            let err = build_problem(name).map(|_| ()).unwrap_err();
            assert!(err.contains(needle), "{name}: {err}");
        }
    }

    #[test]
    fn methods_resolve_and_quick_shrinks() {
        let full = build_method("ma-opt", 7, false).unwrap();
        assert_eq!(full.seed, 7);
        assert_eq!(full.hidden, vec![100, 100]);
        let quick = build_method("ma-opt", 7, true).unwrap();
        assert_eq!(quick.hidden, vec![16, 16]);
        assert!(build_method("sgd", 0, false)
            .unwrap_err()
            .contains("unknown method"));
    }
}
