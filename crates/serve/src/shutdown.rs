//! Graceful-shutdown signal handling without a libc dependency.
//!
//! The daemon (and `reproduce --checkpoint-dir`) must turn SIGTERM /
//! SIGINT into "checkpoint, flush, exit 0" instead of dying mid-write.
//! The workspace is hermetic, so rather than pulling in `libc` or
//! `signal-hook`, this registers a handler through the `signal(2)` C
//! entry point that `std` already links. The handler only stores a
//! relaxed-free `AtomicBool` — the one async-signal-safe thing a Rust
//! handler can do — and every consumer polls the flag at a safe point
//! (round boundaries, scheduler ticks).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

static FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();

#[cfg(unix)]
mod imp {
    use std::os::raw::c_int;

    pub const SIGINT: c_int = 2;
    pub const SIGTERM: c_int = 15;

    extern "C" {
        /// POSIX `signal(2)`; `std` links libc, so no new dependency.
        pub fn signal(signum: c_int, handler: usize) -> usize;
    }

    pub extern "C" fn on_signal(_signum: c_int) {
        // Only an atomic store: allocation, locks and I/O are all
        // forbidden inside a signal handler.
        if let Some(flag) = super::FLAG.get() {
            flag.store(true, std::sync::atomic::Ordering::SeqCst);
        }
    }
}

/// Installs SIGTERM + SIGINT handlers (idempotently) and returns the
/// shared flag they raise. On non-Unix targets the flag is returned
/// without any handler — callers degrade to stop-on-request-only.
pub fn install_signal_flag() -> Arc<AtomicBool> {
    let flag = FLAG.get_or_init(|| Arc::new(AtomicBool::new(false)));
    #[cfg(unix)]
    {
        // SAFETY: `signal` is the POSIX registration call; the handler
        // passed is a valid `extern "C" fn(c_int)` for the process
        // lifetime and touches only an atomic.
        unsafe {
            imp::signal(imp::SIGINT, imp::on_signal as *const () as usize);
            imp::signal(imp::SIGTERM, imp::on_signal as *const () as usize);
        }
    }
    Arc::clone(flag)
}

/// The installed flag, if [`install_signal_flag`] ran; for code that
/// wants to poll without forcing installation.
pub fn signal_flag() -> Option<Arc<AtomicBool>> {
    FLAG.get().cloned()
}

/// Test hook: lower the flag (signals are process-global, and tests
/// that raise it must not poison later tests in the same binary).
pub fn reset_signal_flag() {
    if let Some(flag) = FLAG.get() {
        flag.store(false, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_is_shared_and_raisable() {
        let a = install_signal_flag();
        let b = install_signal_flag();
        assert!(!a.load(Ordering::SeqCst));
        b.store(true, Ordering::SeqCst);
        assert!(a.load(Ordering::SeqCst), "both handles view one flag");
        reset_signal_flag();
        assert!(!a.load(Ordering::SeqCst));
    }
}
