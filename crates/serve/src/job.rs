//! Job model: what a tenant submits and how its lifecycle is recorded.

use std::fmt;

use maopt_obs::json::Json;

/// What a client submits: one sizing run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Tenant identity (quota accounting key). Free-form, non-empty.
    pub tenant: String,
    /// Problem name resolved by [`crate::registry::build_problem`],
    /// e.g. `"sphere:3"` or `"ota"`.
    pub problem: String,
    /// Method name resolved by [`crate::registry::build_method`],
    /// e.g. `"ma-opt"` or `"dnn-opt"`.
    pub method: String,
    /// Simulation budget (post-init).
    pub budget: usize,
    /// Initial random-sample count.
    pub init_size: usize,
    /// RNG seed; jobs are deterministic given the spec.
    pub seed: u64,
    /// Shrink network/training sizes for fast smoke jobs.
    pub quick: bool,
}

impl JobSpec {
    /// Serializes the spec as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("tenant", Json::Str(self.tenant.clone())),
            ("problem", Json::Str(self.problem.clone())),
            ("method", Json::Str(self.method.clone())),
            ("budget", Json::num_u(self.budget as u64)),
            ("init", Json::num_u(self.init_size as u64)),
            ("seed", Json::num_u(self.seed)),
            ("quick", Json::Bool(self.quick)),
        ])
    }

    /// Parses a spec from a JSON object (a `submit` request or a queue
    /// manifest entry).
    ///
    /// # Errors
    ///
    /// Names the first missing or ill-typed field.
    pub fn from_json(v: &Json) -> Result<JobSpec, String> {
        let field = |k: &str| v.get(k).ok_or_else(|| format!("missing field {k:?}"));
        let tenant = field("tenant")?
            .as_str()
            .ok_or("field \"tenant\" must be a string")?
            .to_string();
        if tenant.is_empty() {
            return Err("field \"tenant\" must be non-empty".into());
        }
        Ok(JobSpec {
            tenant,
            problem: field("problem")?
                .as_str()
                .ok_or("field \"problem\" must be a string")?
                .to_string(),
            method: field("method")?
                .as_str()
                .ok_or("field \"method\" must be a string")?
                .to_string(),
            budget: field("budget")?
                .as_usize()
                .ok_or("field \"budget\" must be a non-negative integer")?,
            init_size: field("init")?
                .as_usize()
                .ok_or("field \"init\" must be a non-negative integer")?,
            seed: field("seed")?
                .as_u64()
                .ok_or("field \"seed\" must be a non-negative integer")?,
            quick: v.get("quick").and_then(Json::as_bool).unwrap_or(false),
        })
    }
}

/// Where a job is in its lifecycle.
///
/// ```text
/// Pending ──▶ Running ──▶ Done
///    ▲           │  ├───▶ Failed
///    │(shutdown, │  └───▶ Quarantined (after --max-attempts crashes
///    │  crash,   │                     or watchdog demotions)
///    │  stall)   │
///    └───────────┤
///    Canceled ◀──┴── (cancel, from Pending or Running)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Queued (or checkpointed mid-run awaiting a restart).
    Pending,
    /// Currently occupying a scheduler slot.
    Running,
    /// Finished its full budget.
    Done,
    /// Spec failed to resolve or the run errored.
    Failed,
    /// Cancelled by a client.
    Canceled,
    /// Exhausted its attempt budget crashing or stalling the runner;
    /// parked so it cannot crash-loop the daemon. Terminal until an
    /// operator resubmits it.
    Quarantined,
}

impl JobStatus {
    /// Wire name, also used in the queue manifest.
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Pending => "pending",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Canceled => "canceled",
            JobStatus::Quarantined => "quarantined",
        }
    }

    /// Inverse of [`JobStatus::as_str`].
    ///
    /// # Errors
    ///
    /// On an unknown status name.
    pub fn parse(s: &str) -> Result<JobStatus, String> {
        match s {
            "pending" => Ok(JobStatus::Pending),
            "running" => Ok(JobStatus::Running),
            "done" => Ok(JobStatus::Done),
            "failed" => Ok(JobStatus::Failed),
            "canceled" => Ok(JobStatus::Canceled),
            "quarantined" => Ok(JobStatus::Quarantined),
            other => Err(format!("unknown job status {other:?}")),
        }
    }

    /// Whether the job can never run again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Done | JobStatus::Failed | JobStatus::Canceled | JobStatus::Quarantined
        )
    }
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One job's durable record: spec, lifecycle state, and (when finished)
/// a result summary.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Queue-assigned identity, monotonically increasing.
    pub id: u64,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Lifecycle state.
    pub status: JobStatus,
    /// Best figure-of-merit, once finished.
    pub best_fom: Option<f64>,
    /// Whether any design met every spec, once finished.
    pub success: Option<bool>,
    /// Simulations consumed so far.
    pub sims: u64,
    /// Dispatch attempts charged so far. Incremented *before* each
    /// dispatch, so a job that kills the daemon mid-run is still
    /// charged for the attempt on restart.
    pub attempts: u64,
    /// Corrupt snapshot generations rolled past while (re)running this
    /// job.
    pub rollbacks: u64,
    /// Failure reason, when [`JobStatus::Failed`] or
    /// [`JobStatus::Quarantined`].
    pub error: Option<String>,
}

impl JobRecord {
    /// The client-facing job name, `"job-<id>"`.
    pub fn name(&self) -> String {
        format!("job-{}", self.id)
    }

    /// Parses `"job-<id>"` (or a bare integer) back to an id.
    ///
    /// # Errors
    ///
    /// On anything else.
    pub fn parse_name(name: &str) -> Result<u64, String> {
        let digits = name.strip_prefix("job-").unwrap_or(name);
        digits
            .parse::<u64>()
            .map_err(|_| format!("invalid job id {name:?} (expected \"job-<n>\")"))
    }

    /// Serializes the record as a JSON object (wire + manifest form).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("id", Json::Str(self.name())),
            ("spec", self.spec.to_json()),
            ("status", Json::Str(self.status.as_str().into())),
            ("sims", Json::num_u(self.sims)),
            ("attempts", Json::num_u(self.attempts)),
            ("rollbacks", Json::num_u(self.rollbacks)),
        ];
        if let Some(f) = self.best_fom {
            pairs.push(("best_fom", Json::Num(f)));
        }
        if let Some(s) = self.success {
            pairs.push(("success", Json::Bool(s)));
        }
        if let Some(e) = &self.error {
            pairs.push(("error", Json::Str(e.clone())));
        }
        Json::obj(pairs)
    }

    /// Inverse of [`JobRecord::to_json`].
    ///
    /// # Errors
    ///
    /// Names the first missing or ill-typed field.
    pub fn from_json(v: &Json) -> Result<JobRecord, String> {
        let id = JobRecord::parse_name(
            v.get("id")
                .and_then(Json::as_str)
                .ok_or("missing field \"id\"")?,
        )?;
        let spec = JobSpec::from_json(v.get("spec").ok_or("missing field \"spec\"")?)?;
        let status = JobStatus::parse(
            v.get("status")
                .and_then(Json::as_str)
                .ok_or("missing field \"status\"")?,
        )?;
        Ok(JobRecord {
            id,
            spec,
            status,
            best_fom: v.get("best_fom").and_then(Json::as_f64),
            success: v.get("success").and_then(Json::as_bool),
            sims: v.get("sims").and_then(Json::as_u64).unwrap_or(0),
            attempts: v.get("attempts").and_then(Json::as_u64).unwrap_or(0),
            rollbacks: v.get("rollbacks").and_then(Json::as_u64).unwrap_or(0),
            error: v.get("error").and_then(Json::as_str).map(String::from),
        })
    }
}
