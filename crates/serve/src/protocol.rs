//! The wire protocol: length-prefixed JSON frames.
//!
//! Grammar (all integers little-endian):
//!
//! ```text
//! frame   := len u32 LE | payload (len bytes)
//! payload := one JSON document, UTF-8
//! ```
//!
//! A connection is a sequence of frames in each direction. Frames are
//! capped at [`MAX_FRAME`] bytes: a peer announcing a larger length is
//! rejected before any allocation, so a corrupt or hostile length
//! prefix cannot balloon memory. Truncation (EOF inside a frame) is a
//! clean [`FrameError::Truncated`], never a panic; EOF *between* frames
//! is the normal end of a conversation.
//!
//! The payload codec is `maopt-obs`'s hermetic [`Json`] — the same
//! parser that reads run journals — so the daemon adds no dependencies.

use std::fmt;
use std::io::{Read, Write};

use maopt_obs::json::Json;

/// Maximum frame payload size in bytes (1 MiB).
pub const MAX_FRAME: usize = 1 << 20;

/// Why a frame failed to encode, decode, read or write.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying transport failure.
    Io(std::io::Error),
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversize {
        /// The announced payload length.
        len: usize,
    },
    /// The stream ended inside a frame (mid-prefix or mid-payload).
    Truncated {
        /// How many payload-or-prefix bytes were still expected.
        missing: usize,
    },
    /// The payload is not valid UTF-8 JSON.
    Malformed(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::Oversize { len } => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            FrameError::Truncated { missing } => {
                write!(
                    f,
                    "stream truncated inside a frame ({missing} bytes missing)"
                )
            }
            FrameError::Malformed(msg) => write!(f, "malformed frame payload: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Serializes one message to its framed byte representation.
///
/// # Errors
///
/// [`FrameError::Oversize`] when the serialized payload exceeds
/// [`MAX_FRAME`].
pub fn encode_frame(msg: &Json) -> Result<Vec<u8>, FrameError> {
    let payload = msg.to_string();
    if payload.len() > MAX_FRAME {
        return Err(FrameError::Oversize { len: payload.len() });
    }
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload.as_bytes());
    Ok(out)
}

/// Decodes one frame from the front of `buf`.
///
/// Returns `Ok(None)` when `buf` does not yet hold a complete frame
/// (more bytes must arrive), and `Ok(Some((msg, consumed)))` once it
/// does, where `consumed` is the total frame size to drain.
///
/// # Errors
///
/// [`FrameError::Oversize`] on a length prefix beyond [`MAX_FRAME`]
/// (detected before the payload arrives); [`FrameError::Malformed`] on
/// a payload that is not UTF-8 JSON.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Json, usize)>, FrameError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().expect("4")) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::Oversize { len });
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let payload = std::str::from_utf8(&buf[4..4 + len])
        .map_err(|e| FrameError::Malformed(format!("invalid UTF-8: {e}")))?;
    let msg = Json::parse(payload).map_err(FrameError::Malformed)?;
    Ok(Some((msg, 4 + len)))
}

/// Writes one framed message and flushes the transport.
///
/// # Errors
///
/// As [`encode_frame`], plus transport failures.
pub fn write_frame(w: &mut impl Write, msg: &Json) -> Result<(), FrameError> {
    let bytes = encode_frame(msg)?;
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(())
}

/// Reads one framed message. `Ok(None)` is a clean EOF at a frame
/// boundary — the peer hung up between messages.
///
/// # Errors
///
/// [`FrameError::Truncated`] on EOF inside a frame, plus the
/// [`decode_frame`] and transport errors.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Json>, FrameError> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut prefix[got..])? {
            0 if got == 0 => return Ok(None),
            0 => return Err(FrameError::Truncated { missing: 4 - got }),
            n => got += n,
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::Oversize { len });
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match r.read(&mut payload[filled..])? {
            0 => {
                return Err(FrameError::Truncated {
                    missing: len - filled,
                })
            }
            n => filled += n,
        }
    }
    let text = std::str::from_utf8(&payload)
        .map_err(|e| FrameError::Malformed(format!("invalid UTF-8: {e}")))?;
    Ok(Some(Json::parse(text).map_err(FrameError::Malformed)?))
}
