//! The daemon: accept loop, fair scheduler, and job execution.
//!
//! ## Threading model
//!
//! * The **accept loop** ([`Server::run`]) owns the nonblocking
//!   `TcpListener`, spawning one detached OS thread per connection —
//!   connections are control-plane work and must not occupy compute
//!   workers.
//! * The **scheduler** runs on its own thread. With a multi-worker
//!   engine it opens one long-lived [`maopt_exec::WorkerPool::scope`]
//!   and dispatches each job as a `spawn` onto the run-level pool —
//!   the PR-4 fan-out — never dispatching more than `slots` jobs so the
//!   bounded queue cannot block the scheduling tick. With a serial
//!   engine it degenerates to running one job at a time inline.
//! * Every queue mutation persists the manifest through the
//!   `maopt-ckpt` generation-rotated atomic path before it is
//!   acknowledged to clients, so a SIGKILL at any point restarts with
//!   a consistent queue (a corrupt newest generation rolls back to the
//!   previous one); jobs that were running are requeued below their
//!   attempt budget — each dispatch charges the attempt *before* the
//!   runner starts — and quarantined at it, so a daemon-killing job
//!   cannot crash-loop the service. An optional watchdog
//!   ([`ServeConfig::stall_budget_ms`]) cancels and then demotes jobs
//!   whose checkpoint round counter stops advancing.
//!
//! ## Durability + determinism
//!
//! Each job runs on a clone of the base engine with an isolated
//! [`maopt_exec::Telemetry`] (fresh counters; the shared flight
//! recorder, when attached) and a fresh [`SimCache`], so its journal's
//! counter deltas are independent of co-scheduled jobs; given the same
//! spec, a job's journal is byte-identical (non-timing fields) whether
//! the daemon ran uninterrupted, was SIGKILLed and restarted, or was
//! gracefully drained and restarted.
//!
//! ## Metrics
//!
//! The `metrics` command renders the daemon's live state — queue
//! gauges, engine counters, and per-phase / per-tenant latency
//! summaries — as Prometheus text exposition (format 0.0.4) built by
//! [`maopt_exec::prom::Exposition`]. Scrapes read shared state under
//! the same lock as every other command; they never touch job journals.

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use maopt_core::runner::{sample_initial_set_with, Optimizer};
use maopt_core::{RunCheckpointer, RunResult};
use maopt_exec::{EvalEngine, SimCache};
use maopt_obs::json::Json;
use maopt_obs::{Journal, JournalTail};

use crate::job::{JobRecord, JobSpec, JobStatus};
use crate::protocol::{read_frame, write_frame};
use crate::queue::{AdmissionError, JobQueue, QueueLimits};
use crate::registry::{build_method, build_problem};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `"127.0.0.1:0"` (port 0 = ephemeral; the
    /// bound address is written to `<state_dir>/addr`).
    pub addr: String,
    /// Durable state root: `queue.maopt` manifest plus one
    /// `jobs/job-<id>/` directory (journal + checkpoint) per job.
    pub state_dir: PathBuf,
    /// Maximum concurrently running jobs.
    pub slots: usize,
    /// Admission + per-tenant limits.
    pub limits: QueueLimits,
    /// Scheduler tick and subscribe poll interval.
    pub poll_ms: u64,
    /// Watchdog stall budget: a running job whose checkpoint round
    /// counter has not advanced for this long is cancelled, and after a
    /// second budget without progress is demoted off its slot (its
    /// already-charged attempt standing — enough demotions quarantine
    /// it). `None` disables the watchdog.
    pub stall_budget_ms: Option<u64>,
}

impl ServeConfig {
    /// A config listening on an ephemeral localhost port with `state_dir`
    /// as the durable root.
    pub fn new(state_dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            state_dir: state_dir.into(),
            slots: 2,
            limits: QueueLimits::default(),
            poll_ms: 20,
            stall_budget_ms: None,
        }
    }
}

/// Parses the `MAOPT_SERVE_ADDR` listen-address override.
///
/// Returns `Ok(None)` when unset or blank.
///
/// # Errors
///
/// A descriptive message — naming the variable and offending value —
/// when set but not a valid `host:port` socket address, instead of
/// silently falling back to the default address.
pub fn addr_from_env() -> Result<Option<String>, String> {
    let Ok(raw) = std::env::var("MAOPT_SERVE_ADDR") else {
        return Ok(None);
    };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    trimmed
        .parse::<SocketAddr>()
        .map(|a| Some(a.to_string()))
        .map_err(|e| {
            format!(
                "invalid MAOPT_SERVE_ADDR value {raw:?}: {e} (expected host:port, e.g. 127.0.0.1:7171)"
            )
        })
}

/// Scheduler-side bookkeeping for one dispatched job.
struct RunningJob {
    /// Stop flag (raised by cancel, shutdown, and the watchdog).
    flag: Arc<AtomicBool>,
    /// The job's checkpoint-round liveness beacon
    /// ([`RunCheckpointer::with_progress`]).
    progress: Arc<AtomicU64>,
    /// Last beacon value observed by the watchdog.
    last_progress: u64,
    /// When the beacon last advanced (dispatch time initially).
    last_advance: Instant,
    /// When the watchdog raised the stop flag, if it has — stage one of
    /// the cancel → demote escalation.
    canceled_at: Option<Instant>,
}

/// Mutable server state, shared by connections and the scheduler.
struct State {
    queue: JobQueue,
    /// Scheduler bookkeeping per dispatched job (slot accounting, stop
    /// flags, watchdog progress).
    running: BTreeMap<u64, RunningJob>,
    /// Watchdog-demoted jobs whose runner thread has not returned yet:
    /// their working directories are still owned by a hung thread, so
    /// the scheduler must not re-dispatch them until it exits.
    zombies: BTreeSet<u64>,
    /// High-water mark of concurrently running jobs.
    peak_running: usize,
    /// High-water mark of concurrently running jobs per tenant — the
    /// observable the quota tests assert on.
    peak_tenant_running: BTreeMap<String, usize>,
}

struct Shared {
    cfg: ServeConfig,
    engine: EvalEngine,
    state: Mutex<State>,
    stop: Arc<AtomicBool>,
}

impl Shared {
    fn queue_path(&self) -> PathBuf {
        self.cfg.state_dir.join("queue.maopt")
    }

    fn job_dir(&self, id: u64) -> PathBuf {
        self.cfg.state_dir.join("jobs").join(format!("job-{id}"))
    }

    /// Persists the queue manifest and refreshes the per-tenant
    /// queue-depth gauges. Call with the state lock held.
    fn commit(&self, st: &State) {
        if let Err(e) = st.queue.save(&self.queue_path()) {
            // A queue that cannot persist must not keep acknowledging
            // work; surface loudly. (Job execution panics are caught
            // per-job; this panic fails the calling request/scheduler.)
            panic!(
                "cannot persist job queue to {}: {e}",
                self.queue_path().display()
            );
        }
        let mut tenants: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for job in st.queue.jobs() {
            let entry = tenants.entry(job.spec.tenant.as_str()).or_insert((0, 0));
            match job.status {
                JobStatus::Pending => entry.0 += 1,
                JobStatus::Running => entry.1 += 1,
                _ => {}
            }
        }
        let metrics = &self.engine.telemetry().metrics;
        for (tenant, (pending, running)) in &tenants {
            metrics.set_gauge(&format!("serve.tenant.{tenant}.pending"), *pending as f64);
            metrics.set_gauge(&format!("serve.tenant.{tenant}.running"), *running as f64);
        }
        metrics.set_gauge(
            "serve.queue.pending",
            st.queue.count_status(JobStatus::Pending) as f64,
        );
        metrics.set_gauge(
            "serve.queue.running",
            st.queue.count_status(JobStatus::Running) as f64,
        );
        metrics.set_gauge(
            "serve.quarantined",
            st.queue.count_status(JobStatus::Quarantined) as f64,
        );
    }
}

/// A bound, not-yet-running daemon; [`Server::run`] blocks until the
/// stop flag is raised and all running jobs have drained.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Loads (or initializes) the durable queue under `cfg.state_dir` —
    /// rolling back past corrupt manifest generations, requeueing
    /// previously running jobs within their attempt budget and
    /// quarantining the rest — binds the listener, and writes the bound
    /// address to `<state_dir>/addr`.
    ///
    /// # Errors
    ///
    /// Propagates bind/IO failures; a queue manifest with *no* good
    /// generation is an `InvalidData` error (refusing to silently drop
    /// jobs).
    pub fn bind(cfg: ServeConfig, engine: EvalEngine, stop: Arc<AtomicBool>) -> io::Result<Server> {
        let mut cfg = cfg;
        // The pool's bounded queue holds 2×workers tasks; more slots
        // than that could block the scheduling tick on spawn.
        cfg.slots = cfg.slots.clamp(1, engine.jobs().max(1) * 2);
        std::fs::create_dir_all(&cfg.state_dir)?;
        let (mut queue, manifest_rollbacks) =
            JobQueue::load_or_default(&cfg.state_dir.join("queue.maopt"))
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if manifest_rollbacks > 0 {
            engine
                .telemetry()
                .metrics
                .inc("serve.manifest.rollback", manifest_rollbacks);
            eprintln!(
                "maopt-serve: rolled back {manifest_rollbacks} corrupt queue manifest generation(s)"
            );
        }
        let (requeued, quarantined) = queue.recover(cfg.limits.max_attempts);
        if requeued + quarantined > 0 {
            eprintln!(
                "maopt-serve: recovered {requeued} interrupted job(s), quarantined {quarantined} at the attempt budget"
            );
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        std::fs::write(
            cfg.state_dir.join("addr"),
            listener.local_addr()?.to_string(),
        )?;
        let shared = Arc::new(Shared {
            cfg,
            engine,
            state: Mutex::new(State {
                queue,
                running: BTreeMap::new(),
                zombies: BTreeSet::new(),
                peak_running: 0,
                peak_tenant_running: BTreeMap::new(),
            }),
            stop,
        });
        {
            let st = shared.state.lock().expect("state lock");
            shared.commit(&st);
        }
        Ok(Server { listener, shared })
    }

    /// The bound listen address.
    ///
    /// # Errors
    ///
    /// Propagates the OS query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the daemon: scheduler + accept loop. Returns once the stop
    /// flag is raised, every running job has checkpointed and drained,
    /// and the final queue manifest is durable.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures other than `WouldBlock`.
    pub fn run(self) -> io::Result<()> {
        let shared = Arc::clone(&self.shared);
        let sched = std::thread::Builder::new()
            .name("serve-scheduler".into())
            .spawn(move || scheduler(&shared))
            .expect("spawn scheduler");

        let poll = Duration::from_millis(self.shared.cfg.poll_ms.max(1));
        loop {
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&self.shared);
                    std::thread::Builder::new()
                        .name("serve-conn".into())
                        .spawn(move || handle_connection(&shared, stream))
                        .expect("spawn connection handler");
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(poll),
                Err(e) => return Err(e),
            }
        }

        // Drain: the scheduler raises every running job's flag, each job
        // checkpoints at its next round boundary and returns, and the
        // scheduler exits once nothing is running.
        sched.join().expect("scheduler thread");
        let st = self.shared.state.lock().expect("state lock");
        self.shared.commit(&st);
        Ok(())
    }
}

/// The scheduling loop. With a pooled engine, jobs are spawned onto the
/// run-level worker pool inside one long-lived scope; serial engines
/// run jobs inline one at a time.
fn scheduler(shared: &Arc<Shared>) {
    match shared.engine.pool().cloned() {
        Some(pool) => pool.scope(|scope| {
            let poll = Duration::from_millis(shared.cfg.poll_ms.max(1));
            loop {
                if tick(shared, |id, flag, progress| {
                    let shared = Arc::clone(shared);
                    scope.spawn(move |_w| run_job(&shared, id, &flag, &progress));
                }) {
                    break;
                }
                std::thread::sleep(poll);
            }
        }),
        None => {
            let poll = Duration::from_millis(shared.cfg.poll_ms.max(1));
            loop {
                if tick(shared, |id, flag, progress| {
                    run_job(shared, id, &flag, &progress);
                }) {
                    break;
                }
                std::thread::sleep(poll);
            }
        }
    }
}

/// Watchdog pass over running jobs, escalating per stall budget: a job
/// whose checkpoint-round beacon has not advanced for one budget gets
/// its stop flag raised (a cooperative cancel a live-but-slow run honors
/// at its next round boundary); one more budget without progress and it
/// is demoted off its slot — requeued within its attempt budget,
/// quarantined beyond it — and parked in `zombies` until its hung
/// thread actually returns. Returns whether the queue changed.
fn watchdog(shared: &Shared, st: &mut State, budget: Duration) -> bool {
    let metrics = &shared.engine.telemetry().metrics;
    let now = Instant::now();
    let mut demoted = Vec::new();
    for (id, rj) in &mut st.running {
        let beacon = rj.progress.load(Ordering::SeqCst);
        if beacon > rj.last_progress {
            rj.last_progress = beacon;
            rj.last_advance = now;
            continue;
        }
        if now.duration_since(rj.last_advance) < budget {
            continue;
        }
        match rj.canceled_at {
            None => {
                rj.flag.store(true, Ordering::SeqCst);
                rj.canceled_at = Some(now);
                metrics.inc("serve.watchdog.cancel", 1);
            }
            Some(at) if now.duration_since(at) >= budget => demoted.push(*id),
            Some(_) => {}
        }
    }
    let changed = !demoted.is_empty();
    for id in demoted {
        st.running.remove(&id);
        st.zombies.insert(id);
        metrics.inc("serve.watchdog.demote", 1);
        let max_attempts = shared.cfg.limits.max_attempts;
        if let Some(job) = st.queue.get_mut(id) {
            if job.status == JobStatus::Running {
                if max_attempts > 0 && job.attempts >= max_attempts as u64 {
                    job.status = JobStatus::Quarantined;
                    job.error = Some(format!(
                        "quarantined after {} attempt(s): stalled past the watchdog budget",
                        job.attempts
                    ));
                } else {
                    job.status = JobStatus::Pending;
                    job.error = Some("watchdog: stalled past budget; requeued".into());
                }
            }
        }
    }
    changed
}

/// One scheduling tick: run the watchdog, dispatch runnable jobs into
/// free slots via `dispatch`, propagate a shutdown to running jobs, and
/// report whether the scheduler should exit (stopped and fully drained).
fn tick(
    shared: &Arc<Shared>,
    mut dispatch: impl FnMut(u64, Arc<AtomicBool>, Arc<AtomicU64>),
) -> bool {
    let stopping = shared.stop.load(Ordering::SeqCst);
    let mut to_run = Vec::new();
    {
        let mut st = shared.state.lock().expect("state lock");
        let st = &mut *st;
        if stopping {
            for rj in st.running.values() {
                rj.flag.store(true, Ordering::SeqCst);
            }
            return st.running.is_empty();
        }
        let mut changed = match shared.cfg.stall_budget_ms {
            Some(ms) => watchdog(shared, st, Duration::from_millis(ms.max(1))),
            None => false,
        };
        let slots = shared.cfg.slots.max(1);
        while st.running.len() < slots {
            let Some(id) = st.queue.next_runnable(&shared.cfg.limits, &st.zombies) else {
                break;
            };
            let flag = Arc::new(AtomicBool::new(false));
            let progress = Arc::new(AtomicU64::new(0));
            st.running.insert(
                id,
                RunningJob {
                    flag: Arc::clone(&flag),
                    progress: Arc::clone(&progress),
                    last_progress: 0,
                    last_advance: Instant::now(),
                    canceled_at: None,
                },
            );
            let tenant = st
                .queue
                .get(id)
                .expect("just scheduled")
                .spec
                .tenant
                .clone();
            let running_now = st.queue.count_status(JobStatus::Running);
            st.peak_running = st.peak_running.max(running_now);
            let tenant_now = st.queue.tenant_count(&tenant, JobStatus::Running);
            let peak = st.peak_tenant_running.entry(tenant).or_insert(0);
            *peak = (*peak).max(tenant_now);
            to_run.push((id, flag, progress));
            changed = true;
        }
        if changed {
            shared.commit(st);
        }
    }
    for (id, flag, progress) in to_run {
        dispatch(id, flag, progress);
    }
    false
}

/// Executes one job end-to-end and records its terminal (or demoted)
/// state. Never panics: build errors and run panics are charged against
/// the job's attempt budget — requeued below it, quarantined at it.
fn run_job(shared: &Arc<Shared>, id: u64, flag: &Arc<AtomicBool>, progress: &Arc<AtomicU64>) {
    let spec = {
        let st = shared.state.lock().expect("state lock");
        match st.queue.get(id) {
            Some(j) => j.spec.clone(),
            None => return,
        }
    };
    let ckpt = RunCheckpointer::new(shared.job_dir(id).join("run.ckpt"))
        .with_resume(true)
        .with_stop_flag(Arc::clone(flag))
        .with_progress(Arc::clone(progress));
    let t0 = std::time::Instant::now();
    let outcome = execute(shared, id, &spec, &ckpt);
    // Wall-clock job latency, per daemon and per tenant. These land in
    // the daemon engine's registry (scraped by `metrics`), never in job
    // journals — journals embed counter deltas only, so timing stays
    // outside the bitwise contract.
    let elapsed = t0.elapsed().as_secs_f64();
    let metrics = &shared.engine.telemetry().metrics;
    metrics.observe("serve.job_seconds", elapsed);
    metrics.observe(
        &format!("serve.tenant.{}.job_seconds", spec.tenant),
        elapsed,
    );
    // Storage-fault health, surfaced per job and in the daemon registry.
    let rollbacks = ckpt.rollbacks();
    if rollbacks > 0 {
        metrics.inc("ckpt.rollback", rollbacks);
    }
    if ckpt.write_failures() > 0 {
        metrics.inc("ckpt.write_failure", ckpt.write_failures());
    }

    let mut st = shared.state.lock().expect("state lock");
    st.running.remove(&id);
    // A watchdog-demoted job whose hung thread finally returned: its
    // working directory is free again, so it may be re-dispatched.
    st.zombies.remove(&id);
    let Some(job) = st.queue.get_mut(id) else {
        return;
    };
    job.rollbacks += rollbacks;
    match outcome {
        Ok(result) => {
            job.sims = result.trace.num_sims() as u64;
            // A non-Running status here means a client cancel or a
            // watchdog demotion raced the thread's return: keep the
            // state already recorded (a checkpoint stays on disk for
            // any future re-dispatch).
            if job.status == JobStatus::Running {
                if result.trace.num_sims() >= spec.budget {
                    job.status = JobStatus::Done;
                    job.best_fom = Some(result.best_fom());
                    job.success = Some(result.success());
                    job.error = None;
                } else {
                    // Graceful shutdown: checkpointed mid-run,
                    // resumable on the next boot.
                    job.status = JobStatus::Pending;
                }
            }
        }
        Err(msg) => {
            if job.status == JobStatus::Running {
                let max_attempts = shared.cfg.limits.max_attempts;
                if max_attempts > 0 && job.attempts >= max_attempts as u64 {
                    job.status = JobStatus::Quarantined;
                    job.error = Some(format!(
                        "quarantined after {} attempt(s): {msg}",
                        job.attempts
                    ));
                } else {
                    // Within the attempt budget: requeue. A transient
                    // fault (injected or real) retries from the last
                    // good checkpoint; a deterministic crasher burns
                    // its remaining attempts and quarantines.
                    job.status = JobStatus::Pending;
                    job.error = Some(msg);
                }
            }
        }
    }
    shared.commit(&st);
}

/// Builds and runs one job's optimization, resuming from its newest
/// good checkpoint generation when one exists.
fn execute(
    shared: &Arc<Shared>,
    id: u64,
    spec: &JobSpec,
    ckpt: &RunCheckpointer,
) -> Result<RunResult, String> {
    let problem = build_problem(&spec.problem)?;
    let method = build_method(&spec.method, spec.seed, spec.quick)?;
    let dir = shared.job_dir(id);

    // Isolated telemetry + fresh cache per job: counter deltas in this
    // job's journal are then independent of co-scheduled jobs, which is
    // what makes journals byte-identical across daemon restarts. The
    // flight recorder, when one is attached to the daemon engine, is
    // shared so all jobs land on one timeline.
    let engine = shared
        .engine
        .clone()
        .with_telemetry(Arc::new(shared.engine.telemetry().isolated()))
        .with_cache(Arc::new(SimCache::new()));
    let init = sample_initial_set_with(problem.as_ref(), spec.init_size, spec.seed, &engine);
    let journal = Journal::create(dir.join("journal.jsonl"))
        .map_err(|e| format!("cannot create journal: {e}"))?;

    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        method.optimize_resumable(
            problem.as_ref(),
            &init,
            spec.budget,
            spec.seed,
            &engine,
            &journal,
            Some(ckpt),
        )
    }))
    .map_err(|p| {
        let msg = p
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| p.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_else(|| "run panicked".into());
        format!("run panicked: {msg}")
    })?;
    journal.flush();
    shared.engine.telemetry().merge_from(engine.telemetry());
    Ok(result)
}

// ------------------------------------------------------------ protocol

fn ok(mut extra: Vec<(&str, Json)>) -> Json {
    let mut pairs = vec![("ok", Json::Bool(true))];
    pairs.append(&mut extra);
    Json::obj(pairs)
}

fn err(code: u64, msg: impl Into<String>) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("code", Json::num_u(code)),
        ("error", Json::Str(msg.into())),
    ])
}

/// Serves one connection: a loop of request → response frames. The
/// `subscribe` command switches the connection into streaming mode and
/// finishes it.
fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        let request = match read_frame(&mut reader) {
            Ok(Some(msg)) => msg,
            Ok(None) => return, // clean hang-up between frames
            Err(e) => {
                // Oversize / malformed / truncated input: answer with a
                // clean protocol error when the socket still works.
                let _ = write_frame(&mut writer, &err(400, e.to_string()));
                return;
            }
        };
        let cmd = request.get("cmd").and_then(Json::as_str).unwrap_or("");
        let response = match cmd {
            "submit" => handle_submit(shared, &request),
            "status" => handle_status(shared, &request),
            "cancel" => handle_cancel(shared, &request),
            "list" => handle_list(shared),
            "stats" => handle_stats(shared),
            "metrics" => handle_metrics(shared),
            "shutdown" => {
                shared.stop.store(true, Ordering::SeqCst);
                ok(vec![])
            }
            "subscribe" => {
                handle_subscribe(shared, &request, &mut writer);
                return;
            }
            other => err(400, format!("unknown command {other:?}")),
        };
        if write_frame(&mut writer, &response).is_err() {
            return;
        }
    }
}

fn handle_submit(shared: &Arc<Shared>, request: &Json) -> Json {
    let spec = match JobSpec::from_json(request) {
        Ok(s) => s,
        Err(msg) => return err(400, msg),
    };
    // Reject unresolvable specs at admission instead of burning a slot
    // on a job that can only fail.
    if let Err(msg) = build_problem(&spec.problem) {
        return err(400, msg);
    }
    if let Err(msg) = build_method(&spec.method, spec.seed, spec.quick) {
        return err(400, msg);
    }
    let mut st = shared.state.lock().expect("state lock");
    match st.queue.submit(spec, &shared.cfg.limits) {
        Ok(id) => {
            shared.commit(&st);
            ok(vec![("id", Json::Str(format!("job-{id}")))])
        }
        Err(e @ AdmissionError::QueueFull { .. }) => err(429, e.to_string()),
    }
}

fn parse_id(request: &Json) -> Result<u64, Json> {
    request
        .get("id")
        .and_then(Json::as_str)
        .ok_or_else(|| err(400, "missing field \"id\""))
        .and_then(|name| JobRecord::parse_name(name).map_err(|m| err(400, m)))
}

fn handle_status(shared: &Arc<Shared>, request: &Json) -> Json {
    let id = match parse_id(request) {
        Ok(id) => id,
        Err(e) => return e,
    };
    let st = shared.state.lock().expect("state lock");
    match st.queue.get(id) {
        Some(job) => ok(vec![("job", job.to_json())]),
        None => err(404, format!("no such job job-{id}")),
    }
}

fn handle_cancel(shared: &Arc<Shared>, request: &Json) -> Json {
    let id = match parse_id(request) {
        Ok(id) => id,
        Err(e) => return e,
    };
    let mut st = shared.state.lock().expect("state lock");
    match st.queue.cancel(id) {
        Ok(was) => {
            if let Some(rj) = st.running.get(&id) {
                rj.flag.store(true, Ordering::SeqCst);
            }
            shared.commit(&st);
            ok(vec![("was", Json::Str(was.to_string()))])
        }
        Err(msg) => err(409, msg),
    }
}

fn handle_list(shared: &Arc<Shared>) -> Json {
    let st = shared.state.lock().expect("state lock");
    ok(vec![(
        "jobs",
        Json::Arr(st.queue.jobs().map(JobRecord::to_json).collect()),
    )])
}

fn handle_stats(shared: &Arc<Shared>) -> Json {
    let st = shared.state.lock().expect("state lock");
    let tenants: Vec<Json> = st
        .peak_tenant_running
        .iter()
        .map(|(tenant, peak)| {
            Json::obj(vec![
                ("tenant", Json::Str(tenant.clone())),
                (
                    "pending",
                    Json::num_u(st.queue.tenant_count(tenant, JobStatus::Pending) as u64),
                ),
                (
                    "running",
                    Json::num_u(st.queue.tenant_count(tenant, JobStatus::Running) as u64),
                ),
                (
                    "quarantined",
                    Json::num_u(st.queue.tenant_count(tenant, JobStatus::Quarantined) as u64),
                ),
                ("peak_running", Json::num_u(*peak as u64)),
            ])
        })
        .collect();
    ok(vec![
        ("slots", Json::num_u(shared.cfg.slots as u64)),
        (
            "pending",
            Json::num_u(st.queue.count_status(JobStatus::Pending) as u64),
        ),
        (
            "running",
            Json::num_u(st.queue.count_status(JobStatus::Running) as u64),
        ),
        (
            "quarantined",
            Json::num_u(st.queue.count_status(JobStatus::Quarantined) as u64),
        ),
        ("peak_running", Json::num_u(st.peak_running as u64)),
        ("tenants", Json::Arr(tenants)),
    ])
}

/// Renders the daemon's live state as one Prometheus text exposition
/// (format 0.0.4) inside the usual framed-JSON response; the CLI
/// unwraps the `"metrics"` string and prints it verbatim.
fn handle_metrics(shared: &Arc<Shared>) -> Json {
    ok(vec![("metrics", Json::Str(render_metrics(shared)))])
}

/// Builds the exposition: queue/scheduler gauges, engine counters, and
/// per-phase / per-tenant latency summaries from the shared registry.
fn render_metrics(shared: &Arc<Shared>) -> String {
    use maopt_exec::prom::Exposition;
    use maopt_exec::MetricSnapshot;

    let mut e = Exposition::new();
    {
        let st = shared.state.lock().expect("state lock");
        e.gauge("maopt_serve_slots", &[], shared.cfg.slots as f64);
        e.gauge("maopt_serve_peak_running", &[], st.peak_running as f64);
        for status in [
            JobStatus::Pending,
            JobStatus::Running,
            JobStatus::Done,
            JobStatus::Failed,
            JobStatus::Canceled,
            JobStatus::Quarantined,
        ] {
            e.gauge(
                "maopt_serve_jobs",
                &[("status", status.as_str())],
                st.queue.count_status(status) as f64,
            );
        }
        for (tenant, peak) in &st.peak_tenant_running {
            e.gauge(
                "maopt_serve_tenant_peak_running",
                &[("tenant", tenant)],
                *peak as f64,
            );
        }
    }

    let telemetry = shared.engine.telemetry();
    let c = telemetry.snapshot();
    for (name, v) in [
        ("sims", c.sims),
        ("cache_hits", c.cache_hits),
        ("cache_misses", c.cache_misses),
        ("retries", c.retries),
        ("panics", c.panics),
        ("timeouts", c.timeouts),
        ("non_finite", c.non_finite),
        ("failures", c.failures),
    ] {
        e.counter(&format!("maopt_exec_{name}_total"), &[], v as f64);
    }

    for metric in telemetry.metrics.snapshot() {
        // Internal dotted names carry their dimension in the name; the
        // exposition moves it into a label so one family aggregates
        // across tenants / phases / workers.
        let raw = metric.name().to_string();
        let (name, label): (String, Option<(&str, String)>) =
            if let Some(rest) = raw.strip_prefix("serve.tenant.") {
                match rest.rsplit_once('.') {
                    Some((tenant, leaf)) => (
                        format!("maopt_serve_tenant_{leaf}"),
                        Some(("tenant", tenant.to_string())),
                    ),
                    None => (format!("maopt_serve_tenant_{rest}"), None),
                }
            } else if let Some(rest) = raw.strip_prefix("exec.phase_seconds.") {
                (
                    "maopt_exec_phase_seconds".to_string(),
                    Some(("phase", rest.to_string())),
                )
            } else if let Some(worker) = raw
                .strip_prefix("exec.pool.worker")
                .and_then(|r| r.strip_suffix(".tasks"))
            {
                (
                    "maopt_exec_pool_worker_tasks".to_string(),
                    Some(("worker", worker.to_string())),
                )
            } else {
                (format!("maopt_{raw}"), None)
            };
        let labels: Vec<(&str, &str)> = label
            .as_ref()
            .map(|(k, v)| vec![(*k, v.as_str())])
            .unwrap_or_default();
        match metric {
            MetricSnapshot::Counter { value, .. } => {
                e.counter(&format!("{name}_total"), &labels, value as f64);
            }
            MetricSnapshot::Gauge { value, .. } => e.gauge(&name, &labels, value),
            MetricSnapshot::Histogram(h) => e.summary(&name, &labels, &h),
        }
    }
    e.render()
}

/// Streams a job's journal lines as `{"event":"line","line":...}`
/// frames, then one `{"event":"end","status":...}` frame once the job
/// reaches a terminal state (or the daemon stops) and the tail is
/// drained.
fn handle_subscribe(shared: &Arc<Shared>, request: &Json, writer: &mut TcpStream) {
    let id = match parse_id(request) {
        Ok(id) => id,
        Err(e) => {
            let _ = write_frame(writer, &e);
            return;
        }
    };
    {
        let st = shared.state.lock().expect("state lock");
        if st.queue.get(id).is_none() {
            let _ = write_frame(writer, &err(404, format!("no such job job-{id}")));
            return;
        }
    }
    let mut tail = JournalTail::new(shared.job_dir(id).join("journal.jsonl"));
    let poll = Duration::from_millis(shared.cfg.poll_ms.max(1));
    loop {
        let lines = match tail.poll() {
            Ok(lines) => lines,
            Err(e) => {
                let _ = write_frame(writer, &err(500, format!("journal tail: {e}")));
                return;
            }
        };
        for line in lines {
            let frame = Json::obj(vec![
                ("event", Json::Str("line".into())),
                ("line", Json::Str(line)),
            ]);
            if write_frame(writer, &frame).is_err() {
                return; // subscriber hung up
            }
        }
        let status = {
            let st = shared.state.lock().expect("state lock");
            st.queue.get(id).map(|j| j.status)
        };
        let stopping = shared.stop.load(Ordering::SeqCst);
        match status {
            Some(s) if s.is_terminal() || stopping => {
                // One final drain so a line flushed between poll and the
                // status read is not lost.
                if let Ok(lines) = tail.poll() {
                    for line in lines {
                        let frame = Json::obj(vec![
                            ("event", Json::Str("line".into())),
                            ("line", Json::Str(line)),
                        ]);
                        if write_frame(writer, &frame).is_err() {
                            return;
                        }
                    }
                }
                let _ = write_frame(
                    writer,
                    &Json::obj(vec![
                        ("event", Json::Str("end".into())),
                        ("status", Json::Str(s.to_string())),
                    ]),
                );
                return;
            }
            Some(_) => std::thread::sleep(poll),
            None => {
                let _ = write_frame(writer, &err(404, format!("job-{id} disappeared")));
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_addr_env_parses_or_rejects_descriptively() {
        // Process-global env: the only test in this binary touching
        // MAOPT_SERVE_ADDR; restored before exit.
        std::env::set_var("MAOPT_SERVE_ADDR", "127.0.0.1:7171");
        assert_eq!(addr_from_env(), Ok(Some("127.0.0.1:7171".into())));
        std::env::set_var("MAOPT_SERVE_ADDR", "  ");
        assert_eq!(addr_from_env(), Ok(None), "blank = unset");
        std::env::set_var("MAOPT_SERVE_ADDR", "not-an-addr");
        let e = addr_from_env().unwrap_err();
        assert!(
            e.contains("MAOPT_SERVE_ADDR") && e.contains("not-an-addr"),
            "error names the variable and value: {e}"
        );
        std::env::set_var("MAOPT_SERVE_ADDR", "localhost:99999");
        assert!(addr_from_env().is_err(), "out-of-range port rejected");
        std::env::remove_var("MAOPT_SERVE_ADDR");
        assert_eq!(addr_from_env(), Ok(None));
    }
}
