//! A blocking client for the framed protocol, used by
//! `maopt-serve-cli` and the integration tests.

use std::io;
use std::net::TcpStream;

use maopt_obs::json::Json;

use crate::job::JobSpec;
use crate::protocol::{read_frame, write_frame, FrameError};

/// One connection to a running daemon.
pub struct Client {
    stream: TcpStream,
}

/// A server-side refusal: the daemon answered `ok: false`.
#[derive(Debug)]
pub struct ServerError {
    /// HTTP-flavoured status code (400 bad request, 404 unknown job,
    /// 409 conflict, 429 queue full, 500 internal).
    pub code: u64,
    /// Human-readable reason.
    pub message: String,
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "server error {}: {}", self.code, self.message)
    }
}

impl std::error::Error for ServerError {}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Frame(FrameError),
    /// The daemon refused the request.
    Server(ServerError),
    /// The daemon closed the connection before answering.
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "{e}"),
            ClientError::Server(e) => write!(f, "{e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Frame(FrameError::Io(e))
    }
}

fn check_ok(response: Json) -> Result<Json, ClientError> {
    if response.get("ok").and_then(Json::as_bool) == Some(true) {
        return Ok(response);
    }
    Err(ClientError::Server(ServerError {
        code: response.get("code").and_then(Json::as_u64).unwrap_or(500),
        message: response
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("unspecified server error")
            .to_string(),
    }))
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7171"`).
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: &str) -> io::Result<Client> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// Sends one request frame and reads one response frame.
    ///
    /// # Errors
    ///
    /// Framing/transport failures, [`ClientError::Disconnected`] on EOF,
    /// and [`ClientError::Server`] when the daemon answers `ok: false`.
    pub fn request(&mut self, msg: &Json) -> Result<Json, ClientError> {
        write_frame(&mut self.stream, msg)?;
        match read_frame(&mut self.stream)? {
            Some(response) => check_ok(response),
            None => Err(ClientError::Disconnected),
        }
    }

    /// Submits a job; returns its `"job-<n>"` name.
    ///
    /// # Errors
    ///
    /// As [`Client::request`]; a full queue is a code-429
    /// [`ClientError::Server`].
    pub fn submit(&mut self, spec: &JobSpec) -> Result<String, ClientError> {
        let mut msg = spec.to_json();
        if let Json::Obj(m) = &mut msg {
            m.insert("cmd".into(), Json::Str("submit".into()));
        }
        let response = self.request(&msg)?;
        response
            .get("id")
            .and_then(Json::as_str)
            .map(String::from)
            .ok_or(ClientError::Disconnected)
    }

    /// Fetches one job's record.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn status(&mut self, id: &str) -> Result<Json, ClientError> {
        let response = self.request(&Json::obj(vec![
            ("cmd", Json::Str("status".into())),
            ("id", Json::Str(id.into())),
        ]))?;
        response
            .get("job")
            .cloned()
            .ok_or(ClientError::Disconnected)
    }

    /// Cancels a pending or running job.
    ///
    /// # Errors
    ///
    /// As [`Client::request`]; already-terminal jobs are a code-409
    /// refusal.
    pub fn cancel(&mut self, id: &str) -> Result<(), ClientError> {
        self.request(&Json::obj(vec![
            ("cmd", Json::Str("cancel".into())),
            ("id", Json::Str(id.into())),
        ]))
        .map(|_| ())
    }

    /// Lists every job the daemon knows.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn list(&mut self) -> Result<Vec<Json>, ClientError> {
        let response = self.request(&Json::obj(vec![("cmd", Json::Str("list".into()))]))?;
        Ok(response
            .get("jobs")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .to_vec())
    }

    /// Fetches scheduler statistics (slot usage, per-tenant depths and
    /// peaks).
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.request(&Json::obj(vec![("cmd", Json::Str("stats".into()))]))
    }

    /// Fetches the daemon's Prometheus text exposition (format 0.0.4):
    /// queue gauges, engine counters, and per-phase / per-tenant latency
    /// summaries.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let response = self.request(&Json::obj(vec![("cmd", Json::Str("metrics".into()))]))?;
        response
            .get("metrics")
            .and_then(Json::as_str)
            .map(String::from)
            .ok_or(ClientError::Disconnected)
    }

    /// Asks the daemon to shut down gracefully (checkpoint + drain).
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request(&Json::obj(vec![("cmd", Json::Str("shutdown".into()))]))
            .map(|_| ())
    }

    /// Streams a job's journal, invoking `on_line` per complete line,
    /// until the job ends; returns the final status string.
    ///
    /// # Errors
    ///
    /// As [`Client::request`], plus a refusal frame mid-stream.
    pub fn subscribe(
        &mut self,
        id: &str,
        mut on_line: impl FnMut(&str),
    ) -> Result<String, ClientError> {
        write_frame(
            &mut self.stream,
            &Json::obj(vec![
                ("cmd", Json::Str("subscribe".into())),
                ("id", Json::Str(id.into())),
            ]),
        )?;
        loop {
            let Some(frame) = read_frame(&mut self.stream)? else {
                return Err(ClientError::Disconnected);
            };
            if frame.get("ok").is_some() {
                check_ok(frame)?; // a refusal (404/400) ends the stream
                continue;
            }
            match frame.get("event").and_then(Json::as_str) {
                Some("line") => {
                    if let Some(line) = frame.get("line").and_then(Json::as_str) {
                        on_line(line);
                    }
                }
                Some("end") => {
                    return Ok(frame
                        .get("status")
                        .and_then(Json::as_str)
                        .unwrap_or("unknown")
                        .to_string());
                }
                _ => return Err(ClientError::Disconnected),
            }
        }
    }
}
