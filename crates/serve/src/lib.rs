//! `maopt-serve`: a durable multi-tenant sizing daemon over the
//! pool/checkpoint/journal stack.
//!
//! The ROADMAP north-star is a production *service*, not a one-shot
//! CLI: sizing is a workload users submit repeatedly. This crate turns
//! the primitives of PRs 1–5 into that service:
//!
//! * a hand-rolled, length-prefixed JSON **wire protocol** over
//!   `TcpListener` ([`protocol`]) — offline-friendly, zero new
//!   dependencies, reusing `maopt-obs`'s hermetic JSON parser;
//! * a **durable job queue** ([`queue`]) persisted through the
//!   `maopt-ckpt` generation-rotated atomic-write path (`MAOPTJBQ`
//!   manifests next to `MAOPTCKP` snapshots, last-good fallback on
//!   corruption), with admission control (bounded pending queue →
//!   429-style reject), per-tenant concurrency quotas, fair
//!   round-robin scheduling, per-job attempt accounting with
//!   quarantine after `--max-attempts` crashes or stalls, and an
//!   optional stall watchdog;
//! * a **scheduler + accept loop** ([`server`]) multiplexing jobs onto
//!   the run-level [`maopt_exec::WorkerPool`] fan-out; a SIGKILLed
//!   daemon restarts with its queue intact and resumes every in-flight
//!   job from its round checkpoint, producing journals byte-identical
//!   (non-timing fields) to uninterrupted runs;
//! * **graceful shutdown** ([`shutdown`]): SIGTERM/SIGINT raise a flag
//!   that checkpoints in-flight jobs at their next round boundary,
//!   flushes journals, and exits 0;
//! * a blocking **client** ([`client`]) for `maopt-serve-cli` and
//!   tests, including live journal streaming via `subscribe`.
//!
//! Signal registration is the crate's single `unsafe` block
//! (`signal(2)` through the libc `std` already links); everything else
//! is safe Rust.

#![warn(missing_docs)]

pub mod client;
pub mod job;
pub mod protocol;
pub mod queue;
pub mod registry;
pub mod server;
pub mod shutdown;

pub use client::{Client, ClientError, ServerError};
pub use job::{JobRecord, JobSpec, JobStatus};
pub use protocol::{decode_frame, encode_frame, read_frame, write_frame, FrameError, MAX_FRAME};
pub use queue::{AdmissionError, JobQueue, QueueLimits};
pub use server::{addr_from_env, ServeConfig, Server};
pub use shutdown::{install_signal_flag, reset_signal_flag, signal_flag};
