//! The durable job queue: admission control, per-tenant quotas, fair
//! round-robin scheduling, and crash-safe persistence through the
//! `maopt-ckpt` atomic-write path.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use maopt_ckpt::{CkptError, GenStore};
use maopt_obs::json::Json;

use crate::job::{JobRecord, JobSpec, JobStatus};

/// Queue manifest file tag (shares the container format with run
/// snapshots but is mutually unreadable with them).
pub const QUEUE_MAGIC: &[u8; 8] = b"MAOPTJBQ";
/// Queue manifest format version.
pub const QUEUE_VERSION: u32 = 1;

/// Manifest generations retained: the manifest is committed on every
/// queue mutation, so a deeper window than run snapshots costs little
/// and widens the rollback horizon a torn commit can survive.
const MANIFEST_KEEP: usize = 4;

/// Admission and fairness limits.
#[derive(Debug, Clone, Copy)]
pub struct QueueLimits {
    /// Maximum jobs waiting in [`JobStatus::Pending`]; a submit beyond
    /// this is rejected with a 429-style error instead of buffering
    /// unboundedly.
    pub max_pending: usize,
    /// Maximum jobs one tenant may have running concurrently.
    pub tenant_quota: usize,
    /// Dispatch attempts before a job is quarantined instead of retried
    /// — the bound that turns a daemon-killing job from an infinite
    /// crash loop into a parked [`JobStatus::Quarantined`] record.
    /// `0` means unlimited retries.
    pub max_attempts: usize,
}

impl Default for QueueLimits {
    fn default() -> Self {
        QueueLimits {
            max_pending: 64,
            tenant_quota: 2,
            max_attempts: 3,
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum AdmissionError {
    /// The pending queue is at capacity; retry later. Maps to wire code
    /// 429.
    QueueFull {
        /// The configured capacity that was hit.
        max_pending: usize,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::QueueFull { max_pending } => {
                write!(f, "pending queue full ({max_pending} jobs); retry later")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// In-memory queue state; persisted as a JSON manifest via
/// [`JobQueue::save`] after every mutation the server makes.
#[derive(Debug, Default)]
pub struct JobQueue {
    jobs: BTreeMap<u64, JobRecord>,
    next_id: u64,
    /// The tenant scheduled most recently; round-robin resumes after it.
    last_tenant: Option<String>,
}

impl JobQueue {
    /// An empty queue; ids start at 1.
    pub fn new() -> Self {
        JobQueue {
            jobs: BTreeMap::new(),
            next_id: 1,
            last_tenant: None,
        }
    }

    /// Admits `spec`, assigning the next id.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::QueueFull`] when [`QueueLimits::max_pending`]
    /// pending jobs already wait.
    pub fn submit(&mut self, spec: JobSpec, limits: &QueueLimits) -> Result<u64, AdmissionError> {
        if self.count_status(JobStatus::Pending) >= limits.max_pending {
            return Err(AdmissionError::QueueFull {
                max_pending: limits.max_pending,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.jobs.insert(
            id,
            JobRecord {
                id,
                spec,
                status: JobStatus::Pending,
                best_fom: None,
                success: None,
                sims: 0,
                attempts: 0,
                rollbacks: 0,
                error: None,
            },
        );
        Ok(id)
    }

    /// Looks up one job.
    pub fn get(&self, id: u64) -> Option<&JobRecord> {
        self.jobs.get(&id)
    }

    /// Mutable lookup, for the server's lifecycle transitions.
    pub fn get_mut(&mut self, id: u64) -> Option<&mut JobRecord> {
        self.jobs.get_mut(&id)
    }

    /// Every job, in id order.
    pub fn jobs(&self) -> impl Iterator<Item = &JobRecord> {
        self.jobs.values()
    }

    /// Jobs in `status`.
    pub fn count_status(&self, status: JobStatus) -> usize {
        self.jobs.values().filter(|j| j.status == status).count()
    }

    /// `tenant`'s jobs in `status`.
    pub fn tenant_count(&self, tenant: &str, status: JobStatus) -> usize {
        self.jobs
            .values()
            .filter(|j| j.status == status && j.spec.tenant == tenant)
            .count()
    }

    /// Marks a pending or running job canceled. A running job's stop
    /// flag is the server's concern; the queue only records intent.
    ///
    /// # Errors
    ///
    /// On an unknown id or a job already in a terminal state.
    pub fn cancel(&mut self, id: u64) -> Result<JobStatus, String> {
        let job = self
            .jobs
            .get_mut(&id)
            .ok_or_else(|| format!("no such job job-{id}"))?;
        if job.status.is_terminal() {
            return Err(format!("job-{id} is already {}", job.status));
        }
        let was = job.status;
        job.status = JobStatus::Canceled;
        Ok(was)
    }

    /// Picks the next job to dispatch, fairly: tenants with pending work
    /// are cycled round-robin starting after the most recently scheduled
    /// one, skipping tenants at their running quota; within a tenant,
    /// lowest id first. Jobs in `blocked` (e.g. a watchdog-demoted job
    /// whose hung runner thread still holds its working directory) are
    /// passed over. Returns `None` when nothing is dispatchable.
    ///
    /// The chosen job is transitioned to [`JobStatus::Running`] and
    /// charged one attempt *here*, before any runner code executes —
    /// so a job that takes the daemon down with it is still charged on
    /// restart. The round-robin cursor advances.
    pub fn next_runnable(&mut self, limits: &QueueLimits, blocked: &BTreeSet<u64>) -> Option<u64> {
        let mut tenants: Vec<&str> = self
            .jobs
            .values()
            .filter(|j| j.status == JobStatus::Pending && !blocked.contains(&j.id))
            .map(|j| j.spec.tenant.as_str())
            .collect();
        tenants.sort_unstable();
        tenants.dedup();
        if tenants.is_empty() {
            return None;
        }
        // Rotate so the scan starts strictly after `last_tenant`.
        let start = match &self.last_tenant {
            Some(last) => match tenants.binary_search(&last.as_str()) {
                Ok(i) => i + 1,
                Err(i) => i,
            },
            None => 0,
        };
        let n = tenants.len();
        for k in 0..n {
            let tenant = tenants[(start + k) % n];
            if self.tenant_count(tenant, JobStatus::Running) >= limits.tenant_quota {
                continue;
            }
            let id = self
                .jobs
                .values()
                .find(|j| {
                    j.status == JobStatus::Pending
                        && j.spec.tenant == tenant
                        && !blocked.contains(&j.id)
                })
                .map(|j| j.id)?;
            let tenant = tenant.to_string();
            let job = self.jobs.get_mut(&id).expect("just found");
            job.status = JobStatus::Running;
            job.attempts += 1;
            self.last_tenant = Some(tenant);
            return Some(id);
        }
        None
    }

    /// Crash recovery at daemon start: jobs recorded as running — the
    /// previous process was killed mid-run — are requeued, unless their
    /// pre-charged attempt count already reached `max_attempts`
    /// (0 = unlimited), in which case they are quarantined: their past
    /// behaviour is indistinguishable from a job that kills the daemon
    /// every time, and requeueing would resume the crash loop.
    ///
    /// Returns `(requeued, quarantined)` job counts.
    pub fn recover(&mut self, max_attempts: usize) -> (u64, u64) {
        let (mut requeued, mut quarantined) = (0, 0);
        for job in self.jobs.values_mut() {
            if job.status != JobStatus::Running {
                continue;
            }
            if max_attempts > 0 && job.attempts >= max_attempts as u64 {
                job.status = JobStatus::Quarantined;
                job.error = Some(format!(
                    "quarantined after {} attempt(s): daemon did not survive the last run",
                    job.attempts
                ));
                quarantined += 1;
            } else {
                job.status = JobStatus::Pending;
                requeued += 1;
            }
        }
        (requeued, quarantined)
    }

    /// Serializes the full queue state as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("next_id", Json::num_u(self.next_id)),
            (
                "last_tenant",
                match &self.last_tenant {
                    Some(t) => Json::Str(t.clone()),
                    None => Json::Null,
                },
            ),
            (
                "jobs",
                Json::Arr(self.jobs.values().map(JobRecord::to_json).collect()),
            ),
        ])
    }

    /// Inverse of [`JobQueue::to_json`].
    ///
    /// # Errors
    ///
    /// Names the first missing or ill-typed field.
    pub fn from_json(v: &Json) -> Result<JobQueue, String> {
        let next_id = v
            .get("next_id")
            .and_then(Json::as_u64)
            .ok_or("missing field \"next_id\"")?;
        let last_tenant = v
            .get("last_tenant")
            .and_then(Json::as_str)
            .map(String::from);
        let mut jobs = BTreeMap::new();
        for item in v
            .get("jobs")
            .and_then(Json::as_arr)
            .ok_or("missing field \"jobs\"")?
        {
            let job = JobRecord::from_json(item)?;
            jobs.insert(job.id, job);
        }
        Ok(JobQueue {
            jobs,
            next_id,
            last_tenant,
        })
    }

    /// The generation store rotating manifest commits beside `path`
    /// (`queue.bin.0001.bin`, …, newest [`MANIFEST_KEEP`] retained; a
    /// bare pre-rotation `path` still loads as generation 0).
    pub fn manifest_store(path: &Path) -> GenStore {
        GenStore::new(path, QUEUE_MAGIC, QUEUE_VERSION).with_keep(MANIFEST_KEEP)
    }

    /// Durably persists the queue manifest as the next generation,
    /// through the same atomic temp+fsync+rename+dir-fsync path run
    /// snapshots use.
    ///
    /// # Errors
    ///
    /// Propagates [`CkptError`] from the write path.
    pub fn save(&self, path: &Path) -> Result<(), CkptError> {
        Self::manifest_store(path)
            .save_next(self.to_json().to_string().as_bytes())
            .map(|_| ())
    }

    /// Loads the newest good manifest generation; an empty store is an
    /// empty queue (first boot). Corrupt newer generations — a commit
    /// torn by a crash or a full disk — are rolled past and counted in
    /// the returned `u64`, each rollback forgetting at most the last few
    /// queue mutations (a requeued-but-done job re-runs
    /// deterministically; a forgotten submit is the client's retry).
    ///
    /// Recovery of jobs recorded as running is *not* performed here:
    /// call [`JobQueue::recover`] with the configured attempt budget.
    ///
    /// # Errors
    ///
    /// Propagates [`CkptError`]; a store whose every generation is
    /// corrupt is [`CkptError::Corrupt`].
    pub fn load_or_default(path: &Path) -> Result<(JobQueue, u64), CkptError> {
        let load = Self::manifest_store(path).load_latest_good_with(|bytes| {
            let text = std::str::from_utf8(bytes)
                .map_err(|e| CkptError::Corrupt(format!("manifest not UTF-8: {e}")))?;
            let json = Json::parse(text)
                .map_err(|e| CkptError::Corrupt(format!("manifest not JSON: {e}")))?;
            JobQueue::from_json(&json).map_err(|e| CkptError::Corrupt(format!("manifest: {e}")))
        })?;
        Ok(match load {
            Some(l) => (l.value, l.rolled_back),
            None => (JobQueue::new(), 0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(tenant: &str, seed: u64) -> JobSpec {
        JobSpec {
            tenant: tenant.into(),
            problem: "sphere:2".into(),
            method: "ma-opt2".into(),
            budget: 8,
            init_size: 6,
            seed,
            quick: true,
        }
    }

    fn none() -> BTreeSet<u64> {
        BTreeSet::new()
    }

    #[test]
    fn admission_rejects_beyond_max_pending() {
        let limits = QueueLimits {
            max_pending: 2,
            tenant_quota: 1,
            ..QueueLimits::default()
        };
        let mut q = JobQueue::new();
        q.submit(spec("a", 1), &limits).unwrap();
        q.submit(spec("a", 2), &limits).unwrap();
        assert_eq!(
            q.submit(spec("b", 3), &limits),
            Err(AdmissionError::QueueFull { max_pending: 2 })
        );
        // Draining one pending job reopens admission.
        assert!(q.next_runnable(&limits, &none()).is_some());
        q.submit(spec("b", 3), &limits).unwrap();
    }

    #[test]
    fn round_robin_alternates_tenants() {
        let limits = QueueLimits {
            max_pending: 16,
            tenant_quota: 16,
            ..QueueLimits::default()
        };
        let mut q = JobQueue::new();
        let a1 = q.submit(spec("a", 1), &limits).unwrap();
        let a2 = q.submit(spec("a", 2), &limits).unwrap();
        let b1 = q.submit(spec("b", 3), &limits).unwrap();
        let b2 = q.submit(spec("b", 4), &limits).unwrap();
        let order: Vec<u64> = std::iter::from_fn(|| q.next_runnable(&limits, &none())).collect();
        assert_eq!(order, vec![a1, b1, a2, b2], "a/b alternate fairly");
        assert!(
            q.jobs().all(|j| j.attempts == 1),
            "each dispatch charges one attempt"
        );
    }

    #[test]
    fn quota_caps_one_tenants_concurrency() {
        let limits = QueueLimits {
            max_pending: 16,
            tenant_quota: 1,
            ..QueueLimits::default()
        };
        let mut q = JobQueue::new();
        let a1 = q.submit(spec("a", 1), &limits).unwrap();
        q.submit(spec("a", 2), &limits).unwrap();
        let b1 = q.submit(spec("b", 3), &limits).unwrap();
        assert_eq!(q.next_runnable(&limits, &none()), Some(a1));
        // Tenant a is at quota; b runs next, then nothing until a frees.
        assert_eq!(q.next_runnable(&limits, &none()), Some(b1));
        assert_eq!(q.next_runnable(&limits, &none()), None);
        q.get_mut(a1).unwrap().status = JobStatus::Done;
        assert!(q.next_runnable(&limits, &none()).is_some());
    }

    #[test]
    fn blocked_jobs_are_passed_over() {
        let limits = QueueLimits::default();
        let mut q = JobQueue::new();
        let a1 = q.submit(spec("a", 1), &limits).unwrap();
        let a2 = q.submit(spec("a", 2), &limits).unwrap();
        let blocked: BTreeSet<u64> = [a1].into();
        assert_eq!(q.next_runnable(&limits, &blocked), Some(a2));
        assert_eq!(q.next_runnable(&limits, &blocked), None);
        assert_eq!(
            q.get(a1).unwrap().attempts,
            0,
            "a blocked job is neither run nor charged"
        );
        assert_eq!(q.next_runnable(&limits, &none()), Some(a1));
    }

    #[test]
    fn cancel_transitions_and_rejects_terminal() {
        let limits = QueueLimits::default();
        let mut q = JobQueue::new();
        let id = q.submit(spec("a", 1), &limits).unwrap();
        assert_eq!(q.cancel(id), Ok(JobStatus::Pending));
        assert!(q.cancel(id).unwrap_err().contains("already canceled"));
        assert!(q.cancel(999).unwrap_err().contains("no such job"));
    }

    fn manifest_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("maopt-serve-queue-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn manifest_roundtrip_and_recover_requeues_running() {
        let limits = QueueLimits::default();
        let mut q = JobQueue::new();
        let a = q.submit(spec("a", 1), &limits).unwrap();
        let b = q.submit(spec("b", 2), &limits).unwrap();
        assert_eq!(q.next_runnable(&limits, &BTreeSet::new()), Some(a));
        q.get_mut(b).unwrap().status = JobStatus::Done;
        q.get_mut(b).unwrap().best_fom = Some(0.25);

        let dir = manifest_dir("roundtrip");
        let path = dir.join("queue.bin");
        q.save(&path).unwrap();
        let (mut restored, rollbacks) = JobQueue::load_or_default(&path).unwrap();
        let _ = std::fs::remove_dir_all(&dir);

        assert_eq!(rollbacks, 0);
        assert_eq!(
            restored.get(a).unwrap().status,
            JobStatus::Running,
            "load does not recover by itself"
        );
        assert_eq!(restored.recover(limits.max_attempts), (1, 0));
        assert_eq!(
            restored.get(a).unwrap().status,
            JobStatus::Pending,
            "killed mid-run below the attempt budget => resumed"
        );
        assert_eq!(restored.get(a).unwrap().attempts, 1, "the attempt sticks");
        assert_eq!(restored.get(b).unwrap().status, JobStatus::Done);
        assert_eq!(restored.get(b).unwrap().best_fom, Some(0.25));
        assert_eq!(restored.get(a).unwrap().spec, spec("a", 1));
        // Ids continue where they left off.
        let c = restored.submit(spec("c", 3), &limits).unwrap();
        assert_eq!(c, 3);
    }

    #[test]
    fn recover_quarantines_at_the_attempt_budget() {
        let limits = QueueLimits {
            max_attempts: 2,
            ..QueueLimits::default()
        };
        let mut q = JobQueue::new();
        let a = q.submit(spec("a", 1), &limits).unwrap();
        // Two simulated daemon deaths mid-run: dispatch, "crash" (the
        // Running status persists), recover.
        assert_eq!(q.next_runnable(&limits, &BTreeSet::new()), Some(a));
        assert_eq!(
            q.recover(limits.max_attempts),
            (1, 0),
            "first crash requeues"
        );
        assert_eq!(q.next_runnable(&limits, &BTreeSet::new()), Some(a));
        assert_eq!(
            q.recover(limits.max_attempts),
            (0, 1),
            "second crash hits max_attempts=2"
        );
        let job = q.get(a).unwrap();
        assert_eq!(job.status, JobStatus::Quarantined);
        assert_eq!(job.attempts, 2);
        assert!(job
            .error
            .as_deref()
            .unwrap()
            .contains("quarantined after 2"));
        assert!(job.status.is_terminal(), "quarantine blocks re-dispatch");
        assert_eq!(q.next_runnable(&limits, &BTreeSet::new()), None);

        // max_attempts = 0 disables quarantine entirely.
        let mut q = JobQueue::new();
        let a = q.submit(spec("a", 1), &limits).unwrap();
        for _ in 0..5 {
            assert_eq!(q.next_runnable(&limits, &BTreeSet::new()), Some(a));
            assert_eq!(q.recover(0), (1, 0));
        }
        assert_eq!(q.get(a).unwrap().attempts, 5);
    }

    #[test]
    fn corrupt_newest_manifest_generation_rolls_back() {
        let limits = QueueLimits::default();
        let dir = manifest_dir("rollback");
        let path = dir.join("queue.bin");
        let mut q = JobQueue::new();
        q.submit(spec("a", 1), &limits).unwrap();
        q.save(&path).unwrap();
        q.submit(spec("b", 2), &limits).unwrap();
        q.save(&path).unwrap();

        // Tear the newest manifest commit.
        let store = JobQueue::manifest_store(&path);
        let (_, newest) = store.generations().unwrap().pop().unwrap();
        let bytes = std::fs::read(&newest).unwrap();
        std::fs::write(&newest, &bytes[..bytes.len() - 3]).unwrap();

        let (restored, rollbacks) = JobQueue::load_or_default(&path).unwrap();
        assert_eq!(rollbacks, 1, "the torn commit is counted");
        assert_eq!(
            restored.jobs().count(),
            1,
            "the rollback forgets the last mutation, not the queue"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_manifest_is_empty_queue() {
        let q = JobQueue::load_or_default(Path::new("/nonexistent/queue.bin"));
        let (q, rollbacks) = q.unwrap();
        assert_eq!(q.jobs().count(), 0);
        assert_eq!(rollbacks, 0);
    }
}
