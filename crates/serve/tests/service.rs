//! In-process integration tests for the daemon: submit/status/list,
//! admission control, per-tenant quotas, cancel, live journal
//! streaming, and graceful drain + restart over one state directory.

use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

use maopt_exec::EvalEngine;
use maopt_obs::json::Json;
use maopt_serve::{Client, ClientError, JobSpec, QueueLimits, ServeConfig, Server};

fn tmp_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("maopt-serve-it-{}-{name}", std::process::id()))
}

fn spec(tenant: &str, seed: u64, budget: usize) -> JobSpec {
    JobSpec {
        tenant: tenant.into(),
        problem: "sphere:2".into(),
        method: "ma-opt2".into(),
        budget,
        init_size: 6,
        seed,
        quick: true,
    }
}

struct Daemon {
    addr: String,
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<std::io::Result<()>>,
}

fn start(state_dir: &Path, slots: usize, limits: QueueLimits) -> Daemon {
    let stop = Arc::new(AtomicBool::new(false));
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        state_dir: state_dir.to_path_buf(),
        slots,
        limits,
        poll_ms: 5,
        stall_budget_ms: None,
    };
    let server = Server::bind(cfg, EvalEngine::new(2), Arc::clone(&stop)).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run());
    Daemon { addr, stop, handle }
}

fn wait_status(client: &mut Client, id: &str, want: &str, timeout: Duration) -> Json {
    let deadline = Instant::now() + timeout;
    loop {
        let job = client.status(id).expect("status");
        let status = job.get("status").and_then(Json::as_str).unwrap_or("?");
        if status == want {
            return job;
        }
        assert!(
            Instant::now() < deadline,
            "job {id} stuck in {status:?}, wanted {want:?}: {job}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn submit_run_status_list_and_drain() {
    let dir = tmp_dir("basic");
    let _ = std::fs::remove_dir_all(&dir);
    let daemon = start(&dir, 2, QueueLimits::default());
    let mut client = Client::connect(&daemon.addr).expect("connect");

    let a = client.submit(&spec("alice", 7, 8)).expect("submit a");
    let b = client.submit(&spec("bob", 8, 8)).expect("submit b");
    assert_eq!(a, "job-1");
    assert_eq!(b, "job-2");

    let done_a = wait_status(&mut client, &a, "done", Duration::from_secs(60));
    let done_b = wait_status(&mut client, &b, "done", Duration::from_secs(60));
    for (name, job) in [(&a, &done_a), (&b, &done_b)] {
        assert!(
            job.get("best_fom").and_then(Json::as_f64).is_some(),
            "{name} reports a result: {job}"
        );
        assert_eq!(
            job.get("sims").and_then(Json::as_u64),
            Some(8),
            "{name} consumed its budget: {job}"
        );
    }

    let jobs = client.list().expect("list");
    assert_eq!(jobs.len(), 2);

    // Unknown ids and commands are typed refusals, not hangs.
    match client.status("job-99") {
        Err(ClientError::Server(e)) => assert_eq!(e.code, 404),
        other => panic!("expected 404, got {other:?}"),
    }
    match client.request(&Json::obj(vec![("cmd", Json::Str("warp".into()))])) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, 400),
        other => panic!("expected 400, got {other:?}"),
    }
    // A submit that cannot resolve is refused at admission.
    match client.submit(&spec("alice", 1, 8).clone_with_problem("warp:9")) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, 400),
        other => panic!("expected 400, got {other:?}"),
    }

    client.shutdown().expect("shutdown");
    daemon
        .handle
        .join()
        .expect("join")
        .expect("drained cleanly");

    // Restart over the same state dir: terminal states survive.
    let daemon2 = start(&dir, 2, QueueLimits::default());
    let mut client2 = Client::connect(&daemon2.addr).expect("reconnect");
    let job = client2.status(&a).expect("status after restart");
    assert_eq!(job.get("status").and_then(Json::as_str), Some("done"));
    daemon2
        .stop
        .store(true, std::sync::atomic::Ordering::SeqCst);
    daemon2.handle.join().expect("join").expect("clean");
    let _ = std::fs::remove_dir_all(&dir);
}

trait SpecExt {
    fn clone_with_problem(&self, problem: &str) -> JobSpec;
}

impl SpecExt for JobSpec {
    fn clone_with_problem(&self, problem: &str) -> JobSpec {
        JobSpec {
            problem: problem.into(),
            ..self.clone()
        }
    }
}

#[test]
fn admission_control_rejects_with_429() {
    let dir = tmp_dir("admission");
    let _ = std::fs::remove_dir_all(&dir);
    let daemon = start(
        &dir,
        1,
        QueueLimits {
            max_pending: 1,
            tenant_quota: 1,
            ..QueueLimits::default()
        },
    );
    let mut client = Client::connect(&daemon.addr).expect("connect");

    // A long job occupies the single slot...
    let running = client.submit(&spec("alice", 1, 400)).expect("submit");
    wait_status(&mut client, &running, "running", Duration::from_secs(30));
    // ...one job may wait...
    let waiting = client.submit(&spec("bob", 2, 8)).expect("pending fits");
    // ...and the next is bounced with the wire equivalent of a 429.
    match client.submit(&spec("carol", 3, 8)) {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.code, 429);
            assert!(e.message.contains("queue full"), "{}", e.message);
        }
        other => panic!("expected 429, got {other:?}"),
    }

    // Cancel the hog; it checkpoints at the next round boundary, the
    // pending job takes the slot, and admission reopens once the queue
    // drains.
    client.cancel(&running).expect("cancel");
    wait_status(&mut client, &running, "canceled", Duration::from_secs(60));
    wait_status(&mut client, &waiting, "done", Duration::from_secs(60));
    client
        .submit(&spec("carol", 3, 8))
        .expect("admission reopens");

    daemon.stop.store(true, std::sync::atomic::Ordering::SeqCst);
    daemon.handle.join().expect("join").expect("clean");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tenant_quota_caps_concurrency() {
    let dir = tmp_dir("quota");
    let _ = std::fs::remove_dir_all(&dir);
    // Two slots, but each tenant may only occupy one.
    let daemon = start(
        &dir,
        2,
        QueueLimits {
            max_pending: 16,
            tenant_quota: 1,
            ..QueueLimits::default()
        },
    );
    let mut client = Client::connect(&daemon.addr).expect("connect");

    let ids: Vec<String> = (0..3)
        .map(|i| client.submit(&spec("alice", 10 + i, 8)).expect("submit"))
        .collect();
    let bob = client.submit(&spec("bob", 20, 8)).expect("submit");

    for id in ids.iter().chain([&bob]) {
        wait_status(&mut client, id, "done", Duration::from_secs(120));
    }

    let stats = client.stats().expect("stats");
    let tenants = stats
        .get("tenants")
        .and_then(Json::as_arr)
        .expect("tenants");
    let peak = |name: &str| -> u64 {
        tenants
            .iter()
            .find(|t| t.get("tenant").and_then(Json::as_str) == Some(name))
            .and_then(|t| t.get("peak_running").and_then(Json::as_u64))
            .unwrap_or_else(|| panic!("no stats for tenant {name}: {stats}"))
    };
    assert_eq!(peak("alice"), 1, "quota of 1 never exceeded: {stats}");
    assert!(peak("bob") >= 1);
    assert!(
        stats
            .get("peak_running")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            <= 2,
        "slot cap respected: {stats}"
    );

    daemon.stop.store(true, std::sync::atomic::Ordering::SeqCst);
    daemon.handle.join().expect("join").expect("clean");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn subscribe_streams_the_journal_live() {
    let dir = tmp_dir("subscribe");
    let _ = std::fs::remove_dir_all(&dir);
    let daemon = start(&dir, 1, QueueLimits::default());
    let mut client = Client::connect(&daemon.addr).expect("connect");

    let id = client.submit(&spec("alice", 5, 12)).expect("submit");
    // Subscribe immediately, while the job runs: lines arrive live.
    let mut sub = Client::connect(&daemon.addr).expect("subscriber connect");
    let mut streamed = Vec::new();
    let end = sub
        .subscribe(&id, |line| streamed.push(line.to_string()))
        .expect("subscribe");
    assert_eq!(end, "done");

    // The stream must be exactly the journal file, in order.
    let journal = std::fs::read_to_string(dir.join("jobs").join(&id).join("journal.jsonl"))
        .expect("journal file");
    let on_disk: Vec<&str> = journal.lines().collect();
    assert_eq!(streamed, on_disk, "stream == journal");
    assert!(
        streamed.iter().all(|l| Json::parse(l).is_ok()),
        "every streamed line is valid JSON"
    );
    assert!(streamed.len() >= 2, "manifest + run end at minimum");

    // Subscribing to a finished job replays the full journal too.
    let mut replayed = Vec::new();
    let mut sub2 = Client::connect(&daemon.addr).expect("late subscriber");
    let end2 = sub2
        .subscribe(&id, |line| replayed.push(line.to_string()))
        .expect("replay subscribe");
    assert_eq!(end2, "done");
    assert_eq!(replayed, on_disk);

    daemon.stop.store(true, std::sync::atomic::Ordering::SeqCst);
    daemon.handle.join().expect("join").expect("clean");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_exposition_lints_and_carries_tenant_latency() {
    let dir = tmp_dir("metrics");
    let _ = std::fs::remove_dir_all(&dir);
    let daemon = start(&dir, 2, QueueLimits::default());
    let mut client = Client::connect(&daemon.addr).expect("connect");

    // A scrape of an idle daemon is already well-formed.
    let idle = client.metrics().expect("idle scrape");
    maopt_exec::prom::lint(&idle).expect("idle exposition lints clean");
    assert!(idle.contains("maopt_serve_slots 2"), "{idle}");
    assert!(idle.contains("maopt_serve_jobs{status=\"pending\"} 0"));

    let id = client.submit(&spec("alice", 11, 8)).expect("submit");
    wait_status(&mut client, &id, "done", Duration::from_secs(60));

    let text = client.metrics().expect("scrape");
    maopt_exec::prom::lint(&text).expect("exposition lints clean");
    assert!(
        text.contains("maopt_serve_jobs{status=\"done\"} 1"),
        "done gauge reflects the finished job:\n{text}"
    );
    assert!(
        text.contains("# TYPE maopt_serve_tenant_job_seconds summary"),
        "per-tenant latency summary present:\n{text}"
    );
    assert!(
        text.contains("maopt_serve_tenant_job_seconds_count{tenant=\"alice\"} 1"),
        "alice's one job observed:\n{text}"
    );
    assert!(
        text.contains("maopt_serve_job_seconds_count 1"),
        "daemon-wide latency observed:\n{text}"
    );
    // Engine counters merged back from the job engine.
    let sims_line = text
        .lines()
        .find(|l| l.starts_with("maopt_exec_sims_total"))
        .expect("sims counter exported");
    let sims: f64 = sims_line
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    assert!(
        sims >= 8.0,
        "at least the job's budget of sims: {sims_line}"
    );
    // Phase latency summaries arrive with the phase as a label.
    assert!(
        text.contains("maopt_exec_phase_seconds{phase=\"simulation\",quantile=\"0.5\"}")
            || text.contains("maopt_exec_phase_seconds{phase=\"near_sampling\",quantile=\"0.5\"}"),
        "phase summary present:\n{text}"
    );

    daemon.stop.store(true, std::sync::atomic::Ordering::SeqCst);
    daemon.handle.join().expect("join").expect("clean");
    let _ = std::fs::remove_dir_all(&dir);
}
